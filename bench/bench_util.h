// Shared benchmark plumbing: dataset caching (generation is excluded from
// the timed region), size scaling, and the counters every figure reports.
//
// Scaling note (EXPERIMENTS.md §Method): the paper runs 50K–200K tuples on
// a 2×Xeon with PostgreSQL; the TA baseline is quadratic (nested-loop plans
// and replication), so these benches sweep proportionally smaller sizes by
// default and preserve the *shape* of each figure. Set TPDB_BENCH_SCALE=k
// to multiply every size by k for longer runs.
#ifndef TPDB_BENCH_BENCH_UTIL_H_
#define TPDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>

#include "datasets/meteo.h"
#include "datasets/webkit.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb::bench {

/// Which of the two paper datasets (substituted generators) to use.
enum class DataKind { kWebkit, kMeteo };

inline const char* DataKindName(DataKind kind) {
  return kind == DataKind::kWebkit ? "webkit" : "meteo";
}

/// A cached dataset instance: two relations + θ bound to their own manager.
struct Dataset {
  std::unique_ptr<LineageManager> manager;
  std::unique_ptr<TPRelation> r;
  std::unique_ptr<TPRelation> s;
  JoinCondition theta;
};

/// Returns the (cached) dataset of `kind` with `n` tuples per relation.
/// Generation happens once, outside any timed region.
inline const Dataset& GetDataset(DataKind kind, int64_t n) {
  static std::map<std::pair<int, int64_t>, std::unique_ptr<Dataset>> cache;
  const std::pair<int, int64_t> key{static_cast<int>(kind), n};
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto ds = std::make_unique<Dataset>();
  ds->manager = std::make_unique<LineageManager>();
  if (kind == DataKind::kWebkit) {
    WebkitOptions opts;
    opts.num_tuples = n;
    StatusOr<WebkitDataset> gen = MakeWebkitDataset(ds->manager.get(), opts);
    TPDB_CHECK(gen.ok()) << gen.status().ToString();
    ds->r = std::make_unique<TPRelation>(std::move(gen->r));
    ds->s = std::make_unique<TPRelation>(std::move(gen->s));
    ds->theta = std::move(gen->theta);
  } else {
    MeteoOptions opts;
    opts.num_tuples = n;
    StatusOr<MeteoDataset> gen = MakeMeteoDataset(ds->manager.get(), opts);
    TPDB_CHECK(gen.ok()) << gen.status().ToString();
    ds->r = std::make_unique<TPRelation>(std::move(gen->r));
    ds->s = std::make_unique<TPRelation>(std::move(gen->s));
    ds->theta = std::move(gen->theta);
  }
  const Dataset& ref = *ds;
  cache.emplace(key, std::move(ds));
  return ref;
}

/// Multiplies benchmark sizes by $TPDB_BENCH_SCALE (default 1).
inline int64_t Scale() {
  static const int64_t scale = [] {
    const char* env = std::getenv("TPDB_BENCH_SCALE");
    if (env == nullptr) return static_cast<int64_t>(1);
    const int64_t v = std::atoll(env);
    return v > 0 ? v : static_cast<int64_t>(1);
  }();
  return scale;
}

}  // namespace tpdb::bench

#endif  // TPDB_BENCH_BENCH_UTIL_H_
