// Sweep-line vs probe join throughput, emitting BENCH_join.json — the CI
// gate of the sweep trajectory. Three operators over the same workloads:
//
//   probe    ParallelTPJoin, OverlapAlgorithm::kPartitioned (morsel driver)
//   sweep    serial TPJoin, OverlapAlgorithm::kSweep (one sweep, one thread)
//   psweep   ParallelTPJoin, OverlapAlgorithm::kSweep (time-partitioned)
//
// each on a uniform and a Zipf-skewed workload. The skewed shape is the
// point of the exercise: hash partitioning lands the hot key chain in one
// partition and rescans it per probe row, while the sweep is O(n log n +
// output) regardless of the key histogram, and time slicing splits the hot
// chain across workers.
//
// The process exits non-zero if (a) any algorithm diverges element-wise
// from the probe join (values, intervals, or probabilities), or (b) the
// partitioned sweep at 8 threads fails to beat the parallel probe join by
// at least 3x on the skewed workload.
//
//   ./bench/bench_sweep_join [out.json]
//
// TPDB_BENCH_SCALE multiplies the workload size (default 8000 tuples/side).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kRequiredSkewSpeedup = 3.0;

struct Measurement {
  std::string workload;
  std::string op;
  int threads = 1;
  double seconds = 0.0;
  size_t result_rows = 0;
};

double TimeBestOf(int reps, const std::function<size_t()>& run, size_t* rows) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    *rows = run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

struct CanonicalTuple {
  Row fact;
  Interval interval;
  double probability;
};

std::vector<CanonicalTuple> Canonicalize(const TPRelation& rel) {
  ProbabilityEngine engine(rel.manager());
  std::vector<CanonicalTuple> out;
  out.reserve(rel.size());
  for (const TPTuple& t : rel.tuples())
    out.push_back(
        CanonicalTuple{t.fact, t.interval, engine.Probability(t.lineage)});
  std::sort(out.begin(), out.end(),
            [](const CanonicalTuple& a, const CanonicalTuple& b) {
              const int c = CompareRows(a.fact, b.fact);
              if (c != 0) return c < 0;
              if (a.interval != b.interval) return a.interval < b.interval;
              return a.probability < b.probability;
            });
  return out;
}

bool SameContents(const TPRelation& a, const TPRelation& b) {
  if (a.size() != b.size()) return false;
  const std::vector<CanonicalTuple> ca = Canonicalize(a);
  const std::vector<CanonicalTuple> cb = Canonicalize(b);
  for (size_t i = 0; i < ca.size(); ++i) {
    if (CompareRows(ca[i].fact, cb[i].fact) != 0) return false;
    if (ca[i].interval != cb[i].interval) return false;
    if (std::abs(ca[i].probability - cb[i].probability) > 1e-9) return false;
  }
  return true;
}

struct WorkloadPair {
  std::string name;
  std::unique_ptr<TPRelation> r;
  std::unique_ptr<TPRelation> s;
};

WorkloadPair MakeWorkload(LineageManager* manager, const std::string& name,
                          int64_t tuples, double fact_skew,
                          int64_t num_facts) {
  WorkloadPair w;
  w.name = name;
  Random rng(name == "uniform" ? 1234 : 5678);
  UniformWorkloadOptions options;
  options.num_tuples = tuples;
  options.num_facts = num_facts;
  options.history_length = 20000;
  options.avg_duration = 120.0;
  options.gap_probability = 0.2;
  options.fact_skew = fact_skew;
  StatusOr<TPRelation> r =
      MakeUniformWorkload(manager, name + "_r", options, &rng);
  TPDB_CHECK(r.ok()) << r.status().ToString();
  StatusOr<TPRelation> s =
      MakeUniformWorkload(manager, name + "_s", options, &rng);
  TPDB_CHECK(s.ok()) << s.status().ToString();
  w.r = std::make_unique<TPRelation>(std::move(*r));
  w.s = std::make_unique<TPRelation>(std::move(*s));
  return w;
}

int Main(int argc, char** argv) {
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;
  const int64_t tuples = 16000 * scale;

  LineageManager manager;
  std::vector<WorkloadPair> workloads;
  workloads.push_back(MakeWorkload(&manager, "uniform", tuples,
                                   /*fact_skew=*/0.0,
                                   std::max<int64_t>(tuples / 40, 8)));
  // Zipf 2.5 over eight keys: the hottest key owns ~3/4 of both sides, so
  // the probe's per-row partition-prefix rescan goes quadratic in the hot
  // chain while the sweep stays O(n log n + output).
  workloads.push_back(MakeWorkload(&manager, "skewed", tuples,
                                   /*fact_skew=*/2.5, /*num_facts=*/8));

  const JoinCondition theta = JoinCondition::Equals("key");
  const TPJoinKind kind = TPJoinKind::kLeftOuter;
  const int reps = 3;

  TPJoinOptions probe_options;
  probe_options.validate_inputs = false;
  TPJoinOptions sweep_options = probe_options;
  sweep_options.overlap_algorithm = OverlapAlgorithm::kSweep;

  bool parity_ok = true;
  double skew_probe_8t = 0.0, skew_psweep_8t = 0.0;
  std::vector<Measurement> results;

  for (const WorkloadPair& w : workloads) {
    // Reference result for the parity check (validated probe join).
    StatusOr<TPRelation> reference = TPJoin(kind, *w.r, *w.s, theta);
    TPDB_CHECK(reference.ok()) << reference.status().ToString();

    const auto measure = [&](const std::string& op, int threads,
                             const TPJoinOptions& options) {
      Measurement m;
      m.workload = w.name;
      m.op = op;
      m.threads = threads;
      std::unique_ptr<TPRelation> last;
      const auto run = [&]() -> size_t {
        StatusOr<TPRelation> out = [&] {
          if (threads == 1) {
            ExecContext ctx(nullptr, ExecOptions{.parallelism = 1});
            return ParallelTPJoin(&ctx, kind, *w.r, *w.s, theta, options);
          }
          ThreadPool pool(static_cast<size_t>(threads));
          ExecOptions exec_options;
          exec_options.parallelism = threads;
          exec_options.min_parallel_rows = 64;
          ExecContext ctx(&pool, exec_options);
          return ParallelTPJoin(&ctx, kind, *w.r, *w.s, theta, options);
        }();
        TPDB_CHECK(out.ok()) << out.status().ToString();
        last = std::make_unique<TPRelation>(std::move(*out));
        return last->size();
      };
      m.seconds = TimeBestOf(reps, run, &m.result_rows);
      if (!SameContents(*reference, *last)) {
        std::fprintf(stderr, "PARITY FAILURE: %s/%s@%d diverges from probe\n",
                     w.name.c_str(), op.c_str(), threads);
        parity_ok = false;
      }
      std::printf("%-8s %-8s threads=%d  %9.3f ms  rows=%zu\n",
                  w.name.c_str(), op.c_str(), threads, m.seconds * 1000.0,
                  m.result_rows);
      results.push_back(m);
      return m.seconds;
    };

    for (const int threads : {1, 2, 4, 8}) {
      const double seconds = measure("probe", threads, probe_options);
      if (w.name == "skewed" && threads == 8) skew_probe_8t = seconds;
    }
    measure("sweep", 1, sweep_options);
    for (const int threads : {2, 4, 8}) {
      const double seconds = measure("psweep", threads, sweep_options);
      if (w.name == "skewed" && threads == 8) skew_psweep_8t = seconds;
    }
  }

  const double skew_speedup =
      skew_psweep_8t > 0.0 ? skew_probe_8t / skew_psweep_8t : 0.0;
  const bool speedup_ok = skew_speedup >= kRequiredSkewSpeedup;
  std::printf("skewed @8t: probe %.3f ms, psweep %.3f ms, speedup %.2fx "
              "(required %.1fx)\n",
              skew_probe_8t * 1000.0, skew_psweep_8t * 1000.0, skew_speedup,
              kRequiredSkewSpeedup);

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_join.json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f,
               "{\n  \"workloads\": {\"tuples_per_side\": %lld, "
               "\"uniform_keys\": %lld, \"skewed_keys\": 50, "
               "\"skew\": 1.5, \"theta\": \"key = key\"},\n",
               static_cast<long long>(tuples),
               static_cast<long long>(std::max<int64_t>(tuples / 40, 8)));
  std::fprintf(f, "  \"hardware_threads\": %zu,\n",
               ThreadPool::HardwareParallelism());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"op\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.6f, \"rows\": %zu}%s\n",
                 m.workload.c_str(), m.op.c_str(), m.threads, m.seconds,
                 m.result_rows, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"gates\": {\"parity\": %s, \"skew_speedup_8t\": %.3f, "
               "\"required\": %.1f}\n}\n",
               parity_ok ? "true" : "false", skew_speedup,
               kRequiredSkewSpeedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!parity_ok) {
    std::fprintf(stderr, "FAIL: algorithm parity violated\n");
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: skewed psweep@8 speedup %.2fx < required %.1fx\n",
                 skew_speedup, kRequiredSkewSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
