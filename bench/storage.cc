// Snapshot persistence, compression & cold-scan throughput, emitting
// BENCH_storage.json:
//   * SaveSnapshot / LoadSnapshot wall time and MB/s over a time-ordered
//     uniform workload, saved both compressed and uncompressed — the
//     bytes-on-disk of the two files give the compression ratio;
//   * per-codec accounting of the compressed file's chunks (raw/rle/for:
//     chunk counts, packed vs. plain-equivalent bytes);
//   * in-memory scan vs. cold scan (compressed and uncompressed backing)
//     vs. zone-map-pruned time-range scan, with segments scanned/skipped
//     and decode-time counters;
//   * two gates, either of which makes the process exit non-zero (what CI
//     keys off): every relation of each reloaded database must be
//     element-wise identical (facts, intervals, exact probabilities) to
//     the source, and the compressed cold scan must hold within 10% of
//     the uncompressed cold scan's throughput.
//
// Like bench_exec_parallel this is a plain main() (machine-readable output
// and explicit sweeps matter more than statistical repetition):
//
//   ./bench/bench_storage [out.json] [existing.tpdb]
//
// With an existing .tpdb (e.g. from examples/ingest_snapshot) the workload
// generation is skipped and the benches run over that snapshot's contents.
// TPDB_BENCH_SCALE multiplies the generated workload size (default 20000
// tuples/side).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/planner.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "storage/compress/compression.h"
#include "storage/segment.h"
#include "storage/snapshot.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

double TimeBestOf(int reps, const std::function<void()>& run) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    run();
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

/// Appends `raw`'s tuples to a fresh relation named `name` in ascending
/// interval-start order — the natural layout of append-in-time-order
/// ingest, and the one that makes temporal zone maps selective.
StatusOr<TPRelation> TimeOrdered(const std::string& name,
                                 const TPRelation& raw) {
  std::vector<size_t> order(raw.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return raw.tuple(a).interval < raw.tuple(b).interval;
  });
  TPRelation sorted(name, raw.fact_schema(), raw.manager());
  for (const size_t i : order) {
    const TPTuple& t = raw.tuple(i);
    TPDB_RETURN_IF_ERROR(sorted.AppendDerived(t.fact, t.interval, t.lineage));
  }
  return sorted;
}

bool RelationsEqual(const TPRelation& a, const TPRelation& b) {
  if (a.size() != b.size() ||
      !(a.fact_schema() == b.fact_schema()))
    return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.tuple(i).fact != b.tuple(i).fact ||
        a.tuple(i).interval != b.tuple(i).interval ||
        a.Probability(i) != b.Probability(i))
      return false;
  }
  return true;
}

struct ScanResult {
  std::string name;
  double seconds = 0.0;
  size_t rows = 0;
  StorageStats storage;
};

/// Times `query` on `db` (best of `reps`), then replays it once with an
/// ExecStats registry to harvest the storage counters.
ScanResult MeasureScan(const std::string& name, TPDatabase* db,
                       const std::string& query, int reps) {
  ScanResult result;
  result.name = name;
  result.seconds = TimeBestOf(reps, [&] {
    StatusOr<TPRelation> out = db->Query(query);
    TPDB_CHECK(out.ok()) << out.status().ToString();
    result.rows = out->size();
  });
  StatusOr<LogicalPlan> plan = db->Plan(query);
  TPDB_CHECK(plan.ok()) << plan.status().ToString();
  ExecStats stats;
  Planner planner(db);
  StatusOr<TPRelation> out = planner.Execute(*plan, &stats);
  TPDB_CHECK(out.ok()) << out.status().ToString();
  result.storage = stats.storage();
  std::printf("%-16s %9.3f ms  rows=%-8zu segments=%llu/%llu skipped\n",
              name.c_str(), result.seconds * 1000.0, result.rows,
              static_cast<unsigned long long>(result.storage.segments_scanned),
              static_cast<unsigned long long>(
                  result.storage.segments_skipped));
  return result;
}

/// Bytes-on-disk of `path`.
long FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  TPDB_CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  return bytes;
}

/// Per-codec accounting over every cold relation of `db`: how many packed
/// chunks each method wrote and the packed vs. plain-equivalent bytes.
struct CodecTally {
  size_t chunks = 0;
  size_t packed_bytes = 0;
  size_t unpacked_bytes = 0;
};

std::vector<std::pair<std::string, CodecTally>> TallyCodecs(TPDatabase* db) {
  std::vector<std::pair<std::string, CodecTally>> tallies;
  for (const storage::CompressionMethod method :
       {storage::CompressionMethod::kRaw, storage::CompressionMethod::kRle,
        storage::CompressionMethod::kFor})
    tallies.emplace_back(storage::GetCompressionRoutines(method)->name,
                         CodecTally{});
  for (const std::string& name : db->RelationNames()) {
    const auto& cold = (*db->Get(name))->cold_storage();
    if (cold == nullptr) continue;
    for (const storage::Segment& segment : cold->segments())
      for (const storage::ColumnChunk& chunk : segment.chunks) {
        if (!chunk.deferred()) continue;
        CodecTally& tally =
            tallies[static_cast<size_t>(chunk.block.method)].second;
        ++tally.chunks;
        tally.packed_bytes += chunk.packed_bytes;
        tally.unpacked_bytes += chunk.unpacked_bytes;
      }
  }
  return tallies;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_storage.json";
  const std::string preloaded = argc > 2 ? argv[2] : "";
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;
  const int64_t tuples = 20000 * scale;
  const TimePoint history = 20000;
  const int reps = 3;

  // -- Source database ---------------------------------------------------
  TPDatabase db;
  if (!preloaded.empty()) {
    const Status status = db.LoadSnapshot(preloaded);
    TPDB_CHECK(status.ok()) << status.ToString();
    // `db` is the in-memory baseline of the scan sweep: detach the cold
    // backing the load attached, or "scan_inmemory" would itself run the
    // cold segment-scan path.
    for (const std::string& name : db.RelationNames())
      (*db.Get(name))->set_cold_storage(nullptr);
    std::printf("loaded workload from %s\n", preloaded.c_str());
  } else {
    Random rng(20260729);
    UniformWorkloadOptions options;
    options.num_tuples = tuples;
    options.num_facts = std::max<int64_t>(tuples / 40, 8);
    options.history_length = history;
    options.avg_duration = 120.0;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> raw = MakeUniformWorkload(
          db.manager(), std::string(name) + "_raw", options, &rng);
      TPDB_CHECK(raw.ok()) << raw.status().ToString();
      StatusOr<TPRelation> sorted = TimeOrdered(name, *raw);
      TPDB_CHECK(sorted.ok()) << sorted.status().ToString();
      TPDB_CHECK(db.Register(std::move(*sorted)).ok());
    }
  }
  const std::string rel = db.RelationNames().front();

  // -- Save / load throughput, compressed and uncompressed ---------------
  const std::string snapshot_path = out_path + ".scratch.tpdb";
  const std::string plain_path = out_path + ".scratch.plain.tpdb";
  const double save_seconds = TimeBestOf(reps, [&] {
    const Status status = db.SaveSnapshot(snapshot_path);
    TPDB_CHECK(status.ok()) << status.ToString();
  });
  {
    storage::SnapshotOptions plain_options;
    plain_options.compress = false;
    const Status status = db.SaveSnapshot(plain_path, plain_options);
    TPDB_CHECK(status.ok()) << status.ToString();
  }
  const long file_bytes = FileBytes(snapshot_path);
  const long plain_bytes = FileBytes(plain_path);
  const double disk_ratio =
      static_cast<double>(plain_bytes) / static_cast<double>(file_bytes);
  const double mb = static_cast<double>(file_bytes) / (1024.0 * 1024.0);

  const double load_seconds = TimeBestOf(reps, [&] {
    TPDatabase fresh;
    const Status status = fresh.LoadSnapshot(snapshot_path);
    TPDB_CHECK(status.ok()) << status.ToString();
  });
  std::printf("snapshot: %.2f MB  save %.3f ms (%.0f MB/s)  load %.3f ms "
              "(%.0f MB/s)\n",
              mb, save_seconds * 1000.0, mb / save_seconds,
              load_seconds * 1000.0, mb / load_seconds);
  std::printf("compression: %ld -> %ld bytes on disk (%.2fx)\n", plain_bytes,
              file_bytes, disk_ratio);

  // -- Round-trip gate (both encodings) ----------------------------------
  TPDatabase reloaded;
  TPDB_CHECK(reloaded.LoadSnapshot(snapshot_path).ok());
  TPDatabase reloaded_plain;
  TPDB_CHECK(reloaded_plain.LoadSnapshot(plain_path).ok());
  bool roundtrip_ok = db.RelationNames() == reloaded.RelationNames() &&
                      db.RelationNames() == reloaded_plain.RelationNames();
  for (const std::string& name : db.RelationNames())
    roundtrip_ok =
        roundtrip_ok && RelationsEqual(**db.Get(name), **reloaded.Get(name)) &&
        RelationsEqual(**db.Get(name), **reloaded_plain.Get(name));
  std::printf("roundtrip: %s\n", roundtrip_ok ? "OK" : "MISMATCH");

  // -- Per-codec accounting of the compressed backing --------------------
  const std::vector<std::pair<std::string, CodecTally>> codecs =
      TallyCodecs(&reloaded);
  for (const auto& [name, tally] : codecs)
    std::printf("codec %-4s  chunks=%-6zu packed=%-10zu plain=%zu\n",
                name.c_str(), tally.chunks, tally.packed_bytes,
                tally.unpacked_bytes);

  // -- Scan sweep --------------------------------------------------------
  // Temporal bounds of the relation drive the query windows.
  const TPRelation& source = **db.Get(rel);
  TimePoint lo = 0, hi = 1;
  for (size_t i = 0; i < source.size(); ++i) {
    lo = std::min(lo, source.tuple(i).interval.start);
    hi = std::max(hi, source.tuple(i).interval.end);
  }
  const TimePoint cut = lo + (hi - lo) * 95 / 100;  // last 5% of history
  const std::string full =
      "SELECT * FROM " + rel + " WHERE _ts >= " + std::to_string(lo);
  const std::string pruned = "SELECT * FROM " + rel + " WHERE _te > " +
                             std::to_string(cut) + " AND _ts < " +
                             std::to_string(hi);
  std::vector<ScanResult> scans;
  scans.push_back(MeasureScan("scan_inmemory", &db, full, reps));
  scans.push_back(MeasureScan("scan_cold", &reloaded, full, reps));
  scans.push_back(MeasureScan("scan_cold_plain", &reloaded_plain, full, reps));
  scans.push_back(MeasureScan("scan_pruned", &reloaded, pruned, reps));

  // -- Throughput gate ---------------------------------------------------
  // Decoding the packed chunks must not cost more than 10% of the
  // uncompressed cold scan; anything worse means the codec choice (or the
  // decode path) regressed.
  const double cold_seconds = scans[1].seconds;
  const double plain_seconds = scans[2].seconds;
  const bool throughput_ok = cold_seconds <= 1.10 * plain_seconds;
  std::printf("cold-scan gate: compressed %.3f ms vs plain %.3f ms (%s)\n",
              cold_seconds * 1000.0, plain_seconds * 1000.0,
              throughput_ok ? "OK" : "REGRESSED");

  // -- JSON --------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out, "{\n  \"workload\": {\"relations\": %zu, "
               "\"tuples_per_relation\": %zu},\n",
               db.RelationNames().size(), source.size());
  std::fprintf(out,
               "  \"snapshot\": {\"file_bytes\": %ld, \"save_seconds\": "
               "%.6f, \"save_mb_per_s\": %.1f, \"load_seconds\": %.6f, "
               "\"load_mb_per_s\": %.1f},\n",
               file_bytes, save_seconds, mb / save_seconds, load_seconds,
               mb / load_seconds);
  std::fprintf(out,
               "  \"compression\": {\"file_bytes_plain\": %ld, "
               "\"file_bytes_compressed\": %ld, \"ratio\": %.4f, "
               "\"codecs\": [\n",
               plain_bytes, file_bytes, disk_ratio);
  for (size_t i = 0; i < codecs.size(); ++i) {
    const auto& [codec_name, tally] = codecs[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"chunks\": %zu, \"packed_bytes\": "
                 "%zu, \"unpacked_bytes\": %zu}%s\n",
                 codec_name.c_str(), tally.chunks, tally.packed_bytes,
                 tally.unpacked_bytes, i + 1 < codecs.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n  \"scans\": [\n");
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanResult& s = scans[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"seconds\": %.6f, \"rows\": %zu, "
        "\"segments_scanned\": %llu, \"segments_skipped\": %llu, "
        "\"chunks_skipped_compressed\": %llu, \"bytes_mapped\": %llu, "
        "\"compressed_bytes\": %llu, \"decode_seconds\": %.6f}%s\n",
        s.name.c_str(), s.seconds, s.rows,
        static_cast<unsigned long long>(s.storage.segments_scanned),
        static_cast<unsigned long long>(s.storage.segments_skipped),
        static_cast<unsigned long long>(
            s.storage.chunks_skipped_compressed),
        static_cast<unsigned long long>(s.storage.bytes_mapped),
        static_cast<unsigned long long>(s.storage.compressed_bytes),
        s.storage.decode_seconds, i + 1 < scans.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"roundtrip_ok\": %s,\n  \"throughput_ok\": %s\n}\n",
               roundtrip_ok ? "true" : "false",
               throughput_ok ? "true" : "false");
  std::fclose(out);
  std::remove(snapshot_path.c_str());
  std::remove(plain_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return roundtrip_ok && throughput_ok ? 0 : 1;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
