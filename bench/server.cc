// Network server throughput & latency, emitting BENCH_server.json:
//   * QPS and p50/p99 query latency over loopback at 1 / 8 / 64 / 256
//     concurrent client connections (each connection is a thread running
//     a stream of small selective queries);
//   * a parity gate: the wire result of every benched query must be
//     element-wise identical — rows, intervals, exact probabilities — to
//     the same query run in-process. The process exits non-zero on any
//     divergence or query failure, which is what CI keys off.
//
// Like bench_storage this is a plain main():
//
//   ./bench/bench_server [out.json]
//
// TPDB_BENCH_SCALE multiplies the per-sweep query count (default 8 per
// connection, at least 256 per sweep).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "lineage/probability.h"
#include "server/client.h"
#include "server/server.h"

namespace tpdb::server {
namespace {

using Clock = std::chrono::steady_clock;

struct SweepResult {
  size_t connections = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = true;
};

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return (*latencies)[idx];
}

/// Element-wise parity of one query: in-process session vs. loopback
/// client. Exact equality on facts, intervals and probabilities (the
/// server ships the in-process doubles bit-for-bit).
bool CheckParity(TPDatabase* db, Client* client, const std::string& query) {
  Session session(db);
  StatusOr<TPRelation> local = session.Query(query);
  if (!local.ok()) {
    std::fprintf(stderr, "parity: local '%s' failed: %s\n", query.c_str(),
                 local.status().ToString().c_str());
    return false;
  }
  StatusOr<ClientResult> wire = client->Query(query);
  if (!wire.ok()) {
    std::fprintf(stderr, "parity: wire '%s' failed: %s\n", query.c_str(),
                 wire.status().ToString().c_str());
    return false;
  }
  if (wire->rows.size() != local->size()) {
    std::fprintf(stderr, "parity: '%s' row count %zu vs %zu\n", query.c_str(),
                 wire->rows.size(), local->size());
    return false;
  }
  // The server streams rows in tuple order, so compare positionally.
  ProbabilityEngine engine(local->manager());
  const size_t num_cols = wire->schema.num_columns();
  for (size_t i = 0; i < local->size(); ++i) {
    const TPTuple& t = local->tuple(i);
    const Row& row = wire->rows[i];
    if (row.size() != num_cols || num_cols != t.fact.size() + 3) return false;
    for (size_t c = 0; c < t.fact.size(); ++c)
      if (!(row[c] == t.fact[c])) return false;
    if (row[num_cols - 3].AsInt64() != t.interval.start ||
        row[num_cols - 2].AsInt64() != t.interval.end ||
        row[num_cols - 1].AsDouble() != engine.Probability(t.lineage))
      return false;
  }
  return true;
}

SweepResult RunSweep(uint16_t port, size_t connections,
                     size_t queries_per_conn,
                     const std::vector<std::string>& queries) {
  SweepResult result;
  result.connections = connections;
  result.queries = connections * queries_per_conn;
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const Clock::time_point start = Clock::now();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Client>> client =
          Client::Connect({.host = "127.0.0.1", .port = port});
      if (!client.ok()) {
        ++failures;
        return;
      }
      latencies[c].reserve(queries_per_conn);
      for (size_t q = 0; q < queries_per_conn; ++q) {
        const std::string& query = queries[(c + q) % queries.size()];
        const Clock::time_point t0 = Clock::now();
        StatusOr<ClientResult> r = (*client)->Query(query);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double>(Clock::now() - t0).count() *
            1000.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (const std::vector<double>& per_conn : latencies)
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  result.ok = failures.load() == 0 && all.size() == result.queries;
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(all.size()) / result.seconds
                   : 0.0;
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);
  std::printf(
      "conns=%-4zu queries=%-6zu %7.3f s  %8.1f qps  p50=%6.3f ms  "
      "p99=%6.3f ms%s\n",
      result.connections, all.size(), result.seconds, result.qps,
      result.p50_ms, result.p99_ms, result.ok ? "" : "  FAILURES");
  return result;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;

  TPDatabase db;
  {
    Random rng(20260808);
    UniformWorkloadOptions options;
    options.num_tuples = 5000;
    options.num_facts = 200;
    options.history_length = 10000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db.manager(), name, options, &rng);
      TPDB_CHECK(rel.ok()) << rel.status().ToString();
      TPDB_CHECK(db.Register(std::move(*rel)).ok());
    }
  }

  ServerOptions options;
  options.max_connections = 512;  // the 256-connection sweep must fit
  Server server(&db, options);
  const Status started = server.Start();
  TPDB_CHECK(started.ok()) << started.ToString();
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // Small selective queries: the sweep measures protocol + dispatch
  // overhead and fairness under concurrency, not join runtime.
  const std::vector<std::string> queries = {
      "SELECT * FROM r WHERE key < 10",
      "SELECT * FROM s WHERE key < 6",
      "SELECT * FROM r WHERE key < 25 ORDER BY key",
  };

  // -- Parity gate -------------------------------------------------------
  bool parity_ok = true;
  {
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect({.host = "127.0.0.1", .port = server.port()});
    TPDB_CHECK(client.ok()) << client.status().ToString();
    for (const std::string& query : queries)
      parity_ok = CheckParity(&db, client->get(), query) && parity_ok;
    // One heavyweight parity check through the join path as well.
    parity_ok = CheckParity(&db, client->get(),
                            "SELECT * FROM r INNER JOIN s ON key "
                            "WHERE key < 40") &&
                parity_ok;
    std::printf("parity: %s\n", parity_ok ? "ok" : "MISMATCH");
  }

  // -- Concurrency sweep -------------------------------------------------
  std::vector<SweepResult> sweeps;
  for (const size_t conns : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    const size_t per_conn = std::max<size_t>(
        8 * static_cast<size_t>(scale), (256 * scale) / conns);
    sweeps.push_back(RunSweep(server.port(), conns, per_conn, queries));
  }

  const ServerStats stats = server.Stats();
  server.Shutdown();

  FILE* out = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out, "{\n  \"parity_ok\": %s,\n",
               parity_ok ? "true" : "false");
  std::fprintf(out,
               "  \"server\": {\"queries_ok\": %llu, \"batches_sent\": %llu, "
               "\"bytes_sent\": %llu, \"protocol_errors\": %llu},\n",
               static_cast<unsigned long long>(stats.queries_ok),
               static_cast<unsigned long long>(stats.batches_sent),
               static_cast<unsigned long long>(stats.bytes_sent),
               static_cast<unsigned long long>(stats.protocol_errors));
  std::fprintf(out, "  \"sweeps\": [\n");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& s = sweeps[i];
    std::fprintf(out,
                 "    {\"connections\": %zu, \"queries\": %zu, "
                 "\"seconds\": %.6f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"ok\": %s}%s\n",
                 s.connections, s.queries, s.seconds, s.qps, s.p50_ms,
                 s.p99_ms, s.ok ? "true" : "false",
                 i + 1 < sweeps.size() ? "," : "");
  }
  bool sweeps_ok = true;
  for (const SweepResult& s : sweeps) sweeps_ok = sweeps_ok && s.ok;
  std::fprintf(out, "  ],\n  \"sweeps_ok\": %s\n}\n",
               sweeps_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!parity_ok || !sweeps_ok) {
    std::fprintf(stderr, "FAILED: %s\n",
                 !parity_ok ? "wire/in-process divergence"
                            : "query failures during sweep");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tpdb::server

int main(int argc, char** argv) { return tpdb::server::Main(argc, argv); }
