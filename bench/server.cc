// Network server throughput & latency, emitting BENCH_server.json:
//   * QPS and p50/p99 query latency over loopback at 1 / 8 / 64 / 256
//     concurrent client connections (each connection is a thread running
//     a stream of small selective queries). Latency quantiles come from
//     the shared obs:: log-bucketed histogram (the same estimator the
//     metrics registry exports), one HistogramData per connection, merged
//     per sweep;
//   * a parity gate: the wire result of every benched query must be
//     element-wise identical — rows, intervals, exact probabilities — to
//     the same query run in-process. The process exits non-zero on any
//     divergence or query failure, which is what CI keys off;
//   * a metrics artifact: the server's full Prometheus exposition after
//     the sweeps, fetched over the wire (kMetrics);
//   * an overhead gate: point TPDB_BENCH_BASELINE at the BENCH_server.json
//     of a -DTPDB_NO_METRICS=ON build and the instrumented build must stay
//     within TPDB_METRICS_OVERHEAD_PCT (default 3) percent of its best
//     sweep QPS, else the process exits non-zero.
//
// Like bench_storage this is a plain main():
//
//   ./bench/bench_server [out.json] [metrics.prom]
//
// TPDB_BENCH_SCALE multiplies the per-sweep query count (default 8 per
// connection, at least 256 per sweep).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "lineage/probability.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"

namespace tpdb::server {
namespace {

using Clock = std::chrono::steady_clock;

struct SweepResult {
  size_t connections = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = true;
};

/// Best sweep QPS recorded in an earlier BENCH_server.json — the
/// uninstrumented baseline of the overhead gate. Zero when absent or
/// unparsable (no "qps": fields).
double MaxQpsInJsonFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0.0;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  double best = 0.0;
  const char* p = text.c_str();
  while ((p = std::strstr(p, "\"qps\":")) != nullptr) {
    best = std::max(best, std::strtod(p + 6, nullptr));
    p += 6;
  }
  return best;
}

/// Element-wise parity of one query: in-process session vs. loopback
/// client. Exact equality on facts, intervals and probabilities (the
/// server ships the in-process doubles bit-for-bit).
bool CheckParity(TPDatabase* db, Client* client, const std::string& query) {
  Session session(db);
  StatusOr<TPRelation> local = session.Query(query);
  if (!local.ok()) {
    std::fprintf(stderr, "parity: local '%s' failed: %s\n", query.c_str(),
                 local.status().ToString().c_str());
    return false;
  }
  StatusOr<ClientResult> wire = client->Query(query);
  if (!wire.ok()) {
    std::fprintf(stderr, "parity: wire '%s' failed: %s\n", query.c_str(),
                 wire.status().ToString().c_str());
    return false;
  }
  if (wire->rows.size() != local->size()) {
    std::fprintf(stderr, "parity: '%s' row count %zu vs %zu\n", query.c_str(),
                 wire->rows.size(), local->size());
    return false;
  }
  // The server streams rows in tuple order, so compare positionally.
  ProbabilityEngine engine(local->manager());
  const size_t num_cols = wire->schema.num_columns();
  for (size_t i = 0; i < local->size(); ++i) {
    const TPTuple& t = local->tuple(i);
    const Row& row = wire->rows[i];
    if (row.size() != num_cols || num_cols != t.fact.size() + 3) return false;
    for (size_t c = 0; c < t.fact.size(); ++c)
      if (!(row[c] == t.fact[c])) return false;
    if (row[num_cols - 3].AsInt64() != t.interval.start ||
        row[num_cols - 2].AsInt64() != t.interval.end ||
        row[num_cols - 1].AsDouble() != engine.Probability(t.lineage))
      return false;
  }
  return true;
}

SweepResult RunSweep(uint16_t port, size_t connections,
                     size_t queries_per_conn,
                     const std::vector<std::string>& queries) {
  SweepResult result;
  result.connections = connections;
  result.queries = connections * queries_per_conn;
  // One plain (non-atomic) histogram per connection thread, merged after
  // the join — the same log-bucketed estimator the metrics registry
  // exports, so the benched quantiles and the server's own
  // tpdb_server_execute_us agree on method.
  std::vector<obs::HistogramData> latencies(connections);
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const Clock::time_point start = Clock::now();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Client>> client =
          Client::Connect({.host = "127.0.0.1", .port = port});
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t q = 0; q < queries_per_conn; ++q) {
        const std::string& query = queries[(c + q) % queries.size()];
        const uint64_t t0 = obs::NowUs();
        StatusOr<ClientResult> r = (*client)->Query(query);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        latencies[c].Record(obs::NowUs() - t0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  obs::HistogramData merged;
  for (const obs::HistogramData& per_conn : latencies)
    merged.Merge(per_conn);
  result.ok = failures.load() == 0 && merged.count == result.queries;
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(merged.count) / result.seconds
                   : 0.0;
  result.p50_ms = merged.Quantile(0.50) / 1000.0;
  result.p99_ms = merged.Quantile(0.99) / 1000.0;
  std::printf(
      "conns=%-4zu queries=%-6zu %7.3f s  %8.1f qps  p50=%6.3f ms  "
      "p99=%6.3f ms%s\n",
      result.connections, static_cast<size_t>(merged.count), result.seconds,
      result.qps, result.p50_ms, result.p99_ms,
      result.ok ? "" : "  FAILURES");
  return result;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_server.json";
  const std::string metrics_path =
      argc > 2 ? argv[2] : "BENCH_server_metrics.prom";
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;

  TPDatabase db;
  {
    Random rng(20260808);
    UniformWorkloadOptions options;
    options.num_tuples = 5000;
    options.num_facts = 200;
    options.history_length = 10000;
    options.gap_probability = 0.3;
    for (const char* name : {"r", "s"}) {
      StatusOr<TPRelation> rel =
          MakeUniformWorkload(db.manager(), name, options, &rng);
      TPDB_CHECK(rel.ok()) << rel.status().ToString();
      TPDB_CHECK(db.Register(std::move(*rel)).ok());
    }
  }

  ServerOptions options;
  options.max_connections = 512;  // the 256-connection sweep must fit
  Server server(&db, options);
  const Status started = server.Start();
  TPDB_CHECK(started.ok()) << started.ToString();
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // Small selective queries: the sweep measures protocol + dispatch
  // overhead and fairness under concurrency, not join runtime.
  const std::vector<std::string> queries = {
      "SELECT * FROM r WHERE key < 10",
      "SELECT * FROM s WHERE key < 6",
      "SELECT * FROM r WHERE key < 25 ORDER BY key",
  };

  // -- Parity gate -------------------------------------------------------
  bool parity_ok = true;
  {
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect({.host = "127.0.0.1", .port = server.port()});
    TPDB_CHECK(client.ok()) << client.status().ToString();
    for (const std::string& query : queries)
      parity_ok = CheckParity(&db, client->get(), query) && parity_ok;
    // One heavyweight parity check through the join path as well.
    parity_ok = CheckParity(&db, client->get(),
                            "SELECT * FROM r INNER JOIN s ON key "
                            "WHERE key < 40") &&
                parity_ok;
    std::printf("parity: %s\n", parity_ok ? "ok" : "MISMATCH");
  }

  // -- Concurrency sweep -------------------------------------------------
  std::vector<SweepResult> sweeps;
  for (const size_t conns : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    const size_t per_conn = std::max<size_t>(
        8 * static_cast<size_t>(scale), (256 * scale) / conns);
    sweeps.push_back(RunSweep(server.port(), conns, per_conn, queries));
  }

  // -- Metrics artifact --------------------------------------------------
  // The server's full Prometheus exposition after the sweeps, fetched the
  // way an operator would: over the wire.
  {
    StatusOr<std::unique_ptr<Client>> client =
        Client::Connect({.host = "127.0.0.1", .port = server.port()});
    TPDB_CHECK(client.ok()) << client.status().ToString();
    StatusOr<std::string> exposition = (*client)->Metrics();
    TPDB_CHECK(exposition.ok()) << exposition.status().ToString();
    FILE* prom = std::fopen(metrics_path.c_str(), "w");
    TPDB_CHECK(prom != nullptr) << "cannot write " << metrics_path;
    std::fwrite(exposition->data(), 1, exposition->size(), prom);
    std::fclose(prom);
    std::printf("wrote %s (%zu bytes)\n", metrics_path.c_str(),
                exposition->size());
  }

  const ServerStats stats = server.Stats();
  server.Shutdown();

  FILE* out = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out, "{\n  \"parity_ok\": %s,\n  \"metrics_compiled_in\": %s,\n",
               parity_ok ? "true" : "false",
               obs::kMetricsCompiledIn ? "true" : "false");
  std::fprintf(out,
               "  \"server\": {\"queries_ok\": %llu, \"batches_sent\": %llu, "
               "\"bytes_sent\": %llu, \"protocol_errors\": %llu},\n",
               static_cast<unsigned long long>(stats.queries_ok),
               static_cast<unsigned long long>(stats.batches_sent),
               static_cast<unsigned long long>(stats.bytes_sent),
               static_cast<unsigned long long>(stats.protocol_errors));
  std::fprintf(out, "  \"sweeps\": [\n");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& s = sweeps[i];
    std::fprintf(out,
                 "    {\"connections\": %zu, \"queries\": %zu, "
                 "\"seconds\": %.6f, \"qps\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"ok\": %s}%s\n",
                 s.connections, s.queries, s.seconds, s.qps, s.p50_ms,
                 s.p99_ms, s.ok ? "true" : "false",
                 i + 1 < sweeps.size() ? "," : "");
  }
  bool sweeps_ok = true;
  for (const SweepResult& s : sweeps) sweeps_ok = sweeps_ok && s.ok;
  std::fprintf(out, "  ],\n  \"sweeps_ok\": %s\n}\n",
               sweeps_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (!parity_ok || !sweeps_ok) {
    std::fprintf(stderr, "FAILED: %s\n",
                 !parity_ok ? "wire/in-process divergence"
                            : "query failures during sweep");
    return 1;
  }

  // -- Overhead gate -----------------------------------------------------
  // Compare best sweep QPS against a TPDB_NO_METRICS baseline run.
  if (const char* baseline_path = std::getenv("TPDB_BENCH_BASELINE")) {
    const double baseline_qps = MaxQpsInJsonFile(baseline_path);
    double best_qps = 0.0;
    for (const SweepResult& s : sweeps) best_qps = std::max(best_qps, s.qps);
    const char* pct_env = std::getenv("TPDB_METRICS_OVERHEAD_PCT");
    const double pct = pct_env != nullptr ? std::strtod(pct_env, nullptr) : 3.0;
    if (baseline_qps <= 0.0) {
      std::fprintf(stderr, "overhead gate: no baseline QPS in %s — skipped\n",
                   baseline_path);
    } else {
      const double floor_qps = baseline_qps * (1.0 - pct / 100.0);
      std::printf(
          "overhead gate: best %.1f qps vs baseline %.1f qps "
          "(floor %.1f, %.1f%% budget)\n",
          best_qps, baseline_qps, floor_qps, pct);
      if (best_qps < floor_qps) {
        std::fprintf(stderr,
                     "FAILED: metrics overhead exceeds %.1f%% "
                     "(%.1f qps < %.1f qps floor)\n",
                     pct, best_qps, floor_qps);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace tpdb::server

int main(int argc, char** argv) { return tpdb::server::Main(argc, argv); }
