// Ablation benches for the design choices DESIGN.md calls out:
//   1. physical overlap join: partitioned (NJ's plan) vs nested loop (the
//      plan TA is stuck with) — isolates how much of Fig. 7's gap comes
//      from the join algorithm alone;
//   2. pipeline staging: the incremental cost of LAWAU and LAWAN on top of
//      the overlap join (the paper's "pipelined, no replication" claim —
//      each stage should add far less than a second join would);
//   3. θ selectivity: the same operator across join-key domain sizes,
//      showing the webkit→meteo transition continuously.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "engine/materialize.h"
#include "tp/plans.h"

namespace tpdb::bench {
namespace {

void OverlapJoinAlgorithm(benchmark::State& state, OverlapAlgorithm algo) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(DataKind::kWebkit, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(*ds.r, *ds.s, ds.theta, WindowStage::kOverlap, algo);
    TPDB_CHECK(plan.ok()) << plan.status().ToString();
    windows = Drain(plan->root.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["windows"] = static_cast<double>(windows);
}

void JoinPartitioned(benchmark::State& s) {
  OverlapJoinAlgorithm(s, OverlapAlgorithm::kPartitioned);
}
void JoinNestedLoop(benchmark::State& s) {
  OverlapJoinAlgorithm(s, OverlapAlgorithm::kNestedLoop);
}

BENCHMARK(JoinPartitioned)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(JoinNestedLoop)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void PipelineStage(benchmark::State& state, WindowStage stage) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(DataKind::kWebkit, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(*ds.r, *ds.s, ds.theta, stage);
    TPDB_CHECK(plan.ok()) << plan.status().ToString();
    windows = Drain(plan->root.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["windows"] = static_cast<double>(windows);
}

void StageOverlapOnly(benchmark::State& s) {
  PipelineStage(s, WindowStage::kOverlap);
}
void StagePlusLawau(benchmark::State& s) {
  PipelineStage(s, WindowStage::kWuo);
}
void StagePlusLawan(benchmark::State& s) {
  PipelineStage(s, WindowStage::kWuon);
}

BENCHMARK(StageOverlapOnly)->Arg(25000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(StagePlusLawau)->Arg(25000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(StagePlusLawan)->Arg(25000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// θ-selectivity sweep: fixed 8000-tuple relations, varying distinct keys.
void ThetaSelectivity(benchmark::State& state) {
  const int64_t keys = state.range(0);
  static std::map<int64_t, std::unique_ptr<Dataset>> cache;
  auto it = cache.find(keys);
  if (it == cache.end()) {
    auto ds = std::make_unique<Dataset>();
    ds->manager = std::make_unique<LineageManager>();
    Random rng(4242);
    UniformWorkloadOptions opts;
    opts.num_tuples = 8000 * Scale();
    opts.num_facts = keys;
    opts.history_length = 400000;
    StatusOr<TPRelation> r =
        MakeUniformWorkload(ds->manager.get(), "r", opts, &rng);
    StatusOr<TPRelation> s =
        MakeUniformWorkload(ds->manager.get(), "s", opts, &rng);
    TPDB_CHECK(r.ok());
    TPDB_CHECK(s.ok());
    ds->r = std::make_unique<TPRelation>(std::move(*r));
    ds->s = std::make_unique<TPRelation>(std::move(*s));
    ds->theta = JoinCondition::Equals("key");
    it = cache.emplace(keys, std::move(ds)).first;
  }
  const Dataset& ds = *it->second;
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(*ds.r, *ds.s, ds.theta, WindowStage::kWuon);
    TPDB_CHECK(plan.ok()) << plan.status().ToString();
    windows = Drain(plan->root.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["distinct_keys"] = static_cast<double>(keys);
  state.counters["windows"] = static_cast<double>(windows);
}

BENCHMARK(ThetaSelectivity)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
