// Physical-plan layer benchmarks, emitting BENCH_plan.json:
//   * plan-construction latency: parse → logical plan, logical → bound
//     physical tree (BuildPhysicalPlan), and the optimizer pass pipeline
//     (fold → pushdown → prune → mode select), each timed separately;
//   * mode-selection accuracy: for a query sweep over warm and cold
//     inputs, the row and batch paths are both measured and the
//     cost-model's UNHINTED choice (PlannerOptions::vectorize unset) is
//     scored against the measured winner — within a 15% tie band, either
//     choice counts as correct. The process exits non-zero when accuracy
//     drops below 0.5 (the cost model must beat a coin flip).
//
// Like bench_storage / bench_vector_exec this is a plain main():
//
//   ./bench/bench_physical_plan [out.json]
//
// TPDB_BENCH_SCALE multiplies the workload size (default 20000 tuples).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/passes/passes.h"
#include "api/physical_plan.h"
#include "api/planner.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

double TimeBestOf(int reps, const std::function<void()>& run) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    run();
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

struct PlanLatency {
  std::string query;
  double parse_us = 0.0;
  double build_us = 0.0;
  double passes_us = 0.0;
};

struct ModeCase {
  std::string input;  // "warm" | "cold"
  std::string query;
  double row_s = 0.0;
  double batch_s = 0.0;
  std::string chosen;  // mode of the unhinted plan
  std::string best;    // measured winner ("tie" within 15%)
  bool correct = false;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_plan.json";
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;
  const int64_t tuples = 20000 * scale;
  const int reps = 5;

  // -- Workload ----------------------------------------------------------
  TPDatabase warm;
  {
    Random rng(20260729);
    UniformWorkloadOptions options;
    options.num_tuples = tuples;
    options.num_facts = std::max<int64_t>(tuples / 40, 8);
    options.history_length = 20000;
    StatusOr<TPRelation> r =
        MakeUniformWorkload(warm.manager(), "r", options, &rng);
    TPDB_CHECK(r.ok()) << r.status().ToString();
    TPDB_CHECK(warm.Register(std::move(*r)).ok());
  }
  const std::string snapshot_path = out_path + ".scratch.tpdb";
  TPDB_CHECK(warm.SaveSnapshot(snapshot_path).ok());
  TPDatabase cold;
  TPDB_CHECK(cold.LoadSnapshot(snapshot_path).ok());
  TPDB_CHECK((*cold.Get("r"))->cold_storage() != nullptr);

  const int64_t key_cut = std::max<int64_t>(tuples / 40, 8) / 3;
  const std::vector<std::string> queries = {
      "SELECT * FROM r WHERE key >= " + std::to_string(key_cut),
      "SELECT * FROM r WHERE key >= " + std::to_string(key_cut) +
          " AND _ts < 10000",
      "SELECT key FROM r WHERE key >= 2 ORDER BY key LIMIT 100",
      "SELECT key, COUNT(*) AS n, MAX(key) FROM r WHERE key >= " +
          std::to_string(key_cut) + " GROUP BY key",
      "SELECT * FROM r WITH PROB >= 0.5",
  };

  // -- Plan-construction + pass-pipeline latency -------------------------
  std::vector<PlanLatency> latencies;
  for (const std::string& query : queries) {
    PlanLatency lat;
    lat.query = query;
    lat.parse_us =
        1e6 * TimeBestOf(reps, [&] { TPDB_CHECK(cold.Plan(query).ok()); });
    StatusOr<LogicalPlan> logical = cold.Plan(query);
    TPDB_CHECK(logical.ok());
    lat.build_us = 1e6 * TimeBestOf(reps, [&] {
                     TPDB_CHECK(BuildPhysicalPlan(*logical, &cold).ok());
                   });
    PlannerOptions options;
    const PassContext pass_ctx{&options, /*parallelism=*/4};
    lat.passes_us = 1e6 * TimeBestOf(reps, [&] {
                      StatusOr<PhysicalPlan> plan =
                          BuildPhysicalPlan(*logical, &cold);
                      TPDB_CHECK(plan.ok());
                      TPDB_CHECK(RunPassPipeline(&*plan, pass_ctx).ok());
                    }) -
                    lat.build_us;
    latencies.push_back(std::move(lat));
  }

  // -- Mode-selection accuracy sweep -------------------------------------
  std::vector<ModeCase> cases;
  int correct = 0;
  const auto sweep = [&](const std::string& input, TPDatabase* db) {
    for (const std::string& query : queries) {
      ModeCase mode_case;
      mode_case.input = input;
      mode_case.query = query;

      SessionOptions row_options;
      row_options.vectorize = false;
      row_options.parallelism = 1;
      mode_case.row_s = TimeBestOf(reps, [&] {
        TPDB_CHECK(Session(db, row_options).Query(query).ok());
      });
      SessionOptions batch_options;
      batch_options.vectorize = true;
      batch_options.parallelism = 1;
      mode_case.batch_s = TimeBestOf(reps, [&] {
        TPDB_CHECK(Session(db, batch_options).Query(query).ok());
      });

      PlannerOptions unhinted;  // vectorize unset = cost-based
      unhinted.parallelism = 1;
      Planner planner(db, unhinted);
      StatusOr<LogicalPlan> logical = db->Plan(query);
      TPDB_CHECK(logical.ok());
      StatusOr<PhysicalPlan> plan = planner.Lower(*logical);
      TPDB_CHECK(plan.ok()) << plan.status().ToString();
      mode_case.chosen =
          plan->ToString().find("{batch") != std::string::npos ? "batch"
                                                               : "row";
      const double ratio = mode_case.row_s / mode_case.batch_s;
      if (ratio > 1.15)
        mode_case.best = "batch";
      else if (ratio < 1.0 / 1.15)
        mode_case.best = "row";
      else
        mode_case.best = "tie";
      mode_case.correct =
          mode_case.best == "tie" || mode_case.chosen == mode_case.best;
      correct += mode_case.correct ? 1 : 0;
      cases.push_back(std::move(mode_case));
    }
  };
  sweep("warm", &warm);
  sweep("cold", &cold);
  const double accuracy =
      cases.empty() ? 1.0 : static_cast<double>(correct) / cases.size();

  // -- Emit --------------------------------------------------------------
  FILE* out = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out, "{\n  \"tuples\": %lld,\n",
               static_cast<long long>(tuples));
  std::fprintf(out, "  \"plan_latency_us\": [\n");
  for (size_t i = 0; i < latencies.size(); ++i) {
    const PlanLatency& l = latencies[i];
    std::fprintf(out,
                 "    {\"query\": \"%s\", \"parse\": %.2f, \"build\": %.2f, "
                 "\"passes\": %.2f}%s\n",
                 l.query.c_str(), l.parse_us, l.build_us,
                 std::max(0.0, l.passes_us),
                 i + 1 < latencies.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"mode_selection\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const ModeCase& c = cases[i];
    std::fprintf(out,
                 "    {\"input\": \"%s\", \"query\": \"%s\", \"row_s\": "
                 "%.6f, \"batch_s\": %.6f, \"chosen\": \"%s\", \"best\": "
                 "\"%s\", \"correct\": %s}%s\n",
                 c.input.c_str(), c.query.c_str(), c.row_s, c.batch_s,
                 c.chosen.c_str(), c.best.c_str(),
                 c.correct ? "true" : "false",
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"mode_selection_accuracy\": %.3f\n}\n",
               accuracy);
  std::fclose(out);
  std::remove(snapshot_path.c_str());
  std::printf("wrote %s (accuracy %.3f over %zu cases)\n", out_path.c_str(),
              accuracy, cases.size());
  return accuracy >= 0.5 ? 0 : 1;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
