// Microbench for the layered query API: what does the string front end
// (tokenize → parse → logical plan) cost, and what is the end-to-end
// overhead of db.Query(text) versus invoking the operator pipelines
// directly (the pre-API-redesign surface)?
//
// Expected shape: parse+plan is microseconds and size-independent, so the
// relative overhead of the layered API vanishes as the data grows.
#include <benchmark/benchmark.h>

#include "api/database.h"
#include "api/parser.h"
#include "bench/bench_util.h"
#include "tp/operators.h"

namespace tpdb::bench {
namespace {

constexpr const char* kFullQuery =
    "SELECT file FROM webkit_r LEFT JOIN webkit_s ON file "
    "WHERE _ts >= 0 ORDER BY _ts LIMIT 1000 WITH PROB >= 0.1";

/// A TPDatabase owning webkit_r / webkit_s of `n` tuples each (cached;
/// built outside any timed region).
TPDatabase& GetDatabase(int64_t n) {
  static std::map<int64_t, std::unique_ptr<TPDatabase>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return *it->second;

  auto db = std::make_unique<TPDatabase>();
  WebkitOptions opts;
  opts.num_tuples = n;
  StatusOr<WebkitDataset> gen = MakeWebkitDataset(db->manager(), opts);
  TPDB_CHECK(gen.ok()) << gen.status().ToString();
  TPDB_CHECK(db->Register(std::move(gen->r)).ok());
  TPDB_CHECK(db->Register(std::move(gen->s)).ok());
  TPDatabase& ref = *db;
  cache.emplace(n, std::move(db));
  return ref;
}

/// Front end only: tokenize + parse + build the logical plan.
void BM_ParseAndPlan(benchmark::State& state) {
  for (auto _ : state) {
    StatusOr<SelectStatement> stmt = ParseQuery(kFullQuery);
    TPDB_CHECK(stmt.ok());
    StatusOr<LogicalPlan> plan = BuildLogicalPlan(*stmt);
    TPDB_CHECK(plan.ok());
    benchmark::DoNotOptimize(plan->root);
  }
}
BENCHMARK(BM_ParseAndPlan);

/// End to end through the layered API.
void BM_QueryText(benchmark::State& state) {
  TPDatabase& db = GetDatabase(state.range(0));
  for (auto _ : state) {
    StatusOr<TPRelation> result =
        db.Query("SELECT * FROM webkit_r LEFT JOIN webkit_s ON file");
    TPDB_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_QueryText)->Arg(256 * Scale())->Arg(1024 * Scale());

/// The same join invoked directly on the operator layer (no parser, no
/// logical plan, no planner) — the baseline the API overhead is measured
/// against.
void BM_DirectOperators(benchmark::State& state) {
  TPDatabase& db = GetDatabase(state.range(0));
  StatusOr<TPRelation*> r = db.Get("webkit_r");
  StatusOr<TPRelation*> s = db.Get("webkit_s");
  TPDB_CHECK(r.ok() && s.ok());
  const JoinCondition theta = JoinCondition::Equals("file");
  for (auto _ : state) {
    StatusOr<TPRelation> result = TPLeftOuterJoin(**r, **s, theta);
    TPDB_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_DirectOperators)->Arg(256 * Scale())->Arg(1024 * Scale());

/// Full modifier stack (filter, sort, limit, prob threshold) through the
/// API — exercises the fused engine pipeline lowering.
void BM_QueryTextFullStack(benchmark::State& state) {
  TPDatabase& db = GetDatabase(state.range(0));
  for (auto _ : state) {
    StatusOr<TPRelation> result = db.Query(kFullQuery);
    TPDB_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->size());
  }
}
BENCHMARK(BM_QueryTextFullStack)->Arg(256 * Scale())->Arg(1024 * Scale());

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
