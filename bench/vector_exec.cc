// Row vs batch execution throughput, emitting BENCH_vector.json:
//   * a scan→filter→aggregate sweep (the hot analytic shape) over the
//     in-memory catalog and over a cold columnar snapshot, at 1/4/8
//     worker threads, under vectorize=off (row path) and vectorize=on
//     (ColumnBatch path);
//   * a scan→filter (no aggregate) sweep over the same inputs;
//   * a divergence gate: for every input × thread count, the batch path's
//     result must be element-wise identical (facts, intervals, exact
//     probabilities, order) to the row path's — the process exits
//     non-zero on any mismatch, which is what CI keys off.
//
// Like bench_storage this is a plain main():
//
//   ./bench/bench_vector_exec [out.json]
//
// TPDB_BENCH_SCALE multiplies the workload size (default 30000 tuples).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/planner.h"
#include "common/random.h"
#include "datasets/generator.h"
#include "exec/session.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

double TimeBestOf(int reps, const std::function<void()>& run) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    run();
    best = std::min(
        best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

/// Time-ordered copy of `raw` (ascending interval start) — the natural
/// ingest layout, and the one that keeps temporal zone maps selective.
StatusOr<TPRelation> TimeOrdered(const std::string& name,
                                 const TPRelation& raw) {
  std::vector<size_t> order(raw.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return raw.tuple(a).interval < raw.tuple(b).interval;
  });
  TPRelation sorted(name, raw.fact_schema(), raw.manager());
  for (const size_t i : order) {
    const TPTuple& t = raw.tuple(i);
    TPDB_RETURN_IF_ERROR(sorted.AppendDerived(t.fact, t.interval, t.lineage));
  }
  return sorted;
}

bool SameResults(const TPRelation& a, const TPRelation& b) {
  if (a.size() != b.size() || !(a.fact_schema() == b.fact_schema()))
    return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a.tuple(i).fact, b.tuple(i).fact) != 0 ||
        a.tuple(i).interval != b.tuple(i).interval ||
        a.Probability(i) != b.Probability(i))
      return false;
  }
  return true;
}

struct Measurement {
  std::string input;   // "inmemory" | "cold"
  std::string query;   // "filter_agg" | "filter"
  int threads = 1;
  std::string mode;    // "row" | "batch"
  double seconds = 0.0;
  size_t rows = 0;
  double tuples_per_s = 0.0;
};

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_vector.json";
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;
  const int64_t tuples = 30000 * scale;
  const int reps = 3;

  // -- Workload ----------------------------------------------------------
  TPDatabase warm;
  {
    Random rng(20260729);
    UniformWorkloadOptions options;
    options.num_tuples = tuples;
    options.num_facts = std::max<int64_t>(tuples / 40, 8);
    options.history_length = 20000;
    options.avg_duration = 120.0;
    StatusOr<TPRelation> raw =
        MakeUniformWorkload(warm.manager(), "r_raw", options, &rng);
    TPDB_CHECK(raw.ok()) << raw.status().ToString();
    StatusOr<TPRelation> sorted = TimeOrdered("r", *raw);
    TPDB_CHECK(sorted.ok()) << sorted.status().ToString();
    TPDB_CHECK(warm.Register(std::move(*sorted)).ok());
  }
  const int64_t key_cut = std::max<int64_t>(tuples / 40, 8) / 3;
  const std::string q_filter_agg =
      "SELECT key, COUNT(*) AS n, MAX(key) FROM r WHERE key >= " +
      std::to_string(key_cut) + " GROUP BY key";
  const std::string q_filter =
      "SELECT * FROM r WHERE key >= " + std::to_string(key_cut);

  // Cold copy: snapshot → fresh database with the mmapped segment backing.
  const std::string snapshot_path = out_path + ".scratch.tpdb";
  TPDB_CHECK(warm.SaveSnapshot(snapshot_path).ok());
  TPDatabase cold;
  TPDB_CHECK(cold.LoadSnapshot(snapshot_path).ok());
  TPDB_CHECK((*cold.Get("r"))->cold_storage() != nullptr);

  const size_t total_rows = (*warm.Get("r"))->size();
  std::vector<Measurement> results;
  bool parity_ok = true;

  const auto sweep = [&](const std::string& input, TPDatabase* db) {
    for (const auto& [qname, query] :
         std::vector<std::pair<std::string, std::string>>{
             {"filter_agg", q_filter_agg}, {"filter", q_filter}}) {
      for (const int threads : {1, 4, 8}) {
        std::unique_ptr<TPRelation> row_result, batch_result;
        for (const bool vectorize : {false, true}) {
          SessionOptions options;
          options.vectorize = vectorize;
          options.parallelism = threads;
          const Session session(db, options);
          Measurement m;
          m.input = input;
          m.query = qname;
          m.threads = threads;
          m.mode = vectorize ? "batch" : "row";
          m.seconds = TimeBestOf(reps, [&] {
            StatusOr<TPRelation> out = session.Query(query);
            TPDB_CHECK(out.ok()) << out.status().ToString();
            m.rows = out->size();
            auto& slot = vectorize ? batch_result : row_result;
            slot = std::make_unique<TPRelation>(std::move(*out));
          });
          m.tuples_per_s = static_cast<double>(total_rows) / m.seconds;
          results.push_back(m);
          std::printf(
              "%-9s %-11s %d-thread %-5s  %9.3f ms  rows=%-7zu "
              "(%.1f Mtuples/s)\n",
              input.c_str(), qname.c_str(), threads, m.mode.c_str(),
              m.seconds * 1000.0, m.rows, m.tuples_per_s / 1e6);
        }
        if (!SameResults(*row_result, *batch_result)) {
          parity_ok = false;
          std::fprintf(stderr,
                       "MISMATCH: %s/%s at %d threads — batch result "
                       "diverges from row result\n",
                       input.c_str(), qname.c_str(), threads);
        }
      }
    }
  };
  sweep("inmemory", &warm);
  sweep("cold", &cold);

  // Headline: single-thread row vs batch on the cold filter+aggregate.
  double row_1t = 0, batch_1t = 0;
  for (const Measurement& m : results)
    if (m.input == "cold" && m.query == "filter_agg" && m.threads == 1)
      (m.mode == "row" ? row_1t : batch_1t) = m.seconds;
  const double speedup = batch_1t > 0 ? row_1t / batch_1t : 0.0;
  std::printf("cold scan→filter→aggregate, 1 thread: batch is %.2fx the "
              "row path\nparity: %s\n",
              speedup, parity_ok ? "OK" : "MISMATCH");

  // -- JSON --------------------------------------------------------------
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(out != nullptr) << "cannot write " << out_path;
  std::fprintf(out, "{\n  \"workload\": {\"tuples\": %zu},\n", total_rows);
  std::fprintf(out, "  \"measurements\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(out,
                 "    {\"input\": \"%s\", \"query\": \"%s\", \"threads\": "
                 "%d, \"mode\": \"%s\", \"seconds\": %.6f, \"rows\": %zu, "
                 "\"tuples_per_s\": %.0f}%s\n",
                 m.input.c_str(), m.query.c_str(), m.threads, m.mode.c_str(),
                 m.seconds, m.rows, m.tuples_per_s,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"speedup_cold_filter_agg_1thread\": %.3f,\n"
               "  \"parity_ok\": %s\n}\n",
               speedup, parity_ok ? "true" : "false");
  std::fclose(out);
  std::remove(snapshot_path.c_str());
  std::printf("wrote %s\n", out_path.c_str());
  return parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
