// Table II — TP joins with negation using windows: runs every operator of
// the paper's Table II on both datasets and reports, per operator, the
// window sets it consumes (via the result composition) and its runtime.
// This is the "which window sets feed which operator" reproduction; the
// correctness of the mapping itself is enforced by the operator tests.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tp/operators.h"

namespace tpdb::bench {
namespace {

void RunOperator(benchmark::State& state, DataKind kind, TPJoinKind op) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  TPJoinOptions options;
  options.validate_inputs = false;
  size_t out_rows = 0;
  for (auto _ : state) {
    StatusOr<TPRelation> result = TPJoin(op, *ds.r, *ds.s, ds.theta, options);
    TPDB_CHECK(result.ok()) << result.status().ToString();
    out_rows = result->size();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["output_tuples"] = static_cast<double>(out_rows);
  state.SetLabel(std::string(DataKindName(kind)) + "/" + TPJoinKindName(op));
}

// Table II rows: anti ▷ (WU+WN), left ⟕ (WU+WN+WO), right ⟖ (WO+WU'+WN'),
// full ⟗ (all five); plus inner ⋈ (WO) for reference.
void Table2Anti(benchmark::State& s) {
  RunOperator(s, DataKind::kWebkit, TPJoinKind::kAnti);
}
void Table2Left(benchmark::State& s) {
  RunOperator(s, DataKind::kWebkit, TPJoinKind::kLeftOuter);
}
void Table2Right(benchmark::State& s) {
  RunOperator(s, DataKind::kWebkit, TPJoinKind::kRightOuter);
}
void Table2Full(benchmark::State& s) {
  RunOperator(s, DataKind::kWebkit, TPJoinKind::kFullOuter);
}
void Table2Inner(benchmark::State& s) {
  RunOperator(s, DataKind::kWebkit, TPJoinKind::kInner);
}
void Table2AntiMeteo(benchmark::State& s) {
  RunOperator(s, DataKind::kMeteo, TPJoinKind::kAnti);
}
void Table2LeftMeteo(benchmark::State& s) {
  RunOperator(s, DataKind::kMeteo, TPJoinKind::kLeftOuter);
}
void Table2RightMeteo(benchmark::State& s) {
  RunOperator(s, DataKind::kMeteo, TPJoinKind::kRightOuter);
}
void Table2FullMeteo(benchmark::State& s) {
  RunOperator(s, DataKind::kMeteo, TPJoinKind::kFullOuter);
}

BENCHMARK(Table2Anti)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2Left)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2Right)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2Full)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2Inner)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2AntiMeteo)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2LeftMeteo)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2RightMeteo)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK(Table2FullMeteo)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
