// Serial-vs-parallel throughput of the exec/ runtime: the NJ overlap join
// and the TP set operations at 1/2/4/8 workers, emitting BENCH_exec.json
// (the baseline for the exec trajectory).
//
// Unlike the figure benches this one is a plain main(): it sweeps thread
// counts over its own pools, which the google-benchmark harness cannot
// express cleanly, and machine-readable output matters more than
// statistical repetition here (each point takes the best of 3 runs).
//
//   ./bench/bench_exec_parallel [out.json]
//
// TPDB_BENCH_SCALE multiplies the workload size (default 8000 tuples/side).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datasets/generator.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  std::string op;
  int threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;  // serial seconds / this
  size_t result_rows = 0;
};

double TimeBestOf(int reps, const std::function<size_t()>& run,
                  size_t* rows) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const Clock::time_point start = Clock::now();
    *rows = run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

int Main(int argc, char** argv) {
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale =
      scale_env != nullptr && std::atoll(scale_env) > 0
          ? std::atoll(scale_env)
          : 1;
  const int64_t tuples = 8000 * scale;

  LineageManager manager;
  Random rng(1234);
  UniformWorkloadOptions options;
  options.num_tuples = tuples;
  // Probe-heavy shape: few keys and long durations make each driving tuple
  // overlap many probe tuples, which is where parallelism pays.
  options.num_facts = std::max<int64_t>(tuples / 40, 8);
  options.history_length = 20000;
  options.avg_duration = 120.0;
  options.gap_probability = 0.2;
  StatusOr<TPRelation> r = MakeUniformWorkload(&manager, "r", options, &rng);
  TPDB_CHECK(r.ok()) << r.status().ToString();
  StatusOr<TPRelation> s = MakeUniformWorkload(&manager, "s", options, &rng);
  TPDB_CHECK(s.ok()) << s.status().ToString();

  const JoinCondition theta = JoinCondition::Equals("key");
  TPJoinOptions join_options;
  join_options.validate_inputs = false;  // time the operator, not the check

  std::vector<Measurement> results;
  const int reps = 3;

  const auto sweep = [&](const std::string& op,
                         const std::function<size_t(ExecContext*)>& run) {
    double serial_seconds = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      Measurement m;
      m.op = op;
      m.threads = threads;
      if (threads == 1) {
        // parallelism 1 = the serial operator path, no pool at all.
        ExecContext ctx(nullptr, ExecOptions{.parallelism = 1});
        m.seconds = TimeBestOf(
            reps, [&] { return run(&ctx); }, &m.result_rows);
        serial_seconds = m.seconds;
      } else {
        ThreadPool pool(static_cast<size_t>(threads));
        ExecOptions exec_options;
        exec_options.parallelism = threads;
        exec_options.min_parallel_rows = 64;
        ExecContext ctx(&pool, exec_options);
        m.seconds = TimeBestOf(
            reps, [&] { return run(&ctx); }, &m.result_rows);
      }
      m.speedup = serial_seconds / m.seconds;
      std::printf("%-12s threads=%d  %8.3f ms  speedup=%.2fx  rows=%zu\n",
                  op.c_str(), threads, m.seconds * 1000.0, m.speedup,
                  m.result_rows);
      results.push_back(m);
    }
  };

  sweep("join_inner", [&](ExecContext* ctx) -> size_t {
    StatusOr<TPRelation> out = ParallelTPJoin(
        ctx, TPJoinKind::kInner, *r, *s, theta, join_options);
    TPDB_CHECK(out.ok()) << out.status().ToString();
    return out->size();
  });
  sweep("join_louter", [&](ExecContext* ctx) -> size_t {
    StatusOr<TPRelation> out = ParallelTPJoin(
        ctx, TPJoinKind::kLeftOuter, *r, *s, theta, join_options);
    TPDB_CHECK(out.ok()) << out.status().ToString();
    return out->size();
  });
  sweep("union", [&](ExecContext* ctx) -> size_t {
    StatusOr<TPRelation> out =
        ParallelTPSetOp(ctx, TPSetOpKind::kUnion, *r, *s);
    TPDB_CHECK(out.ok()) << out.status().ToString();
    return out->size();
  });
  sweep("intersect", [&](ExecContext* ctx) -> size_t {
    StatusOr<TPRelation> out =
        ParallelTPSetOp(ctx, TPSetOpKind::kIntersect, *r, *s);
    TPDB_CHECK(out.ok()) << out.status().ToString();
    return out->size();
  });

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_exec.json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n  \"workload\": {\"tuples_per_side\": %lld, "
               "\"keys\": %lld, \"theta\": \"key = key\"},\n",
               static_cast<long long>(tuples),
               static_cast<long long>(options.num_facts));
  std::fprintf(f, "  \"hardware_threads\": %zu,\n",
               ThreadPool::HardwareParallelism());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup\": %.3f, \"rows\": %zu}%s\n",
                 m.op.c_str(), m.threads, m.seconds, m.speedup,
                 m.result_rows, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
