// Fig. 6 — Negating windows: NJ-WN (LAWAN alone over a materialized WUO),
// NJ-WUON (the whole pipeline), and TA (normalization with replication),
// on the Webkit-like (6a) and Meteo-like (6b) datasets.
//
// Paper claims reproduced: NJ computes negating windows 4–10× faster than
// TA when the WUO cost is included (WUON), and 12–20× faster when it is
// not (WN), because TA replicates tuples at every boundary — θ ignored —
// and must re-match and coalesce the fragments.
#include <benchmark/benchmark.h>

#include "baseline/ta_join.h"
#include "bench/bench_util.h"
#include "engine/materialize.h"
#include "tp/plans.h"

namespace tpdb::bench {
namespace {

/// Materialized WUO input per (kind, n), shared by the NJ-WN runs so LAWAN
/// is timed in isolation.
struct WuoInput {
  std::unique_ptr<Table> rows;
  WindowLayout layout{0, 0};
};

const WuoInput& GetWuo(DataKind kind, int64_t n) {
  static std::map<std::pair<int, int64_t>, std::unique_ptr<WuoInput>> cache;
  const std::pair<int, int64_t> key{static_cast<int>(kind), n};
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;
  const Dataset& ds = GetDataset(kind, n);
  StatusOr<WindowPlan> plan =
      MakeWindowPlan(*ds.r, *ds.s, ds.theta, WindowStage::kWuo);
  TPDB_CHECK(plan.ok()) << plan.status().ToString();
  auto input = std::make_unique<WuoInput>();
  input->layout = plan->layout;
  input->rows = std::make_unique<Table>(Materialize(plan->root.get()));
  const WuoInput& ref = *input;
  cache.emplace(key, std::move(input));
  return ref;
}

/// NJ-WN: LAWAN alone, streaming over the precomputed WUO.
void NjWn(benchmark::State& state, DataKind kind) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  const WuoInput& wuo = GetWuo(kind, n);
  size_t windows = 0;
  for (auto _ : state) {
    OperatorPtr lawan =
        MakeLawanOnly(wuo.rows.get(), wuo.layout, ds.manager.get());
    windows = Drain(lawan.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["windows"] = static_cast<double>(windows);
}

/// NJ-WUON: the full pipeline including the overlap join and LAWAU.
void NjWuon(benchmark::State& state, DataKind kind) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(*ds.r, *ds.s, ds.theta, WindowStage::kWuon);
    TPDB_CHECK(plan.ok()) << plan.status().ToString();
    windows = Drain(plan->root.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["windows"] = static_cast<double>(windows);
}

/// TA: negating windows via normalization (replication, θ ignored during
/// alignment, per-fragment re-matching, coalescing).
void TaNegating(benchmark::State& state, DataKind kind) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<std::vector<TPWindow>> w =
        TAComputeNegatingWindows(*ds.r, *ds.s, ds.theta);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    windows = w->size();
    benchmark::DoNotOptimize(windows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["windows"] = static_cast<double>(windows);
}

void Fig6aNjWn(benchmark::State& s) { NjWn(s, DataKind::kWebkit); }
void Fig6aNjWuon(benchmark::State& s) { NjWuon(s, DataKind::kWebkit); }
void Fig6aTa(benchmark::State& s) { TaNegating(s, DataKind::kWebkit); }
void Fig6bNjWn(benchmark::State& s) { NjWn(s, DataKind::kMeteo); }
void Fig6bNjWuon(benchmark::State& s) { NjWuon(s, DataKind::kMeteo); }
void Fig6bTa(benchmark::State& s) { TaNegating(s, DataKind::kMeteo); }

// TA's normalization is O(|r|·|s|): sweep smaller sizes than Fig. 5.
#define FIG6_SIZES_WEBKIT Arg(2500)->Arg(5000)->Arg(10000)->Arg(20000)
#define FIG6_SIZES_METEO Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)

BENCHMARK(Fig6aNjWn)->FIG6_SIZES_WEBKIT->Unit(benchmark::kMillisecond);
BENCHMARK(Fig6aNjWuon)->FIG6_SIZES_WEBKIT->Unit(benchmark::kMillisecond);
BENCHMARK(Fig6aTa)->FIG6_SIZES_WEBKIT->Unit(benchmark::kMillisecond);
BENCHMARK(Fig6bNjWn)->FIG6_SIZES_METEO->Unit(benchmark::kMillisecond);
BENCHMARK(Fig6bNjWuon)->FIG6_SIZES_METEO->Unit(benchmark::kMillisecond);
BENCHMARK(Fig6bTa)->FIG6_SIZES_METEO->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
