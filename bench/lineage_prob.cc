// Micro-benchmarks of the lineage subsystem: construction (hash-consing)
// and exact probability computation on the formula families TP joins
// produce, plus the Shannon fallback on entangled formulas.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "lineage/lineage.h"
#include "lineage/probability.h"

namespace tpdb::bench {
namespace {

/// Building the λs disjunction of a negating window with k matching tuples.
void BuildDisjunction(benchmark::State& state) {
  const int64_t k = state.range(0);
  LineageManager mgr;
  std::vector<LineageRef> vars;
  for (int64_t i = 0; i < k; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.OrAll(vars));
  }
}
BENCHMARK(BuildDisjunction)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Probability of the anti-join lineage λr ∧ ¬(s1 ∨ … ∨ sk): the
/// decomposable fast path — must stay linear in k.
void AntiJoinLineageProbability(benchmark::State& state) {
  const int64_t k = state.range(0);
  LineageManager mgr;
  const LineageRef lr = mgr.Var(mgr.RegisterVariable(0.9));
  std::vector<LineageRef> vars;
  for (int64_t i = 0; i < k; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.3)));
  const LineageRef lam = mgr.AndNot(lr, mgr.OrAll(vars));
  for (auto _ : state) {
    // The probability memo lives in the manager; resetting a variable's
    // probability invalidates it so every iteration recomputes.
    mgr.SetVariableProbability(0, 0.9);
    ProbabilityEngine engine(&mgr);
    benchmark::DoNotOptimize(engine.Probability(lam));
  }
  ProbabilityEngine check(&mgr);
  check.Probability(lam);
  state.counters["shannon"] = static_cast<double>(check.shannon_expansions());
}
BENCHMARK(AntiJoinLineageProbability)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/// Probability with variable sharing (lineages of self-joins / nested
/// queries): exercises the memoized Shannon expansion.
void EntangledProbability(benchmark::State& state) {
  const int64_t n = state.range(0);
  LineageManager mgr;
  Random rng(7);
  std::vector<LineageRef> vars;
  for (int64_t i = 0; i < n; ++i)
    vars.push_back(mgr.Var(mgr.RegisterVariable(0.5)));
  // Chain of clauses (v_i ∨ v_{i+1}) conjoined: adjacent clauses share a
  // variable, defeating independent decomposition.
  LineageRef lam = mgr.True();
  for (int64_t i = 0; i + 1 < n; ++i)
    lam = mgr.And(lam, mgr.Or(vars[i], vars[i + 1]));
  for (auto _ : state) {
    mgr.SetVariableProbability(0, 0.5);  // invalidate the memo
    ProbabilityEngine engine(&mgr);
    benchmark::DoNotOptimize(engine.Probability(lam));
  }
}
BENCHMARK(EntangledProbability)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

/// Hash-consing throughput: interning an already-known formula.
void HashConsHit(benchmark::State& state) {
  LineageManager mgr;
  const LineageRef a = mgr.Var(mgr.RegisterVariable(0.5));
  const LineageRef b = mgr.Var(mgr.RegisterVariable(0.5));
  benchmark::DoNotOptimize(mgr.And(a, b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.And(a, b));
  }
  state.counters["nodes"] = static_cast<double>(mgr.num_nodes());
}
BENCHMARK(HashConsHit);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
