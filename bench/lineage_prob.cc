// Probability-engine benchmark, emitting BENCH_prob.json — the CI gate of
// the lineage-compilation trajectory. Three evaluation methods over the
// formula families TP queries produce, at increasing lineage depth:
//
//   exact     ProbabilityEngine — independent decomposition + memoized
//             Shannon expansion (re-derived from scratch per evaluation)
//   compiled  LineageCompiler circuit — compiled once, re-evaluated with a
//             linear pass after every probability update
//   sampled   MonteCarloEngine possible-world sampling under an
//             (eps, delta) contract
//
// Families:
//   disjoint   λ = a ∧ ¬(s1 ∨ … ∨ sd): fully decomposable (anti-join
//              lineage) — the exact fast path; compiled must match it.
//   entangled  λ = (v1∨v2) ∧ (v2∨v3) ∧ … : adjacent clauses share a
//              variable, defeating decomposition — exact pays Shannon
//              per evaluation, the circuit pays it once at compile time.
//   shared     k tuples λ_i = t_i ∧ (entangled core): the cross-tuple
//              memo-reuse case — each shared subformula compiles once.
//
// The process exits non-zero if (a) any compiled probability diverges from
// exact by more than 1e-9, (b) compiled re-evaluation fails to beat exact
// Shannon by at least 5x on the deepest entangled formula, or (c) the
// APPROX estimate falls outside its eps bound on more than 5% of seeds.
//
//   ./bench/bench_lineage_prob [out.json]
//
// TPDB_BENCH_SCALE multiplies the evaluation repetitions (default 1).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "lineage/compile/compile.h"
#include "lineage/compile/prob_eval.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "lineage/probability.h"

namespace tpdb {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kMaxDivergence = 1e-9;
constexpr double kRequiredCompiledSpeedup = 5.0;
constexpr double kApproxEps = 0.05;
constexpr double kApproxDelta = 0.05;
constexpr int kApproxSeeds = 60;
constexpr double kApproxRequiredHitRate = 0.95;

struct Measurement {
  std::string family;
  int depth = 0;
  std::string method;
  double seconds_per_eval = 0.0;
  double probability = 0.0;
  size_t circuit_nodes = 0;   // compiled only
  uint64_t memo_hits = 0;     // compiled only
  double reuse_ratio = 0.0;   // compiled only
};

/// Median-of-reps of (total loop seconds / iters) — each rep re-runs the
/// whole invalidate+evaluate loop.
double TimePerEval(int reps, int iters, const std::function<void()>& eval) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < iters; ++i) eval();
    samples.push_back(
        std::chrono::duration<double>(Clock::now() - start).count() / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// λ = a ∧ ¬(s1 ∨ … ∨ sd): decomposable, exact stays linear.
LineageRef MakeDisjoint(LineageManager* mgr, int depth) {
  const LineageRef a = mgr->Var(mgr->RegisterVariable(0.9));
  std::vector<LineageRef> vars;
  for (int i = 0; i < depth; ++i)
    vars.push_back(mgr->Var(mgr->RegisterVariable(0.3)));
  return mgr->AndNot(a, mgr->OrAll(vars));
}

/// λ = (v1∨v2) ∧ (v2∨v3) ∧ …: adjacent clauses share a variable.
LineageRef MakeEntangled(LineageManager* mgr, int depth) {
  std::vector<LineageRef> vars;
  for (int i = 0; i < depth; ++i)
    vars.push_back(mgr->Var(mgr->RegisterVariable(0.5)));
  LineageRef lam = mgr->True();
  for (int i = 0; i + 1 < depth; ++i)
    lam = mgr->And(lam, mgr->Or(vars[i], vars[i + 1]));
  return lam;
}

int Main(int argc, char** argv) {
  const char* scale_env = std::getenv("TPDB_BENCH_SCALE");
  const int64_t scale = scale_env != nullptr && std::atoll(scale_env) > 0
                            ? std::atoll(scale_env)
                            : 1;
  const int reps = 5;
  const int iters = static_cast<int>(8 * scale);

  LineageManager mgr;
  std::vector<Measurement> results;
  bool divergence_ok = true;
  double worst_divergence = 0.0;
  double deepest_exact_s = 0.0, deepest_compiled_s = 0.0;

  struct Family {
    std::string name;
    std::vector<int> depths;
    std::function<LineageRef(LineageManager*, int)> make;
  };
  const std::vector<Family> families = {
      {"disjoint", {4, 16, 64, 256}, MakeDisjoint},
      {"entangled", {8, 12, 16, 20}, MakeEntangled},
  };

  for (const Family& family : families) {
    for (const int depth : family.depths) {
      const LineageRef lam = family.make(&mgr, depth);
      // Exact reference (fresh engine, invalidated memo per evaluation —
      // the cost a query pays when probabilities change between runs).
      double exact_p = 0.0;
      const double exact_s = TimePerEval(reps, iters, [&] {
        mgr.SetVariableProbability(0, mgr.VariableProbability(0));
        ProbabilityEngine engine(&mgr);
        exact_p = engine.Probability(lam);
      });
      results.push_back(
          Measurement{family.name, depth, "exact", exact_s, exact_p});

      // Compiled: one compile, then a linear re-evaluation per update.
      ProbEvalOptions opts;
      ProbabilityEvaluator evaluator(&mgr, opts);
      const size_t nodes_before = evaluator.circuit_size();
      double compiled_p = evaluator.Probability(lam);  // compiles
      const double compiled_s = TimePerEval(reps, iters, [&] {
        mgr.SetVariableProbability(0, mgr.VariableProbability(0));
        compiled_p = evaluator.Probability(lam);
      });
      const CompileStats& cstats = evaluator.compile_stats();
      const size_t nodes_added = evaluator.circuit_size() - nodes_before;
      Measurement compiled{family.name, depth, "compiled", compiled_s,
                           compiled_p};
      compiled.circuit_nodes = nodes_added;
      compiled.memo_hits = cstats.memo_hits;
      const uint64_t touched = cstats.memo_hits + evaluator.circuit_size();
      compiled.reuse_ratio =
          touched > 0 ? static_cast<double>(cstats.memo_hits) / touched : 0.0;
      results.push_back(compiled);

      const double divergence = std::abs(compiled_p - exact_p);
      worst_divergence = std::max(worst_divergence, divergence);
      if (divergence > kMaxDivergence) {
        std::fprintf(stderr,
                     "DIVERGENCE: %s depth=%d compiled %.12f vs exact %.12f\n",
                     family.name.c_str(), depth, compiled_p, exact_p);
        divergence_ok = false;
      }

      // Sampled, under the default fallback contract.
      MonteCarloEngine mc(&mgr, DeriveSeed(opts.mc_seed, lam.id));
      const double z = NormalQuantile(1.0 - kApproxDelta / 2.0);
      double sampled_p = 0.0;
      const double sampled_s = TimePerEval(1, std::max(iters / 4, 1), [&] {
        sampled_p =
            mc.EstimateToPrecision(lam, kApproxEps / z,
                                   HoeffdingSamples(kApproxEps, kApproxDelta))
                .probability;
      });
      results.push_back(
          Measurement{family.name, depth, "sampled", sampled_s, sampled_p});

      std::printf(
          "%-9s depth=%-4d exact %10.2f us  compiled %8.2f us (%zu nodes, "
          "reuse %.2f)  sampled %8.2f us\n",
          family.name.c_str(), depth, exact_s * 1e6, compiled_s * 1e6,
          nodes_added, compiled.reuse_ratio, sampled_s * 1e6);

      if (family.name == "entangled" && depth == family.depths.back()) {
        deepest_exact_s = exact_s;
        deepest_compiled_s = compiled_s;
      }
    }
  }

  // Cross-tuple memo reuse: k tuples sharing one entangled core — each
  // shared subformula compiles once, later tuples wire its circuit id.
  double shared_reuse = 0.0;
  {
    const int core_depth = 16, tuples = 64;
    const LineageRef core = MakeEntangled(&mgr, core_depth);
    ProbabilityEvaluator evaluator(&mgr, ProbEvalOptions{});
    double sum = 0.0;
    for (int i = 0; i < tuples; ++i) {
      const LineageRef t = mgr.Var(mgr.RegisterVariable(0.7));
      sum += evaluator.Probability(mgr.And(t, core));
    }
    const CompileStats& cstats = evaluator.compile_stats();
    shared_reuse = static_cast<double>(cstats.memo_hits) /
                   static_cast<double>(cstats.memo_hits + evaluator.circuit_size());
    Measurement shared{"shared", core_depth, "compiled", 0.0, sum / tuples};
    shared.circuit_nodes = evaluator.circuit_size();
    shared.memo_hits = cstats.memo_hits;
    shared.reuse_ratio = shared_reuse;
    results.push_back(shared);
    std::printf("shared    depth=%-4d %d tuples: %zu circuit nodes, "
                "%llu memo hits, reuse %.2f\n",
                core_depth, tuples, evaluator.circuit_size(),
                static_cast<unsigned long long>(cstats.memo_hits),
                shared_reuse);
  }

  // APPROX(eps, delta) contract: the estimate must land within eps of the
  // exact probability on at least 95% of seeds.
  int approx_hits = 0;
  {
    const LineageRef lam = MakeEntangled(&mgr, 14);
    ProbabilityEngine engine(&mgr);
    const double exact_p = engine.Probability(lam);
    const double z = NormalQuantile(1.0 - kApproxDelta / 2.0);
    for (int seed = 0; seed < kApproxSeeds; ++seed) {
      MonteCarloEngine mc(&mgr, DeriveSeed(static_cast<uint64_t>(seed) + 1,
                                           lam.id));
      const MonteCarloEstimate est = mc.EstimateToPrecision(
          lam, kApproxEps / z, HoeffdingSamples(kApproxEps, kApproxDelta));
      if (std::abs(est.probability - exact_p) <= kApproxEps) ++approx_hits;
    }
  }
  const double approx_hit_rate =
      static_cast<double>(approx_hits) / kApproxSeeds;

  const double compiled_speedup =
      deepest_compiled_s > 0.0 ? deepest_exact_s / deepest_compiled_s : 0.0;
  const bool speedup_ok = compiled_speedup >= kRequiredCompiledSpeedup;
  const bool approx_ok = approx_hit_rate >= kApproxRequiredHitRate;
  std::printf("entangled deepest: exact %.2f us, compiled %.2f us, "
              "speedup %.1fx (required %.1fx)\n",
              deepest_exact_s * 1e6, deepest_compiled_s * 1e6,
              compiled_speedup, kRequiredCompiledSpeedup);
  std::printf("approx: %d/%d seeds within eps=%.2f (required %.0f%%)\n",
              approx_hits, kApproxSeeds, kApproxEps,
              kApproxRequiredHitRate * 100.0);

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_prob.json";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  TPDB_CHECK(f != nullptr) << "cannot write " << out_path;
  std::fprintf(f, "{\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    std::fprintf(
        f,
        "    {\"family\": \"%s\", \"depth\": %d, \"method\": \"%s\", "
        "\"seconds_per_eval\": %.9f, \"probability\": %.12f, "
        "\"circuit_nodes\": %zu, \"memo_hits\": %llu, "
        "\"reuse_ratio\": %.4f}%s\n",
        m.family.c_str(), m.depth, m.method.c_str(), m.seconds_per_eval,
        m.probability, m.circuit_nodes,
        static_cast<unsigned long long>(m.memo_hits), m.reuse_ratio,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"gates\": {\"max_divergence\": %.3e, \"divergence_ok\": %s, "
      "\"compiled_speedup\": %.3f, \"required_speedup\": %.1f, "
      "\"approx_hit_rate\": %.3f, \"required_hit_rate\": %.2f, "
      "\"shared_reuse_ratio\": %.4f}\n}\n",
      worst_divergence, divergence_ok ? "true" : "false", compiled_speedup,
      kRequiredCompiledSpeedup, approx_hit_rate, kApproxRequiredHitRate,
      shared_reuse);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!divergence_ok) {
    std::fprintf(stderr, "FAIL: compiled diverges from exact beyond %.1e\n",
                 kMaxDivergence);
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: compiled speedup %.2fx < required %.1fx on the "
                 "deepest entangled formula\n",
                 compiled_speedup, kRequiredCompiledSpeedup);
    return 1;
  }
  if (!approx_ok) {
    std::fprintf(stderr, "FAIL: approx hit rate %.2f < %.2f\n",
                 approx_hit_rate, kApproxRequiredHitRate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tpdb

int main(int argc, char** argv) { return tpdb::Main(argc, argv); }
