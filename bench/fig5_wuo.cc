// Fig. 5 — WUO: overlapping and unmatched windows, NJ vs TA, on the
// Webkit-like (5a) and Meteo-like (5b) datasets.
//
// Paper claim reproduced: both approaches follow a similar trend (the
// dominant cost is one conventional outer join), but NJ executes that join
// once while TA executes it twice, making NJ 2–4× faster.
#include <benchmark/benchmark.h>

#include "baseline/ta_join.h"
#include "bench/bench_util.h"
#include "engine/materialize.h"
#include "tp/plans.h"

namespace tpdb::bench {
namespace {

/// NJ: one conventional outer join piped through LAWAU.
void NjWuo(benchmark::State& state, DataKind kind) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<WindowPlan> plan =
        MakeWindowPlan(*ds.r, *ds.s, ds.theta, WindowStage::kWuo);
    TPDB_CHECK(plan.ok()) << plan.status().ToString();
    windows = Drain(plan->root.get());
    benchmark::DoNotOptimize(windows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["windows"] = static_cast<double>(windows);
}

/// TA: the same conventional join executed twice (pairs, then gaps) plus
/// the duplicate-eliminating union.
void TaWuo(benchmark::State& state, DataKind kind) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  size_t windows = 0;
  for (auto _ : state) {
    StatusOr<std::vector<TPWindow>> w = TAComputeWindows(
        *ds.r, *ds.s, ds.theta, WindowStage::kWuo,
        OverlapAlgorithm::kPartitioned);
    TPDB_CHECK(w.ok()) << w.status().ToString();
    windows = w->size();
    benchmark::DoNotOptimize(windows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["windows"] = static_cast<double>(windows);
}

void Fig5aNj(benchmark::State& s) { NjWuo(s, DataKind::kWebkit); }
void Fig5aTa(benchmark::State& s) { TaWuo(s, DataKind::kWebkit); }
void Fig5bNj(benchmark::State& s) { NjWuo(s, DataKind::kMeteo); }
void Fig5bTa(benchmark::State& s) { TaWuo(s, DataKind::kMeteo); }

// Webkit: selective θ, cost is join-bound; larger sizes are fine.
BENCHMARK(Fig5aNj)->Arg(12500)->Arg(25000)->Arg(37500)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Fig5aTa)->Arg(12500)->Arg(25000)->Arg(37500)->Arg(50000)
    ->Unit(benchmark::kMillisecond);
// Meteo: non-selective θ blows up the match count (as in the paper, where
// Meteo runtimes are ~50× Webkit's); sweep smaller sizes.
BENCHMARK(Fig5bNj)->Arg(2000)->Arg(4000)->Arg(6000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(Fig5bTa)->Arg(2000)->Arg(4000)->Arg(6000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
