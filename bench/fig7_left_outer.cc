// Fig. 7 — Full TP left outer join, NJ vs TA, on the Webkit-like (7a) and
// Meteo-like (7b) datasets.
//
// Paper claims reproduced: inside a full TP join TA cannot use θ during
// alignment, so its conventional join degrades to a nested loop (plus the
// replication and duplicate-eliminating union), making NJ about two orders
// of magnitude faster on the selective Webkit θ and 4–10× on the
// non-selective Meteo θ, where both systems are dominated by the sheer
// match count.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tp/operators.h"

namespace tpdb::bench {
namespace {

void LeftOuter(benchmark::State& state, DataKind kind,
               JoinStrategy strategy) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(kind, n);
  TPJoinOptions options;
  options.strategy = strategy;
  options.validate_inputs = false;  // time the join alone
  size_t out_rows = 0;
  for (auto _ : state) {
    StatusOr<TPRelation> result =
        TPLeftOuterJoin(*ds.r, *ds.s, ds.theta, options);
    TPDB_CHECK(result.ok()) << result.status().ToString();
    out_rows = result->size();
    benchmark::DoNotOptimize(out_rows);
  }
  state.counters["input_tuples"] = static_cast<double>(2 * n);
  state.counters["output_tuples"] = static_cast<double>(out_rows);
}

void Fig7aNj(benchmark::State& s) {
  LeftOuter(s, DataKind::kWebkit, JoinStrategy::kLineageAware);
}
void Fig7aTa(benchmark::State& s) {
  LeftOuter(s, DataKind::kWebkit, JoinStrategy::kTemporalAlignment);
}
void Fig7bNj(benchmark::State& s) {
  LeftOuter(s, DataKind::kMeteo, JoinStrategy::kLineageAware);
}
void Fig7bTa(benchmark::State& s) {
  LeftOuter(s, DataKind::kMeteo, JoinStrategy::kTemporalAlignment);
}

// TA runs nested-loop joins twice plus normalization: O(n²) with heavy
// constants, so the sweep uses the smallest sizes of the three figures.
#define FIG7_SIZES Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)

BENCHMARK(Fig7aNj)->FIG7_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(Fig7aTa)->FIG7_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(Fig7bNj)->FIG7_SIZES->Unit(benchmark::kMillisecond);
BENCHMARK(Fig7bTa)->FIG7_SIZES->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
