// Benchmarks of the extension operators built on the window machinery:
// TP set operations (the companion ICDE'18 paper's operators, reference
// [1]) and the probabilistic temporal aggregate. Not part of the paper's
// evaluation — included to show the window pipeline carries these at the
// same cost profile as the joins.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "tp/aggregate.h"
#include "tp/set_ops.h"

namespace tpdb::bench {
namespace {

/// Set operations need union-compatible inputs: reuse the webkit pair
/// (same fact schema: file).
void SetOp(benchmark::State& state,
           StatusOr<TPRelation> (*op)(const TPRelation&, const TPRelation&,
                                      std::string)) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(DataKind::kWebkit, n);
  size_t out = 0;
  for (auto _ : state) {
    StatusOr<TPRelation> result = op(*ds.r, *ds.s, "");
    TPDB_CHECK(result.ok()) << result.status().ToString();
    out = result->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["output_tuples"] = static_cast<double>(out);
}

void UnionBench(benchmark::State& s) { SetOp(s, &TPUnion); }
void IntersectBench(benchmark::State& s) { SetOp(s, &TPIntersect); }
void DifferenceBench(benchmark::State& s) { SetOp(s, &TPDifference); }

BENCHMARK(UnionBench)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(IntersectBench)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(DifferenceBench)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void TemporalAggregateBench(benchmark::State& state) {
  const int64_t n = state.range(0) * Scale();
  const Dataset& ds = GetDataset(DataKind::kMeteo, n);
  size_t runs = 0;
  for (auto _ : state) {
    StatusOr<std::vector<TemporalAggregateRow>> agg =
        TemporalAggregate(*ds.r);
    TPDB_CHECK(agg.ok()) << agg.status().ToString();
    runs = agg->size();
    benchmark::DoNotOptimize(runs);
  }
  state.counters["runs"] = static_cast<double>(runs);
}

BENCHMARK(TemporalAggregateBench)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tpdb::bench

BENCHMARK_MAIN();
