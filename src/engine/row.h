// Rows and in-memory tables of the executor.
#ifndef TPDB_ENGINE_ROW_H_
#define TPDB_ENGINE_ROW_H_

#include <string>
#include <vector>

#include "common/datum.h"
#include "engine/schema.h"

namespace tpdb {

/// A tuple of datums; layout matches the producing operator's Schema.
using Row = std::vector<Datum>;

/// Lexicographic three-way comparison.
int CompareRows(const Row& a, const Row& b);

/// Concatenation of two rows. `reserve_extra` pre-reserves room for
/// columns the caller will append (joins add interval/window columns), so
/// the row never reallocates element-wise afterwards.
Row ConcatRows(const Row& a, const Row& b, size_t reserve_extra = 0);

/// Row of `n` SQL NULLs.
Row NullRow(size_t n);

/// "v1 | v2 | ..." rendering for diagnostics and examples.
std::string RowToString(const Row& row);

/// A fully materialized relation.
struct Table {
  Schema schema;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_ROW_H_
