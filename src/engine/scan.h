// TableScan: leaf operator over a materialized table (or a morsel of one).
#ifndef TPDB_ENGINE_SCAN_H_
#define TPDB_ENGINE_SCAN_H_

#include <limits>

#include "engine/operator.h"

namespace tpdb {

/// Scans an in-memory table. The table must outlive the operator.
/// NextRef() is the hot path: it indexes straight into the table's row
/// storage, so downstream pipelines pay no per-tuple copy for the scan.
class TableScan final : public Operator {
 public:
  explicit TableScan(const Table* table)
      : TableScan(table, 0, std::numeric_limits<size_t>::max()) {}

  /// Scans only rows [begin, min(end, size)) — the morsel form used by the
  /// parallel pipeline driver.
  TableScan(const Table* table, size_t begin, size_t end)
      : table_(table), begin_(begin), end_(end), pos_(begin) {
    TPDB_CHECK(table != nullptr);
    TPDB_CHECK_LE(begin_, end_);
  }

  const Schema& schema() const override { return table_->schema; }
  void Open() override { pos_ = begin_; }
  bool Next(Row* out) override {
    if (pos_ >= Limit()) return false;
    *out = table_->rows[pos_++];
    return true;
  }
  const Row* NextRef() override {
    if (pos_ >= Limit()) return nullptr;
    return &table_->rows[pos_++];
  }
  void Close() override {}

 private:
  size_t Limit() const { return std::min(end_, table_->rows.size()); }

  const Table* table_;
  size_t begin_;
  size_t end_;
  size_t pos_;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_SCAN_H_
