// TableScan: leaf operator over a materialized table.
#ifndef TPDB_ENGINE_SCAN_H_
#define TPDB_ENGINE_SCAN_H_

#include "engine/operator.h"

namespace tpdb {

/// Scans an in-memory table. The table must outlive the operator.
class TableScan final : public Operator {
 public:
  explicit TableScan(const Table* table) : table_(table) {
    TPDB_CHECK(table != nullptr);
  }

  const Schema& schema() const override { return table_->schema; }
  void Open() override { pos_ = 0; }
  bool Next(Row* out) override {
    if (pos_ >= table_->rows.size()) return false;
    *out = table_->rows[pos_++];
    return true;
  }
  void Close() override {}

 private:
  const Table* table_;
  size_t pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_SCAN_H_
