// Dedup: duplicate elimination (sort-based). Temporal Alignment needs this
// to remove the unmatched windows its two-pass plan computes twice — one of
// the redundancies the paper's approach avoids.
#ifndef TPDB_ENGINE_DEDUP_H_
#define TPDB_ENGINE_DEDUP_H_

#include <vector>

#include "engine/operator.h"

namespace tpdb {

/// Materializes, sorts all columns lexicographically, and drops exact
/// duplicates. Output is emitted in sorted order.
class Dedup final : public Operator {
 public:
  explicit Dedup(OperatorPtr child) : child_(std::move(child)) {
    TPDB_CHECK(child_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_DEDUP_H_
