// The Volcano / iterator operator protocol (Open / Next / Close) — the
// pipelined execution model of the PostgreSQL executor the paper integrates
// into. LAWAU and LAWAN are implemented against this interface, which is
// what makes the approach "pipelined, no tuple replication".
#ifndef TPDB_ENGINE_OPERATOR_H_
#define TPDB_ENGINE_OPERATOR_H_

#include <memory>

#include "engine/row.h"
#include "engine/schema.h"

namespace tpdb {

/// A pull-based relational operator. Lifecycle: Open() once, Next() until it
/// returns false, Close() once. Re-opening after Close() restarts the scan.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Output schema; valid before Open().
  virtual const Schema& schema() const = 0;

  /// Prepares the operator for iteration.
  virtual void Open() = 0;

  /// Produces the next row into `*out`; returns false at end of stream.
  virtual bool Next(Row* out) = 0;

  /// Zero-copy pull: returns the next row, or nullptr at end of stream.
  /// The pointer stays valid until the next Next()/NextRef()/Close() call
  /// on this operator. Leaf scans index straight into storage and
  /// pass-through operators (filter, limit, instrumentation) forward the
  /// child's pointer, so a scan→filter pipeline moves no tuples at all;
  /// the default adapter buffers Next() (one move for row-constructing
  /// operators, one copy only where Next() itself copies).
  virtual const Row* NextRef() {
    return Next(&ref_buffer_) ? &ref_buffer_ : nullptr;
  }

  /// Releases per-iteration resources.
  virtual void Close() = 0;

 private:
  Row ref_buffer_;  // backing storage for the default NextRef adapter
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace tpdb

#endif  // TPDB_ENGINE_OPERATOR_H_
