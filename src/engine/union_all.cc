#include "engine/union_all.h"

namespace tpdb {

UnionAll::UnionAll(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  TPDB_CHECK(!children_.empty()) << "UnionAll needs at least one child";
  const Schema& first = children_.front()->schema();
  for (const OperatorPtr& child : children_) {
    TPDB_CHECK_EQ(child->schema().num_columns(), first.num_columns())
        << "UnionAll children must be union-compatible";
  }
}

void UnionAll::Open() {
  for (OperatorPtr& child : children_) child->Open();
  current_ = 0;
}

bool UnionAll::Next(Row* out) {
  while (current_ < children_.size()) {
    if (children_[current_]->Next(out)) return true;
    ++current_;
  }
  return false;
}

void UnionAll::Close() {
  for (OperatorPtr& child : children_) child->Close();
}

}  // namespace tpdb
