#include "engine/aggregate.h"

#include <algorithm>

namespace tpdb {

namespace {

Datum AddDatum(const Datum& a, const Datum& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  if (a.type() == DatumType::kDouble || b.type() == DatumType::kDouble) {
    const double x =
        a.type() == DatumType::kDouble ? a.AsDouble()
                                       : static_cast<double>(a.AsInt64());
    const double y =
        b.type() == DatumType::kDouble ? b.AsDouble()
                                       : static_cast<double>(b.AsInt64());
    return Datum(x + y);
  }
  return Datum(a.AsInt64() + b.AsInt64());
}

}  // namespace

HashAggregate::HashAggregate(OperatorPtr child, std::vector<int> group_by,
                             std::vector<AggSpec> aggregates)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {
  TPDB_CHECK(child_ != nullptr);
  const Schema& in = child_->schema();
  for (const int col : group_by_) {
    TPDB_CHECK_GE(col, 0);
    TPDB_CHECK_LT(static_cast<size_t>(col), in.num_columns());
    schema_.AddColumn(in.column(col));
  }
  for (const AggSpec& agg : aggregates_) {
    std::string name = agg.name;
    DatumType type = DatumType::kInt64;
    if (agg.fn != AggFn::kCount) {
      TPDB_CHECK_GE(agg.column, 0);
      TPDB_CHECK_LT(static_cast<size_t>(agg.column), in.num_columns());
      type = in.column(agg.column).type;
      if (name.empty()) name = "agg_" + in.column(agg.column).name;
    } else if (name.empty()) {
      name = "count";
    }
    schema_.AddColumn({std::move(name), type});
  }
}

void HashAggregate::Open() {
  child_->Open();
  results_.clear();
  // Ordered map keyed by the group row: deterministic output order. The
  // workloads here have modest group counts; a hash map + final sort would
  // be the scale-up path.
  std::map<Row, State, bool (*)(const Row&, const Row&)> groups(
      +[](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  Row row;
  while (child_->Next(&row)) {
    Row key;
    key.reserve(group_by_.size());
    for (const int col : group_by_) key.push_back(row[col]);
    State& state = groups[std::move(key)];
    if (state.accum.empty()) state.accum.resize(aggregates_.size());
    ++state.count;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const AggSpec& agg = aggregates_[i];
      if (agg.fn == AggFn::kCount) continue;
      const Datum& value = row[agg.column];
      if (value.is_null()) continue;
      Datum& acc = state.accum[i];
      switch (agg.fn) {
        case AggFn::kSum:
          acc = AddDatum(acc, value);
          break;
        case AggFn::kMin:
          if (acc.is_null() || value < acc) acc = value;
          break;
        case AggFn::kMax:
          if (acc.is_null() || acc < value) acc = value;
          break;
        case AggFn::kCount:
          break;
      }
    }
  }
  child_->Close();

  // Aggregation over an empty input with no groups yields no rows (SQL
  // would yield one row for global aggregates; the engine's callers prefer
  // the uniform no-groups-no-rows rule).
  for (auto& [key, state] : groups) {
    Row out = key;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      if (aggregates_[i].fn == AggFn::kCount)
        out.push_back(Datum(state.count));
      else
        out.push_back(state.accum[i]);
    }
    results_.push_back(std::move(out));
  }
  pos_ = 0;
}

bool HashAggregate::Next(Row* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void HashAggregate::Close() {
  results_.clear();
  results_.shrink_to_fit();
}

}  // namespace tpdb
