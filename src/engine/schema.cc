#include "engine/schema.h"

namespace tpdb {

namespace {
const char* TypeName(DatumType t) {
  switch (t) {
    case DatumType::kNull:
      return "null";
    case DatumType::kInt64:
      return "int64";
    case DatumType::kDouble:
      return "double";
    case DatumType::kString:
      return "string";
    case DatumType::kLineage:
      return "lineage";
  }
  return "?";
}
}  // namespace

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::AddColumn(Column column) {
  columns_.push_back(std::move(column));
  return static_cast<int>(columns_.size()) - 1;
}

Schema Schema::Concat(const Schema& a, const Schema& b) {
  Schema out = a;
  for (const Column& c : b.columns()) {
    Column copy = c;
    if (out.IndexOf(copy.name) >= 0) copy.name += "_r";
    out.AddColumn(std::move(copy));
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += TypeName(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type)
      return false;
  }
  return true;
}

}  // namespace tpdb
