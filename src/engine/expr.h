// Scalar expression trees evaluated against a single row — the executor's
// filter/join-predicate language (the role the PostgreSQL expression
// evaluator plays for the paper's in-kernel implementation).
//
// Booleans are represented as int64 0/1; any comparison involving SQL NULL
// yields NULL (three-valued logic), and Filter keeps only rows whose
// predicate evaluates to a non-null truthy value.
#ifndef TPDB_ENGINE_EXPR_H_
#define TPDB_ENGINE_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/row.h"

namespace tpdb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable scalar expression node.
class Expr {
 public:
  virtual ~Expr() = default;
  /// Evaluates against `row`; never mutates state.
  virtual Datum Eval(const Row& row) const = 0;
  /// Diagnostic rendering.
  virtual std::string ToString() const = 0;
  /// True iff the value does not depend on the input row (literals and
  /// operator trees over literals; Col and Fn are never constant).
  virtual bool constant() const { return false; }
  /// Folding hook for FoldConstants: a rewrite of this node with folded
  /// children, or null when nothing below changed.
  virtual ExprPtr Fold() const { return nullptr; }
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// -- Builders -------------------------------------------------------------

/// Reference to column `index` of the input row.
ExprPtr Col(int index, std::string name = "");
/// Constant.
ExprPtr Lit(Datum value);
/// Three-valued comparison of two sub-expressions.
ExprPtr Compare(CompareOp op, ExprPtr a, ExprPtr b);
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
/// Three-valued conjunction / disjunction / negation.
ExprPtr AndExpr(ExprPtr a, ExprPtr b);
ExprPtr OrExpr(ExprPtr a, ExprPtr b);
ExprPtr NotExpr(ExprPtr a);
/// IS NULL test (never NULL itself).
ExprPtr IsNull(ExprPtr a);

/// Predicate "intervals [ts_a,te_a) and [ts_b,te_b) overlap", the θo of the
/// paper, over four int64 columns.
ExprPtr OverlapsExpr(int ts_a, int te_a, int ts_b, int te_b);

/// Conjunction of pairwise column equalities (the equi-θ of the paper's
/// experiments), e.g. a.Loc = b.Loc.
ExprPtr ColumnsEqual(const std::vector<std::pair<int, int>>& pairs);

/// Wraps an arbitrary function as an expression — the escape hatch for
/// general θ conditions that are not column comparisons.
ExprPtr Fn(std::function<Datum(const Row&)> fn, std::string name = "fn");

/// Returns `e` with every maximal constant subtree evaluated once and
/// replaced by a literal. Filter and NestedLoopJoin apply this when they
/// are built, so constant arms of a predicate cost nothing per row.
ExprPtr FoldConstants(const ExprPtr& e);

/// True iff `d` is non-null and truthy (non-zero int64).
bool DatumTruthy(const Datum& d);

}  // namespace tpdb

#endif  // TPDB_ENGINE_EXPR_H_
