// Pipeline instrumentation: per-operator row counts and wall time, in the
// spirit of EXPLAIN ANALYZE. Wrap the interesting nodes of a plan with
// Instrument(...) and render the collected stats after execution — used to
// verify the "pipelined, single-pass" claims of the window plans (e.g.
// LAWAU's output row count equals its input plus the gaps it created).
#ifndef TPDB_ENGINE_EXPLAIN_H_
#define TPDB_ENGINE_EXPLAIN_H_

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/operator.h"

namespace tpdb::obs {
class TraceContext;
}  // namespace tpdb::obs

namespace tpdb {

/// Collected per-node execution statistics.
struct NodeStats {
  std::string label;
  uint64_t rows = 0;        ///< rows produced (true Next() calls)
  uint64_t open_calls = 0;
  double seconds = 0.0;     ///< wall time spent inside this node's Next()
                            ///< (inclusive of children)
};

/// Per-worker aggregates of the parallel runtime (exec/): how many morsel
/// tasks each pool worker ran for this query, the rows they produced, and
/// the wall time they spent inside tasks.
struct WorkerStats {
  int worker = -1;          ///< pool worker index; -1 = the session thread
  uint64_t tasks = 0;
  uint64_t rows = 0;
  double seconds = 0.0;
};

/// Aggregates of the columnar cold read path (storage/): how many segments
/// the scans of a query touched vs. pruned via zone maps, the bytes of
/// mapped snapshot they read, and the time spent decoding columns to rows.
struct StorageStats {
  uint64_t segments_scanned = 0;
  uint64_t segments_skipped = 0;  ///< pruned by zone maps, never decoded
  /// Segments pruned compressed-domain: admitted by the zone map but
  /// rejected by the exact min/max of a packed chunk's block header,
  /// without decompressing a value.
  uint64_t chunks_skipped_compressed = 0;
  uint64_t rows_decoded = 0;
  uint64_t bytes_mapped = 0;      ///< encoded bytes of the scanned segments
  /// Compressed bytes among the scanned segments' chunks (their
  /// decompression time is part of decode_seconds).
  uint64_t compressed_bytes = 0;
  double decode_seconds = 0.0;

  bool Any() const {
    return segments_scanned > 0 || segments_skipped > 0 ||
           chunks_skipped_compressed > 0 || rows_decoded > 0;
  }
  void Merge(const StorageStats& other);
};

/// Aggregates of the vectorized execution path (engine/vector/): batches
/// produced by the batch sources, rows entering the batch pipelines, rows
/// surviving to the sink, and rows short-circuited by selection vectors —
/// deselected by batch filters/thresholds/limits without ever being
/// materialized as rows.
struct VectorStats {
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_pruned = 0;

  bool Any() const { return batches > 0 || rows_scanned > 0; }
  void Merge(const VectorStats& other);
};

/// Registry the instrumented wrappers report into. Must outlive the plan.
class ExecStats {
 public:
  /// Registers a node; returns its slot (stable for the registry's life).
  NodeStats* AddNode(std::string label);

  const std::vector<std::unique_ptr<NodeStats>>& nodes() const {
    return nodes_;
  }

  /// Records one worker's aggregate for the query (planner reports these
  /// after a parallel execution).
  void AddWorker(const WorkerStats& worker);

  const std::vector<WorkerStats>& workers() const { return workers_; }

  /// Merges one cold scan's counters into the query-wide storage section.
  void AddStorage(const StorageStats& storage);

  const StorageStats& storage() const { return storage_; }

  /// Merges one batch pipeline's counters into the vectorized section.
  void AddVector(const VectorStats& vector);

  const VectorStats& vector() const { return vector_; }

  /// Rendered physical tree of the executed plan, with per-node cost
  /// estimates next to actuals (set by the planner after execution;
  /// TPDatabase::Explain prints it as its own section).
  void set_physical_plan(std::string plan) {
    physical_plan_ = std::move(plan);
  }
  const std::string& physical_plan() const { return physical_plan_; }

  /// Optional per-query trace (obs/trace.h). When set, the planner records
  /// optimize/execute phase spans and mirrors the executed physical tree —
  /// with these NodeStats as payloads — into it. Not owned; must outlive
  /// the execution.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }
  obs::TraceContext* trace() const { return trace_; }

  /// Multi-line "label: rows=… time=…" rendering, in registration order
  /// (register bottom-up to read the pipeline top-down), followed by a
  /// per-worker section when the query ran on the parallel runtime, a
  /// storage section when any scan was served from columnar segments, and
  /// a vectorized section when any pipeline ran batch-at-a-time.
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<NodeStats>> nodes_;
  std::vector<WorkerStats> workers_;
  StorageStats storage_;
  VectorStats vector_;
  std::string physical_plan_;
  obs::TraceContext* trace_ = nullptr;
};

/// Wraps `child`, counting its rows and timing its Next() calls into a
/// fresh node of `stats`.
OperatorPtr Instrument(std::string label, OperatorPtr child,
                       ExecStats* stats);

/// Same, reporting into a pre-registered node — used by the physical-plan
/// executors, which share one NodeStats slot between a plan node and its
/// lowered operator.
OperatorPtr Instrument(NodeStats* node, OperatorPtr child);

}  // namespace tpdb

#endif  // TPDB_ENGINE_EXPLAIN_H_
