#include "engine/sort.h"

#include <algorithm>

namespace tpdb {

bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    const int c = a[key.column].Compare(b[key.column]);
    if (c != 0) return key.ascending ? c < 0 : c > 0;
  }
  return false;
}

void Sort::Open() {
  child_->Open();
  buffer_.clear();
  Row row;
  while (child_->Next(&row)) buffer_.push_back(std::move(row));
  child_->Close();
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [this](const Row& a, const Row& b) {
                     return RowLess(a, b, keys_);
                   });
  pos_ = 0;
}

bool Sort::Next(Row* out) {
  if (pos_ >= buffer_.size()) return false;
  *out = buffer_[pos_++];
  return true;
}

void Sort::Close() {
  buffer_.clear();
  buffer_.shrink_to_fit();
}

}  // namespace tpdb
