#include "engine/row.h"

namespace tpdb {

int CompareRows(const Row& a, const Row& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

Row ConcatRows(const Row& a, const Row& b, size_t reserve_extra) {
  Row out;
  out.reserve(a.size() + b.size() + reserve_extra);
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Row NullRow(size_t n) { return Row(n); }

std::string RowToString(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += " | ";
    out += row[i].ToString();
  }
  return out;
}

}  // namespace tpdb
