// HashAggregate: group-by with COUNT / SUM / MIN / MAX — the reporting
// layer the examples use to summarize join results (e.g. probability mass
// per join key), and a standard piece of any executor.
#ifndef TPDB_ENGINE_AGGREGATE_H_
#define TPDB_ENGINE_AGGREGATE_H_

#include <map>
#include <vector>

#include "engine/operator.h"

namespace tpdb {

/// Supported aggregate functions.
enum class AggFn { kCount, kSum, kMin, kMax };

/// One aggregate: function + input column (+ output name). kCount ignores
/// the column (use -1); kSum requires int64 or double input.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  int column = -1;
  std::string name;
};

/// Materializing hash aggregation. Output: group columns (in the given
/// order) followed by one column per aggregate. Groups are emitted in
/// ascending group-key order (deterministic output).
class HashAggregate final : public Operator {
 public:
  HashAggregate(OperatorPtr child, std::vector<int> group_by,
                std::vector<AggSpec> aggregates);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  struct State {
    int64_t count = 0;
    std::vector<Datum> accum;  // one slot per aggregate
  };

  OperatorPtr child_;
  std::vector<int> group_by_;
  std::vector<AggSpec> aggregates_;
  Schema schema_;

  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_AGGREGATE_H_
