// Relational schema: ordered, named, typed columns of an operator's output.
#ifndef TPDB_ENGINE_SCHEMA_H_
#define TPDB_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace tpdb {

/// A single column of a schema.
struct Column {
  std::string name;
  DatumType type = DatumType::kNull;
};

/// Ordered list of columns; value-semantic and cheap to copy for the small
/// schemas of this workload.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const {
    TPDB_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Appends a column and returns its index.
  int AddColumn(Column column);

  /// Schema of the concatenation of rows of `a` and `b` (name clashes get a
  /// disambiguating suffix on the right side).
  static Schema Concat(const Schema& a, const Schema& b);

  /// "name:type, name:type, ..." rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_SCHEMA_H_
