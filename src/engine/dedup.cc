#include "engine/dedup.h"

#include <algorithm>

namespace tpdb {

void Dedup::Open() {
  child_->Open();
  buffer_.clear();
  Row row;
  while (child_->Next(&row)) buffer_.push_back(std::move(row));
  child_->Close();
  std::sort(buffer_.begin(), buffer_.end(), [](const Row& a, const Row& b) {
    return CompareRows(a, b) < 0;
  });
  buffer_.erase(std::unique(buffer_.begin(), buffer_.end(),
                            [](const Row& a, const Row& b) {
                              return CompareRows(a, b) == 0;
                            }),
                buffer_.end());
  pos_ = 0;
}

bool Dedup::Next(Row* out) {
  if (pos_ >= buffer_.size()) return false;
  *out = buffer_[pos_++];
  return true;
}

void Dedup::Close() {
  buffer_.clear();
  buffer_.shrink_to_fit();
}

}  // namespace tpdb
