// TemporalOuterJoin: the "conventional outer join r ⟕_{θo ∧ θ} s" of the
// paper — an equi-θ join with an interval-overlap predicate θo, evaluated
// with a hash-partitioned, start-sorted probe (the merge/hash plan a DBMS
// optimizer would pick for a selective equality condition), instead of a
// nested loop. Output rows append the intersection interval.
#ifndef TPDB_ENGINE_TEMPORAL_OUTER_JOIN_H_
#define TPDB_ENGINE_TEMPORAL_OUTER_JOIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/expr.h"
#include "engine/nested_loop_join.h"
#include "engine/operator.h"
#include "temporal/interval.h"

namespace tpdb {

/// Configuration of a temporal equi-join.
struct TemporalJoinSpec {
  /// Pairwise equality columns (left index, right index); may be empty, in
  /// which case every left row probes the whole right side.
  std::vector<std::pair<int, int>> equi_keys;
  /// Interval columns on each side.
  int left_ts = -1;
  int left_te = -1;
  int right_ts = -1;
  int right_te = -1;
  /// Optional residual predicate over the concatenated row (general θ).
  ExprPtr residual;
  JoinType join_type = JoinType::kLeftOuter;
};

/// The materialized, hash-partitioned build (right) side of a temporal
/// equi-join. Immutable once built, so the parallel runtime can build it
/// once and probe one shared instance from many morsel plans.
struct TemporalBuildSide {
  struct Partition {
    /// Indices into `rows`, sorted by right interval start.
    std::vector<uint32_t> rows;
  };

  std::vector<Row> rows;
  std::unordered_map<uint64_t, Partition> partitions;
};

/// Drains `right` (Open/Next*/Close) and partitions it by the right-hand
/// fields of `spec` (equi-key hash; within a partition sorted by interval
/// start, which is the order the LAWAU/LAWAN sweeps expect).
TemporalBuildSide MakeTemporalBuildSide(Operator* right,
                                        const TemporalJoinSpec& spec);

/// Pipelined on the left input; the right input is materialized and
/// partitioned at Open() — or supplied pre-built and shared. Output
/// schema: left ++ right ++ (inter_ts, inter_te); for unmatched left rows
/// the right columns and the intersection are NULL.
class TemporalOuterJoin final : public Operator {
 public:
  TemporalOuterJoin(OperatorPtr left, OperatorPtr right,
                    TemporalJoinSpec spec);

  /// Shared-build form: probes `build` (read-only) instead of draining a
  /// right child. `right_schema` is the build rows' schema.
  TemporalOuterJoin(OperatorPtr left,
                    std::shared_ptr<const TemporalBuildSide> build,
                    Schema right_schema, TemporalJoinSpec spec);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  using Partition = TemporalBuildSide::Partition;

  uint64_t LeftKeyHash(const Row& row) const;
  bool KeysEqual(const Row& left, const Row& right) const;

  OperatorPtr left_;
  OperatorPtr right_;  // null in shared-build mode
  TemporalJoinSpec spec_;
  Schema right_schema_;
  Schema schema_;

  std::shared_ptr<const TemporalBuildSide> shared_build_;
  TemporalBuildSide owned_build_;
  const TemporalBuildSide* build_ = nullptr;

  Row current_left_;
  bool have_left_ = false;
  bool left_matched_ = false;
  const Partition* current_partition_ = nullptr;
  size_t probe_pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_TEMPORAL_OUTER_JOIN_H_
