// Sort: materializing sort operator, the blocking step in front of the
// LAWAU / LAWAN sweeps (the paper's "windows are ordered by Fr and by their
// starting point").
#ifndef TPDB_ENGINE_SORT_H_
#define TPDB_ENGINE_SORT_H_

#include <vector>

#include "engine/operator.h"

namespace tpdb {

/// One sort key: column index + direction.
struct SortKey {
  int column = 0;
  bool ascending = true;
};

/// Materializing sort. Stable, so equal-key input order is preserved.
class Sort final : public Operator {
 public:
  Sort(OperatorPtr child, std::vector<SortKey> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {
    TPDB_CHECK(child_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
};

/// Comparator implementing a SortKey list; reusable by other operators.
bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys);

}  // namespace tpdb

#endif  // TPDB_ENGINE_SORT_H_
