// Project: column selection / reordering, with optional renaming.
#ifndef TPDB_ENGINE_PROJECT_H_
#define TPDB_ENGINE_PROJECT_H_

#include <vector>

#include "engine/operator.h"

namespace tpdb {

/// Pipelined projection π_indices(child). `names` optionally renames the
/// projected columns (empty = keep the source names).
class Project final : public Operator {
 public:
  Project(OperatorPtr child, std::vector<int> indices,
          std::vector<std::string> names = {});

  const Schema& schema() const override { return schema_; }
  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  /// Builds the projection from the child's row reference (copies only the
  /// projected columns, never the full input row).
  const Row* NextRef() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<int> indices_;
  Schema schema_;
  Row projected_;  // backing storage for NextRef
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_PROJECT_H_
