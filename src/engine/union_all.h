// UnionAll: concatenation of multiple union-compatible inputs.
#ifndef TPDB_ENGINE_UNION_ALL_H_
#define TPDB_ENGINE_UNION_ALL_H_

#include <vector>

#include "engine/operator.h"

namespace tpdb {

/// Emits all rows of each child in order. Children must share a schema
/// (column names may differ; arity and types must match).
class UnionAll final : public Operator {
 public:
  explicit UnionAll(std::vector<OperatorPtr> children);

  const Schema& schema() const override { return children_.front()->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_UNION_ALL_H_
