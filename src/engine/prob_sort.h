// ProbSort: materializing sort over keys that may include the virtual
// `_prob` column — the tuple's lineage probability, computed on demand
// through the evaluation ladder rather than stored. `ORDER BY _prob DESC`
// over any pipeline (including joins) lowers onto this operator; the
// planner's pruned top-k path is an optimization layered on top for the
// scan-rooted shape, with this full sort as its parity baseline.
#ifndef TPDB_ENGINE_PROB_SORT_H_
#define TPDB_ENGINE_PROB_SORT_H_

#include <vector>

#include "engine/operator.h"
#include "engine/sort.h"
#include "lineage/compile/prob_eval.h"

namespace tpdb {

/// One ProbSort key: either a schema column (like SortKey) or the computed
/// probability (`is_prob`, column index ignored).
struct ProbSortKey {
  int column = 0;
  bool ascending = true;
  bool is_prob = false;
};

/// Materializing, stable sort over mixed value/probability keys.
class ProbSort final : public Operator {
 public:
  /// `methods_out`, when given, receives the ProbMethod bitmask of the
  /// ladder rungs used (fetch_or via atomic_ref in Close).
  ProbSort(OperatorPtr child, LineageManager* manager,
           std::vector<ProbSortKey> keys, ProbEvalOptions prob_opts = {},
           uint8_t* methods_out = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<ProbSortKey> keys_;
  ProbabilityEvaluator evaluator_;
  uint8_t* methods_out_;
  int lin_col_ = -1;
  std::vector<Row> buffer_;
  std::vector<double> probs_;  ///< per-buffer-row, only when a key needs it
  size_t pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_PROB_SORT_H_
