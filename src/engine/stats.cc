#include "engine/stats.h"

#include <algorithm>
#include <unordered_set>

namespace tpdb {

TableStats TableStats::Compute(const Table& table, int ts, int te) {
  TableStats stats;
  stats.rows = table.rows.size();
  const size_t n_cols = table.schema.num_columns();
  stats.columns.resize(n_cols);

  // Distinct-value estimation: exact hash sets, capped — once a column
  // exceeds the cap we extrapolate linearly (adequate for join-selectivity
  // decisions, which only need the order of magnitude).
  constexpr size_t kDistinctCap = 1u << 16;
  std::vector<std::unordered_set<uint64_t>> seen(n_cols);
  std::vector<size_t> sampled(n_cols, 0);
  std::vector<size_t> nulls(n_cols, 0);
  for (const Row& row : table.rows) {
    for (size_t c = 0; c < n_cols; ++c) {
      if (row[c].is_null()) {
        ++nulls[c];
        continue;
      }
      if (seen[c].size() < kDistinctCap) {
        seen[c].insert(row[c].Hash());
        ++sampled[c];
      }
    }
  }
  for (size_t c = 0; c < n_cols; ++c) {
    const size_t non_null = stats.rows - nulls[c];
    if (sampled[c] > 0 && sampled[c] < non_null) {
      // Extrapolate the distinct ratio over the unsampled remainder.
      const double ratio = static_cast<double>(seen[c].size()) /
                           static_cast<double>(sampled[c]);
      stats.columns[c].distinct_values =
          static_cast<size_t>(ratio * static_cast<double>(non_null));
    } else {
      stats.columns[c].distinct_values = seen[c].size();
    }
    stats.columns[c].null_fraction =
        stats.rows == 0 ? 0.0
                        : static_cast<double>(nulls[c]) /
                              static_cast<double>(stats.rows);
  }

  if (ts >= 0 && te >= 0 && stats.rows > 0) {
    TimePoint lo = INT64_MAX;
    TimePoint hi = INT64_MIN;
    double covered = 0.0;
    for (const Row& row : table.rows) {
      if (row[ts].is_null() || row[te].is_null()) continue;
      const Interval iv(row[ts].AsInt64(), row[te].AsInt64());
      lo = std::min(lo, iv.start);
      hi = std::max(hi, iv.end);
      covered += static_cast<double>(iv.duration());
    }
    if (lo < hi) {
      stats.extent = Interval(lo, hi);
      stats.avg_duration = covered / static_cast<double>(stats.rows);
      stats.avg_concurrency =
          covered / static_cast<double>(stats.extent.duration());
    }
  }
  return stats;
}

double EstimateOverlapJoinPairs(
    const TableStats& r, const TableStats& s,
    const std::vector<std::pair<int, int>>& equi_keys) {
  if (r.rows == 0 || s.rows == 0) return 0.0;
  // Equality selectivity: product over keys of 1/max(distinct), the
  // textbook System-R estimate.
  double selectivity = 1.0;
  for (const auto& [rc, sc] : equi_keys) {
    const size_t dr = std::max<size_t>(1, r.columns[rc].distinct_values);
    const size_t ds = std::max<size_t>(1, s.columns[sc].distinct_values);
    selectivity /= static_cast<double>(std::max(dr, ds));
  }
  // Temporal selectivity: probability that two random intervals of the
  // relations overlap within the joint extent.
  double temporal = 1.0;
  const Interval joint = r.extent.Span(s.extent);
  if (!joint.empty() && joint.duration() > 0) {
    temporal = std::min(
        1.0, (r.avg_duration + s.avg_duration) /
                 static_cast<double>(joint.duration()));
  }
  return static_cast<double>(r.rows) * static_cast<double>(s.rows) *
         selectivity * temporal;
}

bool PreferPartitionedJoin(
    const TableStats& r, const TableStats& s,
    const std::vector<std::pair<int, int>>& equi_keys) {
  if (equi_keys.empty()) return false;  // one giant partition: no benefit
  if (r.rows == 0 || s.rows == 0) return true;  // trivial either way
  // Partitioned cost ~ build + probes scanning their partition;
  // nested-loop cost ~ |r|·|s| predicate evaluations. The partitioned join
  // wins unless partitions are nearly the whole relation.
  double partition_fraction = 1.0;
  for (const auto& [rc, sc] : equi_keys) {
    (void)rc;
    const size_t ds = std::max<size_t>(1, s.columns[sc].distinct_values);
    partition_fraction /= static_cast<double>(ds);
  }
  const double probe_cost = static_cast<double>(r.rows) *
                            std::max(1.0, static_cast<double>(s.rows) *
                                              partition_fraction);
  const double nlj_cost =
      static_cast<double>(r.rows) * static_cast<double>(s.rows);
  return probe_cost < nlj_cost;
}

}  // namespace tpdb
