// Limit / Offset: bounds the number of rows flowing out of a pipeline.
#ifndef TPDB_ENGINE_LIMIT_H_
#define TPDB_ENGINE_LIMIT_H_

#include "engine/operator.h"

namespace tpdb {

/// Emits at most `limit` rows after skipping `offset` rows.
class Limit final : public Operator {
 public:
  Limit(OperatorPtr child, size_t limit, size_t offset = 0)
      : child_(std::move(child)), limit_(limit), offset_(offset) {
    TPDB_CHECK(child_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }
  void Open() override {
    child_->Open();
    skipped_ = 0;
    emitted_ = 0;
  }
  bool Next(Row* out) override {
    Row row;
    while (skipped_ < offset_) {
      if (!child_->Next(&row)) return false;
      ++skipped_;
    }
    if (emitted_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++emitted_;
    return true;
  }
  const Row* NextRef() override {
    while (skipped_ < offset_) {
      if (child_->NextRef() == nullptr) return nullptr;
      ++skipped_;
    }
    if (emitted_ >= limit_) return nullptr;
    const Row* row = child_->NextRef();
    if (row == nullptr) return nullptr;
    ++emitted_;
    return row;
  }
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t offset_;
  size_t skipped_ = 0;
  size_t emitted_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_LIMIT_H_
