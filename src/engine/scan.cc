#include "engine/scan.h"

// Header-only; anchors the translation unit.
namespace tpdb {}  // namespace tpdb
