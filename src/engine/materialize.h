// Helpers to run a plan to completion.
#ifndef TPDB_ENGINE_MATERIALIZE_H_
#define TPDB_ENGINE_MATERIALIZE_H_

#include "engine/operator.h"

namespace tpdb {

/// Runs `op` (Open/Next*/Close) and collects the result into a Table.
Table Materialize(Operator* op);

/// Runs `op` and discards rows, returning the row count (benchmark helper —
/// measures pipeline cost without result-buffer noise).
size_t Drain(Operator* op);

}  // namespace tpdb

#endif  // TPDB_ENGINE_MATERIALIZE_H_
