#include "engine/nested_loop_join.h"

namespace tpdb {

NestedLoopJoin::NestedLoopJoin(OperatorPtr left, OperatorPtr right,
                               ExprPtr predicate, JoinType join_type)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(FoldConstants(predicate)),
      join_type_(join_type) {
  TPDB_CHECK(left_ != nullptr);
  TPDB_CHECK(right_ != nullptr);
  TPDB_CHECK(predicate_ != nullptr);
  schema_ = Schema::Concat(left_->schema(), right_->schema());
}

void NestedLoopJoin::Open() {
  left_->Open();
  right_->Open();
  right_rows_.clear();
  Row row;
  while (right_->Next(&row)) right_rows_.push_back(std::move(row));
  right_->Close();
  have_left_ = false;
  left_matched_ = false;
  right_pos_ = 0;
}

bool NestedLoopJoin::Next(Row* out) {
  while (true) {
    if (!have_left_) {
      const Row* left_row = left_->NextRef();
      if (left_row == nullptr) return false;
      current_left_ = *left_row;  // copy-assign reuses the buffer
      have_left_ = true;
      left_matched_ = false;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_pos_++];
      Row joined = ConcatRows(current_left_, right_row);
      if (DatumTruthy(predicate_->Eval(joined))) {
        left_matched_ = true;
        *out = std::move(joined);
        return true;
      }
    }
    // Left row exhausted against the right side.
    const bool emit_unmatched =
        join_type_ == JoinType::kLeftOuter && !left_matched_;
    have_left_ = false;
    if (emit_unmatched) {
      *out = ConcatRows(current_left_,
                        NullRow(right_->schema().num_columns()));
      return true;
    }
  }
}

void NestedLoopJoin::Close() {
  left_->Close();
  right_rows_.clear();
  right_rows_.shrink_to_fit();
}

}  // namespace tpdb
