#include "engine/project.h"

namespace tpdb {

Project::Project(OperatorPtr child, std::vector<int> indices,
                 std::vector<std::string> names)
    : child_(std::move(child)), indices_(std::move(indices)) {
  TPDB_CHECK(child_ != nullptr);
  const Schema& in = child_->schema();
  TPDB_CHECK(names.empty() || names.size() == indices_.size())
      << "rename list must match projection list";
  std::vector<Column> cols;
  cols.reserve(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    const int idx = indices_[i];
    TPDB_CHECK_GE(idx, 0);
    TPDB_CHECK_LT(static_cast<size_t>(idx), in.num_columns());
    Column c = in.column(idx);
    if (!names.empty()) c.name = names[i];
    cols.push_back(std::move(c));
  }
  schema_ = Schema(std::move(cols));
}

bool Project::Next(Row* out) {
  const Row* row = child_->NextRef();
  if (row == nullptr) return false;
  Row projected;
  projected.reserve(indices_.size());
  for (const int idx : indices_) projected.push_back((*row)[idx]);
  *out = std::move(projected);
  return true;
}

const Row* Project::NextRef() {
  const Row* row = child_->NextRef();
  if (row == nullptr) return nullptr;
  projected_.clear();
  projected_.reserve(indices_.size());
  for (const int idx : indices_) projected_.push_back((*row)[idx]);
  return &projected_;
}

}  // namespace tpdb
