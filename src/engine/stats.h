// Relation statistics and the cost heuristics the planner uses to choose a
// physical overlap-join algorithm — the role of the PostgreSQL optimizer
// the paper modified ("implemented ... by modifying the parser, executor
// and optimizer"). The interesting decision in this system is exactly the
// one the paper's evaluation turns on: a selective equality θ wants the
// partitioned join, an empty/weak θ leaves only the nested loop.
#ifndef TPDB_ENGINE_STATS_H_
#define TPDB_ENGINE_STATS_H_

#include <cstdint>
#include <vector>

#include "engine/row.h"
#include "temporal/interval.h"

namespace tpdb {

/// Per-column statistics.
struct ColumnStats {
  /// Estimated number of distinct values (exact for small columns; a
  /// hash-set estimate elsewhere).
  size_t distinct_values = 0;
  /// Fraction of NULLs.
  double null_fraction = 0.0;
};

/// Statistics of one relation (engine table or flattened TP relation).
struct TableStats {
  size_t rows = 0;
  std::vector<ColumnStats> columns;
  /// Temporal extent and mean duration of the interval columns, when the
  /// table has them (ts/te indices >= 0 at Compute time).
  Interval extent;
  double avg_duration = 0.0;
  /// Average number of tuples valid at a random time point of the extent
  /// (= total covered chronons / extent length); drives overlap-join
  /// output estimates.
  double avg_concurrency = 0.0;

  /// Computes statistics over `table`. `ts`/`te` are the interval column
  /// indices, or -1 when the table is non-temporal.
  static TableStats Compute(const Table& table, int ts = -1, int te = -1);
};

/// Estimated number of (r, s) pairs that satisfy an equality on columns
/// with the given statistics plus interval overlap — the cardinality model
/// behind the physical join choice.
double EstimateOverlapJoinPairs(const TableStats& r, const TableStats& s,
                                const std::vector<std::pair<int, int>>&
                                    equi_keys);

/// Cost-based choice between the partitioned overlap join and the nested
/// loop: returns true if the partitioned plan is expected to win. With no
/// equality keys the partitioned join degenerates to one giant partition,
/// so the answer is false (matching the paper's observation that TA — which
/// cannot expose θ to the join — is stuck with the nested loop).
bool PreferPartitionedJoin(const TableStats& r, const TableStats& s,
                           const std::vector<std::pair<int, int>>&
                               equi_keys);

}  // namespace tpdb

#endif  // TPDB_ENGINE_STATS_H_
