#include "engine/prob_sort.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "tp/tp_relation.h"

namespace tpdb {

ProbSort::ProbSort(OperatorPtr child, LineageManager* manager,
                   std::vector<ProbSortKey> keys, ProbEvalOptions prob_opts,
                   uint8_t* methods_out)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      evaluator_(manager, prob_opts),
      methods_out_(methods_out) {
  TPDB_CHECK(child_ != nullptr);
  TPDB_CHECK(manager != nullptr);
  lin_col_ = child_->schema().IndexOf(kLineageColumn);
  TPDB_CHECK_GE(lin_col_, 0);
}

void ProbSort::Open() {
  child_->Open();
  buffer_.clear();
  Row row;
  while (child_->Next(&row)) buffer_.push_back(std::move(row));
  child_->Close();

  bool needs_prob = false;
  for (const ProbSortKey& key : keys_) needs_prob |= key.is_prob;
  if (needs_prob) {
    probs_.resize(buffer_.size());
    for (size_t i = 0; i < buffer_.size(); ++i)
      probs_[i] = evaluator_.Probability(buffer_[i][lin_col_].AsLineage());
  }

  // Sort an index permutation: the comparator needs the row's position to
  // find its probability.
  std::vector<size_t> order(buffer_.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](size_t x, size_t y) {
    for (const ProbSortKey& key : keys_) {
      if (key.is_prob) {
        if (probs_[x] != probs_[y])
          return key.ascending ? probs_[x] < probs_[y] : probs_[x] > probs_[y];
        continue;
      }
      const int c = buffer_[x][key.column].Compare(buffer_[y][key.column]);
      if (c != 0) return key.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(buffer_.size());
  for (const size_t i : order) sorted.push_back(std::move(buffer_[i]));
  buffer_ = std::move(sorted);
  pos_ = 0;
}

bool ProbSort::Next(Row* out) {
  if (pos_ >= buffer_.size()) return false;
  *out = buffer_[pos_++];
  return true;
}

void ProbSort::Close() {
  buffer_.clear();
  buffer_.shrink_to_fit();
  probs_.clear();
  probs_.shrink_to_fit();
  if (methods_out_ != nullptr) {
    std::atomic_ref<uint8_t>(*methods_out_)
        .fetch_or(evaluator_.methods_used(), std::memory_order_relaxed);
  }
}

}  // namespace tpdb
