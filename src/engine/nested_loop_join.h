// NestedLoopJoin: the general-θ join PostgreSQL's optimizer falls back to —
// and the plan the paper observes Temporal Alignment being stuck with
// ("the optimizer opts for a nested loop ... and this takes a huge toll").
#ifndef TPDB_ENGINE_NESTED_LOOP_JOIN_H_
#define TPDB_ENGINE_NESTED_LOOP_JOIN_H_

#include <vector>

#include "engine/expr.h"
#include "engine/operator.h"

namespace tpdb {

/// Join variants supported by the executor joins.
enum class JoinType { kInner, kLeftOuter };

/// Nested-loop join with an arbitrary predicate over the concatenated row.
/// The right input is materialized at Open(); the left input streams.
/// For kLeftOuter, unmatched left rows are emitted once, right side NULL.
class NestedLoopJoin final : public Operator {
 public:
  NestedLoopJoin(OperatorPtr left, OperatorPtr right, ExprPtr predicate,
                 JoinType join_type);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  bool Next(Row* out) override;
  void Close() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  JoinType join_type_;
  Schema schema_;

  std::vector<Row> right_rows_;
  Row current_left_;
  bool have_left_ = false;
  bool left_matched_ = false;
  size_t right_pos_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_NESTED_LOOP_JOIN_H_
