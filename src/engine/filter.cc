#include "engine/filter.h"

namespace tpdb {

bool Filter::Next(Row* out) {
  Row row;
  while (child_->Next(&row)) {
    if (DatumTruthy(predicate_->Eval(row))) {
      *out = std::move(row);
      return true;
    }
  }
  return false;
}

const Row* Filter::NextRef() {
  while (const Row* row = child_->NextRef()) {
    if (DatumTruthy(predicate_->Eval(*row))) return row;
  }
  return nullptr;
}

}  // namespace tpdb
