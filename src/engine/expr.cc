#include "engine/expr.h"

namespace tpdb {

namespace {

Datum BoolDatum(bool b) { return Datum(static_cast<int64_t>(b ? 1 : 0)); }

class ColExpr final : public Expr {
 public:
  ColExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}
  Datum Eval(const Row& row) const override {
    TPDB_CHECK_LT(static_cast<size_t>(index_), row.size());
    return row[index_];
  }
  std::string ToString() const override {
    return name_.empty() ? "$" + std::to_string(index_) : name_;
  }

 private:
  int index_;
  std::string name_;
};

class LitExpr final : public Expr {
 public:
  explicit LitExpr(Datum value) : value_(std::move(value)) {}
  Datum Eval(const Row&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  bool constant() const override { return true; }

 private:
  Datum value_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Datum Eval(const Row& row) const override {
    const Datum da = a_->Eval(row);
    const Datum db = b_->Eval(row);
    if (da.is_null() || db.is_null()) return Datum::Null();
    const int c = da.Compare(db);
    switch (op_) {
      case CompareOp::kEq:
        return BoolDatum(c == 0);
      case CompareOp::kNe:
        return BoolDatum(c != 0);
      case CompareOp::kLt:
        return BoolDatum(c < 0);
      case CompareOp::kLe:
        return BoolDatum(c <= 0);
      case CompareOp::kGt:
        return BoolDatum(c > 0);
      case CompareOp::kGe:
        return BoolDatum(c >= 0);
    }
    return Datum::Null();
  }
  std::string ToString() const override {
    static const char* kNames[] = {"=", "<>", "<", "<=", ">", ">="};
    return "(" + a_->ToString() + " " + kNames[static_cast<int>(op_)] + " " +
           b_->ToString() + ")";
  }
  bool constant() const override { return a_->constant() && b_->constant(); }
  ExprPtr Fold() const override {
    ExprPtr a = FoldConstants(a_);
    ExprPtr b = FoldConstants(b_);
    if (a == a_ && b == b_) return nullptr;
    return Compare(op_, std::move(a), std::move(b));
  }

 private:
  CompareOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

class AndOrExpr final : public Expr {
 public:
  AndOrExpr(bool is_and, ExprPtr a, ExprPtr b)
      : is_and_(is_and), a_(std::move(a)), b_(std::move(b)) {}
  Datum Eval(const Row& row) const override {
    // Kleene three-valued logic.
    const Datum da = a_->Eval(row);
    const Datum db = b_->Eval(row);
    const bool na = da.is_null();
    const bool nb = db.is_null();
    const bool ta = !na && DatumTruthy(da);
    const bool tb = !nb && DatumTruthy(db);
    if (is_and_) {
      if ((!na && !ta) || (!nb && !tb)) return BoolDatum(false);
      if (na || nb) return Datum::Null();
      return BoolDatum(true);
    }
    if (ta || tb) return BoolDatum(true);
    if (na || nb) return Datum::Null();
    return BoolDatum(false);
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + (is_and_ ? " AND " : " OR ") +
           b_->ToString() + ")";
  }
  bool constant() const override { return a_->constant() && b_->constant(); }
  ExprPtr Fold() const override {
    ExprPtr a = FoldConstants(a_);
    ExprPtr b = FoldConstants(b_);
    if (a == a_ && b == b_) return nullptr;
    return is_and_ ? AndExpr(std::move(a), std::move(b))
                   : OrExpr(std::move(a), std::move(b));
  }

 private:
  bool is_and_;
  ExprPtr a_;
  ExprPtr b_;
};

class NotOpExpr final : public Expr {
 public:
  explicit NotOpExpr(ExprPtr a) : a_(std::move(a)) {}
  Datum Eval(const Row& row) const override {
    const Datum d = a_->Eval(row);
    if (d.is_null()) return Datum::Null();
    return BoolDatum(!DatumTruthy(d));
  }
  std::string ToString() const override {
    return "(NOT " + a_->ToString() + ")";
  }
  bool constant() const override { return a_->constant(); }
  ExprPtr Fold() const override {
    ExprPtr a = FoldConstants(a_);
    return a == a_ ? nullptr : NotExpr(std::move(a));
  }

 private:
  ExprPtr a_;
};

class IsNullExpr final : public Expr {
 public:
  explicit IsNullExpr(ExprPtr a) : a_(std::move(a)) {}
  Datum Eval(const Row& row) const override {
    return BoolDatum(a_->Eval(row).is_null());
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " IS NULL)";
  }
  bool constant() const override { return a_->constant(); }
  ExprPtr Fold() const override {
    ExprPtr a = FoldConstants(a_);
    return a == a_ ? nullptr : IsNull(std::move(a));
  }

 private:
  ExprPtr a_;
};

class FnExpr final : public Expr {
 public:
  FnExpr(std::function<Datum(const Row&)> fn, std::string name)
      : fn_(std::move(fn)), name_(std::move(name)) {}
  Datum Eval(const Row& row) const override { return fn_(row); }
  std::string ToString() const override { return name_ + "(...)"; }

 private:
  std::function<Datum(const Row&)> fn_;
  std::string name_;
};

}  // namespace

ExprPtr Fn(std::function<Datum(const Row&)> fn, std::string name) {
  return std::make_shared<FnExpr>(std::move(fn), std::move(name));
}

ExprPtr Col(int index, std::string name) {
  return std::make_shared<ColExpr>(index, std::move(name));
}
ExprPtr Lit(Datum value) { return std::make_shared<LitExpr>(std::move(value)); }
ExprPtr Compare(CompareOp op, ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpr>(op, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Compare(CompareOp::kEq, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Compare(CompareOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Compare(CompareOp::kLe, std::move(a), std::move(b));
}
ExprPtr AndExpr(ExprPtr a, ExprPtr b) {
  return std::make_shared<AndOrExpr>(true, std::move(a), std::move(b));
}
ExprPtr OrExpr(ExprPtr a, ExprPtr b) {
  return std::make_shared<AndOrExpr>(false, std::move(a), std::move(b));
}
ExprPtr NotExpr(ExprPtr a) { return std::make_shared<NotOpExpr>(std::move(a)); }
ExprPtr IsNull(ExprPtr a) { return std::make_shared<IsNullExpr>(std::move(a)); }

ExprPtr OverlapsExpr(int ts_a, int te_a, int ts_b, int te_b) {
  // a.ts < b.te AND b.ts < a.te
  return AndExpr(Lt(Col(ts_a), Col(te_b)), Lt(Col(ts_b), Col(te_a)));
}

ExprPtr ColumnsEqual(const std::vector<std::pair<int, int>>& pairs) {
  ExprPtr acc = Lit(Datum(static_cast<int64_t>(1)));
  for (const auto& [l, r] : pairs) {
    acc = AndExpr(std::move(acc), Eq(Col(l), Col(r)));
  }
  return acc;
}

ExprPtr FoldConstants(const ExprPtr& e) {
  TPDB_CHECK(e != nullptr);
  if (e->constant()) {
    if (dynamic_cast<const LitExpr*>(e.get()) != nullptr) return e;
    // A constant tree reads no columns: evaluate it once, keep the value.
    static const Row kEmptyRow;
    return Lit(e->Eval(kEmptyRow));
  }
  ExprPtr folded = e->Fold();
  return folded != nullptr ? folded : e;
}

bool DatumTruthy(const Datum& d) {
  if (d.is_null()) return false;
  if (d.type() == DatumType::kInt64) return d.AsInt64() != 0;
  return true;
}

}  // namespace tpdb
