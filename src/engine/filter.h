// Filter: keeps rows whose predicate evaluates to a non-null truthy value.
#ifndef TPDB_ENGINE_FILTER_H_
#define TPDB_ENGINE_FILTER_H_

#include "engine/expr.h"
#include "engine/operator.h"

namespace tpdb {

/// Pipelined selection σ_pred(child).
class Filter final : public Operator {
 public:
  // Constant subtrees of the predicate are folded once here, so they cost
  // nothing per Next() (column offsets are already resolved at build).
  Filter(OperatorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(FoldConstants(predicate)) {
    TPDB_CHECK(child_ != nullptr);
    TPDB_CHECK(predicate_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }
  void Open() override { child_->Open(); }
  bool Next(Row* out) override;
  /// Forwards the child's row pointer for passing tuples — a filter over a
  /// table scan moves no data at all.
  const Row* NextRef() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

}  // namespace tpdb

#endif  // TPDB_ENGINE_FILTER_H_
