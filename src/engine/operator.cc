#include "engine/operator.h"

// Currently header-only; this translation unit anchors the vtable.
namespace tpdb {}  // namespace tpdb
