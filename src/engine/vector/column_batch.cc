#include "engine/vector/column_batch.h"

namespace tpdb::vec {

Datum ColumnVector::ValueAt(size_t row) const {
  switch (rep) {
    case Rep::kAllNull:
      return Datum::Null();
    case Rep::kInt64:
      return IsNull(row) ? Datum::Null() : Datum(ints[row]);
    case Rep::kDouble:
      return IsNull(row) ? Datum::Null() : Datum(doubles[row]);
    case Rep::kString:
      return IsNull(row) ? Datum::Null() : Datum(strings[row]);
    case Rep::kDict:
      return IsNull(row) ? Datum::Null() : Datum((*dict)[codes[row]]);
    case Rep::kLineage:
      return Datum(lineage[row]);
    case Rep::kGeneric:
      return generic[row];
  }
  return Datum::Null();
}

ColumnVector ColumnVector::View() const {
  ColumnVector v;
  v.rep = rep;
  v.null_bits = null_bits;
  v.null_bit_offset = null_bit_offset;
  v.ints = ints;
  v.doubles = doubles;
  v.strings = strings;
  v.dict = dict;
  v.codes = codes;
  v.lineage = lineage;
  v.generic = generic;
  return v;
}

void ColumnBatch::DecodeRow(size_t row, Row* out) const {
  out->clear();
  out->reserve(columns.size());
  for (const ColumnVector& col : columns) out->push_back(col.ValueAt(row));
}

void ColumnBatch::AssignView(const ColumnBatch& src) {
  num_rows = src.num_rows;
  columns.clear();
  columns.reserve(src.columns.size());
  for (const ColumnVector& col : src.columns) columns.push_back(col.View());
  sel_all = src.sel_all;
  sel = src.sel;
}

namespace {

/// Transposes one column, picking the densest representation the values
/// admit (same decision tree as the segment encoder).
void TransposeColumn(const std::vector<Row>& rows, size_t begin, size_t end,
                     size_t col, ColumnVector* out) {
  const size_t n = end - begin;
  size_t nulls = 0;
  bool all_int = true, all_double = true, all_string = true,
       all_lineage = true;
  for (size_t r = begin; r < end; ++r) {
    switch (rows[r][col].type()) {
      case DatumType::kNull:
        ++nulls;
        all_lineage = false;
        break;
      case DatumType::kInt64:
        all_double = all_string = all_lineage = false;
        break;
      case DatumType::kDouble:
        all_int = all_string = all_lineage = false;
        break;
      case DatumType::kString:
        all_int = all_double = all_lineage = false;
        break;
      case DatumType::kLineage:
        all_int = all_double = all_string = false;
        break;
    }
  }

  *out = ColumnVector();
  if (nulls == n) {
    out->rep = ColumnVector::Rep::kAllNull;
    return;
  }
  const auto build_bitmap = [&] {
    if (nulls == 0) return;
    out->owned_null_bits.assign((n + 7) / 8, 0);
    for (size_t r = begin; r < end; ++r)
      if (rows[r][col].is_null())
        out->owned_null_bits[(r - begin) / 8] |= 1u << ((r - begin) % 8);
    out->null_bits = out->owned_null_bits;
  };
  if (all_int) {
    out->rep = ColumnVector::Rep::kInt64;
    build_bitmap();
    out->owned_ints.reserve(n);
    for (size_t r = begin; r < end; ++r) {
      const Datum& v = rows[r][col];
      out->owned_ints.push_back(v.is_null() ? 0 : v.AsInt64());
    }
    out->ints = out->owned_ints;
  } else if (all_double) {
    out->rep = ColumnVector::Rep::kDouble;
    build_bitmap();
    out->owned_doubles.reserve(n);
    for (size_t r = begin; r < end; ++r) {
      const Datum& v = rows[r][col];
      out->owned_doubles.push_back(v.is_null() ? 0.0 : v.AsDouble());
    }
    out->doubles = out->owned_doubles;
  } else if (all_string) {
    out->rep = ColumnVector::Rep::kString;
    build_bitmap();
    out->owned_strings.reserve(n);
    for (size_t r = begin; r < end; ++r) {
      const Datum& v = rows[r][col];
      out->owned_strings.push_back(v.is_null() ? std::string() : v.AsString());
    }
    out->strings = out->owned_strings;
  } else if (all_lineage && nulls == 0) {
    out->rep = ColumnVector::Rep::kLineage;
    out->owned_lineage.reserve(n);
    for (size_t r = begin; r < end; ++r)
      out->owned_lineage.push_back(rows[r][col].AsLineage());
    out->lineage = out->owned_lineage;
  } else {
    out->rep = ColumnVector::Rep::kGeneric;
    out->owned_generic.reserve(n);
    for (size_t r = begin; r < end; ++r)
      out->owned_generic.push_back(rows[r][col]);
    out->generic = out->owned_generic;
  }
}

}  // namespace

void TransposeRows(const std::vector<Row>& rows, size_t begin, size_t end,
                   ColumnBatch* out) {
  TPDB_CHECK_LT(begin, end);
  TPDB_CHECK_LE(end, rows.size());
  const size_t num_cols = rows[begin].size();
  out->num_rows = end - begin;
  out->sel_all = true;
  out->sel.clear();
  out->columns.resize(num_cols);
  for (size_t c = 0; c < num_cols; ++c)
    TransposeColumn(rows, begin, end, c, &out->columns[c]);
}

}  // namespace tpdb::vec
