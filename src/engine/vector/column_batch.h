// ColumnBatch: the unit of the vectorized execution path — a slice of up
// to kBatchRows tuples held column-wise as typed vectors plus a selection
// vector of the rows still alive.
//
// A ColumnVector is either a zero-copy *view* (spans aliasing a mmapped
// segment chunk or another batch's storage) or *owned* (typed vectors the
// batch transposed out of row storage). Views are what make the cold path
// fast: a SegmentBatchScan hands out the segment's raw int64/double arrays
// and dictionary codes without decoding a single Datum; rows removed by a
// filter are merely deselected, never copied.
//
// Null convention matches storage/segment.h: bit (null_bit_offset + i) of
// `null_bits` set ⇒ row i is NULL; an empty bitmap means no row is NULL
// (kGeneric encodes NULLs as null Datums instead).
#ifndef TPDB_ENGINE_VECTOR_COLUMN_BATCH_H_
#define TPDB_ENGINE_VECTOR_COLUMN_BATCH_H_

#include <span>
#include <string>
#include <vector>

#include "engine/row.h"
#include "engine/schema.h"

namespace tpdb::vec {

/// Target tuples per batch (sources may emit short tail batches).
inline constexpr size_t kBatchRows = 1024;

/// One column of a batch. Move-only: spans may alias the owned_* storage,
/// so a copy would dangle — use View() for an explicit non-owning alias.
struct ColumnVector {
  /// Physical representation (what the spans below mean).
  enum class Rep : uint8_t {
    kAllNull,  ///< every row NULL; no data
    kInt64,    ///< ints
    kDouble,   ///< doubles
    kString,   ///< strings (one std::string per row)
    kDict,     ///< dict + codes (the segment string encoding)
    kLineage,  ///< lineage (never NULL — a null *ref* is still a datum)
    kGeneric,  ///< generic Datums (mixed-type fallback; NULLs are Datums)
  };

  Rep rep = Rep::kAllNull;

  std::span<const uint8_t> null_bits;  ///< empty = no NULLs (see header)
  size_t null_bit_offset = 0;

  std::span<const int64_t> ints;
  std::span<const double> doubles;
  std::span<const std::string> strings;
  const std::vector<std::string>* dict = nullptr;
  std::span<const uint32_t> codes;
  std::span<const LineageRef> lineage;
  std::span<const Datum> generic;

  // Owned backing; the spans above may view these. Empty for views.
  std::vector<uint8_t> owned_null_bits;
  std::vector<int64_t> owned_ints;
  std::vector<double> owned_doubles;
  std::vector<std::string> owned_strings;
  std::vector<LineageRef> owned_lineage;
  std::vector<Datum> owned_generic;

  ColumnVector() = default;
  ColumnVector(ColumnVector&&) = default;
  ColumnVector& operator=(ColumnVector&&) = default;
  ColumnVector(const ColumnVector&) = delete;
  ColumnVector& operator=(const ColumnVector&) = delete;

  bool IsNull(size_t row) const {
    if (rep == Rep::kAllNull) return true;
    if (rep == Rep::kGeneric) return generic[row].is_null();
    if (null_bits.empty()) return false;
    const size_t bit = null_bit_offset + row;
    return (null_bits[bit / 8] >> (bit % 8)) & 1u;
  }

  const std::string& StringAt(size_t row) const {
    return rep == Rep::kDict ? (*dict)[codes[row]] : strings[row];
  }

  /// Lineage reference of `row` (CHECK-fails on non-lineage values, like
  /// the row path's Datum::AsLineage).
  LineageRef LineageAt(size_t row) const {
    if (rep == Rep::kLineage) return lineage[row];
    return ValueAt(row).AsLineage();
  }

  /// The value of `row` as a Datum (copies strings).
  Datum ValueAt(size_t row) const;

  /// Non-owning alias of this vector; `this` must outlive the view (a
  /// batch operator's output batch views its child's current batch, which
  /// the protocol keeps alive until the next NextBatch call).
  ColumnVector View() const;
};

/// A batch of rows in columnar form, plus the selection vector.
struct ColumnBatch {
  size_t num_rows = 0;
  std::vector<ColumnVector> columns;
  /// When `sel_all` is true every row is active; otherwise only the rows
  /// listed in `sel`, in increasing order — so consuming a batch in
  /// selection order preserves the row path's emit order exactly.
  bool sel_all = true;
  std::vector<uint32_t> sel;

  size_t ActiveRows() const { return sel_all ? num_rows : sel.size(); }
  uint32_t ActiveRow(size_t i) const {
    return sel_all ? static_cast<uint32_t>(i) : sel[i];
  }

  /// Materializes row `row` (a physical index, not a selection position).
  void DecodeRow(size_t row, Row* out) const;

  /// Points this batch at `src`'s columns (views) with `src`'s selection.
  void AssignView(const ColumnBatch& src);
};

/// Transposes rows [begin, end) of `rows` into typed column vectors:
/// uniformly-typed columns get int64/double/string/lineage storage (plus a
/// null bitmap), mixed columns fall back to generic Datums — mirroring the
/// segment encoder's choices.
void TransposeRows(const std::vector<Row>& rows, size_t begin, size_t end,
                   ColumnBatch* out);

}  // namespace tpdb::vec

#endif  // TPDB_ENGINE_VECTOR_COLUMN_BATCH_H_
