#include "engine/vector/predicate.h"

#include <utility>
#include <vector>

namespace tpdb::vec {

namespace {

using Rep = ColumnVector::Rep;

int8_t BoolTruth(bool b) { return b ? kTrue : kFalse; }

bool ToDouble(const Datum& d, double* out) {
  if (d.type() == DatumType::kInt64) {
    *out = static_cast<double>(d.AsInt64());
    return true;
  }
  if (d.type() == DatumType::kDouble) {
    *out = d.AsDouble();
    return true;
  }
  return false;
}

/// Truth of `op` given a three-way comparison result.
int8_t CompareTruth(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return BoolTruth(c == 0);
    case CompareOp::kNe: return BoolTruth(c != 0);
    case CompareOp::kLt: return BoolTruth(c < 0);
    case CompareOp::kLe: return BoolTruth(c <= 0);
    case CompareOp::kGt: return BoolTruth(c > 0);
    case CompareOp::kGe: return BoolTruth(c >= 0);
  }
  return kNull;
}

template <typename T>
int8_t CompareNum(CompareOp op, T x, T y) {
  switch (op) {
    case CompareOp::kEq: return BoolTruth(x == y);
    case CompareOp::kNe: return BoolTruth(x != y);
    case CompareOp::kLt: return BoolTruth(x < y);
    case CompareOp::kLe: return BoolTruth(x <= y);
    case CompareOp::kGt: return BoolTruth(x > y);
    case CompareOp::kGe: return BoolTruth(x >= y);
  }
  return kNull;
}

/// Per-row comparison replicating the row path exactly: CompareExpr's
/// Datum::Compare semantics, or — when `promote` — the planner's
/// PromotedCompare (compare as doubles, NULL on non-numeric operands).
int8_t CompareDatums(bool promote, CompareOp op, const Datum& a,
                     const Datum& b) {
  if (a.is_null() || b.is_null()) return kNull;
  if (promote) {
    double x = 0, y = 0;
    if (!ToDouble(a, &x) || !ToDouble(b, &y)) return kNull;
    return CompareNum(op, x, y);
  }
  return CompareTruth(op, a.Compare(b));
}

class ConstNode final : public VectorExpr {
 public:
  explicit ConstNode(int8_t truth) : truth_(truth) {}
  void EvalTruth(const ColumnBatch&, const uint32_t*, size_t n,
                 int8_t* out) const override {
    std::fill(out, out + n, truth_);
  }
  const int8_t* constant_truth() const override { return &truth_; }

 private:
  int8_t truth_;
};

class CompareNode final : public VectorExpr {
 public:
  CompareNode(CompareOp op, bool promote, VOperand a, VOperand b)
      : op_(op), promote_(promote), a_(std::move(a)), b_(std::move(b)) {}

  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override;

 private:
  /// Per-dictionary truth cache for "dict column vs string literal": one
  /// comparison per distinct string instead of one per row. Scratch state
  /// — see the thread-safety note in the header.
  mutable const std::vector<std::string>* cached_dict_ = nullptr;
  mutable std::vector<int8_t> dict_truth_;

  CompareOp op_;
  bool promote_;
  VOperand a_;
  VOperand b_;
};

void CompareNode::EvalTruth(const ColumnBatch& batch, const uint32_t* rows,
                            size_t n, int8_t* out) const {
  const ColumnVector* ca =
      a_.is_column() ? &batch.columns[static_cast<size_t>(a_.col)] : nullptr;
  const ColumnVector* cb =
      b_.is_column() ? &batch.columns[static_cast<size_t>(b_.col)] : nullptr;
  const auto row_at = [&](size_t i) -> size_t {
    return rows != nullptr ? rows[i] : i;
  };
  const auto null_at = [&](const ColumnVector* c, size_t r) {
    return c != nullptr && c->IsNull(r);
  };

  // Runtime shape of each side. Literals are non-null (builders fold
  // null-literal comparisons to a constant).
  const bool a_int = ca ? ca->rep == Rep::kInt64
                        : a_.lit.type() == DatumType::kInt64;
  const bool b_int = cb ? cb->rep == Rep::kInt64
                        : b_.lit.type() == DatumType::kInt64;
  const bool a_dbl = ca ? ca->rep == Rep::kDouble
                        : a_.lit.type() == DatumType::kDouble;
  const bool b_dbl = cb ? cb->rep == Rep::kDouble
                        : b_.lit.type() == DatumType::kDouble;
  const bool a_str = ca ? (ca->rep == Rep::kDict || ca->rep == Rep::kString)
                        : a_.lit.type() == DatumType::kString;
  const bool b_str = cb ? (cb->rep == Rep::kDict || cb->rep == Rep::kString)
                        : b_.lit.type() == DatumType::kString;

  // Same-type int64 without promotion: Datum::Compare is numeric order.
  if (!promote_ && a_int && b_int) {
    const int64_t la = ca == nullptr ? a_.lit.AsInt64() : 0;
    const int64_t lb = cb == nullptr ? b_.lit.AsInt64() : 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t r = row_at(i);
      if (null_at(ca, r) || null_at(cb, r)) {
        out[i] = kNull;
        continue;
      }
      out[i] = CompareNum(op_, ca ? ca->ints[r] : la, cb ? cb->ints[r] : lb);
    }
    return;
  }

  // Doubles either way (same-type doubles, or the planner's promotion of
  // an int64/double mix).
  const bool a_num = a_int || a_dbl;
  const bool b_num = b_int || b_dbl;
  if (a_num && b_num && (promote_ || (a_dbl && b_dbl))) {
    const double la =
        ca == nullptr ? (a_int ? static_cast<double>(a_.lit.AsInt64())
                               : a_.lit.AsDouble())
                      : 0.0;
    const double lb =
        cb == nullptr ? (b_int ? static_cast<double>(b_.lit.AsInt64())
                               : b_.lit.AsDouble())
                      : 0.0;
    for (size_t i = 0; i < n; ++i) {
      const size_t r = row_at(i);
      if (null_at(ca, r) || null_at(cb, r)) {
        out[i] = kNull;
        continue;
      }
      const double x =
          ca ? (a_int ? static_cast<double>(ca->ints[r]) : ca->doubles[r])
             : la;
      const double y =
          cb ? (b_int ? static_cast<double>(cb->ints[r]) : cb->doubles[r])
             : lb;
      out[i] = CompareNum(op_, x, y);
    }
    return;
  }

  if (!promote_ && a_str && b_str) {
    // Dictionary column vs string literal: one comparison per distinct
    // string, then a table lookup per row.
    if (ca != nullptr && ca->rep == Rep::kDict && cb == nullptr) {
      if (cached_dict_ != ca->dict) {
        cached_dict_ = ca->dict;
        dict_truth_.resize(ca->dict->size());
        for (size_t d = 0; d < ca->dict->size(); ++d)
          dict_truth_[d] =
              CompareTruth(op_, (*ca->dict)[d].compare(b_.lit.AsString()));
      }
      for (size_t i = 0; i < n; ++i) {
        const size_t r = row_at(i);
        out[i] = ca->IsNull(r) ? kNull : dict_truth_[ca->codes[r]];
      }
      return;
    }
    const std::string* la = ca == nullptr ? &a_.lit.AsString() : nullptr;
    const std::string* lb = cb == nullptr ? &b_.lit.AsString() : nullptr;
    for (size_t i = 0; i < n; ++i) {
      const size_t r = row_at(i);
      if (null_at(ca, r) || null_at(cb, r)) {
        out[i] = kNull;
        continue;
      }
      const std::string& x = ca ? ca->StringAt(r) : *la;
      const std::string& y = cb ? cb->StringAt(r) : *lb;
      out[i] = CompareTruth(op_, x.compare(y));
    }
    return;
  }

  // Mixed / generic shapes: per-row Datums with exact row-path semantics.
  for (size_t i = 0; i < n; ++i) {
    const size_t r = row_at(i);
    const Datum x = ca ? ca->ValueAt(r) : a_.lit;
    const Datum y = cb ? cb->ValueAt(r) : b_.lit;
    out[i] = CompareDatums(promote_, op_, x, y);
  }
}

class TruthyNode final : public VectorExpr {
 public:
  explicit TruthyNode(int col) : col_(col) {}
  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override {
    const ColumnVector& c = batch.columns[static_cast<size_t>(col_)];
    for (size_t i = 0; i < n; ++i) {
      const size_t r = rows != nullptr ? rows[i] : i;
      if (c.IsNull(r)) {
        out[i] = kNull;
      } else if (c.rep == Rep::kInt64) {
        out[i] = BoolTruth(c.ints[r] != 0);
      } else if (c.rep == Rep::kGeneric) {
        out[i] = BoolTruth(DatumTruthy(c.generic[r]));
      } else {
        out[i] = kTrue;  // DatumTruthy: non-null non-int64 is truthy
      }
    }
  }

 private:
  int col_;
};

class IsNullColNode final : public VectorExpr {
 public:
  explicit IsNullColNode(int col) : col_(col) {}
  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override {
    const ColumnVector& c = batch.columns[static_cast<size_t>(col_)];
    for (size_t i = 0; i < n; ++i)
      out[i] = BoolTruth(c.IsNull(rows != nullptr ? rows[i] : i));
  }

 private:
  int col_;
};

class IsNullOfNode final : public VectorExpr {
 public:
  explicit IsNullOfNode(VectorExprPtr a) : a_(std::move(a)) {}
  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override {
    buf_.resize(n);
    a_->EvalTruth(batch, rows, n, buf_.data());
    for (size_t i = 0; i < n; ++i) out[i] = BoolTruth(buf_[i] == kNull);
  }

 private:
  VectorExprPtr a_;
  mutable std::vector<int8_t> buf_;
};

class AndOrNode final : public VectorExpr {
 public:
  AndOrNode(bool is_and, VectorExprPtr a, VectorExprPtr b)
      : is_and_(is_and), a_(std::move(a)), b_(std::move(b)) {}
  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override {
    a_buf_.resize(n);
    b_buf_.resize(n);
    a_->EvalTruth(batch, rows, n, a_buf_.data());
    b_->EvalTruth(batch, rows, n, b_buf_.data());
    // Kleene, matching engine/expr.cc's AndOrExpr.
    for (size_t i = 0; i < n; ++i) {
      const int8_t a = a_buf_[i], b = b_buf_[i];
      if (is_and_) {
        out[i] = (a == kFalse || b == kFalse) ? kFalse
                 : (a == kNull || b == kNull) ? kNull
                                              : kTrue;
      } else {
        out[i] = (a == kTrue || b == kTrue) ? kTrue
                 : (a == kNull || b == kNull) ? kNull
                                              : kFalse;
      }
    }
  }

 private:
  bool is_and_;
  VectorExprPtr a_;
  VectorExprPtr b_;
  mutable std::vector<int8_t> a_buf_;
  mutable std::vector<int8_t> b_buf_;
};

class NotNode final : public VectorExpr {
 public:
  explicit NotNode(VectorExprPtr a) : a_(std::move(a)) {}
  void EvalTruth(const ColumnBatch& batch, const uint32_t* rows, size_t n,
                 int8_t* out) const override {
    a_->EvalTruth(batch, rows, n, out);
    for (size_t i = 0; i < n; ++i)
      if (out[i] != kNull) out[i] = BoolTruth(out[i] == kFalse);
  }

 private:
  VectorExprPtr a_;
};

}  // namespace

VectorExprPtr VConst(int8_t truth) {
  return std::make_unique<ConstNode>(truth);
}

VectorExprPtr VCompare(CompareOp op, bool promote_numeric, VOperand a,
                       VOperand b) {
  if (!a.is_column() && !b.is_column())
    return VConst(CompareDatums(promote_numeric, op, a.lit, b.lit));
  if ((!a.is_column() && a.lit.is_null()) ||
      (!b.is_column() && b.lit.is_null()))
    return VConst(kNull);  // any comparison with NULL is NULL
  return std::make_unique<CompareNode>(op, promote_numeric, std::move(a),
                                       std::move(b));
}

VectorExprPtr VTruthy(VOperand a) {
  if (!a.is_column())
    return VConst(a.lit.is_null() ? kNull : BoolTruth(DatumTruthy(a.lit)));
  return std::make_unique<TruthyNode>(a.col);
}

VectorExprPtr VIsNull(VOperand a) {
  if (!a.is_column()) return VConst(BoolTruth(a.lit.is_null()));
  return std::make_unique<IsNullColNode>(a.col);
}

VectorExprPtr VIsNullOf(VectorExprPtr a) {
  if (const int8_t* t = a->constant_truth())
    return VConst(BoolTruth(*t == kNull));
  return std::make_unique<IsNullOfNode>(std::move(a));
}

VectorExprPtr VAnd(VectorExprPtr a, VectorExprPtr b) {
  // Kleene folds: FALSE absorbs (even against NULL), TRUE is the identity.
  if (const int8_t* t = a->constant_truth()) {
    if (*t == kFalse) return VConst(kFalse);
    if (*t == kTrue) return b;
  }
  if (const int8_t* t = b->constant_truth()) {
    if (*t == kFalse) return VConst(kFalse);
    if (*t == kTrue) return a;
  }
  if (a->constant_truth() != nullptr && b->constant_truth() != nullptr)
    return VConst(kNull);  // both NULL
  return std::make_unique<AndOrNode>(true, std::move(a), std::move(b));
}

VectorExprPtr VOr(VectorExprPtr a, VectorExprPtr b) {
  if (const int8_t* t = a->constant_truth()) {
    if (*t == kTrue) return VConst(kTrue);
    if (*t == kFalse) return b;
  }
  if (const int8_t* t = b->constant_truth()) {
    if (*t == kTrue) return VConst(kTrue);
    if (*t == kFalse) return a;
  }
  if (a->constant_truth() != nullptr && b->constant_truth() != nullptr)
    return VConst(kNull);
  return std::make_unique<AndOrNode>(false, std::move(a), std::move(b));
}

VectorExprPtr VNot(VectorExprPtr a) {
  if (const int8_t* t = a->constant_truth())
    return VConst(*t == kNull ? kNull : BoolTruth(*t == kFalse));
  return std::make_unique<NotNode>(std::move(a));
}

}  // namespace tpdb::vec
