#include "engine/vector/adapters.h"

namespace tpdb::vec {

BatchToRowAdapter::BatchToRowAdapter(BatchOperatorPtr child,
                                     VectorStats* stats)
    : child_(std::move(child)), stats_(stats) {
  TPDB_CHECK(child_ != nullptr);
}

void BatchToRowAdapter::Open() {
  child_->Open();
  current_ = nullptr;
  pos_ = 0;
}

const Row* BatchToRowAdapter::NextRef() {
  while (current_ == nullptr || pos_ >= current_->ActiveRows()) {
    current_ = child_->NextBatch();
    pos_ = 0;
    if (current_ == nullptr) return nullptr;
  }
  current_->DecodeRow(current_->ActiveRow(pos_++), &buffer_);
  if (stats_ != nullptr) ++stats_->rows_emitted;
  return &buffer_;
}

bool BatchToRowAdapter::Next(Row* out) {
  const Row* row = NextRef();
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

void BatchToRowAdapter::Close() {
  child_->Close();
  current_ = nullptr;
  pos_ = 0;
}

RowToBatchAdapter::RowToBatchAdapter(OperatorPtr child, VectorStats* stats)
    : child_(std::move(child)), stats_(stats) {
  TPDB_CHECK(child_ != nullptr);
}

const ColumnBatch* RowToBatchAdapter::NextBatch() {
  rows_.clear();
  while (rows_.size() < kBatchRows) {
    const Row* row = child_->NextRef();
    if (row == nullptr) break;
    rows_.push_back(*row);
  }
  if (rows_.empty()) return nullptr;
  TransposeRows(rows_, 0, rows_.size(), &batch_);
  if (stats_ != nullptr) {
    ++stats_->batches;
    stats_->rows_scanned += rows_.size();
  }
  return &batch_;
}

Table MaterializeBatches(BatchOperator* op, VectorStats* stats) {
  Table out;
  out.schema = op->schema();
  op->Open();
  while (const ColumnBatch* batch = op->NextBatch()) {
    const size_t n = batch->ActiveRows();
    out.rows.reserve(out.rows.size() + n);
    for (size_t i = 0; i < n; ++i) {
      Row row;
      batch->DecodeRow(batch->ActiveRow(i), &row);
      out.rows.push_back(std::move(row));
    }
    if (stats != nullptr) stats->rows_emitted += n;
  }
  op->Close();
  return out;
}

}  // namespace tpdb::vec
