#include "engine/vector/batch_ops.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "lineage/probability.h"
#include "tp/tp_relation.h"

namespace tpdb::vec {

TableBatchScan::TableBatchScan(const Table* table, size_t begin, size_t end,
                               VectorStats* stats)
    : table_(table), begin_(begin), end_(end), pos_(begin), stats_(stats) {
  TPDB_CHECK(table_ != nullptr);
  TPDB_CHECK_LE(begin_, end_);
}

const ColumnBatch* TableBatchScan::NextBatch() {
  const size_t limit = std::min(end_, table_->rows.size());
  if (pos_ >= limit) return nullptr;
  const size_t n = std::min(kBatchRows, limit - pos_);
  TransposeRows(table_->rows, pos_, pos_ + n, &batch_);
  pos_ += n;
  if (stats_ != nullptr) {
    ++stats_->batches;
    stats_->rows_scanned += n;
  }
  return &batch_;
}

BatchFilter::BatchFilter(BatchOperatorPtr child, VectorExprPtr predicate,
                         VectorStats* stats)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      stats_(stats) {
  TPDB_CHECK(child_ != nullptr);
  TPDB_CHECK(predicate_ != nullptr);
}

const ColumnBatch* BatchFilter::NextBatch() {
  while (const ColumnBatch* in = child_->NextBatch()) {
    const size_t n = in->ActiveRows();
    if (n == 0) continue;
    truth_.resize(n);
    predicate_->EvalTruth(*in, in->sel_all ? nullptr : in->sel.data(), n,
                          truth_.data());
    size_t survivors = 0;
    for (size_t i = 0; i < n; ++i) survivors += truth_[i] == kTrue;
    if (survivors == n) return in;  // untouched pass-through
    if (stats_ != nullptr) stats_->rows_pruned += n - survivors;
    if (survivors == 0) continue;
    out_.AssignView(*in);
    out_.sel_all = false;
    out_.sel.clear();
    out_.sel.reserve(survivors);
    for (size_t i = 0; i < n; ++i)
      if (truth_[i] == kTrue) out_.sel.push_back(in->ActiveRow(i));
    return &out_;
  }
  return nullptr;
}

BatchProject::BatchProject(BatchOperatorPtr child, std::vector<int> indices,
                           std::vector<std::string> names)
    : child_(std::move(child)), indices_(std::move(indices)) {
  TPDB_CHECK(child_ != nullptr);
  const Schema& in = child_->schema();
  TPDB_CHECK(names.empty() || names.size() == indices_.size())
      << "rename list must match projection list";
  std::vector<Column> cols;
  cols.reserve(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    const int idx = indices_[i];
    TPDB_CHECK_GE(idx, 0);
    TPDB_CHECK_LT(static_cast<size_t>(idx), in.num_columns());
    Column c = in.column(static_cast<size_t>(idx));
    if (!names.empty()) c.name = names[i];
    cols.push_back(std::move(c));
  }
  schema_ = Schema(std::move(cols));
}

const ColumnBatch* BatchProject::NextBatch() {
  const ColumnBatch* in = child_->NextBatch();
  if (in == nullptr) return nullptr;
  out_.num_rows = in->num_rows;
  out_.columns.clear();
  out_.columns.reserve(indices_.size());
  for (const int idx : indices_)
    out_.columns.push_back(in->columns[static_cast<size_t>(idx)].View());
  out_.sel_all = in->sel_all;
  out_.sel = in->sel;
  return &out_;
}

BatchProbThreshold::BatchProbThreshold(BatchOperatorPtr child,
                                       LineageManager* manager,
                                       double threshold, bool strict,
                                       VectorStats* stats,
                                       ProbEvalOptions prob_opts,
                                       uint8_t* methods_out)
    : child_(std::move(child)),
      threshold_(threshold),
      strict_(strict),
      stats_(stats),
      evaluator_(manager, prob_opts),
      methods_out_(methods_out) {
  TPDB_CHECK(child_ != nullptr);
  TPDB_CHECK(manager != nullptr);
  lin_col_ = child_->schema().IndexOf(kLineageColumn);
  TPDB_CHECK_GE(lin_col_, 0);
}

void BatchProbThreshold::Close() {
  child_->Close();
  if (methods_out_ != nullptr) {
    std::atomic_ref<uint8_t>(*methods_out_)
        .fetch_or(evaluator_.methods_used(), std::memory_order_relaxed);
  }
}

const ColumnBatch* BatchProbThreshold::NextBatch() {
  while (const ColumnBatch* in = child_->NextBatch()) {
    const size_t n = in->ActiveRows();
    if (n == 0) continue;
    const ColumnVector& lin = in->columns[static_cast<size_t>(lin_col_)];
    out_.sel.clear();
    out_.sel.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = in->ActiveRow(i);
      const double p = evaluator_.Probability(lin.LineageAt(r));
      if (strict_ ? p > threshold_ : p >= threshold_) out_.sel.push_back(r);
    }
    if (out_.sel.size() == n) return in;
    if (stats_ != nullptr) stats_->rows_pruned += n - out_.sel.size();
    if (out_.sel.empty()) continue;
    std::vector<uint32_t> sel = std::move(out_.sel);
    out_.AssignView(*in);
    out_.sel_all = false;
    out_.sel = std::move(sel);
    return &out_;
  }
  return nullptr;
}

BatchLimit::BatchLimit(BatchOperatorPtr child, size_t limit, size_t offset,
                       VectorStats* stats)
    : child_(std::move(child)), limit_(limit), offset_(offset),
      stats_(stats) {
  TPDB_CHECK(child_ != nullptr);
}

const ColumnBatch* BatchLimit::NextBatch() {
  if (emitted_ >= limit_) return nullptr;
  while (const ColumnBatch* in = child_->NextBatch()) {
    const size_t n = in->ActiveRows();
    if (n == 0) continue;
    size_t start = 0;
    if (skipped_ < offset_) {
      start = std::min(offset_ - skipped_, n);
      skipped_ += start;
      if (stats_ != nullptr) stats_->rows_pruned += start;
      if (start == n) continue;
    }
    const size_t take = std::min(limit_ - emitted_, n - start);
    emitted_ += take;
    if (start == 0 && take == n) return in;
    if (stats_ != nullptr) stats_->rows_pruned += n - start - take;
    out_.AssignView(*in);
    out_.sel_all = false;
    out_.sel.clear();
    out_.sel.reserve(take);
    for (size_t i = start; i < start + take; ++i)
      out_.sel.push_back(in->ActiveRow(i));
    return &out_;
  }
  return nullptr;
}

BatchHashAggregate::BatchHashAggregate(BatchOperatorPtr child,
                                       std::vector<int> group_by,
                                       std::vector<BatchAggItem> aggs,
                                       Schema output, LineageManager* manager)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)),
      schema_(std::move(output)),
      manager_(manager) {
  TPDB_CHECK(child_ != nullptr);
  TPDB_CHECK(manager_ != nullptr);
}

void BatchHashAggregate::Open() {
  child_->Open();
  built_ = false;
  out_rows_.clear();
  pos_ = 0;
}

void BatchHashAggregate::Close() {
  child_->Close();
  out_rows_.clear();
  out_rows_.shrink_to_fit();
  built_ = false;
}

void BatchHashAggregate::Build() {
  // The accumulation below must stay in lockstep with the planner's
  // row-path aggregate (api/planner.cc EvalAggregate): same NULL handling,
  // same int64/double accumulator behavior, same ascending-key emit order,
  // and lineages OR-ed in input order so the disjunction nodes intern
  // identically.
  const Schema& in = child_->schema();
  const int ts_col = in.IndexOf(kTsColumn);
  const int te_col = in.IndexOf(kTeColumn);
  const int lin_col = in.IndexOf(kLineageColumn);
  TPDB_CHECK(ts_col >= 0 && te_col >= 0 && lin_col >= 0)
      << "aggregate input lacks the reserved columns";

  struct Group {
    std::vector<Datum> acc;  // one slot per aggregate (count as int64)
    TimePoint min_ts = 0;
    TimePoint max_te = 0;
    std::vector<LineageRef> lineages;
  };
  // Hash grouping with a sorted emit: O(1) probes per row instead of the
  // row path's ordered-map lookups, same ascending-key output order.
  struct RowHashFn {
    size_t operator()(const Row& row) const {
      uint64_t h = 1469598103934665603ull;  // FNV-1a over datum hashes
      for (const Datum& d : row) h = (h ^ d.Hash()) * 1099511628211ull;
      return static_cast<size_t>(h);
    }
  };
  struct RowEqFn {
    bool operator()(const Row& a, const Row& b) const {
      return CompareRows(a, b) == 0;
    }
  };
  std::unordered_map<Row, Group, RowHashFn, RowEqFn> groups;

  Row key;  // reused across rows; copied into the map only on insert
  while (const ColumnBatch* batch = child_->NextBatch()) {
    const ColumnVector& ts = batch->columns[static_cast<size_t>(ts_col)];
    const ColumnVector& te = batch->columns[static_cast<size_t>(te_col)];
    const ColumnVector& lin = batch->columns[static_cast<size_t>(lin_col)];
    // Interval endpoints are int64 in every valid relation; read the raw
    // span when the batch is typed (cold chunks, transposed tables).
    const bool ts_typed = ts.rep == ColumnVector::Rep::kInt64;
    const bool te_typed = te.rep == ColumnVector::Rep::kInt64;
    const size_t n = batch->ActiveRows();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = batch->ActiveRow(i);
      key.clear();
      for (const int idx : group_by_)
        key.push_back(batch->columns[static_cast<size_t>(idx)].ValueAt(r));
      auto [it, inserted] = groups.try_emplace(key);
      Group& g = it->second;
      const TimePoint row_ts = ts_typed ? ts.ints[r] : ts.ValueAt(r).AsInt64();
      const TimePoint row_te = te_typed ? te.ints[r] : te.ValueAt(r).AsInt64();
      if (inserted) {
        g.acc.assign(aggs_.size(), Datum::Null());
        g.min_ts = row_ts;
        g.max_te = row_te;
      } else {
        g.min_ts = std::min(g.min_ts, row_ts);
        g.max_te = std::max(g.max_te, row_te);
      }
      g.lineages.push_back(lin.LineageAt(r));
      for (size_t j = 0; j < aggs_.size(); ++j) {
        const BatchAggItem& item = aggs_[j];
        Datum value_storage;
        const Datum* value = nullptr;
        if (item.col >= 0) {
          value_storage =
              batch->columns[static_cast<size_t>(item.col)].ValueAt(r);
          value = &value_storage;
        }
        switch (item.fn) {
          case BatchAggFn::kCount: {
            if (value != nullptr && value->is_null()) break;
            const int64_t so_far =
                g.acc[j].is_null() ? 0 : g.acc[j].AsInt64();
            g.acc[j] = Datum(so_far + 1);
            break;
          }
          case BatchAggFn::kSum: {
            if (value->is_null()) break;
            if (g.acc[j].is_null()) {
              g.acc[j] = *value;
            } else if (value->type() == DatumType::kDouble) {
              g.acc[j] = Datum(g.acc[j].AsDouble() + value->AsDouble());
            } else {
              g.acc[j] = Datum(g.acc[j].AsInt64() + value->AsInt64());
            }
            break;
          }
          case BatchAggFn::kMin:
            if (!value->is_null() &&
                (g.acc[j].is_null() || *value < g.acc[j]))
              g.acc[j] = *value;
            break;
          case BatchAggFn::kMax:
            if (!value->is_null() &&
                (g.acc[j].is_null() || g.acc[j] < *value))
              g.acc[j] = *value;
            break;
        }
      }
    }
  }

  std::vector<std::pair<const Row*, Group*>> ordered;
  ordered.reserve(groups.size());
  for (auto& [group_key, g] : groups) ordered.emplace_back(&group_key, &g);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return CompareRows(*a.first, *b.first) < 0;
            });
  out_rows_.reserve(groups.size());
  for (auto& [key_ptr, g_ptr] : ordered) {
    Group& g = *g_ptr;
    Row row = *key_ptr;
    row.reserve(schema_.num_columns());
    for (size_t j = 0; j < aggs_.size(); ++j) {
      if (aggs_[j].fn == BatchAggFn::kCount && g.acc[j].is_null())
        g.acc[j] = Datum(static_cast<int64_t>(0));
      row.push_back(std::move(g.acc[j]));
    }
    row.push_back(Datum(g.min_ts));
    row.push_back(Datum(g.max_te));
    row.push_back(Datum(manager_->OrAll(g.lineages)));
    out_rows_.push_back(std::move(row));
  }
}

const ColumnBatch* BatchHashAggregate::NextBatch() {
  if (!built_) {
    Build();
    built_ = true;
    pos_ = 0;
  }
  if (pos_ >= out_rows_.size()) return nullptr;
  const size_t n = std::min(kBatchRows, out_rows_.size() - pos_);
  TransposeRows(out_rows_, pos_, pos_ + n, &batch_);
  pos_ += n;
  return &batch_;
}

namespace {

class InstrumentedBatchOperator final : public BatchOperator {
 public:
  InstrumentedBatchOperator(BatchOperatorPtr child, NodeStats* stats)
      : child_(std::move(child)), stats_(stats) {
    TPDB_CHECK(child_ != nullptr);
    TPDB_CHECK(stats_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }

  void Open() override {
    ++stats_->open_calls;
    child_->Open();
  }

  const ColumnBatch* NextBatch() override {
    const auto start = std::chrono::steady_clock::now();
    const ColumnBatch* batch = child_->NextBatch();
    stats_->seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (batch != nullptr) stats_->rows += batch->ActiveRows();
    return batch;
  }

  void Close() override { child_->Close(); }

 private:
  BatchOperatorPtr child_;
  NodeStats* stats_;
};

}  // namespace

BatchOperatorPtr InstrumentBatch(std::string label, BatchOperatorPtr child,
                                 ExecStats* stats) {
  TPDB_CHECK(stats != nullptr);
  return std::make_unique<InstrumentedBatchOperator>(
      std::move(child), stats->AddNode(std::move(label)));
}

BatchOperatorPtr InstrumentBatch(NodeStats* node, BatchOperatorPtr child) {
  return std::make_unique<InstrumentedBatchOperator>(std::move(child), node);
}

}  // namespace tpdb::vec
