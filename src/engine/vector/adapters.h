// Adapters between the batch and row execution paths, so batch pipelines
// compose with the untouched LAWAU/LAWAN row operators: BatchToRowAdapter
// exposes a batch pipeline as a Volcano Operator (the planner puts row
// stages like Sort above it), RowToBatchAdapter lifts any row operator
// into a batch source, and MaterializeBatches runs a batch pipeline to
// completion into a Table.
#ifndef TPDB_ENGINE_VECTOR_ADAPTERS_H_
#define TPDB_ENGINE_VECTOR_ADAPTERS_H_

#include <vector>

#include "engine/explain.h"
#include "engine/operator.h"
#include "engine/vector/batch_operator.h"

namespace tpdb::vec {

/// Serves the active rows of a batch pipeline one at a time (NextRef
/// decodes into a reused buffer — one row materialization per tuple, same
/// as the row-path scan).
class BatchToRowAdapter final : public Operator {
 public:
  explicit BatchToRowAdapter(BatchOperatorPtr child,
                             VectorStats* stats = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  const Row* NextRef() override;
  void Close() override;

 private:
  BatchOperatorPtr child_;
  VectorStats* stats_;
  const ColumnBatch* current_ = nullptr;
  size_t pos_ = 0;
  Row buffer_;
};

/// Buffers up to kBatchRows rows from a row operator and transposes them
/// into typed column vectors.
class RowToBatchAdapter final : public BatchOperator {
 public:
  explicit RowToBatchAdapter(OperatorPtr child, VectorStats* stats = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override { child_->Open(); }
  const ColumnBatch* NextBatch() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  VectorStats* stats_;
  std::vector<Row> rows_;
  ColumnBatch batch_;
};

/// Runs `op` (Open/NextBatch*/Close) and materializes the active rows, in
/// selection order, into a Table. Counts emitted rows into `stats`.
Table MaterializeBatches(BatchOperator* op, VectorStats* stats = nullptr);

}  // namespace tpdb::vec

#endif  // TPDB_ENGINE_VECTOR_ADAPTERS_H_
