// The batch-at-a-time operator protocol of the vectorized execution path —
// the Volcano Open/Next/Close lifecycle, pulling a ColumnBatch per call
// instead of one row. Batch pipelines compose with the untouched row
// operators through the adapters in engine/vector/adapters.h.
#ifndef TPDB_ENGINE_VECTOR_BATCH_OPERATOR_H_
#define TPDB_ENGINE_VECTOR_BATCH_OPERATOR_H_

#include <memory>

#include "engine/vector/column_batch.h"

namespace tpdb::vec {

/// A pull-based batch operator. Lifecycle: Open() once, NextBatch() until
/// it returns nullptr, Close() once. The returned batch stays valid until
/// the next NextBatch()/Close() call on this operator, so pass-through
/// operators (filter, limit) may forward the child's batch — possibly with
/// a narrowed selection vector — without copying any column data.
class BatchOperator {
 public:
  virtual ~BatchOperator() = default;

  /// Output schema; valid before Open().
  virtual const Schema& schema() const = 0;

  virtual void Open() = 0;

  /// Produces the next batch, or nullptr at end of stream. Batches are
  /// never empty: operators that deselect every row of a batch pull on.
  virtual const ColumnBatch* NextBatch() = 0;

  virtual void Close() = 0;
};

using BatchOperatorPtr = std::unique_ptr<BatchOperator>;

}  // namespace tpdb::vec

#endif  // TPDB_ENGINE_VECTOR_BATCH_OPERATOR_H_
