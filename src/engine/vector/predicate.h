// Vectorized predicate evaluation: a compiled expression tree evaluated
// column-wise over a batch's active rows, producing Kleene truth values
// the BatchFilter turns into a selection vector.
//
// The tree is built once at plan time with column indices already resolved
// and constant subtrees already folded (the builders collapse literal-only
// nodes to constants), so a batch evaluation is pure loops: typed fast
// paths over int64/double spans and dictionary codes, with a per-row Datum
// fallback for mixed-type columns that replicates the row path's
// three-valued semantics exactly (engine/expr.cc and the planner's numeric
// promotion rule).
//
// Nodes carry per-batch scratch buffers, so one compiled tree must not be
// shared across threads — the parallel driver compiles one per morsel
// chain, like the row path's per-morsel operator chains.
#ifndef TPDB_ENGINE_VECTOR_PREDICATE_H_
#define TPDB_ENGINE_VECTOR_PREDICATE_H_

#include <memory>

#include "engine/expr.h"
#include "engine/vector/column_batch.h"

namespace tpdb::vec {

/// Kleene truth values.
inline constexpr int8_t kFalse = 0;
inline constexpr int8_t kTrue = 1;
inline constexpr int8_t kNull = -1;

/// A compiled vectorized boolean expression.
class VectorExpr {
 public:
  virtual ~VectorExpr() = default;

  /// Evaluates truth for `n` rows of `batch`. `rows` lists the physical
  /// row indices to evaluate (nullptr = the identity 0..n-1); out[i] gets
  /// kFalse/kTrue/kNull for rows[i].
  virtual void EvalTruth(const ColumnBatch& batch, const uint32_t* rows,
                         size_t n, int8_t* out) const = 0;

  /// Non-null when this node is a constant (used by builders to fold).
  virtual const int8_t* constant_truth() const { return nullptr; }
};

using VectorExprPtr = std::unique_ptr<const VectorExpr>;

/// One operand of a comparison: a resolved column index or a constant.
struct VOperand {
  int col = -1;  ///< >= 0: index into the batch's columns
  Datum lit;

  static VOperand Column(int index) {
    VOperand o;
    o.col = index;
    return o;
  }
  static VOperand Literal(Datum value) {
    VOperand o;
    o.lit = std::move(value);
    return o;
  }
  bool is_column() const { return col >= 0; }
};

// -- Builders (mirroring engine/expr.h, with constant folding) ------------

VectorExprPtr VConst(int8_t truth);
/// Comparison; `promote_numeric` selects the planner's int64↔double
/// promotion semantics instead of Datum::Compare's type-rank order.
VectorExprPtr VCompare(CompareOp op, bool promote_numeric, VOperand a,
                       VOperand b);
/// Truthiness of a bare column/literal in boolean position (NULL → null,
/// else DatumTruthy).
VectorExprPtr VTruthy(VOperand a);
VectorExprPtr VIsNull(VOperand a);
/// IS NULL over a boolean subexpression (true iff the subtree is null).
VectorExprPtr VIsNullOf(VectorExprPtr a);
VectorExprPtr VAnd(VectorExprPtr a, VectorExprPtr b);
VectorExprPtr VOr(VectorExprPtr a, VectorExprPtr b);
VectorExprPtr VNot(VectorExprPtr a);

}  // namespace tpdb::vec

#endif  // TPDB_ENGINE_VECTOR_PREDICATE_H_
