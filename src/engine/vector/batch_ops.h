// Batch implementations of the hot pipeline stages: table scan, filter,
// project, probability threshold, limit, and hash aggregate. Filters and
// thresholds narrow the selection vector instead of copying rows; project
// re-views the child's columns; the aggregate reads only the columns it
// actually needs. Every operator produces rows in exactly the order the
// row-path operator would, so the planner can swap the paths freely.
#ifndef TPDB_ENGINE_VECTOR_BATCH_OPS_H_
#define TPDB_ENGINE_VECTOR_BATCH_OPS_H_

#include <limits>
#include <string>
#include <vector>

#include "engine/explain.h"
#include "engine/vector/batch_operator.h"
#include "engine/vector/predicate.h"
#include "lineage/compile/prob_eval.h"

namespace tpdb {
class LineageManager;
}  // namespace tpdb

namespace tpdb::vec {

/// Leaf over an in-memory table (or a morsel of one): transposes runs of
/// kBatchRows rows into typed column vectors.
class TableBatchScan final : public BatchOperator {
 public:
  explicit TableBatchScan(const Table* table, VectorStats* stats = nullptr)
      : TableBatchScan(table, 0, std::numeric_limits<size_t>::max(), stats) {}
  TableBatchScan(const Table* table, size_t begin, size_t end,
                 VectorStats* stats = nullptr);

  const Schema& schema() const override { return table_->schema; }
  void Open() override { pos_ = begin_; }
  const ColumnBatch* NextBatch() override;
  void Close() override {}

 private:
  const Table* table_;
  size_t begin_;
  size_t end_;
  size_t pos_;
  VectorStats* stats_;
  ColumnBatch batch_;
};

/// σ — evaluates the compiled predicate over the active rows and keeps the
/// truthy ones in the selection vector. Batches whose rows all survive are
/// forwarded untouched; fully-deselected batches are skipped.
class BatchFilter final : public BatchOperator {
 public:
  BatchFilter(BatchOperatorPtr child, VectorExprPtr predicate,
              VectorStats* stats = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override { child_->Open(); }
  const ColumnBatch* NextBatch() override;
  void Close() override { child_->Close(); }

 private:
  BatchOperatorPtr child_;
  VectorExprPtr predicate_;
  VectorStats* stats_;
  ColumnBatch out_;
  std::vector<int8_t> truth_;
};

/// π — re-views the selected columns of the child's batch (no data moves).
class BatchProject final : public BatchOperator {
 public:
  BatchProject(BatchOperatorPtr child, std::vector<int> indices,
               std::vector<std::string> names = {});

  const Schema& schema() const override { return schema_; }
  void Open() override { child_->Open(); }
  const ColumnBatch* NextBatch() override;
  void Close() override { child_->Close(); }

 private:
  BatchOperatorPtr child_;
  std::vector<int> indices_;
  Schema schema_;
  ColumnBatch out_;
};

/// WITH PROB — deselects rows whose lineage probability misses the
/// threshold. Probabilities run through the evaluation ladder
/// (lineage/compile/prob_eval.h): exact on decomposable lineage, compiled
/// circuit otherwise, sampled under `APPROX(eps, delta)` or when the
/// circuit budget blows up.
class BatchProbThreshold final : public BatchOperator {
 public:
  /// `methods_out`, when given, receives the ProbMethod bitmask of the
  /// rungs used (fetch_or via atomic_ref in Close — several parallel
  /// instances may share the target).
  BatchProbThreshold(BatchOperatorPtr child, LineageManager* manager,
                     double threshold, bool strict,
                     VectorStats* stats = nullptr,
                     ProbEvalOptions prob_opts = {},
                     uint8_t* methods_out = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override { child_->Open(); }
  const ColumnBatch* NextBatch() override;
  void Close() override;

 private:
  BatchOperatorPtr child_;
  double threshold_;
  bool strict_;
  int lin_col_;
  VectorStats* stats_;
  ProbabilityEvaluator evaluator_;
  uint8_t* methods_out_;
  ColumnBatch out_;
};

/// LIMIT / OFFSET over active rows (selection-aware).
class BatchLimit final : public BatchOperator {
 public:
  BatchLimit(BatchOperatorPtr child, size_t limit, size_t offset = 0,
             VectorStats* stats = nullptr);

  const Schema& schema() const override { return child_->schema(); }
  void Open() override {
    child_->Open();
    skipped_ = 0;
    emitted_ = 0;
  }
  const ColumnBatch* NextBatch() override;
  void Close() override { child_->Close(); }

 private:
  BatchOperatorPtr child_;
  size_t limit_;
  size_t offset_;
  VectorStats* stats_;
  size_t skipped_ = 0;
  size_t emitted_ = 0;
  ColumnBatch out_;
};

/// Aggregate functions of the batch hash aggregate (mirrors api AggFn).
enum class BatchAggFn { kCount, kSum, kMin, kMax };

/// One aggregate: function + source column (-1 = COUNT(*)).
struct BatchAggItem {
  BatchAggFn fn = BatchAggFn::kCount;
  int col = -1;
};

/// Grouped aggregation over the flattened layout (facts ++ _ts ++ _te ++
/// _lin): groups on `group_by` columns, accumulates `aggs`, and emits one
/// row per group — key columns, aggregate columns, then the group's
/// interval span and the disjunction of its tuples' lineages — in
/// ascending key order, exactly matching the planner's row-path aggregate.
class BatchHashAggregate final : public BatchOperator {
 public:
  /// `output` is the flattened output schema (group cols ++ agg cols ++
  /// _ts/_te/_lin); the child's schema must carry the reserved columns.
  BatchHashAggregate(BatchOperatorPtr child, std::vector<int> group_by,
                     std::vector<BatchAggItem> aggs, Schema output,
                     LineageManager* manager);

  const Schema& schema() const override { return schema_; }
  void Open() override;
  const ColumnBatch* NextBatch() override;
  void Close() override;

 private:
  void Build();

  BatchOperatorPtr child_;
  std::vector<int> group_by_;
  std::vector<BatchAggItem> aggs_;
  Schema schema_;
  LineageManager* manager_;
  bool built_ = false;
  std::vector<Row> out_rows_;
  size_t pos_ = 0;
  ColumnBatch batch_;
};

/// Wraps `child`, counting emitted rows/batches and timing NextBatch into
/// a fresh node of `stats` (the batch counterpart of engine/explain's
/// Instrument).
BatchOperatorPtr InstrumentBatch(std::string label, BatchOperatorPtr child,
                                 ExecStats* stats);

/// Same, reporting into a pre-registered node — used by the physical-plan
/// executors, which share one NodeStats slot between a plan node and its
/// lowered operator.
BatchOperatorPtr InstrumentBatch(NodeStats* node, BatchOperatorPtr child);

}  // namespace tpdb::vec

#endif  // TPDB_ENGINE_VECTOR_BATCH_OPS_H_
