#include "engine/materialize.h"

namespace tpdb {

Table Materialize(Operator* op) {
  TPDB_CHECK(op != nullptr);
  Table out;
  out.schema = op->schema();
  op->Open();
  Row row;
  while (op->Next(&row)) out.rows.push_back(std::move(row));
  op->Close();
  return out;
}

size_t Drain(Operator* op) {
  TPDB_CHECK(op != nullptr);
  op->Open();
  Row row;
  size_t count = 0;
  while (op->Next(&row)) ++count;
  op->Close();
  return count;
}

}  // namespace tpdb
