#include "engine/materialize.h"

namespace tpdb {

Table Materialize(Operator* op) {
  TPDB_CHECK(op != nullptr);
  Table out;
  out.schema = op->schema();
  op->Open();
  // Next() + move, not NextRef(): row-constructing operators (sorts,
  // joins, the default NextRef adapter) move their row all the way into
  // the result, where the ref path would force a deep copy. Leaf scans
  // pay one copy either way.
  Row row;
  while (op->Next(&row)) out.rows.push_back(std::move(row));
  op->Close();
  return out;
}

size_t Drain(Operator* op) {
  TPDB_CHECK(op != nullptr);
  op->Open();
  size_t count = 0;
  while (op->NextRef() != nullptr) ++count;
  op->Close();
  return count;
}

}  // namespace tpdb
