#include "engine/temporal_outer_join.h"

#include <algorithm>

namespace tpdb {

TemporalOuterJoin::TemporalOuterJoin(OperatorPtr left, OperatorPtr right,
                                     TemporalJoinSpec spec)
    : left_(std::move(left)), right_(std::move(right)), spec_(std::move(spec)) {
  TPDB_CHECK(left_ != nullptr);
  TPDB_CHECK(right_ != nullptr);
  TPDB_CHECK_GE(spec_.left_ts, 0);
  TPDB_CHECK_GE(spec_.right_ts, 0);
  schema_ = Schema::Concat(left_->schema(), right_->schema());
  schema_.AddColumn({"inter_ts", DatumType::kInt64});
  schema_.AddColumn({"inter_te", DatumType::kInt64});
}

uint64_t TemporalOuterJoin::LeftKeyHash(const Row& row) const {
  uint64_t h = 0x12345678abcdefull;
  for (const auto& [l, r] : spec_.equi_keys) {
    (void)r;
    h = h * 0x9e3779b97f4a7c15ull + row[l].Hash();
  }
  return h;
}

bool TemporalOuterJoin::KeysEqual(const Row& left, const Row& right) const {
  for (const auto& [l, r] : spec_.equi_keys) {
    // SQL semantics: NULL keys match nothing.
    if (left[l].is_null() || right[r].is_null()) return false;
    if (left[l] != right[r]) return false;
  }
  return true;
}

void TemporalOuterJoin::Open() {
  left_->Open();
  right_->Open();
  right_rows_.clear();
  partitions_.clear();
  Row row;
  while (right_->Next(&row)) right_rows_.push_back(std::move(row));
  right_->Close();
  // Partition the right side by equi-key hash; within a partition sort by
  // interval start so the probe visits matches in temporal order (LAWAU
  // expects its input grouped by r tuple and sorted on window start).
  for (uint32_t i = 0; i < right_rows_.size(); ++i) {
    uint64_t h = 0x12345678abcdefull;
    bool has_null_key = false;
    for (const auto& [l, r] : spec_.equi_keys) {
      (void)l;
      if (right_rows_[i][r].is_null()) has_null_key = true;
      h = h * 0x9e3779b97f4a7c15ull + right_rows_[i][r].Hash();
    }
    if (has_null_key) continue;  // never matches
    partitions_[h].rows.push_back(i);
  }
  const int rts = spec_.right_ts;
  for (auto& [h, part] : partitions_) {
    (void)h;
    std::sort(part.rows.begin(), part.rows.end(),
              [&](uint32_t a, uint32_t b) {
                const int c = right_rows_[a][rts].Compare(right_rows_[b][rts]);
                if (c != 0) return c < 0;
                return a < b;
              });
  }
  have_left_ = false;
}

bool TemporalOuterJoin::Next(Row* out) {
  const size_t right_width = right_->schema().num_columns();
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      left_matched_ = false;
      probe_pos_ = 0;
      auto it = partitions_.find(LeftKeyHash(current_left_));
      current_partition_ = it == partitions_.end() ? nullptr : &it->second;
    }
    const Interval lt(current_left_[spec_.left_ts].AsInt64(),
                      current_left_[spec_.left_te].AsInt64());
    if (current_partition_ != nullptr) {
      while (probe_pos_ < current_partition_->rows.size()) {
        const Row& right_row =
            right_rows_[current_partition_->rows[probe_pos_++]];
        const Interval rt(right_row[spec_.right_ts].AsInt64(),
                          right_row[spec_.right_te].AsInt64());
        if (rt.start >= lt.end) {
          // Sorted by start: no later row in this partition can overlap.
          probe_pos_ = current_partition_->rows.size();
          break;
        }
        if (!lt.Overlaps(rt)) continue;
        if (!KeysEqual(current_left_, right_row)) continue;  // hash collision
        Row joined = ConcatRows(current_left_, right_row);
        if (spec_.residual != nullptr &&
            !DatumTruthy(spec_.residual->Eval(joined)))
          continue;
        const Interval inter = lt.Intersect(rt);
        joined.push_back(Datum(inter.start));
        joined.push_back(Datum(inter.end));
        left_matched_ = true;
        *out = std::move(joined);
        return true;
      }
    }
    const bool emit_unmatched =
        spec_.join_type == JoinType::kLeftOuter && !left_matched_;
    have_left_ = false;
    if (emit_unmatched) {
      Row joined = ConcatRows(current_left_, NullRow(right_width));
      joined.push_back(Datum::Null());
      joined.push_back(Datum::Null());
      *out = std::move(joined);
      return true;
    }
  }
}

void TemporalOuterJoin::Close() {
  left_->Close();
  right_rows_.clear();
  right_rows_.shrink_to_fit();
  partitions_.clear();
}

}  // namespace tpdb
