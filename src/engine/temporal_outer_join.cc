#include "engine/temporal_outer_join.h"

#include <algorithm>

namespace tpdb {

namespace {

constexpr uint64_t kKeyHashSeed = 0x12345678abcdefull;

}  // namespace

TemporalBuildSide MakeTemporalBuildSide(Operator* right,
                                        const TemporalJoinSpec& spec) {
  TPDB_CHECK(right != nullptr);
  TemporalBuildSide build;
  right->Open();
  Row row;
  while (right->Next(&row)) build.rows.push_back(std::move(row));
  right->Close();
  // Partition the right side by equi-key hash; within a partition sort by
  // interval start so the probe visits matches in temporal order (LAWAU
  // expects its input grouped by r tuple and sorted on window start).
  for (uint32_t i = 0; i < build.rows.size(); ++i) {
    uint64_t h = kKeyHashSeed;
    bool has_null_key = false;
    for (const auto& [l, r] : spec.equi_keys) {
      (void)l;
      if (build.rows[i][r].is_null()) has_null_key = true;
      h = h * 0x9e3779b97f4a7c15ull + build.rows[i][r].Hash();
    }
    if (has_null_key) continue;  // never matches
    build.partitions[h].rows.push_back(i);
  }
  const int rts = spec.right_ts;
  for (auto& [h, part] : build.partitions) {
    (void)h;
    std::sort(part.rows.begin(), part.rows.end(),
              [&](uint32_t a, uint32_t b) {
                const int c =
                    build.rows[a][rts].Compare(build.rows[b][rts]);
                if (c != 0) return c < 0;
                return a < b;
              });
  }
  return build;
}

TemporalOuterJoin::TemporalOuterJoin(OperatorPtr left, OperatorPtr right,
                                     TemporalJoinSpec spec)
    : left_(std::move(left)),
      right_(std::move(right)),
      spec_(std::move(spec)) {
  TPDB_CHECK(left_ != nullptr);
  TPDB_CHECK(right_ != nullptr);
  TPDB_CHECK_GE(spec_.left_ts, 0);
  TPDB_CHECK_GE(spec_.right_ts, 0);
  right_schema_ = right_->schema();
  schema_ = Schema::Concat(left_->schema(), right_schema_);
  schema_.AddColumn({"inter_ts", DatumType::kInt64});
  schema_.AddColumn({"inter_te", DatumType::kInt64});
}

TemporalOuterJoin::TemporalOuterJoin(
    OperatorPtr left, std::shared_ptr<const TemporalBuildSide> build,
    Schema right_schema, TemporalJoinSpec spec)
    : left_(std::move(left)),
      spec_(std::move(spec)),
      right_schema_(std::move(right_schema)),
      shared_build_(std::move(build)) {
  TPDB_CHECK(left_ != nullptr);
  TPDB_CHECK(shared_build_ != nullptr);
  TPDB_CHECK_GE(spec_.left_ts, 0);
  TPDB_CHECK_GE(spec_.right_ts, 0);
  schema_ = Schema::Concat(left_->schema(), right_schema_);
  schema_.AddColumn({"inter_ts", DatumType::kInt64});
  schema_.AddColumn({"inter_te", DatumType::kInt64});
}

uint64_t TemporalOuterJoin::LeftKeyHash(const Row& row) const {
  uint64_t h = kKeyHashSeed;
  for (const auto& [l, r] : spec_.equi_keys) {
    (void)r;
    h = h * 0x9e3779b97f4a7c15ull + row[l].Hash();
  }
  return h;
}

bool TemporalOuterJoin::KeysEqual(const Row& left, const Row& right) const {
  for (const auto& [l, r] : spec_.equi_keys) {
    // SQL semantics: NULL keys match nothing.
    if (left[l].is_null() || right[r].is_null()) return false;
    if (left[l] != right[r]) return false;
  }
  return true;
}

void TemporalOuterJoin::Open() {
  left_->Open();
  if (shared_build_ != nullptr) {
    build_ = shared_build_.get();
  } else {
    owned_build_ = MakeTemporalBuildSide(right_.get(), spec_);
    build_ = &owned_build_;
  }
  have_left_ = false;
}

bool TemporalOuterJoin::Next(Row* out) {
  const size_t right_width = right_schema_.num_columns();
  while (true) {
    if (!have_left_) {
      // NextRef + copy-assign reuses current_left_'s buffers instead of
      // taking a freshly allocated row per driving tuple (RowIdScan and
      // the other leaf scans serve refs without building one).
      const Row* left_row = left_->NextRef();
      if (left_row == nullptr) return false;
      current_left_ = *left_row;
      have_left_ = true;
      left_matched_ = false;
      probe_pos_ = 0;
      auto it = build_->partitions.find(LeftKeyHash(current_left_));
      current_partition_ =
          it == build_->partitions.end() ? nullptr : &it->second;
    }
    const Interval lt(current_left_[spec_.left_ts].AsInt64(),
                      current_left_[spec_.left_te].AsInt64());
    if (current_partition_ != nullptr) {
      while (probe_pos_ < current_partition_->rows.size()) {
        const Row& right_row =
            build_->rows[current_partition_->rows[probe_pos_++]];
        const Interval rt(right_row[spec_.right_ts].AsInt64(),
                          right_row[spec_.right_te].AsInt64());
        if (rt.start >= lt.end) {
          // Sorted by start: no later row in this partition can overlap.
          probe_pos_ = current_partition_->rows.size();
          break;
        }
        if (!lt.Overlaps(rt)) continue;
        if (!KeysEqual(current_left_, right_row)) continue;  // hash collision
        Row joined = ConcatRows(current_left_, right_row,
                                /*reserve_extra=*/2);
        if (spec_.residual != nullptr &&
            !DatumTruthy(spec_.residual->Eval(joined)))
          continue;
        const Interval inter = lt.Intersect(rt);
        joined.push_back(Datum(inter.start));
        joined.push_back(Datum(inter.end));
        left_matched_ = true;
        *out = std::move(joined);
        return true;
      }
    }
    const bool emit_unmatched =
        spec_.join_type == JoinType::kLeftOuter && !left_matched_;
    have_left_ = false;
    if (emit_unmatched) {
      Row joined = ConcatRows(current_left_, NullRow(right_width),
                              /*reserve_extra=*/2);
      joined.push_back(Datum::Null());
      joined.push_back(Datum::Null());
      *out = std::move(joined);
      return true;
    }
  }
}

void TemporalOuterJoin::Close() {
  left_->Close();
  owned_build_.rows.clear();
  owned_build_.rows.shrink_to_fit();
  owned_build_.partitions.clear();
  build_ = nullptr;
}

}  // namespace tpdb
