#include "engine/explain.h"

#include <cstdio>

namespace tpdb {

namespace {

class InstrumentedOperator final : public Operator {
 public:
  InstrumentedOperator(OperatorPtr child, NodeStats* stats)
      : child_(std::move(child)), stats_(stats) {
    TPDB_CHECK(child_ != nullptr);
    TPDB_CHECK(stats_ != nullptr);
  }

  const Schema& schema() const override { return child_->schema(); }

  void Open() override {
    ++stats_->open_calls;
    child_->Open();
  }

  bool Next(Row* out) override {
    const auto start = std::chrono::steady_clock::now();
    const bool has_row = child_->Next(out);
    stats_->seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (has_row) ++stats_->rows;
    return has_row;
  }

  const Row* NextRef() override {
    const auto start = std::chrono::steady_clock::now();
    const Row* row = child_->NextRef();
    stats_->seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (row != nullptr) ++stats_->rows;
    return row;
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  NodeStats* stats_;
};

}  // namespace

NodeStats* ExecStats::AddNode(std::string label) {
  nodes_.push_back(std::make_unique<NodeStats>());
  nodes_.back()->label = std::move(label);
  return nodes_.back().get();
}

void ExecStats::AddWorker(const WorkerStats& worker) {
  workers_.push_back(worker);
}

void StorageStats::Merge(const StorageStats& other) {
  segments_scanned += other.segments_scanned;
  segments_skipped += other.segments_skipped;
  chunks_skipped_compressed += other.chunks_skipped_compressed;
  rows_decoded += other.rows_decoded;
  bytes_mapped += other.bytes_mapped;
  compressed_bytes += other.compressed_bytes;
  decode_seconds += other.decode_seconds;
}

void ExecStats::AddStorage(const StorageStats& storage) {
  storage_.Merge(storage);
}

void VectorStats::Merge(const VectorStats& other) {
  batches += other.batches;
  rows_scanned += other.rows_scanned;
  rows_emitted += other.rows_emitted;
  rows_pruned += other.rows_pruned;
}

void ExecStats::AddVector(const VectorStats& vector) {
  vector_.Merge(vector);
}

std::string ExecStats::ToString() const {
  std::string out;
  for (const std::unique_ptr<NodeStats>& node : nodes_) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s rows=%-10llu time=%.3f ms\n",
                  node->label.c_str(),
                  static_cast<unsigned long long>(node->rows),
                  node->seconds * 1000.0);
    out += line;
  }
  if (!workers_.empty()) {
    out += "parallel workers:\n";
    for (const WorkerStats& w : workers_) {
      char line[160];
      char name[32];
      if (w.worker < 0)
        std::snprintf(name, sizeof(name), "  caller");
      else
        std::snprintf(name, sizeof(name), "  worker %d", w.worker);
      std::snprintf(line, sizeof(line),
                    "%-24s tasks=%-4llu rows=%-10llu time=%.3f ms\n", name,
                    static_cast<unsigned long long>(w.tasks),
                    static_cast<unsigned long long>(w.rows),
                    w.seconds * 1000.0);
      out += line;
    }
  }
  if (storage_.Any()) {
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "storage:\n"
        "  segments scanned: %llu  segments skipped: %llu"
        "  skipped compressed-domain: %llu\n"
        "  bytes mapped: %llu  compressed: %llu\n"
        "  decode time: %.3f ms\n",
        static_cast<unsigned long long>(storage_.segments_scanned),
        static_cast<unsigned long long>(storage_.segments_skipped),
        static_cast<unsigned long long>(storage_.chunks_skipped_compressed),
        static_cast<unsigned long long>(storage_.bytes_mapped),
        static_cast<unsigned long long>(storage_.compressed_bytes),
        storage_.decode_seconds * 1000.0);
    out += line;
  }
  if (vector_.Any()) {
    char line[220];
    std::snprintf(
        line, sizeof(line),
        "vectorized:\n"
        "  batches: %llu  avg batch fill: %.1f rows\n"
        "  rows scanned: %llu  emitted: %llu  pruned by selection: %llu\n",
        static_cast<unsigned long long>(vector_.batches),
        vector_.batches > 0
            ? static_cast<double>(vector_.rows_emitted) /
                  static_cast<double>(vector_.batches)
            : 0.0,
        static_cast<unsigned long long>(vector_.rows_scanned),
        static_cast<unsigned long long>(vector_.rows_emitted),
        static_cast<unsigned long long>(vector_.rows_pruned));
    out += line;
  }
  return out;
}

OperatorPtr Instrument(std::string label, OperatorPtr child,
                       ExecStats* stats) {
  TPDB_CHECK(stats != nullptr);
  return std::make_unique<InstrumentedOperator>(
      std::move(child), stats->AddNode(std::move(label)));
}

OperatorPtr Instrument(NodeStats* node, OperatorPtr child) {
  return std::make_unique<InstrumentedOperator>(std::move(child), node);
}

}  // namespace tpdb
