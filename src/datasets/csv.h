// Minimal CSV import/export for TP relations, used by the examples: fact
// columns followed by ts, te, p. Loading registers one fresh variable per
// row (base tuples).
#ifndef TPDB_DATASETS_CSV_H_
#define TPDB_DATASETS_CSV_H_

#include <string>

#include "common/status.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Writes `rel` as CSV with a header: fact columns, ts, te, p.
/// Probabilities are the computed Pr[λ] of each tuple.
Status WriteTPRelationCsv(const TPRelation& rel, const std::string& path);

/// Reads a CSV produced by WriteTPRelationCsv (or hand-written in the same
/// shape) into a fresh base relation. `fact_schema` gives the names/types
/// of the leading fact columns; remaining columns must be ts, te, p.
StatusOr<TPRelation> ReadTPRelationCsv(const std::string& path,
                                       std::string name, Schema fact_schema,
                                       LineageManager* manager);

}  // namespace tpdb

#endif  // TPDB_DATASETS_CSV_H_
