// Meteo-Swiss-like dataset (substitution for the paper's real Meteo Swiss
// dataset: predictions that a metric at a meteorological station does not
// vary by more than 0.1 over an interval).
//
// Preserved performance-relevant properties (see DESIGN.md §4): the join
// condition θ: r.metric = s.metric has a number of distinct values much
// smaller than the relation size, drawn uniformly (the paper explicitly
// notes both), so θ is not selective — each tuple temporally overlaps many
// θ-matching partners, which is what drives TA's blow-up and the higher
// absolute runtimes of both systems on this dataset.
#ifndef TPDB_DATASETS_METEO_H_
#define TPDB_DATASETS_METEO_H_

#include "common/status.h"
#include "datasets/generator.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Parameters of the Meteo-like generator.
struct MeteoOptions {
  uint64_t seed = 13;
  /// Tuples in each of the two relations.
  int64_t num_tuples = 10000;
  /// Distinct metrics (the small uniform join domain).
  int64_t num_metrics = 50;
  /// Stations per relation; facts are (station, metric) pairs.
  int64_t num_stations = 400;
  /// Mean stability-period length.
  double avg_duration = 200.0;
  /// Timeline length. Kept short relative to num_tuples · avg_duration so
  /// that many same-metric tuples are concurrently valid — the match-count
  /// blow-up that makes both systems output-bound on Meteo and gives it
  /// its high absolute runtimes in the paper (where the NJ/TA gap narrows
  /// to 4–10× because the dominant cost is shared).
  TimePoint history_length = 5000;
};

/// The generated pair of relations plus θ: r.metric = s.metric (tuples
/// about the same metric at *different* stations, per the paper's setup —
/// the station-inequality is the general-predicate part of θ).
struct MeteoDataset {
  TPRelation r;
  TPRelation s;
  JoinCondition theta;
};

/// Generates the dataset. Deterministic for a fixed seed.
StatusOr<MeteoDataset> MakeMeteoDataset(LineageManager* manager,
                                        const MeteoOptions& options);

}  // namespace tpdb

#endif  // TPDB_DATASETS_METEO_H_
