#include "datasets/meteo.h"

#include <algorithm>
#include <map>
#include <utility>

namespace tpdb {

StatusOr<MeteoDataset> MakeMeteoDataset(LineageManager* manager,
                                        const MeteoOptions& options) {
  if (options.num_tuples <= 0)
    return Status::InvalidArgument("num_tuples must be positive");
  if (options.num_metrics <= 0 || options.num_stations <= 0)
    return Status::InvalidArgument("domains must be positive");
  Random rng(options.seed);

  Schema facts;
  facts.AddColumn({"station", DatumType::kInt64});
  facts.AddColumn({"metric", DatumType::kInt64});
  TPRelation r("meteo_r", facts, manager);
  TPRelation s("meteo_s", facts, manager);

  ChainOptions chain;
  chain.start_lo = 0;
  chain.start_hi = options.history_length;
  chain.avg_duration = options.avg_duration;
  chain.gap_probability = 0.3;  // stability periods have holes
  chain.avg_gap = options.avg_duration / 4.0;
  chain.prob_lo = 0.5;
  chain.prob_hi = 1.0;

  // Uniformly allocate tuples to (station, metric) facts, then emit one
  // chain per fact (same-fact intervals must stay disjoint). The metric
  // domain is small and uniform, matching the paper's note that "the
  // condition is not very selective".
  for (TPRelation* rel : {&r, &s}) {
    std::map<std::pair<int64_t, int64_t>, int64_t> per_fact;
    for (int64_t i = 0; i < options.num_tuples; ++i) {
      const int64_t station = rng.Uniform(0, options.num_stations - 1);
      const int64_t metric = rng.Uniform(0, options.num_metrics - 1);
      ++per_fact[{station, metric}];
    }
    for (const auto& [fact, count] : per_fact) {
      TPDB_RETURN_IF_ERROR(
          AppendChain(rel, Row{Datum(fact.first), Datum(fact.second)}, count,
                      chain, &rng));
    }
  }

  JoinCondition theta;
  theta.equal_columns.emplace_back("metric", "metric");
  theta.predicate = [](const Row& r_fact, const Row& s_fact) {
    // Same metric at a *different* station.
    return r_fact[0] != s_fact[0];
  };

  MeteoDataset out{std::move(r), std::move(s), std::move(theta)};
  return out;
}

}  // namespace tpdb
