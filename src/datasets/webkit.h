// Webkit-like dataset (substitution for the paper's real Webkit dataset,
// which records predictions that a file remains unchanged over an interval,
// derived from webkit.org's revision history; the original data is not
// redistributable here).
//
// Preserved performance-relevant properties (see DESIGN.md §4):
//   * many distinct join values — one per file, ~num_tuples/versions files,
//     so θ: r.file = s.file is highly selective;
//   * per fact, adjacent non-overlapping version intervals (a file's
//     history is a chain of revisions);
//   * ~1:1 match rate between the two relations;
//   * probabilities U(0.5, 1) (confidence the file stays unchanged).
#ifndef TPDB_DATASETS_WEBKIT_H_
#define TPDB_DATASETS_WEBKIT_H_

#include "common/status.h"
#include "datasets/generator.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Parameters of the Webkit-like generator.
struct WebkitOptions {
  uint64_t seed = 7;
  /// Tuples in each of the two relations.
  int64_t num_tuples = 10000;
  /// Average revisions per file (distinct files ≈ num_tuples / this).
  double versions_per_file = 5.0;
  /// Timeline length. Every file's version chain spans (most of) the
  /// repository history — as in the real dataset, where all files coexist
  /// over the same years — so the two relations' chains for one file
  /// overlap temporally while θ stays highly selective across files.
  /// Mean revision lifetime is derived as history_length/versions_per_file.
  TimePoint history_length = 100000;
};

/// The generated pair of relations plus the θ of the paper's experiments.
struct WebkitDataset {
  TPRelation r;
  TPRelation s;
  JoinCondition theta;  // r.file = s.file
};

/// Generates the dataset. Deterministic for a fixed seed.
StatusOr<WebkitDataset> MakeWebkitDataset(LineageManager* manager,
                                          const WebkitOptions& options);

}  // namespace tpdb

#endif  // TPDB_DATASETS_WEBKIT_H_
