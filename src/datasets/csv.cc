#include "datasets/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/strings.h"

namespace tpdb {

namespace {
std::string EscapeField(const std::string& s) {
  if (s.find(',') == std::string::npos &&
      s.find('"') == std::string::npos && s.find('\n') == std::string::npos)
    return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

Status WriteTPRelationCsv(const TPRelation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  std::vector<std::string> header;
  for (const Column& c : rel.fact_schema().columns()) header.push_back(c.name);
  header.emplace_back("ts");
  header.emplace_back("te");
  header.emplace_back("p");
  out << Join(header, ",") << "\n";
  for (size_t i = 0; i < rel.size(); ++i) {
    const TPTuple& t = rel.tuple(i);
    std::vector<std::string> fields;
    for (const Datum& d : t.fact) fields.push_back(EscapeField(d.ToString()));
    fields.push_back(std::to_string(t.interval.start));
    fields.push_back(std::to_string(t.interval.end));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", rel.Probability(i));
    fields.emplace_back(buf);
    out << Join(fields, ",") << "\n";
  }
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

StatusOr<TPRelation> ReadTPRelationCsv(const std::string& path,
                                       std::string name, Schema fact_schema,
                                       LineageManager* manager) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  TPRelation rel(std::move(name), fact_schema, manager);
  std::string line;
  if (!std::getline(in, line))
    return Status::IOError(path + ": missing header");
  const size_t expected = fact_schema.num_columns() + 3;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    // Simple splitter; quoted fields with embedded commas are not needed
    // for the bundled examples.
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != expected)
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(expected) + " fields, got " +
          std::to_string(fields.size()));
    Row fact;
    fact.reserve(fact_schema.num_columns());
    for (size_t i = 0; i < fact_schema.num_columns(); ++i) {
      const std::string field(Trim(fields[i]));
      switch (fact_schema.column(i).type) {
        case DatumType::kInt64:
          fact.push_back(Datum(static_cast<int64_t>(
              std::strtoll(field.c_str(), nullptr, 10))));
          break;
        case DatumType::kDouble:
          fact.push_back(Datum(std::strtod(field.c_str(), nullptr)));
          break;
        default:
          fact.push_back(Datum(field));
          break;
      }
    }
    const size_t base = fact_schema.num_columns();
    const TimePoint ts = std::strtoll(std::string(Trim(fields[base])).c_str(),
                                      nullptr, 10);
    const TimePoint te =
        std::strtoll(std::string(Trim(fields[base + 1])).c_str(), nullptr, 10);
    const double p =
        std::strtod(std::string(Trim(fields[base + 2])).c_str(), nullptr);
    Status st = rel.AppendBase(std::move(fact), Interval(ts, te), p);
    if (!st.ok())
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + st.ToString());
  }
  return rel;
}

}  // namespace tpdb
