// One-shot dataset ingestion: generate a benchmark dataset pair (meteo or
// webkit), register it into a database, and optionally persist the result
// as a columnar snapshot (storage/snapshot.h) — so benches and examples
// ingest once and every later run starts from `LOAD SNAPSHOT` instead of
// regenerating.
#ifndef TPDB_DATASETS_INGEST_H_
#define TPDB_DATASETS_INGEST_H_

#include <string>

#include "common/status.h"

namespace tpdb {

class TPDatabase;

/// Parameters of one ingest run.
struct IngestOptions {
  /// "meteo" or "webkit".
  std::string dataset = "webkit";
  /// Tuples per relation (0 = the dataset's default).
  int64_t num_tuples = 0;
  /// Generator seed (0 = the dataset's default).
  uint64_t seed = 0;
  /// When non-empty, SaveSnapshot the database here after ingesting.
  std::string snapshot_path;
  /// Tuples per snapshot segment (zone-map granularity).
  size_t segment_rows = 4096;
};

/// Generates the dataset pair into `db` (as "<dataset>_r" / "<dataset>_s")
/// and, when `snapshot_path` is set, saves the whole database there.
Status IngestDataset(TPDatabase* db, const IngestOptions& options);

}  // namespace tpdb

#endif  // TPDB_DATASETS_INGEST_H_
