// Synthetic TP workload generation.
//
// All generators preserve the invariant TP relations require: tuples with
// the same fact have pairwise disjoint intervals. They do so by generating,
// per fact, a *chain* of consecutive (optionally gapped) intervals — which
// is also how the paper's real datasets look: Webkit records a file's
// version history as adjacent intervals, Meteo a station-metric's stability
// periods.
#ifndef TPDB_DATASETS_GENERATOR_H_
#define TPDB_DATASETS_GENERATOR_H_

#include <string>

#include "common/random.h"
#include "common/status.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Shape of one fact's interval chain.
struct ChainOptions {
  /// The chain's first interval starts uniformly in [start_lo, start_hi].
  TimePoint start_lo = 0;
  TimePoint start_hi = 0;
  /// Mean interval duration (exponential, >= 1).
  double avg_duration = 50.0;
  /// Probability that two consecutive intervals have a gap between them.
  double gap_probability = 0.0;
  /// Mean gap duration when a gap occurs.
  double avg_gap = 10.0;
  /// Tuple probabilities drawn uniformly from [prob_lo, prob_hi).
  double prob_lo = 0.5;
  double prob_hi = 1.0;
};

/// Appends `count` chained tuples with the given fact to `rel`. Variables
/// are auto-named (unnamed prefix keeps registration cheap).
Status AppendChain(TPRelation* rel, const Row& fact, int64_t count,
                   const ChainOptions& options, Random* rng);

/// Generic uniform workload: `num_tuples` tuples spread over `num_facts`
/// distinct facts (single int64 key column named `key_column`), chains per
/// fact, timeline [0, history_length).
struct UniformWorkloadOptions {
  int64_t num_tuples = 1000;
  int64_t num_facts = 200;
  TimePoint history_length = 100000;
  double avg_duration = 50.0;
  double gap_probability = 0.2;
  double avg_gap = 20.0;
  double prob_lo = 0.5;
  double prob_hi = 1.0;
  /// Zipf skew of the tuples-per-fact allocation (0 = uniform).
  double fact_skew = 0.0;
  std::string key_column = "key";
};

/// Builds a uniform workload relation named `name`.
StatusOr<TPRelation> MakeUniformWorkload(LineageManager* manager,
                                         std::string name,
                                         const UniformWorkloadOptions& options,
                                         Random* rng);

}  // namespace tpdb

#endif  // TPDB_DATASETS_GENERATOR_H_
