#include "datasets/ingest.h"

#include "api/database.h"
#include "datasets/meteo.h"
#include "datasets/webkit.h"
#include "storage/snapshot.h"

namespace tpdb {

Status IngestDataset(TPDatabase* db, const IngestOptions& options) {
  TPDB_CHECK(db != nullptr);
  if (options.dataset == "meteo") {
    MeteoOptions meteo;
    if (options.num_tuples > 0) meteo.num_tuples = options.num_tuples;
    if (options.seed != 0) meteo.seed = options.seed;
    StatusOr<MeteoDataset> data = MakeMeteoDataset(db->manager(), meteo);
    if (!data.ok()) return data.status();
    TPDB_RETURN_IF_ERROR(db->Register(std::move(data->r)));
    TPDB_RETURN_IF_ERROR(db->Register(std::move(data->s)));
  } else if (options.dataset == "webkit") {
    WebkitOptions webkit;
    if (options.num_tuples > 0) webkit.num_tuples = options.num_tuples;
    if (options.seed != 0) webkit.seed = options.seed;
    StatusOr<WebkitDataset> data = MakeWebkitDataset(db->manager(), webkit);
    if (!data.ok()) return data.status();
    TPDB_RETURN_IF_ERROR(db->Register(std::move(data->r)));
    TPDB_RETURN_IF_ERROR(db->Register(std::move(data->s)));
  } else {
    return Status::InvalidArgument("unknown dataset '" + options.dataset +
                                   "' (expected 'meteo' or 'webkit')");
  }
  if (!options.snapshot_path.empty()) {
    storage::SnapshotOptions snapshot;
    snapshot.segment_rows = options.segment_rows;
    return db->SaveSnapshot(options.snapshot_path, snapshot);
  }
  return Status::OK();
}

}  // namespace tpdb
