#include "datasets/generator.h"

#include <vector>

namespace tpdb {

Status AppendChain(TPRelation* rel, const Row& fact, int64_t count,
                   const ChainOptions& options, Random* rng) {
  TPDB_CHECK(rel != nullptr);
  TPDB_CHECK(rng != nullptr);
  TimePoint t = rng->Uniform(options.start_lo, options.start_hi);
  for (int64_t i = 0; i < count; ++i) {
    if (i > 0 && options.gap_probability > 0.0 &&
        rng->Bernoulli(options.gap_probability)) {
      t += rng->Exponential(options.avg_gap);
    }
    const int64_t duration = rng->Exponential(options.avg_duration);
    const double prob = rng->UniformDouble(options.prob_lo, options.prob_hi);
    TPDB_RETURN_IF_ERROR(
        rel->AppendBase(fact, Interval(t, t + duration), prob));
    t += duration;
  }
  return Status::OK();
}

StatusOr<TPRelation> MakeUniformWorkload(LineageManager* manager,
                                         std::string name,
                                         const UniformWorkloadOptions& options,
                                         Random* rng) {
  TPDB_CHECK(rng != nullptr);
  if (options.num_facts <= 0)
    return Status::InvalidArgument("num_facts must be positive");
  Schema facts;
  facts.AddColumn({options.key_column, DatumType::kInt64});
  TPRelation rel(std::move(name), facts, manager);

  // Allocate tuples to facts (uniform or zipf-skewed), then emit one chain
  // per fact so same-fact intervals stay disjoint.
  std::vector<int64_t> per_fact(static_cast<size_t>(options.num_facts), 0);
  for (int64_t i = 0; i < options.num_tuples; ++i)
    ++per_fact[static_cast<size_t>(
        rng->Zipf(options.num_facts, options.fact_skew))];

  ChainOptions chain;
  chain.start_lo = 0;
  chain.start_hi = options.history_length;
  chain.avg_duration = options.avg_duration;
  chain.gap_probability = options.gap_probability;
  chain.avg_gap = options.avg_gap;
  chain.prob_lo = options.prob_lo;
  chain.prob_hi = options.prob_hi;

  for (int64_t key = 0; key < options.num_facts; ++key) {
    const int64_t count = per_fact[static_cast<size_t>(key)];
    if (count == 0) continue;
    TPDB_RETURN_IF_ERROR(
        AppendChain(&rel, Row{Datum(key)}, count, chain, rng));
  }
  return rel;
}

}  // namespace tpdb
