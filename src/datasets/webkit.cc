#include "datasets/webkit.h"

#include <algorithm>

namespace tpdb {

StatusOr<WebkitDataset> MakeWebkitDataset(LineageManager* manager,
                                          const WebkitOptions& options) {
  if (options.num_tuples <= 0)
    return Status::InvalidArgument("num_tuples must be positive");
  if (options.versions_per_file < 1.0)
    return Status::InvalidArgument("versions_per_file must be >= 1");
  Random rng(options.seed);

  const int64_t num_files = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(options.num_tuples) /
                              options.versions_per_file));

  Schema facts;
  facts.AddColumn({"file", DatumType::kInt64});
  TPRelation r("webkit_r", facts, manager);
  TPRelation s("webkit_s", facts, manager);

  ChainOptions chain;
  // Chains start near the beginning of the history and their revisions are
  // sized so the chain spans it: same-file chains of the two relations
  // overlap temporally, different files never satisfy θ.
  chain.start_lo = 0;
  chain.start_hi = options.history_length / 20;
  chain.avg_duration =
      static_cast<double>(options.history_length) / options.versions_per_file;
  chain.gap_probability = 0.0;  // revision histories are adjacent
  chain.prob_lo = 0.5;
  chain.prob_hi = 1.0;

  // Both relations sample version chains of the same file population (two
  // prediction sources over the same files), giving the ~1:1 match rate.
  for (TPRelation* rel : {&r, &s}) {
    int64_t emitted = 0;
    for (int64_t file = 0; file < num_files && emitted < options.num_tuples;
         ++file) {
      const int64_t budget = options.num_tuples - emitted;
      const int64_t want =
          rng.Exponential(options.versions_per_file);
      const int64_t count = std::min(budget, std::max<int64_t>(1, want));
      TPDB_RETURN_IF_ERROR(
          AppendChain(rel, Row{Datum(file)}, count, chain, &rng));
      emitted += count;
    }
    // Top up on fresh files if the per-file draws undershot the target.
    int64_t extra_file = num_files;
    while (emitted < options.num_tuples) {
      const int64_t count =
          std::min(options.num_tuples - emitted,
                   std::max<int64_t>(1, rng.Exponential(
                                            options.versions_per_file)));
      TPDB_RETURN_IF_ERROR(
          AppendChain(rel, Row{Datum(extra_file++)}, count, chain, &rng));
      emitted += count;
    }
  }

  WebkitDataset out{std::move(r), std::move(s),
                    JoinCondition::Equals("file")};
  return out;
}

}  // namespace tpdb
