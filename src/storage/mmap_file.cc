#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tpdb::storage {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

MappedFile::~MappedFile() {
  if (addr_ != nullptr && size_ > 0) ::munmap(addr_, size_);
}

StatusOr<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError(Errno("cannot open", path));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IOError(Errno("cannot stat", path));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Status::IOError(Errno("cannot mmap", path));
      ::close(fd);
      return status;
    }
  }
  ::close(fd);  // the mapping keeps the file contents reachable
  return std::shared_ptr<MappedFile>(new MappedFile(path, addr, size));
}

}  // namespace tpdb::storage
