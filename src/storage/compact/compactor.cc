#include "storage/compact/compactor.h"

#include <algorithm>
#include <cstring>

#include "exec/thread_pool.h"
#include "lineage/probability.h"

namespace tpdb::storage {

namespace {

Schema FlattenedSchema(const Schema& fact_schema) {
  Schema schema = fact_schema;
  schema.AddColumn({kTsColumn, DatumType::kInt64});
  schema.AddColumn({kTeColumn, DatumType::kInt64});
  schema.AddColumn({kLineageColumn, DatumType::kLineage});
  return schema;
}

/// Flattened engine table of tuples[first..] (fact ++ _ts ++ _te ++ _lin).
Table FlattenTuples(const Schema& fact_schema,
                    const std::vector<TPTuple>& tuples, size_t first) {
  Table out;
  out.schema = FlattenedSchema(fact_schema);
  out.rows.reserve(tuples.size() - first);
  for (size_t i = first; i < tuples.size(); ++i) {
    const TPTuple& t = tuples[i];
    Row row = t.fact;
    row.push_back(Datum(t.interval.start));
    row.push_back(Datum(t.interval.end));
    row.push_back(Datum(t.lineage));
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

StatusOr<CompactionResult> BuildCompacted(CompactionInput input) {
  TPDB_CHECK(input.manager != nullptr);
  CompactionResult result;
  result.tuples = std::move(input.tuples);
  std::stable_sort(result.tuples.begin(), result.tuples.end(),
                   [](const TPTuple& a, const TPTuple& b) {
                     if (a.interval.start != b.interval.start)
                       return a.interval.start < b.interval.start;
                     return a.interval.end < b.interval.end;
                   });

  // Sample the epoch before computing any probability: if a
  // SetVariableProbability lands mid-build, the stamp is already behind
  // the manager's epoch and the planner ignores the (possibly stale)
  // probability zone maps.
  const uint64_t epoch = input.manager->probability_epoch();
  const Table table = FlattenTuples(input.fact_schema, result.tuples, 0);
  const size_t n = result.tuples.size();
  const size_t segment_rows = std::max<size_t>(1, input.segment_rows);
  const size_t num_segments = (n + segment_rows - 1) / segment_rows;

  std::vector<double> probs(n, 0.0);
  std::vector<std::string> blobs(num_segments);
  ThreadPool* pool =
      input.parallelism == 1 ? nullptr : ThreadPool::Default();
  TaskGroup group(pool);
  for (size_t s = 0; s < num_segments; ++s) {
    group.Spawn([&, s]() -> Status {
      const size_t begin = s * segment_rows;
      const size_t end = std::min(begin + segment_rows, n);
      ProbabilityEngine engine(input.manager);
      for (size_t i = begin; i < end; ++i)
        probs[i] = engine.Probability(result.tuples[i].lineage);
      StatusOr<std::string> blob =
          EncodeSegmentBlob(table, begin, end, probs, /*ids=*/nullptr,
                            ColumnCodecOptions{.compress = true});
      if (!blob.ok()) return blob.status();
      blobs[s] = std::move(*blob);
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(group.Wait());

  // One owned backing buffer, each blob at an 8-aligned offset (their
  // internal alignment is relative to the blob start).
  std::vector<size_t> offsets(num_segments, 0);
  size_t total = 0;
  for (size_t s = 0; s < num_segments; ++s) {
    total = (total + 7) / 8 * 8;
    offsets[s] = total;
    total += blobs[s].size();
  }
  auto backing = std::make_shared<std::string>();
  backing->resize(total, '\0');
  for (size_t s = 0; s < num_segments; ++s)
    std::memcpy(backing->data() + offsets[s], blobs[s].data(),
                blobs[s].size());

  std::vector<Segment> segments;
  segments.reserve(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    StatusOr<Segment> segment = ParseSegmentBlob(
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(backing->data()) + offsets[s],
            blobs[s].size()),
        table.schema, /*ids=*/nullptr);
    if (!segment.ok()) return segment.status();
    segments.push_back(std::move(*segment));
  }
  result.table = std::make_shared<SegmentedTable>(
      table.schema, std::move(segments), backing, epoch);
  return result;
}

Status AppendDeltaSegment(SegmentedTable* table, const Schema& fact_schema,
                          const std::vector<TPTuple>& tuples, size_t first,
                          LineageManager* manager) {
  TPDB_CHECK(table != nullptr && manager != nullptr);
  if (first >= tuples.size()) return Status::OK();
  const Table delta = FlattenTuples(fact_schema, tuples, first);
  const size_t n = delta.rows.size();
  std::vector<double> probs(n, 0.0);
  ProbabilityEngine engine(manager);
  for (size_t i = 0; i < n; ++i)
    probs[i] = engine.Probability(tuples[first + i].lineage);
  StatusOr<std::string> blob =
      EncodeSegmentBlob(delta, 0, n, probs, /*ids=*/nullptr,
                        ColumnCodecOptions{.compress = true});
  if (!blob.ok()) return blob.status();
  auto backing = std::make_shared<std::string>(std::move(*blob));
  StatusOr<Segment> segment = ParseSegmentBlob(
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(backing->data()), backing->size()),
      delta.schema, /*ids=*/nullptr);
  if (!segment.ok()) return segment.status();
  std::vector<Segment> segments;
  segments.push_back(std::move(*segment));
  table->ExtendDelta(std::move(segments), std::move(backing));
  return Status::OK();
}

}  // namespace tpdb::storage
