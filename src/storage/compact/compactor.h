// Compaction: folds a relation's delta segments (appended since the last
// snapshot load, see TPDatabase::Append) back into compressed base
// segments.
//
// Appends accumulate as one small delta segment each behind a relation's
// mapped base segments. Deltas keep cold scans coherent, but they are
// tiny (poor compression, per-segment fixed costs) and unsorted (weak
// zone maps). Compaction rebuilds the whole table: tuples re-sorted by
// interval start (then end, stably — equal keys keep their append order),
// re-encoded at full segment granularity with compression on, zone maps
// rebuilt over the sorted order so temporal pruning bites again.
//
// The rebuild is a pure function (BuildCompacted) over a copied tuple
// prefix, so the driver (TPDatabase) runs it on the exec/ thread pool
// without holding any lock; only the final pointer swap takes the
// exclusive catalog lock. Rows appended while the rebuild ran form a
// fresh tail delta at swap time — compaction never blocks appends or
// readers for longer than the swap itself.
#ifndef TPDB_STORAGE_COMPACT_COMPACTOR_H_
#define TPDB_STORAGE_COMPACT_COMPACTOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

struct CompactionInput {
  Schema fact_schema;
  std::vector<TPTuple> tuples;  ///< copied under the shared catalog lock
  LineageManager* manager = nullptr;
  size_t segment_rows = 4096;
  /// 1 = serial; else probabilities and segments go wide on the shared
  /// exec/ pool.
  int parallelism = 0;
};

struct CompactionResult {
  /// The input tuples, stably sorted by (interval start, interval end).
  /// Row i of `table` is tuples[i] — the order the relation must adopt.
  std::vector<TPTuple> tuples;
  std::shared_ptr<SegmentedTable> table;
};

/// Rebuilds `input.tuples` as a fully compacted SegmentedTable: sorts,
/// computes exact tuple probabilities for the zone maps, encodes
/// compressed base segments into one owned backing buffer. Takes no locks
/// and touches no shared mutable state besides the (internally
/// synchronized) manager.
StatusOr<CompactionResult> BuildCompacted(CompactionInput input);

/// Encodes `tuples[first..]` as one compressed delta segment blob and
/// appends it to `table` (ExtendDelta). The swap-time tail step, also used
/// by TPDatabase::Append for cold relations. Caller holds the exclusive
/// catalog lock.
Status AppendDeltaSegment(SegmentedTable* table, const Schema& fact_schema,
                          const std::vector<TPTuple>& tuples, size_t first,
                          LineageManager* manager);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_COMPACT_COMPACTOR_H_
