// Shared per-column byte codec: the column encodings of the segment format
// (storage/segment.h), factored out so both the snapshot writer and the
// network wire protocol (server/) serialize columns through one
// implementation instead of two diverging copies.
//
// A column is encoded as
//
//   u8 encoding | u8 declared type | <encoding-specific data>
//
// with the same layouts the segment format documents: null bitmap + raw
// arrays for plain int64/double, dictionary + u32 codes for strings, u32 id
// arrays for lineage, tagged datums for the generic fallback. Alignment
// padding is relative to the enclosing ByteWriter/ByteReader start, exactly
// as in segment blobs.
//
// With ColumnCodecOptions::compress set, the int64-normal-form encodings
// (plain ints, dictionary codes, lineage ids) are routed through the
// storage/compress codecs instead: the encoder picks the smallest method
// per chunk and falls back to the plain zero-copy layout whenever raw wins,
// so compression never loses bytes. The wire formats keep compression off —
// they re-encode decoded batches byte-identically.
//
// Lineage ids: with a LineageIdMap the codec writes snapshot-local dense
// ids (the on-disk format). With `ids == nullptr` it writes the raw arena
// ids instead — the wire format, where the receiving peer either shares the
// process (ids resolve) or treats lineage as an opaque token.
#ifndef TPDB_STORAGE_COLUMN_CODEC_H_
#define TPDB_STORAGE_COLUMN_CODEC_H_

#include <functional>

#include "common/status.h"
#include "storage/segment.h"

namespace tpdb::storage {

/// Datum tags of the kGeneric encoding.
enum class GenericTag : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kLineage = 4,
};

/// Dense value accessor for one column: the value of row i, 0 <= i < n.
/// (The snapshot writer adapts row-major tables, the batch codec adapts
/// ColumnVectors.)
using ColumnSource = std::function<const Datum&(size_t)>;

/// Encodes one column of `num_rows` values onto `w`: picks the encoding
/// from the values actually present (uniform typed chunks get the columnar
/// layouts, mixed chunks the tagged generic fallback) and writes the
/// encoding byte, the declared-type byte and the data.
Status EncodeColumn(size_t num_rows, DatumType declared,
                    const ColumnSource& at, const LineageIdMap* ids,
                    ByteWriter* w, const ColumnCodecOptions& options = {});

/// Inverse of EncodeColumn. Raw arrays become spans into `r`'s underlying
/// bytes — the caller keeps that memory alive for the chunk's lifetime (and
/// 8-aligns its start, as segment blobs and wire payload buffers both do).
/// Packed int/code chunks come back deferred (see ColumnChunk::block);
/// packed lineage decompresses eagerly, because id resolution needs the
/// load-time id map.
Status DecodeColumn(ByteReader* r, size_t num_rows, const LineageIdMap* ids,
                    ColumnChunk* chunk);

/// Writes one datum in the kGeneric tagged layout (u8 tag + value). Also
/// the row format of WAL append records.
Status EncodeTaggedDatum(const Datum& v, const LineageIdMap* ids,
                         ByteWriter* w);

/// Inverse of EncodeTaggedDatum.
Status DecodeTaggedDatum(ByteReader* r, const LineageIdMap* ids, Datum* out);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_COLUMN_CODEC_H_
