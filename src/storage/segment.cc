#include "storage/segment.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "engine/schema.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

namespace {

/// Datum tags of the kGeneric encoding.
enum class GenericTag : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kLineage = 4,
};

/// Widens [min, max] by one ulp on each side so that int64 values rounded
/// during the double conversion can never fall outside the stored bounds
/// (pruning must stay conservative).
ColumnBounds WidenedBounds(double min, double max) {
  ColumnBounds b;
  b.valid = true;
  b.min = std::nextafter(min, -std::numeric_limits<double>::infinity());
  b.max = std::nextafter(max, std::numeric_limits<double>::infinity());
  return b;
}

}  // namespace

Datum ColumnChunk::ValueAt(size_t row) const {
  switch (encoding) {
    case ColumnEncoding::kAllNull:
      return Datum::Null();
    case ColumnEncoding::kPlainInt64:
      return IsNull(row) ? Datum::Null() : Datum(ints[row]);
    case ColumnEncoding::kPlainDouble:
      return IsNull(row) ? Datum::Null() : Datum(doubles[row]);
    case ColumnEncoding::kDictString:
      return IsNull(row) ? Datum::Null() : Datum(dict[codes[row]]);
    case ColumnEncoding::kLineage:
      return Datum(lineage[row]);
    case ColumnEncoding::kGeneric:
      return generic[row];
  }
  return Datum::Null();
}

void Segment::DecodeRow(size_t row, Row* out) const {
  out->clear();
  out->reserve(chunks.size());
  for (const ColumnChunk& chunk : chunks) out->push_back(chunk.ValueAt(row));
}

SegmentedTable::SegmentedTable(Schema schema, std::vector<Segment> segments,
                               std::shared_ptr<MappedFile> backing,
                               uint64_t probability_epoch)
    : schema_(std::move(schema)),
      segments_(std::move(segments)),
      backing_(std::move(backing)),
      probability_epoch_(probability_epoch) {
  for (const Segment& s : segments_) num_rows_ += s.num_rows;
}

StatusOr<uint32_t> LineageIdMap::LocalOf(LineageRef ref) const {
  const auto it = std::lower_bound(
      ref_to_local.begin(), ref_to_local.end(), ref.id,
      [](const std::pair<uint32_t, uint32_t>& e, uint32_t id) {
        return e.first < id;
      });
  if (it == ref_to_local.end() || it->first != ref.id)
    return Status::Internal("lineage ref not in snapshot id map");
  return it->second;
}

StatusOr<LineageRef> LineageIdMap::RefOf(uint32_t local) const {
  if (local == LineageRef::kNullId) return LineageRef::Null();
  if (local >= local_to_ref.size())
    return Status::IOError("snapshot corrupt: lineage id " +
                           std::to_string(local) + " out of range");
  return local_to_ref[local];
}

StatusOr<std::string> EncodeSegmentBlob(const Table& table, size_t begin,
                                        size_t end,
                                        const std::vector<double>& probs,
                                        const LineageIdMap& ids) {
  const size_t num_rows = end - begin;
  const size_t num_cols = table.schema.num_columns();
  const int ts_idx = table.schema.IndexOf(kTsColumn);
  const int te_idx = table.schema.IndexOf(kTeColumn);

  ByteWriter w;
  w.PutU64(num_rows);

  // -- Zone map ----------------------------------------------------------
  ZoneMap zone;
  zone.max_prob = 0.0;
  for (size_t r = begin; r < end; ++r) {
    if (ts_idx >= 0)
      zone.ts_min = std::min(zone.ts_min, table.rows[r][ts_idx].AsInt64());
    if (te_idx >= 0)
      zone.te_max = std::max(zone.te_max, table.rows[r][te_idx].AsInt64());
    if (r < probs.size()) zone.max_prob = std::max(zone.max_prob, probs[r]);
  }
  w.PutI64(zone.ts_min);
  w.PutI64(zone.te_max);
  w.PutF64(zone.max_prob);
  w.PutU32(static_cast<uint32_t>(num_cols));
  for (size_t c = 0; c < num_cols; ++c) {
    bool numeric = true;
    bool any = false;
    double min = 0.0, max = 0.0;
    for (size_t r = begin; r < end && numeric; ++r) {
      const Datum& v = table.rows[r][c];
      if (v.is_null()) continue;
      double x = 0.0;
      if (v.type() == DatumType::kInt64) {
        x = static_cast<double>(v.AsInt64());
      } else if (v.type() == DatumType::kDouble) {
        x = v.AsDouble();
      } else {
        numeric = false;
        break;
      }
      if (!any) {
        min = max = x;
        any = true;
      } else {
        min = std::min(min, x);
        max = std::max(max, x);
      }
    }
    const ColumnBounds bounds =
        numeric && any ? WidenedBounds(min, max) : ColumnBounds{};
    w.PutU8(bounds.valid ? 1 : 0);
    w.PutF64(bounds.min);
    w.PutF64(bounds.max);
  }

  // -- Column chunks -----------------------------------------------------
  for (size_t c = 0; c < num_cols; ++c) {
    // Pick the encoding from the values actually present: uniform typed
    // chunks get the columnar layouts, anything mixed falls back to the
    // tagged generic encoding so every Datum round-trips exactly.
    size_t nulls = 0;
    bool all_int = true, all_double = true, all_string = true,
         all_lineage = true;
    for (size_t r = begin; r < end; ++r) {
      const Datum& v = table.rows[r][c];
      switch (v.type()) {
        case DatumType::kNull:
          ++nulls;
          all_lineage = false;
          break;
        case DatumType::kInt64:
          all_double = all_string = all_lineage = false;
          break;
        case DatumType::kDouble:
          all_int = all_string = all_lineage = false;
          break;
        case DatumType::kString:
          all_int = all_double = all_lineage = false;
          break;
        case DatumType::kLineage:
          all_int = all_double = all_string = false;
          break;
      }
    }
    ColumnEncoding encoding;
    if (nulls == num_rows) {
      encoding = ColumnEncoding::kAllNull;
    } else if (all_int) {
      encoding = ColumnEncoding::kPlainInt64;
    } else if (all_double) {
      encoding = ColumnEncoding::kPlainDouble;
    } else if (all_string) {
      encoding = ColumnEncoding::kDictString;
    } else if (all_lineage && nulls == 0) {
      encoding = ColumnEncoding::kLineage;
    } else {
      encoding = ColumnEncoding::kGeneric;
    }
    w.PutU8(static_cast<uint8_t>(encoding));
    w.PutU8(static_cast<uint8_t>(table.schema.column(c).type));

    const auto put_bitmap = [&] {
      std::vector<uint8_t> bitmap((num_rows + 7) / 8, 0);
      for (size_t r = begin; r < end; ++r)
        if (table.rows[r][c].is_null())
          bitmap[(r - begin) / 8] |= 1u << ((r - begin) % 8);
      w.PutRaw(bitmap.data(), bitmap.size());
    };

    switch (encoding) {
      case ColumnEncoding::kAllNull:
        break;
      case ColumnEncoding::kPlainInt64: {
        put_bitmap();
        w.AlignTo(8);
        for (size_t r = begin; r < end; ++r) {
          const Datum& v = table.rows[r][c];
          w.PutI64(v.is_null() ? 0 : v.AsInt64());
        }
        break;
      }
      case ColumnEncoding::kPlainDouble: {
        put_bitmap();
        w.AlignTo(8);
        for (size_t r = begin; r < end; ++r) {
          const Datum& v = table.rows[r][c];
          w.PutF64(v.is_null() ? 0.0 : v.AsDouble());
        }
        break;
      }
      case ColumnEncoding::kDictString: {
        put_bitmap();
        std::map<std::string, uint32_t> dict;
        std::vector<const std::string*> ordered;
        for (size_t r = begin; r < end; ++r) {
          const Datum& v = table.rows[r][c];
          if (v.is_null()) continue;
          const auto [it, inserted] =
              dict.emplace(v.AsString(), static_cast<uint32_t>(dict.size()));
          if (inserted) ordered.push_back(&it->first);
        }
        w.PutU32(static_cast<uint32_t>(ordered.size()));
        for (const std::string* s : ordered) w.PutString(*s);
        w.AlignTo(4);
        for (size_t r = begin; r < end; ++r) {
          const Datum& v = table.rows[r][c];
          w.PutU32(v.is_null() ? 0 : dict.at(v.AsString()));
        }
        break;
      }
      case ColumnEncoding::kLineage: {
        w.AlignTo(4);
        for (size_t r = begin; r < end; ++r) {
          const LineageRef ref = table.rows[r][c].AsLineage();
          if (ref.is_null()) {
            w.PutU32(LineageRef::kNullId);
            continue;
          }
          StatusOr<uint32_t> local = ids.LocalOf(ref);
          if (!local.ok()) return local.status();
          w.PutU32(*local);
        }
        break;
      }
      case ColumnEncoding::kGeneric: {
        for (size_t r = begin; r < end; ++r) {
          const Datum& v = table.rows[r][c];
          switch (v.type()) {
            case DatumType::kNull:
              w.PutU8(static_cast<uint8_t>(GenericTag::kNull));
              break;
            case DatumType::kInt64:
              w.PutU8(static_cast<uint8_t>(GenericTag::kInt64));
              w.PutI64(v.AsInt64());
              break;
            case DatumType::kDouble:
              w.PutU8(static_cast<uint8_t>(GenericTag::kDouble));
              w.PutF64(v.AsDouble());
              break;
            case DatumType::kString:
              w.PutU8(static_cast<uint8_t>(GenericTag::kString));
              w.PutString(v.AsString());
              break;
            case DatumType::kLineage: {
              w.PutU8(static_cast<uint8_t>(GenericTag::kLineage));
              const LineageRef ref = v.AsLineage();
              if (ref.is_null()) {
                w.PutU32(LineageRef::kNullId);
                break;
              }
              StatusOr<uint32_t> local = ids.LocalOf(ref);
              if (!local.ok()) return local.status();
              w.PutU32(*local);
              break;
            }
          }
        }
        break;
      }
    }
  }

  w.AlignTo(8);  // keep the next segment's blob 8-aligned in the file
  return std::move(w).TakeBuffer();
}

StatusOr<Segment> ParseSegmentBlob(std::span<const uint8_t> blob,
                                   const Schema& schema,
                                   const LineageIdMap& ids) {
  ByteReader r(blob);
  Segment seg;
  seg.encoded_bytes = blob.size();

  uint64_t num_rows = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_rows));
  if (num_rows > blob.size())  // a blob stores >= 1 byte per row
    return Status::IOError("snapshot corrupt: implausible segment row count");
  seg.num_rows = static_cast<size_t>(num_rows);

  TPDB_RETURN_IF_ERROR(r.GetI64(&seg.zone.ts_min));
  TPDB_RETURN_IF_ERROR(r.GetI64(&seg.zone.te_max));
  TPDB_RETURN_IF_ERROR(r.GetF64(&seg.zone.max_prob));
  uint32_t num_cols = 0;
  TPDB_RETURN_IF_ERROR(r.GetU32(&num_cols));
  if (num_cols != schema.num_columns())
    return Status::IOError("snapshot corrupt: segment has " +
                           std::to_string(num_cols) + " columns, schema has " +
                           std::to_string(schema.num_columns()));
  seg.zone.bounds.resize(num_cols);
  for (ColumnBounds& b : seg.zone.bounds) {
    uint8_t valid = 0;
    TPDB_RETURN_IF_ERROR(r.GetU8(&valid));
    b.valid = valid != 0;
    TPDB_RETURN_IF_ERROR(r.GetF64(&b.min));
    TPDB_RETURN_IF_ERROR(r.GetF64(&b.max));
  }

  seg.chunks.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    ColumnChunk& chunk = seg.chunks[c];
    uint8_t encoding = 0, declared = 0;
    TPDB_RETURN_IF_ERROR(r.GetU8(&encoding));
    TPDB_RETURN_IF_ERROR(r.GetU8(&declared));
    if (encoding > static_cast<uint8_t>(ColumnEncoding::kGeneric))
      return Status::IOError("snapshot corrupt: unknown column encoding " +
                             std::to_string(encoding));
    chunk.encoding = static_cast<ColumnEncoding>(encoding);
    chunk.declared = static_cast<DatumType>(declared);

    const size_t bitmap_bytes = (seg.num_rows + 7) / 8;
    switch (chunk.encoding) {
      case ColumnEncoding::kAllNull:
        break;
      case ColumnEncoding::kPlainInt64:
        TPDB_RETURN_IF_ERROR(r.GetSpan(bitmap_bytes, &chunk.null_bitmap));
        TPDB_RETURN_IF_ERROR(r.AlignTo(8));
        TPDB_RETURN_IF_ERROR(r.GetSpan(seg.num_rows, &chunk.ints));
        break;
      case ColumnEncoding::kPlainDouble:
        TPDB_RETURN_IF_ERROR(r.GetSpan(bitmap_bytes, &chunk.null_bitmap));
        TPDB_RETURN_IF_ERROR(r.AlignTo(8));
        TPDB_RETURN_IF_ERROR(r.GetSpan(seg.num_rows, &chunk.doubles));
        break;
      case ColumnEncoding::kDictString: {
        TPDB_RETURN_IF_ERROR(r.GetSpan(bitmap_bytes, &chunk.null_bitmap));
        uint32_t dict_n = 0;
        TPDB_RETURN_IF_ERROR(r.GetU32(&dict_n));
        if (dict_n > r.remaining())
          return Status::IOError(
              "snapshot corrupt: implausible dictionary size");
        chunk.dict.resize(dict_n);
        for (std::string& s : chunk.dict)
          TPDB_RETURN_IF_ERROR(r.GetString(&s));
        TPDB_RETURN_IF_ERROR(r.AlignTo(4));
        TPDB_RETURN_IF_ERROR(r.GetSpan(seg.num_rows, &chunk.codes));
        for (size_t row = 0; row < seg.num_rows; ++row)
          if (!chunk.IsNull(row) && chunk.codes[row] >= dict_n)
            return Status::IOError(
                "snapshot corrupt: dictionary code out of range");
        break;
      }
      case ColumnEncoding::kLineage: {
        TPDB_RETURN_IF_ERROR(r.AlignTo(4));
        std::span<const uint32_t> locals;
        TPDB_RETURN_IF_ERROR(r.GetSpan(seg.num_rows, &locals));
        chunk.lineage.reserve(seg.num_rows);
        for (const uint32_t local : locals) {
          StatusOr<LineageRef> ref = ids.RefOf(local);
          if (!ref.ok()) return ref.status();
          chunk.lineage.push_back(*ref);
        }
        break;
      }
      case ColumnEncoding::kGeneric: {
        chunk.generic.reserve(seg.num_rows);
        for (size_t row = 0; row < seg.num_rows; ++row) {
          uint8_t tag = 0;
          TPDB_RETURN_IF_ERROR(r.GetU8(&tag));
          switch (static_cast<GenericTag>(tag)) {
            case GenericTag::kNull:
              chunk.generic.push_back(Datum::Null());
              break;
            case GenericTag::kInt64: {
              int64_t v = 0;
              TPDB_RETURN_IF_ERROR(r.GetI64(&v));
              chunk.generic.push_back(Datum(v));
              break;
            }
            case GenericTag::kDouble: {
              double v = 0;
              TPDB_RETURN_IF_ERROR(r.GetF64(&v));
              chunk.generic.push_back(Datum(v));
              break;
            }
            case GenericTag::kString: {
              std::string s;
              TPDB_RETURN_IF_ERROR(r.GetString(&s));
              chunk.generic.push_back(Datum(std::move(s)));
              break;
            }
            case GenericTag::kLineage: {
              uint32_t local = 0;
              TPDB_RETURN_IF_ERROR(r.GetU32(&local));
              StatusOr<LineageRef> ref = ids.RefOf(local);
              if (!ref.ok()) return ref.status();
              chunk.generic.push_back(Datum(*ref));
              break;
            }
            default:
              return Status::IOError(
                  "snapshot corrupt: unknown generic datum tag " +
                  std::to_string(tag));
          }
        }
        break;
      }
    }
  }
  return seg;
}

}  // namespace tpdb::storage
