#include "storage/segment.h"

#include <algorithm>
#include <cmath>

#include "engine/schema.h"
#include "storage/column_codec.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

namespace {

/// Widens [min, max] by one ulp on each side so that int64 values rounded
/// during the double conversion can never fall outside the stored bounds
/// (pruning must stay conservative).
ColumnBounds WidenedBounds(double min, double max) {
  ColumnBounds b;
  b.valid = true;
  b.min = std::nextafter(min, -std::numeric_limits<double>::infinity());
  b.max = std::nextafter(max, std::numeric_limits<double>::infinity());
  return b;
}

}  // namespace

Datum ColumnChunk::ValueAt(size_t row) const {
  switch (encoding) {
    case ColumnEncoding::kAllNull:
      return Datum::Null();
    case ColumnEncoding::kPlainInt64:
      return IsNull(row) ? Datum::Null() : Datum(ints[row]);
    case ColumnEncoding::kPlainDouble:
      return IsNull(row) ? Datum::Null() : Datum(doubles[row]);
    case ColumnEncoding::kDictString:
      return IsNull(row) ? Datum::Null() : Datum(Dict()[codes[row]]);
    case ColumnEncoding::kLineage:
      return Datum(lineage[row]);
    case ColumnEncoding::kGeneric:
      return generic[row];
    case ColumnEncoding::kPackedInt64:
    case ColumnEncoding::kPackedDict:
    case ColumnEncoding::kPackedLineage:
      TPDB_CHECK(false) << "ValueAt on a deferred packed chunk; "
                           "MaterializeSegment first";
  }
  return Datum::Null();
}

void Segment::DecodeRow(size_t row, Row* out) const {
  out->clear();
  out->reserve(chunks.size());
  for (const ColumnChunk& chunk : chunks) out->push_back(chunk.ValueAt(row));
}

StatusOr<std::vector<const ColumnChunk*>> MaterializeSegment(
    const Segment& segment, ChunkStorage* storage) {
  storage->chunks.clear();
  storage->ints.clear();
  storage->codes.clear();
  // Reserve so the spans into storage arrays survive later pushes.
  size_t deferred = 0;
  for (const ColumnChunk& chunk : segment.chunks)
    if (chunk.deferred()) ++deferred;
  storage->chunks.reserve(deferred);
  storage->ints.reserve(deferred);
  storage->codes.reserve(deferred);

  std::vector<const ColumnChunk*> views;
  views.reserve(segment.chunks.size());
  for (const ColumnChunk& chunk : segment.chunks) {
    if (!chunk.deferred()) {
      views.push_back(&chunk);
      continue;
    }
    storage->ints.emplace_back();
    std::vector<int64_t>& values = storage->ints.back();
    TPDB_RETURN_IF_ERROR(
        DecompressInt64Block(chunk.block, segment.num_rows, &values));
    storage->chunks.emplace_back();
    ColumnChunk& mat = storage->chunks.back();
    mat.declared = chunk.declared;
    mat.null_bitmap = chunk.null_bitmap;
    if (chunk.encoding == ColumnEncoding::kPackedInt64) {
      mat.encoding = ColumnEncoding::kPlainInt64;
      mat.ints = values;
    } else {
      // kPackedDict: narrow the decompressed codes back to u32 and
      // re-check them against the dictionary (deferred from decode).
      mat.encoding = ColumnEncoding::kDictString;
      mat.dict_src = &chunk.dict;
      storage->codes.emplace_back();
      std::vector<uint32_t>& codes = storage->codes.back();
      codes.reserve(segment.num_rows);
      for (size_t row = 0; row < segment.num_rows; ++row) {
        const int64_t code = values[row];
        const bool null = mat.IsNull(row);
        if (!null && (code < 0 ||
                      static_cast<size_t>(code) >= mat.Dict().size()))
          return Status::IOError(
              "snapshot corrupt: packed dictionary code out of range");
        codes.push_back(null ? 0 : static_cast<uint32_t>(code));
      }
      mat.codes = codes;
    }
    views.push_back(&mat);
  }
  return views;
}

SegmentedTable::SegmentedTable(Schema schema, std::vector<Segment> segments,
                               std::shared_ptr<const void> backing,
                               uint64_t probability_epoch)
    : schema_(std::move(schema)),
      segments_(std::move(segments)),
      probability_epoch_(probability_epoch) {
  backings_.push_back(std::move(backing));
  for (const Segment& s : segments_) num_rows_ += s.num_rows;
  num_base_segments_ = segments_.size();
}

size_t SegmentedTable::packed_bytes() const {
  size_t total = 0;
  for (const Segment& s : segments_) total += s.packed_bytes;
  return total;
}

size_t SegmentedTable::unpacked_bytes() const {
  size_t total = 0;
  for (const Segment& s : segments_) total += s.unpacked_bytes;
  return total;
}

size_t SegmentedTable::encoded_bytes() const {
  size_t total = 0;
  for (const Segment& s : segments_) total += s.encoded_bytes;
  return total;
}

void SegmentedTable::ExtendDelta(std::vector<Segment> segments,
                                 std::shared_ptr<const void> backing) {
  for (Segment& s : segments) {
    num_rows_ += s.num_rows;
    segments_.push_back(std::move(s));
  }
  backings_.push_back(std::move(backing));
}

StatusOr<uint32_t> LineageIdMap::LocalOf(LineageRef ref) const {
  const auto it = std::lower_bound(
      ref_to_local.begin(), ref_to_local.end(), ref.id,
      [](const std::pair<uint32_t, uint32_t>& e, uint32_t id) {
        return e.first < id;
      });
  if (it == ref_to_local.end() || it->first != ref.id)
    return Status::Internal("lineage ref not in snapshot id map");
  return it->second;
}

StatusOr<LineageRef> LineageIdMap::RefOf(uint32_t local) const {
  if (local == LineageRef::kNullId) return LineageRef::Null();
  if (local >= local_to_ref.size())
    return Status::IOError("snapshot corrupt: lineage id " +
                           std::to_string(local) + " out of range");
  return local_to_ref[local];
}

StatusOr<std::string> EncodeSegmentBlob(const Table& table, size_t begin,
                                        size_t end,
                                        const std::vector<double>& probs,
                                        const LineageIdMap* ids,
                                        const ColumnCodecOptions& options) {
  const size_t num_rows = end - begin;
  const size_t num_cols = table.schema.num_columns();
  const int ts_idx = table.schema.IndexOf(kTsColumn);
  const int te_idx = table.schema.IndexOf(kTeColumn);

  ByteWriter w;
  w.PutU64(num_rows);

  // -- Zone map ----------------------------------------------------------
  ZoneMap zone;
  zone.max_prob = 0.0;
  for (size_t r = begin; r < end; ++r) {
    if (ts_idx >= 0)
      zone.ts_min = std::min(zone.ts_min, table.rows[r][ts_idx].AsInt64());
    if (te_idx >= 0)
      zone.te_max = std::max(zone.te_max, table.rows[r][te_idx].AsInt64());
    if (r < probs.size()) zone.max_prob = std::max(zone.max_prob, probs[r]);
  }
  w.PutI64(zone.ts_min);
  w.PutI64(zone.te_max);
  w.PutF64(zone.max_prob);
  w.PutU32(static_cast<uint32_t>(num_cols));
  for (size_t c = 0; c < num_cols; ++c) {
    bool numeric = true;
    bool any = false;
    double min = 0.0, max = 0.0;
    for (size_t r = begin; r < end && numeric; ++r) {
      const Datum& v = table.rows[r][c];
      if (v.is_null()) continue;
      double x = 0.0;
      if (v.type() == DatumType::kInt64) {
        x = static_cast<double>(v.AsInt64());
      } else if (v.type() == DatumType::kDouble) {
        x = v.AsDouble();
      } else {
        numeric = false;
        break;
      }
      if (!any) {
        min = max = x;
        any = true;
      } else {
        min = std::min(min, x);
        max = std::max(max, x);
      }
    }
    const ColumnBounds bounds =
        numeric && any ? WidenedBounds(min, max) : ColumnBounds{};
    w.PutU8(bounds.valid ? 1 : 0);
    w.PutF64(bounds.min);
    w.PutF64(bounds.max);
  }

  // -- Column chunks (shared codec; see storage/column_codec.h) ----------
  for (size_t c = 0; c < num_cols; ++c) {
    TPDB_RETURN_IF_ERROR(EncodeColumn(
        num_rows, table.schema.column(c).type,
        [&](size_t r) -> const Datum& { return table.rows[begin + r][c]; },
        ids, &w, options));
  }

  w.AlignTo(8);  // keep the next segment's blob 8-aligned in the file
  return std::move(w).TakeBuffer();
}

StatusOr<Segment> ParseSegmentBlob(std::span<const uint8_t> blob,
                                   const Schema& schema,
                                   const LineageIdMap* ids) {
  ByteReader r(blob);
  Segment seg;
  seg.encoded_bytes = blob.size();

  uint64_t num_rows = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_rows));
  if (num_rows > blob.size())  // a blob stores >= 1 byte per row
    return Status::IOError("snapshot corrupt: implausible segment row count");
  seg.num_rows = static_cast<size_t>(num_rows);

  TPDB_RETURN_IF_ERROR(r.GetI64(&seg.zone.ts_min));
  TPDB_RETURN_IF_ERROR(r.GetI64(&seg.zone.te_max));
  TPDB_RETURN_IF_ERROR(r.GetF64(&seg.zone.max_prob));
  uint32_t num_cols = 0;
  TPDB_RETURN_IF_ERROR(r.GetU32(&num_cols));
  if (num_cols != schema.num_columns())
    return Status::IOError("snapshot corrupt: segment has " +
                           std::to_string(num_cols) + " columns, schema has " +
                           std::to_string(schema.num_columns()));
  seg.zone.bounds.resize(num_cols);
  for (ColumnBounds& b : seg.zone.bounds) {
    uint8_t valid = 0;
    TPDB_RETURN_IF_ERROR(r.GetU8(&valid));
    b.valid = valid != 0;
    TPDB_RETURN_IF_ERROR(r.GetF64(&b.min));
    TPDB_RETURN_IF_ERROR(r.GetF64(&b.max));
  }

  seg.chunks.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    TPDB_RETURN_IF_ERROR(DecodeColumn(&r, seg.num_rows, ids, &seg.chunks[c]));
    seg.packed_bytes += seg.chunks[c].packed_bytes;
    seg.unpacked_bytes += seg.chunks[c].unpacked_bytes;
  }
  return seg;
}

}  // namespace tpdb::storage
