// Little-endian byte-level encoding primitives of the snapshot format:
// a growable writer, a bounds-checked reader over a mapped (or in-memory)
// byte range, and the CRC-32 used to checksum snapshot payloads.
//
// The format stores fixed-width integers and IEEE-754 doubles verbatim in
// host byte order and requires a little-endian host (save and load guard
// on std::endian::native and refuse big-endian hosts); raw column arrays
// are 8-byte aligned relative to the start of their enclosing blob so the
// cold read path can hand out typed spans straight into the mapped file.
#ifndef TPDB_STORAGE_BYTES_H_
#define TPDB_STORAGE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/status.h"

namespace tpdb::storage {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::span<const uint8_t> data);

/// Appends fixed-width scalars, length-prefixed strings and raw arrays to
/// a growable buffer. Alignment padding is relative to the buffer start,
/// so a blob written with one ByteWriter must be placed at an 8-aligned
/// file offset for its internal alignment to survive.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// u32 length prefix + bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// Pads with zero bytes until size() is a multiple of `alignment`.
  void AlignTo(size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string&& TakeBuffer() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked sequential reader over a byte range. Every accessor
/// returns a Status instead of crashing, so truncated or corrupted
/// snapshot files surface as errors.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

  Status GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetI64(int64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetF64(double* out) { return GetRaw(out, sizeof(*out)); }

  Status GetString(std::string* out);

  Status GetRaw(void* out, size_t n) {
    if (n > remaining())
      return Status::IOError("snapshot truncated: need " + std::to_string(n) +
                             " bytes, have " + std::to_string(remaining()));
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Skips padding up to the next multiple of `alignment` (relative to the
  /// start of this reader's range).
  Status AlignTo(size_t alignment) {
    const size_t target = (pos_ + alignment - 1) / alignment * alignment;
    if (target > data_.size())
      return Status::IOError("snapshot truncated in alignment padding");
    pos_ = target;
    return Status::OK();
  }

  /// Hands out a typed view of the next `count` elements without copying
  /// (the cold read path). The current position must be aligned for T.
  template <typename T>
  Status GetSpan(size_t count, std::span<const T>* out) {
    const size_t bytes = count * sizeof(T);
    if (bytes > remaining())
      return Status::IOError("snapshot truncated: column array needs " +
                             std::to_string(bytes) + " bytes, have " +
                             std::to_string(remaining()));
    const uint8_t* p = data_.data() + pos_;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0)
      return Status::IOError("snapshot corrupt: misaligned column array");
    *out = std::span<const T>(reinterpret_cast<const T*>(p), count);
    pos_ += bytes;
    return Status::OK();
  }

  /// Discards the next `n` bytes.
  Status Skip(size_t n) {
    if (n > remaining())
      return Status::IOError("snapshot truncated: cannot skip " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(remaining()));
    pos_ += n;
    return Status::OK();
  }

  /// Skips a u32-length-prefixed string without materializing it.
  Status SkipString() {
    uint32_t len = 0;
    TPDB_RETURN_IF_ERROR(GetU32(&len));
    return Skip(len);
  }

  /// A view of the next `n` bytes, which are consumed.
  Status GetBlob(size_t n, std::span<const uint8_t>* out) {
    if (n > remaining())
      return Status::IOError("snapshot truncated: blob needs " +
                             std::to_string(n) + " bytes, have " +
                             std::to_string(remaining()));
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_BYTES_H_
