#include "storage/column_codec.h"

#include <map>
#include <string>
#include <vector>

#include "storage/compress/compression.h"

namespace tpdb::storage {

namespace {

/// Lineage ref → wire id. Snapshot-local when an id map is present, the raw
/// arena id otherwise.
StatusOr<uint32_t> WireIdOf(LineageRef ref, const LineageIdMap* ids) {
  if (ref.is_null()) return LineageRef::kNullId;
  if (ids == nullptr) return ref.id;
  return ids->LocalOf(ref);
}

/// Wire id → lineage ref (inverse of WireIdOf).
StatusOr<LineageRef> RefOfWireId(uint32_t id, const LineageIdMap* ids) {
  if (ids == nullptr) return LineageRef{id};
  return ids->RefOf(id);
}

/// Block header + payload size of compressing `values` (for the
/// compress-or-stay-plain decision).
size_t PackedSize(std::span<const int64_t> values) {
  constexpr size_t kBlockHeader = 1 + 8 + 8 + 4;  // method, min, max, len
  return kBlockHeader +
         GetCompressionRoutines(ChooseCompression(values))->estimate(values);
}

}  // namespace

Status EncodeTaggedDatum(const Datum& v, const LineageIdMap* ids,
                         ByteWriter* w) {
  switch (v.type()) {
    case DatumType::kNull:
      w->PutU8(static_cast<uint8_t>(GenericTag::kNull));
      break;
    case DatumType::kInt64:
      w->PutU8(static_cast<uint8_t>(GenericTag::kInt64));
      w->PutI64(v.AsInt64());
      break;
    case DatumType::kDouble:
      w->PutU8(static_cast<uint8_t>(GenericTag::kDouble));
      w->PutF64(v.AsDouble());
      break;
    case DatumType::kString:
      w->PutU8(static_cast<uint8_t>(GenericTag::kString));
      w->PutString(v.AsString());
      break;
    case DatumType::kLineage: {
      w->PutU8(static_cast<uint8_t>(GenericTag::kLineage));
      StatusOr<uint32_t> id = WireIdOf(v.AsLineage(), ids);
      if (!id.ok()) return id.status();
      w->PutU32(*id);
      break;
    }
  }
  return Status::OK();
}

Status DecodeTaggedDatum(ByteReader* r, const LineageIdMap* ids, Datum* out) {
  uint8_t tag = 0;
  TPDB_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (static_cast<GenericTag>(tag)) {
    case GenericTag::kNull:
      *out = Datum::Null();
      return Status::OK();
    case GenericTag::kInt64: {
      int64_t v = 0;
      TPDB_RETURN_IF_ERROR(r->GetI64(&v));
      *out = Datum(v);
      return Status::OK();
    }
    case GenericTag::kDouble: {
      double v = 0;
      TPDB_RETURN_IF_ERROR(r->GetF64(&v));
      *out = Datum(v);
      return Status::OK();
    }
    case GenericTag::kString: {
      std::string s;
      TPDB_RETURN_IF_ERROR(r->GetString(&s));
      *out = Datum(std::move(s));
      return Status::OK();
    }
    case GenericTag::kLineage: {
      uint32_t local = 0;
      TPDB_RETURN_IF_ERROR(r->GetU32(&local));
      StatusOr<LineageRef> ref = RefOfWireId(local, ids);
      if (!ref.ok()) return ref.status();
      *out = Datum(*ref);
      return Status::OK();
    }
    default:
      return Status::IOError("snapshot corrupt: unknown generic datum tag " +
                             std::to_string(tag));
  }
}

Status EncodeColumn(size_t num_rows, DatumType declared,
                    const ColumnSource& at, const LineageIdMap* ids,
                    ByteWriter* w, const ColumnCodecOptions& options) {
  // Pick the encoding from the values actually present: uniform typed
  // chunks get the columnar layouts, anything mixed falls back to the
  // tagged generic encoding so every Datum round-trips exactly.
  size_t nulls = 0;
  bool all_int = true, all_double = true, all_string = true,
       all_lineage = true;
  for (size_t r = 0; r < num_rows; ++r) {
    const Datum& v = at(r);
    switch (v.type()) {
      case DatumType::kNull:
        ++nulls;
        all_lineage = false;
        break;
      case DatumType::kInt64:
        all_double = all_string = all_lineage = false;
        break;
      case DatumType::kDouble:
        all_int = all_string = all_lineage = false;
        break;
      case DatumType::kString:
        all_int = all_double = all_lineage = false;
        break;
      case DatumType::kLineage:
        all_int = all_double = all_string = false;
        break;
    }
  }
  ColumnEncoding encoding;
  if (nulls == num_rows) {
    encoding = ColumnEncoding::kAllNull;
  } else if (all_int) {
    encoding = ColumnEncoding::kPlainInt64;
  } else if (all_double) {
    encoding = ColumnEncoding::kPlainDouble;
  } else if (all_string) {
    encoding = ColumnEncoding::kDictString;
  } else if (all_lineage && nulls == 0) {
    encoding = ColumnEncoding::kLineage;
  } else {
    encoding = ColumnEncoding::kGeneric;
  }

  // With compression on, the int64-normal-form encodings upgrade to their
  // packed variants — but only when a codec actually beats the plain
  // layout, so uncompressible chunks keep their zero-copy mapping.
  std::vector<int64_t> packed;  // the values a packed chunk would compress
  std::map<std::string, uint32_t> dict;
  std::vector<const std::string*> ordered;
  if (options.compress && encoding == ColumnEncoding::kPlainInt64) {
    packed.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const Datum& v = at(r);
      packed.push_back(v.is_null() ? 0 : v.AsInt64());
    }
    if (PackedSize(packed) < num_rows * sizeof(int64_t))
      encoding = ColumnEncoding::kPackedInt64;
  } else if (options.compress && encoding == ColumnEncoding::kDictString) {
    for (size_t r = 0; r < num_rows; ++r) {
      const Datum& v = at(r);
      if (v.is_null()) continue;
      const auto [it, inserted] =
          dict.emplace(v.AsString(), static_cast<uint32_t>(dict.size()));
      if (inserted) ordered.push_back(&it->first);
    }
    packed.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const Datum& v = at(r);
      packed.push_back(v.is_null() ? 0 : dict.at(v.AsString()));
    }
    if (PackedSize(packed) < num_rows * sizeof(uint32_t))
      encoding = ColumnEncoding::kPackedDict;
  } else if (options.compress && encoding == ColumnEncoding::kLineage) {
    packed.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      StatusOr<uint32_t> id = WireIdOf(at(r).AsLineage(), ids);
      if (!id.ok()) return id.status();
      packed.push_back(*id);
    }
    if (PackedSize(packed) < num_rows * sizeof(uint32_t))
      encoding = ColumnEncoding::kPackedLineage;
  }

  w->PutU8(static_cast<uint8_t>(encoding));
  w->PutU8(static_cast<uint8_t>(declared));

  const auto put_bitmap = [&] {
    std::vector<uint8_t> bitmap((num_rows + 7) / 8, 0);
    for (size_t r = 0; r < num_rows; ++r)
      if (at(r).is_null()) bitmap[r / 8] |= 1u << (r % 8);
    w->PutRaw(bitmap.data(), bitmap.size());
  };

  switch (encoding) {
    case ColumnEncoding::kAllNull:
      break;
    case ColumnEncoding::kPlainInt64: {
      put_bitmap();
      w->AlignTo(8);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutI64(v.is_null() ? 0 : v.AsInt64());
      }
      break;
    }
    case ColumnEncoding::kPlainDouble: {
      put_bitmap();
      w->AlignTo(8);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutF64(v.is_null() ? 0.0 : v.AsDouble());
      }
      break;
    }
    case ColumnEncoding::kDictString: {
      put_bitmap();
      std::map<std::string, uint32_t> dict;
      std::vector<const std::string*> ordered;
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        if (v.is_null()) continue;
        const auto [it, inserted] =
            dict.emplace(v.AsString(), static_cast<uint32_t>(dict.size()));
        if (inserted) ordered.push_back(&it->first);
      }
      w->PutU32(static_cast<uint32_t>(ordered.size()));
      for (const std::string* s : ordered) w->PutString(*s);
      w->AlignTo(4);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutU32(v.is_null() ? 0 : dict.at(v.AsString()));
      }
      break;
    }
    case ColumnEncoding::kLineage: {
      w->AlignTo(4);
      for (size_t r = 0; r < num_rows; ++r) {
        StatusOr<uint32_t> id = WireIdOf(at(r).AsLineage(), ids);
        if (!id.ok()) return id.status();
        w->PutU32(*id);
      }
      break;
    }
    case ColumnEncoding::kGeneric: {
      for (size_t r = 0; r < num_rows; ++r)
        TPDB_RETURN_IF_ERROR(EncodeTaggedDatum(at(r), ids, w));
      break;
    }
    case ColumnEncoding::kPackedInt64: {
      put_bitmap();
      CompressInt64Block(packed, w);
      break;
    }
    case ColumnEncoding::kPackedDict: {
      put_bitmap();
      w->PutU32(static_cast<uint32_t>(ordered.size()));
      for (const std::string* s : ordered) w->PutString(*s);
      CompressInt64Block(packed, w);
      break;
    }
    case ColumnEncoding::kPackedLineage: {
      CompressInt64Block(packed, w);
      break;
    }
  }
  return Status::OK();
}

Status DecodeColumn(ByteReader* r, size_t num_rows, const LineageIdMap* ids,
                    ColumnChunk* chunk) {
  uint8_t encoding = 0, declared = 0;
  TPDB_RETURN_IF_ERROR(r->GetU8(&encoding));
  TPDB_RETURN_IF_ERROR(r->GetU8(&declared));
  if (encoding > static_cast<uint8_t>(ColumnEncoding::kPackedLineage))
    return Status::IOError("snapshot corrupt: unknown column encoding " +
                           std::to_string(encoding));
  chunk->encoding = static_cast<ColumnEncoding>(encoding);
  chunk->declared = static_cast<DatumType>(declared);

  constexpr size_t kBlockHeader = 1 + 8 + 8 + 4;
  const size_t bitmap_bytes = (num_rows + 7) / 8;
  switch (chunk->encoding) {
    case ColumnEncoding::kAllNull:
      break;
    case ColumnEncoding::kPlainInt64:
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      TPDB_RETURN_IF_ERROR(r->AlignTo(8));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->ints));
      break;
    case ColumnEncoding::kPlainDouble:
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      TPDB_RETURN_IF_ERROR(r->AlignTo(8));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->doubles));
      break;
    case ColumnEncoding::kDictString: {
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      uint32_t dict_n = 0;
      TPDB_RETURN_IF_ERROR(r->GetU32(&dict_n));
      if (dict_n > r->remaining())
        return Status::IOError("snapshot corrupt: implausible dictionary size");
      chunk->dict.resize(dict_n);
      for (std::string& s : chunk->dict) TPDB_RETURN_IF_ERROR(r->GetString(&s));
      TPDB_RETURN_IF_ERROR(r->AlignTo(4));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->codes));
      for (size_t row = 0; row < num_rows; ++row)
        if (!chunk->IsNull(row) && chunk->codes[row] >= dict_n)
          return Status::IOError(
              "snapshot corrupt: dictionary code out of range");
      break;
    }
    case ColumnEncoding::kLineage: {
      TPDB_RETURN_IF_ERROR(r->AlignTo(4));
      std::span<const uint32_t> locals;
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &locals));
      chunk->lineage.reserve(num_rows);
      for (const uint32_t local : locals) {
        StatusOr<LineageRef> ref = RefOfWireId(local, ids);
        if (!ref.ok()) return ref.status();
        chunk->lineage.push_back(*ref);
      }
      break;
    }
    case ColumnEncoding::kGeneric: {
      chunk->generic.reserve(num_rows);
      for (size_t row = 0; row < num_rows; ++row) {
        Datum v;
        TPDB_RETURN_IF_ERROR(DecodeTaggedDatum(r, ids, &v));
        chunk->generic.push_back(std::move(v));
      }
      break;
    }
    case ColumnEncoding::kPackedInt64: {
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      TPDB_RETURN_IF_ERROR(ParseInt64Block(r, &chunk->block));
      chunk->packed_bytes = kBlockHeader + chunk->block.payload.size();
      chunk->unpacked_bytes = num_rows * sizeof(int64_t);
      break;
    }
    case ColumnEncoding::kPackedDict: {
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      uint32_t dict_n = 0;
      TPDB_RETURN_IF_ERROR(r->GetU32(&dict_n));
      if (dict_n > r->remaining())
        return Status::IOError("snapshot corrupt: implausible dictionary size");
      chunk->dict.resize(dict_n);
      for (std::string& s : chunk->dict) TPDB_RETURN_IF_ERROR(r->GetString(&s));
      TPDB_RETURN_IF_ERROR(ParseInt64Block(r, &chunk->block));
      chunk->packed_bytes = kBlockHeader + chunk->block.payload.size();
      chunk->unpacked_bytes = num_rows * sizeof(uint32_t);
      // Code range check happens at materialization, after decompression.
      break;
    }
    case ColumnEncoding::kPackedLineage: {
      // Resolution needs the load-time id map, so lineage decompresses
      // eagerly; in memory the chunk is indistinguishable from kLineage.
      CompressedBlock block;
      TPDB_RETURN_IF_ERROR(ParseInt64Block(r, &block));
      std::vector<int64_t> locals;
      TPDB_RETURN_IF_ERROR(DecompressInt64Block(block, num_rows, &locals));
      chunk->lineage.reserve(num_rows);
      for (const int64_t local : locals) {
        if (local < 0 || local > UINT32_MAX)
          return Status::IOError(
              "snapshot corrupt: packed lineage id out of range");
        StatusOr<LineageRef> ref =
            RefOfWireId(static_cast<uint32_t>(local), ids);
        if (!ref.ok()) return ref.status();
        chunk->lineage.push_back(*ref);
      }
      chunk->packed_bytes = kBlockHeader + block.payload.size();
      chunk->unpacked_bytes = num_rows * sizeof(uint32_t);
      chunk->encoding = ColumnEncoding::kLineage;
      break;
    }
  }
  return Status::OK();
}

}  // namespace tpdb::storage
