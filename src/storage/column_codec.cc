#include "storage/column_codec.h"

#include <map>
#include <string>
#include <vector>

namespace tpdb::storage {

namespace {

/// Lineage ref → wire id. Snapshot-local when an id map is present, the raw
/// arena id otherwise.
StatusOr<uint32_t> WireIdOf(LineageRef ref, const LineageIdMap* ids) {
  if (ref.is_null()) return LineageRef::kNullId;
  if (ids == nullptr) return ref.id;
  return ids->LocalOf(ref);
}

/// Wire id → lineage ref (inverse of WireIdOf).
StatusOr<LineageRef> RefOfWireId(uint32_t id, const LineageIdMap* ids) {
  if (ids == nullptr) return LineageRef{id};
  return ids->RefOf(id);
}

}  // namespace

Status EncodeColumn(size_t num_rows, DatumType declared,
                    const ColumnSource& at, const LineageIdMap* ids,
                    ByteWriter* w) {
  // Pick the encoding from the values actually present: uniform typed
  // chunks get the columnar layouts, anything mixed falls back to the
  // tagged generic encoding so every Datum round-trips exactly.
  size_t nulls = 0;
  bool all_int = true, all_double = true, all_string = true,
       all_lineage = true;
  for (size_t r = 0; r < num_rows; ++r) {
    const Datum& v = at(r);
    switch (v.type()) {
      case DatumType::kNull:
        ++nulls;
        all_lineage = false;
        break;
      case DatumType::kInt64:
        all_double = all_string = all_lineage = false;
        break;
      case DatumType::kDouble:
        all_int = all_string = all_lineage = false;
        break;
      case DatumType::kString:
        all_int = all_double = all_lineage = false;
        break;
      case DatumType::kLineage:
        all_int = all_double = all_string = false;
        break;
    }
  }
  ColumnEncoding encoding;
  if (nulls == num_rows) {
    encoding = ColumnEncoding::kAllNull;
  } else if (all_int) {
    encoding = ColumnEncoding::kPlainInt64;
  } else if (all_double) {
    encoding = ColumnEncoding::kPlainDouble;
  } else if (all_string) {
    encoding = ColumnEncoding::kDictString;
  } else if (all_lineage && nulls == 0) {
    encoding = ColumnEncoding::kLineage;
  } else {
    encoding = ColumnEncoding::kGeneric;
  }
  w->PutU8(static_cast<uint8_t>(encoding));
  w->PutU8(static_cast<uint8_t>(declared));

  const auto put_bitmap = [&] {
    std::vector<uint8_t> bitmap((num_rows + 7) / 8, 0);
    for (size_t r = 0; r < num_rows; ++r)
      if (at(r).is_null()) bitmap[r / 8] |= 1u << (r % 8);
    w->PutRaw(bitmap.data(), bitmap.size());
  };

  switch (encoding) {
    case ColumnEncoding::kAllNull:
      break;
    case ColumnEncoding::kPlainInt64: {
      put_bitmap();
      w->AlignTo(8);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutI64(v.is_null() ? 0 : v.AsInt64());
      }
      break;
    }
    case ColumnEncoding::kPlainDouble: {
      put_bitmap();
      w->AlignTo(8);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutF64(v.is_null() ? 0.0 : v.AsDouble());
      }
      break;
    }
    case ColumnEncoding::kDictString: {
      put_bitmap();
      std::map<std::string, uint32_t> dict;
      std::vector<const std::string*> ordered;
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        if (v.is_null()) continue;
        const auto [it, inserted] =
            dict.emplace(v.AsString(), static_cast<uint32_t>(dict.size()));
        if (inserted) ordered.push_back(&it->first);
      }
      w->PutU32(static_cast<uint32_t>(ordered.size()));
      for (const std::string* s : ordered) w->PutString(*s);
      w->AlignTo(4);
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        w->PutU32(v.is_null() ? 0 : dict.at(v.AsString()));
      }
      break;
    }
    case ColumnEncoding::kLineage: {
      w->AlignTo(4);
      for (size_t r = 0; r < num_rows; ++r) {
        StatusOr<uint32_t> id = WireIdOf(at(r).AsLineage(), ids);
        if (!id.ok()) return id.status();
        w->PutU32(*id);
      }
      break;
    }
    case ColumnEncoding::kGeneric: {
      for (size_t r = 0; r < num_rows; ++r) {
        const Datum& v = at(r);
        switch (v.type()) {
          case DatumType::kNull:
            w->PutU8(static_cast<uint8_t>(GenericTag::kNull));
            break;
          case DatumType::kInt64:
            w->PutU8(static_cast<uint8_t>(GenericTag::kInt64));
            w->PutI64(v.AsInt64());
            break;
          case DatumType::kDouble:
            w->PutU8(static_cast<uint8_t>(GenericTag::kDouble));
            w->PutF64(v.AsDouble());
            break;
          case DatumType::kString:
            w->PutU8(static_cast<uint8_t>(GenericTag::kString));
            w->PutString(v.AsString());
            break;
          case DatumType::kLineage: {
            w->PutU8(static_cast<uint8_t>(GenericTag::kLineage));
            StatusOr<uint32_t> id = WireIdOf(v.AsLineage(), ids);
            if (!id.ok()) return id.status();
            w->PutU32(*id);
            break;
          }
        }
      }
      break;
    }
  }
  return Status::OK();
}

Status DecodeColumn(ByteReader* r, size_t num_rows, const LineageIdMap* ids,
                    ColumnChunk* chunk) {
  uint8_t encoding = 0, declared = 0;
  TPDB_RETURN_IF_ERROR(r->GetU8(&encoding));
  TPDB_RETURN_IF_ERROR(r->GetU8(&declared));
  if (encoding > static_cast<uint8_t>(ColumnEncoding::kGeneric))
    return Status::IOError("snapshot corrupt: unknown column encoding " +
                           std::to_string(encoding));
  chunk->encoding = static_cast<ColumnEncoding>(encoding);
  chunk->declared = static_cast<DatumType>(declared);

  const size_t bitmap_bytes = (num_rows + 7) / 8;
  switch (chunk->encoding) {
    case ColumnEncoding::kAllNull:
      break;
    case ColumnEncoding::kPlainInt64:
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      TPDB_RETURN_IF_ERROR(r->AlignTo(8));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->ints));
      break;
    case ColumnEncoding::kPlainDouble:
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      TPDB_RETURN_IF_ERROR(r->AlignTo(8));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->doubles));
      break;
    case ColumnEncoding::kDictString: {
      TPDB_RETURN_IF_ERROR(r->GetSpan(bitmap_bytes, &chunk->null_bitmap));
      uint32_t dict_n = 0;
      TPDB_RETURN_IF_ERROR(r->GetU32(&dict_n));
      if (dict_n > r->remaining())
        return Status::IOError("snapshot corrupt: implausible dictionary size");
      chunk->dict.resize(dict_n);
      for (std::string& s : chunk->dict) TPDB_RETURN_IF_ERROR(r->GetString(&s));
      TPDB_RETURN_IF_ERROR(r->AlignTo(4));
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &chunk->codes));
      for (size_t row = 0; row < num_rows; ++row)
        if (!chunk->IsNull(row) && chunk->codes[row] >= dict_n)
          return Status::IOError(
              "snapshot corrupt: dictionary code out of range");
      break;
    }
    case ColumnEncoding::kLineage: {
      TPDB_RETURN_IF_ERROR(r->AlignTo(4));
      std::span<const uint32_t> locals;
      TPDB_RETURN_IF_ERROR(r->GetSpan(num_rows, &locals));
      chunk->lineage.reserve(num_rows);
      for (const uint32_t local : locals) {
        StatusOr<LineageRef> ref = RefOfWireId(local, ids);
        if (!ref.ok()) return ref.status();
        chunk->lineage.push_back(*ref);
      }
      break;
    }
    case ColumnEncoding::kGeneric: {
      chunk->generic.reserve(num_rows);
      for (size_t row = 0; row < num_rows; ++row) {
        uint8_t tag = 0;
        TPDB_RETURN_IF_ERROR(r->GetU8(&tag));
        switch (static_cast<GenericTag>(tag)) {
          case GenericTag::kNull:
            chunk->generic.push_back(Datum::Null());
            break;
          case GenericTag::kInt64: {
            int64_t v = 0;
            TPDB_RETURN_IF_ERROR(r->GetI64(&v));
            chunk->generic.push_back(Datum(v));
            break;
          }
          case GenericTag::kDouble: {
            double v = 0;
            TPDB_RETURN_IF_ERROR(r->GetF64(&v));
            chunk->generic.push_back(Datum(v));
            break;
          }
          case GenericTag::kString: {
            std::string s;
            TPDB_RETURN_IF_ERROR(r->GetString(&s));
            chunk->generic.push_back(Datum(std::move(s)));
            break;
          }
          case GenericTag::kLineage: {
            uint32_t local = 0;
            TPDB_RETURN_IF_ERROR(r->GetU32(&local));
            StatusOr<LineageRef> ref = RefOfWireId(local, ids);
            if (!ref.ok()) return ref.status();
            chunk->generic.push_back(Datum(*ref));
            break;
          }
          default:
            return Status::IOError(
                "snapshot corrupt: unknown generic datum tag " +
                std::to_string(tag));
        }
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace tpdb::storage
