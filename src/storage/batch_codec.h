// ColumnBatch <-> bytes: the result-streaming codec of the wire protocol
// (server/), built on the same per-column encodings as the segment format
// (storage/column_codec.h) so columns serialize through one implementation.
//
// Payload layout:
//
//   u64 num_rows | u32 num_cols | column_0 | ... | column_{n-1}
//
// where each column is one storage/column_codec.h column (encoding byte,
// declared-type byte, data; alignment relative to the payload start).
// Encoding compacts the batch's selection vector: only active rows are
// written, in selection order — exactly the rows and order a row-path
// consumer would see.
//
// Decoding materializes an *owned* batch (no views into the payload), so
// the payload buffer may be discarded as soon as DecodeColumnBatch
// returns. A decoded batch re-encodes to byte-identical payload bytes
// (asserted by tests/server/batch_codec_test.cc).
#ifndef TPDB_STORAGE_BATCH_CODEC_H_
#define TPDB_STORAGE_BATCH_CODEC_H_

#include "common/status.h"
#include "engine/schema.h"
#include "engine/vector/column_batch.h"
#include "storage/bytes.h"
#include "storage/segment.h"

namespace tpdb::storage {

/// Appends the active rows of `batch` onto `w`. `schema` supplies the
/// declared column types (one per batch column); `ids`, when given, maps
/// lineage refs to snapshot-local ids — pass nullptr for the wire format
/// (raw arena ids, opaque to remote peers).
Status EncodeColumnBatch(const Schema& schema, const vec::ColumnBatch& batch,
                         const LineageIdMap* ids, ByteWriter* w);

/// Inverse of EncodeColumnBatch over one whole payload. The decoded batch
/// owns its storage (typed vectors, sel_all = true) and `payload` need not
/// outlive the call or be aligned.
Status DecodeColumnBatch(std::span<const uint8_t> payload,
                         const LineageIdMap* ids, vec::ColumnBatch* out);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_BATCH_CODEC_H_
