#include "storage/snapshot.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "exec/thread_pool.h"
#include "lineage/lineage.h"
#include "lineage/probability.h"

namespace tpdb::storage {

namespace {

constexpr size_t kHeaderBytes = 24;
constexpr size_t kTrailerBytes = 4;  // CRC-32 of the payload

/// The format stores scalars in host byte order and is specified as
/// little-endian; refuse to write spec-violating files (or misparse
/// foreign ones) on a big-endian host.
Status CheckHostEndianness() {
  if constexpr (std::endian::native != std::endian::little)
    return Status::Internal(
        "the snapshot format requires a little-endian host");
  return Status::OK();
}

ThreadPool* PoolFor(const SnapshotOptions& options) {
  return options.parallelism == 1 ? nullptr : ThreadPool::Default();
}

/// Serialized lineage node (kind + children / variable id).
struct FileNode {
  uint8_t kind;
  uint32_t a;
  uint32_t b;
};

/// Emits every node reachable from `root` in child-before-parent order,
/// assigning dense file-local ids. Iterative: OR chains over many matches
/// make lineage DAGs deep.
void CollectNodes(const LineageManager& manager, LineageRef root,
                  std::unordered_map<uint32_t, uint32_t>* local_of,
                  std::vector<FileNode>* nodes) {
  if (root.is_null() || local_of->count(root.id) > 0) return;
  std::vector<std::pair<LineageRef, bool>> stack;  // (node, children done)
  stack.push_back({root, false});
  while (!stack.empty()) {
    auto [ref, expanded] = stack.back();
    stack.pop_back();
    if (local_of->count(ref.id) > 0) continue;
    const LineageKind kind = manager.KindOf(ref);
    if (!expanded) {
      stack.push_back({ref, true});
      if (kind == LineageKind::kNot) {
        stack.push_back({manager.Left(ref), false});
      } else if (kind == LineageKind::kAnd || kind == LineageKind::kOr) {
        stack.push_back({manager.Left(ref), false});
        stack.push_back({manager.Right(ref), false});
      }
      continue;
    }
    FileNode node{static_cast<uint8_t>(kind), 0, 0};
    switch (kind) {
      case LineageKind::kTrue:
      case LineageKind::kFalse:
        break;
      case LineageKind::kVar:
        node.a = manager.VarOf(ref);
        break;
      case LineageKind::kNot:
        node.a = local_of->at(manager.Left(ref).id);
        break;
      case LineageKind::kAnd:
      case LineageKind::kOr:
        node.a = local_of->at(manager.Left(ref).id);
        node.b = local_of->at(manager.Right(ref).id);
        break;
    }
    local_of->emplace(ref.id, static_cast<uint32_t>(nodes->size()));
    nodes->push_back(node);
  }
}

Status WriteFileAtomic(const std::string& path, const std::string& header,
                       const std::string& payload, uint32_t crc) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status::IOError("cannot create '" + tmp +
                           "': " + std::strerror(errno));
  const auto write_all = [f](const void* data, size_t n) {
    return n == 0 || std::fwrite(data, 1, n, f) == n;
  };
  // Flush and fsync before the rename: filesystems may otherwise persist
  // the rename ahead of the data, leaving a truncated file under the
  // final name after a crash.
  const bool ok = write_all(header.data(), header.size()) &&
                  write_all(payload.data(), payload.size()) &&
                  write_all(&crc, sizeof(crc)) && std::fflush(f) == 0 &&
                  ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' to '" + path +
                           "': " + std::strerror(errno));
  }
  // Persist the rename itself (directory entry).
  const std::string::size_type slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best-effort: some filesystems reject dir fsync
    ::close(dir_fd);
  }
  return Status::OK();
}

/// Flattened engine schema of a relation (fact ++ _ts ++ _te ++ _lin).
Schema FlattenedSchema(const Schema& fact_schema) {
  Schema schema = fact_schema;
  schema.AddColumn({kTsColumn, DatumType::kInt64});
  schema.AddColumn({kTeColumn, DatumType::kInt64});
  schema.AddColumn({kLineageColumn, DatumType::kLineage});
  return schema;
}

/// Validates magic, version, size — and the payload CRC when `check_crc`
/// — and returns the payload byte range of a mapped snapshot.
StatusOr<std::span<const uint8_t>> ValidateSnapshotPayload(
    const MappedFile& file, bool check_crc) {
  const std::string& path = file.path();
  const std::span<const uint8_t> data = file.data();
  if (data.size() < kHeaderBytes + kTrailerBytes)
    return Status::IOError("'" + path + "' is not a snapshot: too small");
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return Status::IOError("'" + path + "' is not a snapshot: bad magic");
  ByteReader header(data.subspan(sizeof(kSnapshotMagic)));
  uint32_t version = 0, flags = 0;
  uint64_t payload_size = 0;
  TPDB_RETURN_IF_ERROR(header.GetU32(&version));
  TPDB_RETURN_IF_ERROR(header.GetU32(&flags));
  TPDB_RETURN_IF_ERROR(header.GetU64(&payload_size));
  if (version != kSnapshotVersion)
    return Status::IOError("unsupported snapshot version " +
                           std::to_string(version) + " in '" + path + "'");
  if (data.size() != kHeaderBytes + payload_size + kTrailerBytes)
    return Status::IOError(
        "snapshot '" + path + "' truncated: header promises " +
        std::to_string(kHeaderBytes + payload_size + kTrailerBytes) +
        " bytes, file has " + std::to_string(data.size()));
  const std::span<const uint8_t> payload =
      data.subspan(kHeaderBytes, payload_size);
  if (check_crc) {
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data.data() + kHeaderBytes + payload_size,
                sizeof(stored_crc));
    if (Crc32(payload) != stored_crc)
      return Status::IOError("snapshot '" + path + "' corrupt: CRC mismatch");
  }
  return payload;
}

}  // namespace

Status SaveSnapshotFile(LineageManager* manager,
                        const std::vector<const TPRelation*>& relations,
                        const std::string& path,
                        const SnapshotOptions& options) {
  TPDB_CHECK(manager != nullptr);
  TPDB_RETURN_IF_ERROR(CheckHostEndianness());
  const size_t segment_rows =
      options.segment_rows > 0 ? options.segment_rows : 4096;
  ByteWriter payload;

  // Epoch snapshot: variable probabilities are serialized now, zone-map
  // max_prob values later; a SetVariableProbability in between would make
  // the file internally inconsistent, so the save is aborted below if the
  // epoch moves.
  const uint64_t epoch = manager->probability_epoch();

  payload.PutU64(options.wal_sequence);

  // -- Lineage section: every variable, then every reachable node -------
  // Names are omitted entirely when every variable kept its auto-assigned
  // name ("x" + id) — the common bulk-ingest case, where per-variable
  // string framing would otherwise rival the probability data in size.
  const size_t num_vars = manager->num_variables();
  payload.PutU64(num_vars);
  bool auto_named = true;
  for (VarId v = 0; v < num_vars && auto_named; ++v)
    auto_named = manager->VariableName(v) == "x" + std::to_string(v);
  payload.PutU8(auto_named ? 1 : 0);
  if (!auto_named)
    for (VarId v = 0; v < num_vars; ++v)
      payload.PutString(manager->VariableName(v));
  for (VarId v = 0; v < num_vars; ++v)
    payload.PutF64(manager->VariableProbability(v));
  std::unordered_map<uint32_t, uint32_t> local_of;
  std::vector<FileNode> nodes;
  for (const TPRelation* rel : relations) {
    TPDB_CHECK(rel != nullptr && rel->manager() == manager)
        << "snapshot relations must share the manager";
    for (const TPTuple& tuple : rel->tuples())
      CollectNodes(*manager, tuple.lineage, &local_of, &nodes);
  }
  // Nodes as three column-wise compressed blocks: kinds RLE down to almost
  // nothing, child ids frame-of-reference-pack well (they are dense and
  // mostly ascending).
  payload.PutU64(nodes.size());
  std::vector<int64_t> node_column(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) node_column[i] = nodes[i].kind;
  CompressInt64Block(node_column, &payload);
  for (size_t i = 0; i < nodes.size(); ++i) node_column[i] = nodes[i].a;
  CompressInt64Block(node_column, &payload);
  for (size_t i = 0; i < nodes.size(); ++i) node_column[i] = nodes[i].b;
  CompressInt64Block(node_column, &payload);
  LineageIdMap ids;
  ids.ref_to_local.assign(local_of.begin(), local_of.end());
  std::sort(ids.ref_to_local.begin(), ids.ref_to_local.end());

  // -- Catalog section ---------------------------------------------------
  payload.PutU32(static_cast<uint32_t>(relations.size()));
  for (const TPRelation* rel : relations) {
    payload.PutString(rel->name());
    const Schema& facts = rel->fact_schema();
    payload.PutU32(static_cast<uint32_t>(facts.num_columns()));
    for (const Column& col : facts.columns()) {
      payload.PutString(col.name);
      payload.PutU8(static_cast<uint8_t>(col.type));
    }
    payload.PutU64(rel->size());

    const Table table = rel->ToTable();
    const size_t num_segments =
        (table.rows.size() + segment_rows - 1) / segment_rows;
    payload.PutU32(static_cast<uint32_t>(num_segments));

    // Encode all segments of this relation in parallel; each task also
    // computes the exact tuple probabilities its zone map needs (memoized
    // inside the thread-safe manager, so shared subformulas pay once).
    std::vector<std::string> blobs(num_segments);
    std::vector<Status> blob_status(num_segments);
    std::vector<double> probs(table.rows.size(), 0.0);
    TaskGroup group(PoolFor(options));
    for (size_t s = 0; s < num_segments; ++s) {
      const size_t begin = s * segment_rows;
      const size_t end = std::min(begin + segment_rows, table.rows.size());
      group.Spawn([&, s, begin, end]() -> Status {
        ProbabilityEngine engine(manager);
        for (size_t i = begin; i < end; ++i)
          probs[i] = engine.Probability(rel->tuple(i).lineage);
        StatusOr<std::string> blob = EncodeSegmentBlob(
            table, begin, end, probs, &ids,
            ColumnCodecOptions{.compress = options.compress});
        if (!blob.ok()) return blob.status();
        blobs[s] = std::move(*blob);
        return Status::OK();
      });
    }
    TPDB_RETURN_IF_ERROR(group.Wait());
    for (const std::string& blob : blobs) {
      payload.AlignTo(8);
      payload.PutU64(blob.size());  // u64 keeps the blob itself 8-aligned
      payload.PutRaw(blob.data(), blob.size());
    }
  }

  if (manager->probability_epoch() != epoch)
    return Status::Internal(
        "base probabilities changed while the snapshot was being written "
        "('" + path + "'); retry the save");

  // -- Header + checksum -------------------------------------------------
  ByteWriter header;
  header.PutRaw(kSnapshotMagic, sizeof(kSnapshotMagic));
  header.PutU32(kSnapshotVersion);
  header.PutU32(0);  // flags
  header.PutU64(payload.size());
  TPDB_CHECK(header.size() == kHeaderBytes);
  const uint32_t crc = Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(payload.buffer().data()),
      payload.size()));
  return WriteFileAtomic(path, header.buffer(), payload.buffer(), crc);
}

StatusOr<LoadedSnapshot> LoadSnapshotFile(LineageManager* manager,
                                          const std::string& path,
                                          const SnapshotOptions& options) {
  TPDB_CHECK(manager != nullptr);
  TPDB_RETURN_IF_ERROR(CheckHostEndianness());
  StatusOr<std::shared_ptr<MappedFile>> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  StatusOr<std::span<const uint8_t>> payload_or =
      ValidateSnapshotPayload(**mapped, /*check_crc=*/true);
  if (!payload_or.ok()) return payload_or.status();
  const std::span<const uint8_t> payload = *payload_or;

  ByteReader r(payload);

  uint64_t wal_sequence = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&wal_sequence));

  // -- Lineage section ---------------------------------------------------
  uint64_t num_vars = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_vars));
  if (num_vars > r.remaining() / 8)  // each var stores >= its f64 prob
    return Status::IOError("snapshot corrupt: implausible variable count");
  uint8_t names_mode = 0;
  TPDB_RETURN_IF_ERROR(r.GetU8(&names_mode));
  if (names_mode > 1)
    return Status::IOError("snapshot corrupt: unknown names mode " +
                           std::to_string(names_mode));
  std::vector<std::pair<double, std::string>> vars(
      static_cast<size_t>(num_vars));
  for (uint64_t v = 0; v < num_vars; ++v) {
    if (names_mode == 1)
      vars[v].second = "x" + std::to_string(v);
    else
      TPDB_RETURN_IF_ERROR(r.GetString(&vars[v].second));
  }
  for (auto& [prob, name] : vars) {
    TPDB_RETURN_IF_ERROR(r.GetF64(&prob));
    if (prob < 0.0 || prob > 1.0)
      return Status::IOError("snapshot corrupt: variable probability " +
                             std::to_string(prob) + " out of [0,1]");
  }
  // Clash check before the first registration: loading into a database
  // whose manager already knows one of the names would silently re-bind
  // lineages (and RegisterVariable aborts on duplicates).
  for (const auto& [prob, name] : vars) {
    if (manager->FindVariable(name).ok())
      return Status::AlreadyExists(
          "cannot load snapshot: variable '" + name +
          "' already exists in this database's lineage manager");
  }
  // Epoch BEFORE the first registration: if a concurrent
  // SetVariableProbability lands anywhere during this load, the stamped
  // epoch is already stale and the planner will not trust the zone-map
  // probability bounds.
  const uint64_t epoch = manager->probability_epoch();
  std::vector<VarId> var_map(vars.size());
  for (size_t i = 0; i < vars.size(); ++i)
    var_map[i] = manager->RegisterVariable(vars[i].first, vars[i].second);

  uint64_t num_nodes = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_nodes));
  if (num_nodes > UINT32_MAX)  // file-local node ids are u32
    return Status::IOError("snapshot corrupt: implausible node count");
  std::vector<int64_t> kinds, as, bs;
  {
    CompressedBlock block;
    TPDB_RETURN_IF_ERROR(ParseInt64Block(&r, &block));
    TPDB_RETURN_IF_ERROR(
        DecompressInt64Block(block, static_cast<size_t>(num_nodes), &kinds));
    TPDB_RETURN_IF_ERROR(ParseInt64Block(&r, &block));
    TPDB_RETURN_IF_ERROR(
        DecompressInt64Block(block, static_cast<size_t>(num_nodes), &as));
    TPDB_RETURN_IF_ERROR(ParseInt64Block(&r, &block));
    TPDB_RETURN_IF_ERROR(
        DecompressInt64Block(block, static_cast<size_t>(num_nodes), &bs));
  }
  LineageIdMap ids;
  ids.local_to_ref.reserve(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (kinds[i] < 0 || kinds[i] > UINT8_MAX || as[i] < 0 ||
        as[i] > UINT32_MAX || bs[i] < 0 || bs[i] > UINT32_MAX)
      return Status::IOError("snapshot corrupt: lineage node out of range");
    const uint8_t kind = static_cast<uint8_t>(kinds[i]);
    const uint32_t a = static_cast<uint32_t>(as[i]);
    const uint32_t b = static_cast<uint32_t>(bs[i]);
    const auto child = [&](uint32_t local) -> StatusOr<LineageRef> {
      if (local >= i)
        return Status::IOError(
            "snapshot corrupt: lineage node references a later node");
      return ids.local_to_ref[local];
    };
    LineageRef ref;
    switch (static_cast<LineageKind>(kind)) {
      case LineageKind::kTrue:
        ref = manager->True();
        break;
      case LineageKind::kFalse:
        ref = manager->False();
        break;
      case LineageKind::kVar:
        if (a >= var_map.size())
          return Status::IOError(
              "snapshot corrupt: lineage variable out of range");
        ref = manager->Var(var_map[a]);
        break;
      case LineageKind::kNot: {
        StatusOr<LineageRef> ca = child(a);
        if (!ca.ok()) return ca.status();
        ref = manager->Not(*ca);
        break;
      }
      case LineageKind::kAnd:
      case LineageKind::kOr: {
        StatusOr<LineageRef> ca = child(a);
        if (!ca.ok()) return ca.status();
        StatusOr<LineageRef> cb = child(b);
        if (!cb.ok()) return cb.status();
        ref = static_cast<LineageKind>(kind) == LineageKind::kAnd
                  ? manager->And(*ca, *cb)
                  : manager->Or(*ca, *cb);
        break;
      }
      default:
        return Status::IOError("snapshot corrupt: unknown lineage kind " +
                               std::to_string(kind));
    }
    ids.local_to_ref.push_back(ref);
  }

  // -- Catalog section ---------------------------------------------------
  uint32_t num_relations = 0;
  TPDB_RETURN_IF_ERROR(r.GetU32(&num_relations));
  LoadedSnapshot loaded;
  loaded.relations.reserve(num_relations);
  for (uint32_t rel_i = 0; rel_i < num_relations; ++rel_i) {
    std::string name;
    TPDB_RETURN_IF_ERROR(r.GetString(&name));
    uint32_t num_cols = 0;
    TPDB_RETURN_IF_ERROR(r.GetU32(&num_cols));
    if (num_cols > r.remaining() / 5)  // each column takes >= 5 bytes
      return Status::IOError("snapshot corrupt: implausible column count");
    std::vector<Column> fact_cols(num_cols);
    for (Column& col : fact_cols) {
      TPDB_RETURN_IF_ERROR(r.GetString(&col.name));
      uint8_t type = 0;
      TPDB_RETURN_IF_ERROR(r.GetU8(&type));
      if (type > static_cast<uint8_t>(DatumType::kLineage))
        return Status::IOError("snapshot corrupt: unknown column type " +
                               std::to_string(type));
      col.type = static_cast<DatumType>(type);
    }
    uint64_t tuple_count = 0;
    TPDB_RETURN_IF_ERROR(r.GetU64(&tuple_count));
    uint32_t num_segments = 0;
    TPDB_RETURN_IF_ERROR(r.GetU32(&num_segments));

    const Schema fact_schema{std::move(fact_cols)};
    const Schema flattened = FlattenedSchema(fact_schema);
    std::vector<Segment> segments;
    segments.reserve(num_segments);
    for (uint32_t s = 0; s < num_segments; ++s) {
      TPDB_RETURN_IF_ERROR(r.AlignTo(8));
      uint64_t blob_size = 0;
      TPDB_RETURN_IF_ERROR(r.GetU64(&blob_size));
      std::span<const uint8_t> blob;
      TPDB_RETURN_IF_ERROR(r.GetBlob(static_cast<size_t>(blob_size), &blob));
      StatusOr<Segment> seg = ParseSegmentBlob(blob, flattened, &ids);
      if (!seg.ok()) return seg.status();
      segments.push_back(std::move(*seg));
    }

    // Rebuild the tuples, decoding segments in parallel.
    TPRelation rel(name, fact_schema, manager);
    struct DecodedTuple {
      Row fact;
      Interval interval;
      LineageRef lineage;
    };
    std::vector<std::vector<DecodedTuple>> decoded(segments.size());
    const int ts_idx = flattened.IndexOf(kTsColumn);
    const int te_idx = flattened.IndexOf(kTeColumn);
    const int lin_idx = flattened.IndexOf(kLineageColumn);
    TaskGroup group(PoolFor(options));
    for (size_t s = 0; s < segments.size(); ++s) {
      group.Spawn([&, s]() -> Status {
        const Segment& seg = segments[s];
        // Packed chunks decompress into task-local scratch; the in-memory
        // SegmentedTable keeps them compressed.
        ChunkStorage storage;
        StatusOr<std::vector<const ColumnChunk*>> chunks =
            MaterializeSegment(seg, &storage);
        if (!chunks.ok()) return chunks.status();
        std::vector<DecodedTuple>& out = decoded[s];
        out.resize(seg.num_rows);
        for (size_t row = 0; row < seg.num_rows; ++row) {
          DecodedTuple& t = out[row];
          t.fact.reserve(num_cols);
          for (uint32_t c = 0; c < num_cols; ++c)
            t.fact.push_back((*chunks)[c]->ValueAt(row));
          const Datum ts = (*chunks)[ts_idx]->ValueAt(row);
          const Datum te = (*chunks)[te_idx]->ValueAt(row);
          const Datum lin = (*chunks)[lin_idx]->ValueAt(row);
          if (ts.type() != DatumType::kInt64 ||
              te.type() != DatumType::kInt64 ||
              lin.type() != DatumType::kLineage)
            return Status::IOError(
                "snapshot corrupt: reserved column has wrong type in '" +
                name + "'");
          t.interval = Interval(ts.AsInt64(), te.AsInt64());
          t.lineage = lin.AsLineage();
        }
        return Status::OK();
      });
    }
    TPDB_RETURN_IF_ERROR(group.Wait());
    size_t total = 0;
    for (std::vector<DecodedTuple>& seg_tuples : decoded) {
      total += seg_tuples.size();
      for (DecodedTuple& t : seg_tuples)
        TPDB_RETURN_IF_ERROR(
            rel.AppendDerived(std::move(t.fact), t.interval, t.lineage));
    }
    if (total != tuple_count)
      return Status::IOError("snapshot corrupt: relation '" + name +
                             "' promises " + std::to_string(tuple_count) +
                             " tuples, segments hold " +
                             std::to_string(total));

    rel.set_cold_storage(std::make_shared<SegmentedTable>(
        flattened, std::move(segments), *mapped, epoch));
    loaded.relations.push_back(std::move(rel));
  }
  if (r.remaining() != 0)
    return Status::IOError("snapshot corrupt: trailing bytes in payload");
  loaded.wal_sequence = wal_sequence;
  return loaded;
}

StatusOr<std::vector<std::string>> ReadSnapshotRelationNames(
    const std::string& path) {
  StatusOr<std::shared_ptr<MappedFile>> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  // No CRC here: this pre-flight only skims structure (bounds-checked
  // reads everywhere), and the full load that follows validates it.
  StatusOr<std::span<const uint8_t>> payload =
      ValidateSnapshotPayload(**mapped, /*check_crc=*/false);
  if (!payload.ok()) return payload.status();
  ByteReader r(*payload);

  TPDB_RETURN_IF_ERROR(r.Skip(sizeof(uint64_t)));  // wal_sequence

  // Lineage section: skip vars and nodes.
  uint64_t num_vars = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_vars));
  if (num_vars > r.remaining() / 8)
    return Status::IOError("snapshot corrupt: implausible variable count");
  uint8_t names_mode = 0;
  TPDB_RETURN_IF_ERROR(r.GetU8(&names_mode));
  if (names_mode > 1)
    return Status::IOError("snapshot corrupt: unknown names mode " +
                           std::to_string(names_mode));
  if (names_mode == 0)
    for (uint64_t i = 0; i < num_vars; ++i)
      TPDB_RETURN_IF_ERROR(r.SkipString());
  TPDB_RETURN_IF_ERROR(r.Skip(static_cast<size_t>(num_vars) * 8));
  TPDB_RETURN_IF_ERROR(r.Skip(sizeof(uint64_t)));  // node count
  for (int block_i = 0; block_i < 3; ++block_i) {
    CompressedBlock block;  // parse = bounds-checked skip, no decompression
    TPDB_RETURN_IF_ERROR(ParseInt64Block(&r, &block));
  }

  // Catalog section: names, skipping schemas and segment blobs.
  uint32_t num_relations = 0;
  TPDB_RETURN_IF_ERROR(r.GetU32(&num_relations));
  std::vector<std::string> names;
  names.reserve(num_relations);
  for (uint32_t rel_i = 0; rel_i < num_relations; ++rel_i) {
    std::string name;
    TPDB_RETURN_IF_ERROR(r.GetString(&name));
    names.push_back(std::move(name));
    uint32_t num_cols = 0;
    TPDB_RETURN_IF_ERROR(r.GetU32(&num_cols));
    if (num_cols > r.remaining() / 5)
      return Status::IOError("snapshot corrupt: implausible column count");
    for (uint32_t c = 0; c < num_cols; ++c) {
      TPDB_RETURN_IF_ERROR(r.SkipString());
      TPDB_RETURN_IF_ERROR(r.Skip(1));
    }
    TPDB_RETURN_IF_ERROR(r.Skip(sizeof(uint64_t)));  // tuple count
    uint32_t num_segments = 0;
    TPDB_RETURN_IF_ERROR(r.GetU32(&num_segments));
    for (uint32_t s = 0; s < num_segments; ++s) {
      TPDB_RETURN_IF_ERROR(r.AlignTo(8));
      uint64_t blob_size = 0;
      TPDB_RETURN_IF_ERROR(r.GetU64(&blob_size));
      TPDB_RETURN_IF_ERROR(r.Skip(static_cast<size_t>(blob_size)));
    }
  }
  return names;
}

}  // namespace tpdb::storage
