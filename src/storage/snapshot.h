// Snapshot persistence: a versioned, checksummed on-disk image of a whole
// database — catalog, relations (as columnar segments, see
// storage/segment.h) and the lineage state they depend on (variables with
// base probabilities, hash-consed formula nodes) — so a reloaded database
// answers every query with identical results and probabilities.
//
// File layout (little-endian; full spec in README.md):
//
//   [ 0..7 ]  magic "TPDBSNP1"
//   [ 8..11]  format version (u32, currently 2)
//   [12..15]  flags (u32, reserved)
//   [16..23]  payload size in bytes (u64)
//   [24..  ]  payload:
//               wal_sequence (u64): the last WAL record folded into this
//               snapshot — replay resumes after it
//               lineage: vars (u64 n, u8 names_mode, names when explicit,
//               raw f64 probability array), nodes (u64 n + compressed
//               int64 blocks of kinds, left ids, right ids — the lineage
//               section is about half of a typical snapshot, so it goes
//               through the same storage/compress codecs as the columns)
//               catalog: per relation name, fact schema, tuple count and
//               8-aligned segment blobs (EncodeSegmentBlob format)
//   [  -4.. ] CRC-32 of the payload
//
// names_mode 1 means every variable carries its auto-assigned name
// ("x" + var id) and the strings are omitted; 0 stores them explicitly.
//
// Readers validate magic, version, size and checksum before touching the
// payload; every malformed-input path returns a Status (never aborts).
// Loading maps the file and keeps it mapped: the returned relations carry
// a SegmentedTable view into the mapping (the cold scan path).
//
// Segment encode and row decode fan out over the exec/ thread pool;
// `parallelism` follows the planner convention (1 = serial, 0 = shared
// pool at hardware width).
#ifndef TPDB_STORAGE_SNAPSHOT_H_
#define TPDB_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/segment.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

inline constexpr char kSnapshotMagic[8] = {'T', 'P', 'D', 'B',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 2;

/// Knobs of snapshot save/load.
struct SnapshotOptions {
  /// Tuples per segment (the zone-map pruning granularity).
  size_t segment_rows = 4096;
  /// 1 = serial; anything else encodes/decodes segments on the shared
  /// exec/ thread pool.
  int parallelism = 0;
  /// Compress column chunks and the lineage node arrays (storage/compress).
  /// Off reproduces the fully zero-copy plain chunk layout.
  bool compress = true;
  /// Stamped into the file on save: the sequence number of the last WAL
  /// record this snapshot subsumes (0 = no WAL).
  uint64_t wal_sequence = 0;
};

/// One relation reconstructed from a snapshot, with its columnar backing
/// attached (TPRelation::cold_storage) for the zero-copy scan path.
struct LoadedSnapshot {
  std::vector<TPRelation> relations;
  /// The wal_sequence the file was saved with: WAL replay skips records
  /// with sequence <= this.
  uint64_t wal_sequence = 0;
};

/// Writes `relations` (all bound to `manager`) plus the manager's variable
/// state to `path`. Atomic: the snapshot appears under its final name only
/// once fully written and checksummed.
Status SaveSnapshotFile(LineageManager* manager,
                        const std::vector<const TPRelation*>& relations,
                        const std::string& path,
                        const SnapshotOptions& options = {});

/// Reads a snapshot written by SaveSnapshotFile, registering its variables
/// into `manager` (fails without side effects on the catalog if any
/// variable name already exists) and rebuilding every relation. Formulas
/// are re-interned through the manager, so probabilities are identical to
/// the saved database's.
StatusOr<LoadedSnapshot> LoadSnapshotFile(LineageManager* manager,
                                          const std::string& path,
                                          const SnapshotOptions& options = {});

/// Reads just the relation names stored in a snapshot, without touching
/// any manager state — the pre-flight TPDatabase::LoadSnapshot uses to
/// reject name clashes before the load mutates anything.
StatusOr<std::vector<std::string>> ReadSnapshotRelationNames(
    const std::string& path);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_SNAPSHOT_H_
