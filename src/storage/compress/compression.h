// Pluggable per-column compression of the segment format, in the shape of
// PostgreSQL's compression-method API (access/compression/cmapi): each
// method is a small vtable of routines, chunks record the method id of the
// codec that wrote them, and a raw passthrough is always available as the
// fallback when nothing helps.
//
// All methods operate on int64 value blocks — the normal form every
// compressible chunk reduces to: plain int64 columns (including _ts/_te)
// directly, dictionary string codes and lineage ids widened from u32.
// Doubles stay uncompressed (plain chunks); mixed chunks stay generic.
//
// Methods:
//   kRaw — verbatim little-endian int64 array; the identity fallback
//   kRle — (u32 run length, i64 value) pairs; wins on long runs
//   kFor — frame of reference: i64 base + bit width + LSB-first packed
//          offsets; wins on value ranges far narrower than 64 bits
//          (sorted _ts/_te blocks, dense keys, dictionary codes)
//
// A compressed block is stored as
//
//   u8 method | i64 min | i64 max | u32 payload_len | payload bytes
//
// where min/max are the exact bounds of the stored values. They serve the
// compressed-domain pruning of storage/scan.h: unlike the zone map's
// ulp-widened doubles, these bounds are exact integers, so boundary
// predicates can skip a chunk without decompressing a single value.
//
// Decompression is bounds-checked and returns Status on any malformed
// payload (truncated runs, implausible bit widths) — corruption surfaces
// as an error, never a crash.
#ifndef TPDB_STORAGE_COMPRESS_COMPRESSION_H_
#define TPDB_STORAGE_COMPRESS_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/bytes.h"

namespace tpdb::storage {

/// On-disk codec ids. Append-only: a chunk header stores the raw value.
enum class CompressionMethod : uint8_t {
  kRaw = 0,
  kRle = 1,
  kFor = 2,
};

/// The per-method vtable (the cmapi idiom): every method provides its
/// name, an exact size estimate (so the encoder can pick the smallest
/// without encoding twice), the compressor and the decompressor.
struct CompressionRoutines {
  const char* name;
  /// Exact compressed payload size of `values`, in bytes.
  size_t (*estimate)(std::span<const int64_t> values);
  /// Appends the compressed payload of `values` onto `w`.
  void (*compress)(std::span<const int64_t> values, ByteWriter* w);
  /// Inverse of compress: decodes exactly `count` values from `payload`
  /// into `out` (pre-sized by the caller).
  Status (*decompress)(std::span<const uint8_t> payload, size_t count,
                       int64_t* out);
};

/// The routines of `method`; never null (ids are validated by Lookup).
const CompressionRoutines* GetCompressionRoutines(CompressionMethod method);

/// Validates an on-disk method id.
StatusOr<CompressionMethod> LookupCompressionMethod(uint8_t id);

/// Picks the method with the smallest payload for `values` (ties favor
/// lower ids, so raw wins when nothing compresses).
CompressionMethod ChooseCompression(std::span<const int64_t> values);

/// One compressed block, parsed but not yet decompressed: the header
/// fields plus a view of the payload (into the mapped file or an owned
/// buffer — whatever backs the enclosing ByteReader).
struct CompressedBlock {
  CompressionMethod method = CompressionMethod::kRaw;
  int64_t min = 0;  ///< exact minimum of the stored values
  int64_t max = 0;  ///< exact maximum of the stored values
  std::span<const uint8_t> payload;
};

/// Compresses `values` with ChooseCompression's pick and writes the full
/// block (header + payload) onto `w`.
void CompressInt64Block(std::span<const int64_t> values, ByteWriter* w);

/// Reads one block's header and payload view from `r` without
/// decompressing anything.
Status ParseInt64Block(ByteReader* r, CompressedBlock* out);

/// Decompresses a parsed block into `out` (resized to `count`).
Status DecompressInt64Block(const CompressedBlock& block, size_t count,
                            std::vector<int64_t>* out);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_COMPRESS_COMPRESSION_H_
