#include "storage/compress/compression.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace tpdb::storage {

namespace {

// -- kRaw ------------------------------------------------------------------

size_t RawEstimate(std::span<const int64_t> values) {
  return values.size() * sizeof(int64_t);
}

void RawCompress(std::span<const int64_t> values, ByteWriter* w) {
  w->PutRaw(values.data(), values.size() * sizeof(int64_t));
}

Status RawDecompress(std::span<const uint8_t> payload, size_t count,
                     int64_t* out) {
  if (payload.size() != count * sizeof(int64_t))
    return Status::IOError("raw block corrupt: payload holds " +
                           std::to_string(payload.size()) + " bytes, need " +
                           std::to_string(count * sizeof(int64_t)));
  std::memcpy(out, payload.data(), payload.size());
  return Status::OK();
}

// -- kRle ------------------------------------------------------------------

constexpr size_t kRunBytes = sizeof(uint32_t) + sizeof(int64_t);

size_t RleRuns(std::span<const int64_t> values) {
  size_t runs = 0;
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i] &&
           j - i < UINT32_MAX)
      ++j;
    ++runs;
    i = j;
  }
  return runs;
}

size_t RleEstimate(std::span<const int64_t> values) {
  return RleRuns(values) * kRunBytes;
}

void RleCompress(std::span<const int64_t> values, ByteWriter* w) {
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i] &&
           j - i < UINT32_MAX)
      ++j;
    w->PutU32(static_cast<uint32_t>(j - i));
    w->PutI64(values[i]);
    i = j;
  }
}

Status RleDecompress(std::span<const uint8_t> payload, size_t count,
                     int64_t* out) {
  ByteReader r(payload);
  size_t filled = 0;
  while (filled < count) {
    uint32_t run = 0;
    int64_t value = 0;
    TPDB_RETURN_IF_ERROR(r.GetU32(&run));
    TPDB_RETURN_IF_ERROR(r.GetI64(&value));
    if (run == 0 || run > count - filled)
      return Status::IOError("rle block corrupt: run of " +
                             std::to_string(run) + " with " +
                             std::to_string(count - filled) +
                             " values left to fill");
    std::fill(out + filled, out + filled + run, value);
    filled += run;
  }
  if (r.remaining() != 0)
    return Status::IOError("rle block corrupt: trailing bytes after runs");
  return Status::OK();
}

// -- kFor ------------------------------------------------------------------
//
// Payload: i64 base | u8 bit_width | ceil(count * width / 8) bytes of
// LSB-first packed (value - base) offsets. Offsets are computed in
// unsigned arithmetic, so any int64 range (including ones spanning the
// sign boundary) round-trips exactly.

uint8_t ForWidth(std::span<const int64_t> values) {
  if (values.empty()) return 0;
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  const uint64_t range =
      static_cast<uint64_t>(*hi) - static_cast<uint64_t>(*lo);
  return range == 0 ? 0 : static_cast<uint8_t>(64 - std::countl_zero(range));
}

size_t ForPackedBytes(size_t count, uint8_t width) {
  return (count * width + 7) / 8;
}

size_t ForEstimate(std::span<const int64_t> values) {
  return sizeof(int64_t) + 1 + ForPackedBytes(values.size(),
                                              ForWidth(values));
}

void ForCompress(std::span<const int64_t> values, ByteWriter* w) {
  const int64_t base =
      values.empty() ? 0 : *std::min_element(values.begin(), values.end());
  const uint8_t width = ForWidth(values);
  w->PutI64(base);
  w->PutU8(width);
  std::vector<uint8_t> packed(ForPackedBytes(values.size(), width), 0);
  size_t bit = 0;
  size_t i = 0;
  // With width <= 57 an offset fits entirely in the 8 bytes starting at
  // bit/8, so one load-OR-store per value replaces the bit loop; the
  // last few values fall through to the scalar path.
  if (width != 0 && width <= 57) {
    for (; i < values.size() && (bit >> 3) + 8 <= packed.size();
         ++i, bit += width) {
      const uint64_t delta =
          static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(base);
      uint64_t word;
      std::memcpy(&word, packed.data() + (bit >> 3), sizeof(word));
      word |= delta << (bit & 7);
      std::memcpy(packed.data() + (bit >> 3), &word, sizeof(word));
    }
  }
  for (; i < values.size(); ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(base);
    for (uint8_t b = 0; b < width; ++b, ++bit)
      packed[bit / 8] |= static_cast<uint8_t>((delta >> b) & 1u) << (bit % 8);
  }
  w->PutRaw(packed.data(), packed.size());
}

Status ForDecompress(std::span<const uint8_t> payload, size_t count,
                     int64_t* out) {
  ByteReader r(payload);
  int64_t base = 0;
  uint8_t width = 0;
  TPDB_RETURN_IF_ERROR(r.GetI64(&base));
  TPDB_RETURN_IF_ERROR(r.GetU8(&width));
  if (width > 64)
    return Status::IOError("for block corrupt: bit width " +
                           std::to_string(width));
  std::span<const uint8_t> packed;
  TPDB_RETURN_IF_ERROR(r.GetBlob(ForPackedBytes(count, width), &packed));
  if (r.remaining() != 0)
    return Status::IOError("for block corrupt: trailing bytes");
  if (width == 0) {
    std::fill(out, out + count, base);
    return Status::OK();
  }
  // Mirror of the compress fast path: one unaligned 64-bit load + shift +
  // mask per value while the window stays inside the payload, scalar
  // bit assembly for the tail and for widths that can straddle 9 bytes.
  const uint64_t mask =
      width == 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  size_t i = 0;
  size_t bit = 0;
  if (width <= 57) {
    for (; i < count && (bit >> 3) + 8 <= packed.size(); ++i, bit += width) {
      uint64_t word;
      std::memcpy(&word, packed.data() + (bit >> 3), sizeof(word));
      out[i] = static_cast<int64_t>(static_cast<uint64_t>(base) +
                                    ((word >> (bit & 7)) & mask));
    }
  }
  for (; i < count; ++i) {
    uint64_t delta = 0;
    for (uint8_t b = 0; b < width; ++b, ++bit)
      delta |= static_cast<uint64_t>((packed[bit / 8] >> (bit % 8)) & 1u)
               << b;
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(base) + delta);
  }
  return Status::OK();
}

constexpr CompressionRoutines kRoutines[] = {
    {"raw", RawEstimate, RawCompress, RawDecompress},
    {"rle", RleEstimate, RleCompress, RleDecompress},
    {"for", ForEstimate, ForCompress, ForDecompress},
};

}  // namespace

const CompressionRoutines* GetCompressionRoutines(CompressionMethod method) {
  const size_t i = static_cast<size_t>(method);
  TPDB_CHECK_LT(i, std::size(kRoutines));
  return &kRoutines[i];
}

StatusOr<CompressionMethod> LookupCompressionMethod(uint8_t id) {
  if (id >= std::size(kRoutines))
    return Status::IOError("unknown compression method " +
                           std::to_string(id));
  return static_cast<CompressionMethod>(id);
}

CompressionMethod ChooseCompression(std::span<const int64_t> values) {
  CompressionMethod best = CompressionMethod::kRaw;
  size_t best_size = RawEstimate(values);
  for (size_t i = 1; i < std::size(kRoutines); ++i) {
    const size_t size = kRoutines[i].estimate(values);
    if (size < best_size) {
      best = static_cast<CompressionMethod>(i);
      best_size = size;
    }
  }
  return best;
}

void CompressInt64Block(std::span<const int64_t> values, ByteWriter* w) {
  const CompressionMethod method = ChooseCompression(values);
  const CompressionRoutines* routines = GetCompressionRoutines(method);
  int64_t min = 0, max = 0;
  if (!values.empty()) {
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    min = *lo;
    max = *hi;
  }
  w->PutU8(static_cast<uint8_t>(method));
  w->PutI64(min);
  w->PutI64(max);
  const size_t payload_len = routines->estimate(values);
  w->PutU32(static_cast<uint32_t>(payload_len));
  const size_t before = w->size();
  routines->compress(values, w);
  TPDB_CHECK(w->size() - before == payload_len)
      << routines->name << " wrote " << (w->size() - before)
      << " bytes, estimated " << payload_len;
}

Status ParseInt64Block(ByteReader* r, CompressedBlock* out) {
  uint8_t method = 0;
  TPDB_RETURN_IF_ERROR(r->GetU8(&method));
  StatusOr<CompressionMethod> parsed = LookupCompressionMethod(method);
  if (!parsed.ok()) return parsed.status();
  out->method = *parsed;
  TPDB_RETURN_IF_ERROR(r->GetI64(&out->min));
  TPDB_RETURN_IF_ERROR(r->GetI64(&out->max));
  uint32_t payload_len = 0;
  TPDB_RETURN_IF_ERROR(r->GetU32(&payload_len));
  return r->GetBlob(payload_len, &out->payload);
}

Status DecompressInt64Block(const CompressedBlock& block, size_t count,
                            std::vector<int64_t>* out) {
  out->resize(count);
  return GetCompressionRoutines(block.method)
      ->decompress(block.payload, count, out->data());
}

}  // namespace tpdb::storage
