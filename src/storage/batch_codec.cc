#include "storage/batch_codec.h"

#include <cstring>
#include <vector>

#include "storage/column_codec.h"

namespace tpdb::storage {

Status EncodeColumnBatch(const Schema& schema, const vec::ColumnBatch& batch,
                         const LineageIdMap* ids, ByteWriter* w) {
  if (schema.num_columns() != batch.columns.size())
    return Status::InvalidArgument(
        "batch encode: schema has " + std::to_string(schema.num_columns()) +
        " columns, batch has " + std::to_string(batch.columns.size()));
  const size_t num_rows = batch.ActiveRows();
  w->PutU64(num_rows);
  w->PutU32(static_cast<uint32_t>(batch.columns.size()));
  // Materialize each column's active rows once (ValueAt returns by value);
  // the shared codec then sees a dense column like the snapshot writer's.
  std::vector<Datum> values;
  for (size_t c = 0; c < batch.columns.size(); ++c) {
    values.clear();
    values.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i)
      values.push_back(batch.columns[c].ValueAt(batch.ActiveRow(i)));
    TPDB_RETURN_IF_ERROR(EncodeColumn(
        num_rows, schema.column(c).type,
        [&](size_t r) -> const Datum& { return values[r]; }, ids, w));
  }
  return Status::OK();
}

Status DecodeColumnBatch(std::span<const uint8_t> payload,
                         const LineageIdMap* ids, vec::ColumnBatch* out) {
  // Copy into an 8-aligned scratch buffer so the codec's zero-copy span
  // accessors (which require alignment) work no matter where the payload
  // bytes live; the decoded batch owns its storage, so the scratch dies
  // with this call.
  std::vector<uint64_t> aligned((payload.size() + 7) / 8);
  if (!payload.empty())
    std::memcpy(aligned.data(), payload.data(), payload.size());
  ByteReader r(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(aligned.data()), payload.size()));

  uint64_t num_rows = 0;
  uint32_t num_cols = 0;
  TPDB_RETURN_IF_ERROR(r.GetU64(&num_rows));
  TPDB_RETURN_IF_ERROR(r.GetU32(&num_cols));
  if (num_rows > payload.size())  // a non-empty batch stores >= 1 byte/row
    return Status::IOError("batch corrupt: implausible row count");
  if (num_cols > payload.size())
    return Status::IOError("batch corrupt: implausible column count");

  std::vector<ColumnChunk> chunks(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c)
    TPDB_RETURN_IF_ERROR(DecodeColumn(&r, num_rows, ids, &chunks[c]));

  *out = vec::ColumnBatch();
  if (num_rows == 0) {
    out->columns.resize(num_cols);
    return Status::OK();
  }
  // Materialize rows, then transpose back into typed owned columns — the
  // same representation choices the encoder made, so a re-encode of the
  // decoded batch is byte-identical.
  std::vector<Row> rows(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    rows[i].reserve(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c)
      rows[i].push_back(chunks[c].ValueAt(i));
  }
  vec::TransposeRows(rows, 0, rows.size(), out);
  return Status::OK();
}

}  // namespace tpdb::storage
