#include "storage/bytes.h"

#include <array>

namespace tpdb::storage {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const uint8_t byte : data)
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Status ByteReader::GetString(std::string* out) {
  uint32_t len = 0;
  TPDB_RETURN_IF_ERROR(GetU32(&len));
  if (len > remaining())
    return Status::IOError("snapshot truncated: string needs " +
                           std::to_string(len) + " bytes, have " +
                           std::to_string(remaining()));
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return Status::OK();
}

}  // namespace tpdb::storage
