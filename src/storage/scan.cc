#include "storage/scan.h"

#include <chrono>
#include <cmath>

#include "engine/schema.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

ScanRange* ScanPredicate::RangeOf(const std::string& column) {
  for (auto& [name, range] : column_ranges)
    if (name == column) return &range;
  column_ranges.emplace_back(column, ScanRange{});
  return &column_ranges.back().second;
}

void ScanPredicate::AddLowerBound(const std::string& column, double value,
                                  bool strict) {
  ScanRange* range = RangeOf(column);
  if (value > range->lo || (value == range->lo && strict)) {
    range->lo = value;
    range->lo_strict = strict;
  }
}

void ScanPredicate::AddUpperBound(const std::string& column, double value,
                                  bool strict) {
  ScanRange* range = RangeOf(column);
  if (value < range->hi || (value == range->hi && strict)) {
    range->hi = value;
    range->hi_strict = strict;
  }
}

void ScanPredicate::AddEquals(const std::string& column, double value) {
  AddLowerBound(column, value, /*strict=*/false);
  AddUpperBound(column, value, /*strict=*/false);
}

void ScanPredicate::AddMinProb(double min_prob, bool strict) {
  if (min_prob > this->min_prob ||
      (min_prob == this->min_prob && strict)) {
    this->min_prob = min_prob;
    this->min_prob_strict = strict;
  }
}

bool SegmentMayMatch(const Segment& segment, const Schema& schema,
                     const ScanPredicate& predicate) {
  const ZoneMap& zone = segment.zone;
  if (predicate.min_prob_strict ? zone.max_prob <= predicate.min_prob
                                : zone.max_prob < predicate.min_prob)
    return false;
  for (const auto& [column, range] : predicate.column_ranges) {
    // The dedicated temporal bounds hold even when a column's generic
    // min/max is unavailable: every _ts is >= ts_min, every _te <= te_max
    // (widened one ulp so the int64→double conversion stays conservative).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (column == kTsColumn) {
      const double ts_min =
          std::nextafter(static_cast<double>(zone.ts_min), -kInf);
      if (range.hi < ts_min || (range.hi_strict && range.hi == ts_min))
        return false;
    }
    if (column == kTeColumn) {
      const double te_max =
          std::nextafter(static_cast<double>(zone.te_max), kInf);
      if (range.lo > te_max || (range.lo_strict && range.lo == te_max))
        return false;
    }
    const int idx = schema.IndexOf(column);
    if (idx < 0 || static_cast<size_t>(idx) >= zone.bounds.size()) continue;
    const ColumnBounds& bounds = zone.bounds[static_cast<size_t>(idx)];
    if (!bounds.valid) continue;  // non-numeric or all-NULL: cannot prune
    // Every row value lies in [bounds.min, bounds.max]; skip the segment
    // when that envelope cannot intersect the predicate's range.
    if (bounds.max < range.lo || (range.lo_strict && bounds.max == range.lo))
      return false;
    if (bounds.min > range.hi || (range.hi_strict && bounds.min == range.hi))
      return false;
  }
  return true;
}

SegmentScan::SegmentScan(const SegmentedTable* table, ScanPredicate predicate,
                         StorageStats* stats)
    : table_(table), predicate_(std::move(predicate)), stats_(stats) {
  TPDB_CHECK(table_ != nullptr);
}

void SegmentScan::Open() {
  next_segment_ = 0;
  buffer_pos_ = 0;
  buffer_.clear();
}

bool SegmentScan::FillBuffer() {
  using Clock = std::chrono::steady_clock;
  while (next_segment_ < table_->segments().size()) {
    const Segment& segment = table_->segments()[next_segment_++];
    if (!SegmentMayMatch(segment, table_->schema(), predicate_)) {
      if (stats_ != nullptr) ++stats_->segments_skipped;
      continue;
    }
    const Clock::time_point start = Clock::now();
    buffer_.resize(segment.num_rows);
    for (size_t row = 0; row < segment.num_rows; ++row)
      segment.DecodeRow(row, &buffer_[row]);
    buffer_pos_ = 0;
    if (stats_ != nullptr) {
      ++stats_->segments_scanned;
      stats_->rows_decoded += segment.num_rows;
      stats_->bytes_mapped += segment.encoded_bytes;
      stats_->decode_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
    }
    if (!buffer_.empty()) return true;
  }
  return false;
}

bool SegmentScan::Next(Row* out) {
  const Row* row = NextRef();
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

const Row* SegmentScan::NextRef() {
  while (buffer_pos_ >= buffer_.size()) {
    buffer_.clear();
    buffer_pos_ = 0;
    if (!FillBuffer()) return nullptr;
  }
  return &buffer_[buffer_pos_++];
}

void SegmentScan::Close() {
  buffer_.clear();
  buffer_pos_ = 0;
}

}  // namespace tpdb::storage
