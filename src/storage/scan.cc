#include "storage/scan.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "engine/schema.h"
#include "obs/metrics.h"
#include "tp/tp_relation.h"

namespace tpdb::storage {

namespace {

/// Process-wide cold-read metrics, mirrored from the per-query
/// StorageStats counters at the same sites (the per-query view feeds
/// Explain; these feed the cumulative registry).
struct ScanMetrics {
  obs::Counter* segments_scanned = obs::MetricsRegistry::Default().counter(
      "tpdb_storage_segments_scanned_total", "storage",
      "Cold segments decoded by scans.");
  obs::Counter* segments_pruned = obs::MetricsRegistry::Default().counter(
      "tpdb_storage_segments_pruned_total", "storage",
      "Cold segments pruned by zone maps (never decoded).");
  obs::Counter* chunks_pruned_compressed =
      obs::MetricsRegistry::Default().counter(
          "tpdb_storage_chunks_pruned_compressed_total", "storage",
          "Segments rejected by packed-chunk min/max without decompression.");
  obs::Counter* rows_decoded = obs::MetricsRegistry::Default().counter(
      "tpdb_storage_rows_decoded_total", "storage",
      "Rows decoded from cold segments.");
  obs::Histogram* decode_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_storage_segment_decode_us", "storage",
      "Per-segment decode (materialize) time in microseconds.");

  static const ScanMetrics& Get() {
    static const ScanMetrics m;
    return m;
  }
};

}  // namespace

ScanRange* ScanPredicate::RangeOf(const std::string& column) {
  for (auto& [name, range] : column_ranges)
    if (name == column) return &range;
  column_ranges.emplace_back(column, ScanRange{});
  return &column_ranges.back().second;
}

void ScanPredicate::AddLowerBound(const std::string& column, double value,
                                  bool strict) {
  ScanRange* range = RangeOf(column);
  if (value > range->lo || (value == range->lo && strict)) {
    range->lo = value;
    range->lo_strict = strict;
  }
}

void ScanPredicate::AddUpperBound(const std::string& column, double value,
                                  bool strict) {
  ScanRange* range = RangeOf(column);
  if (value < range->hi || (value == range->hi && strict)) {
    range->hi = value;
    range->hi_strict = strict;
  }
}

void ScanPredicate::AddEquals(const std::string& column, double value) {
  AddLowerBound(column, value, /*strict=*/false);
  AddUpperBound(column, value, /*strict=*/false);
}

void ScanPredicate::AddMinProb(double min_prob, bool strict) {
  if (min_prob > this->min_prob ||
      (min_prob == this->min_prob && strict)) {
    this->min_prob = min_prob;
    this->min_prob_strict = strict;
  }
}

std::string ScanPredicate::ToString() const {
  std::string out;
  for (const auto& [name, range] : column_ranges) {
    if (!out.empty()) out += " AND ";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s in %s%g, %g%s", name.c_str(),
                  range.lo_strict ? "(" : "[", range.lo, range.hi,
                  range.hi_strict ? ")" : "]");
    out += buf;
  }
  if (min_prob > 0.0 || min_prob_strict) {
    if (!out.empty()) out += " AND ";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "prob %s %g", min_prob_strict ? ">" : ">=",
                  min_prob);
    out += buf;
  }
  return out;
}

size_t EstimateScanRows(const SegmentedTable& table,
                        const ScanPredicate& predicate) {
  size_t rows = 0;
  for (const Segment& segment : table.segments())
    if (SegmentMayMatch(segment, table.schema(), predicate) &&
        CompressedChunksMayMatch(segment, table.schema(), predicate))
      rows += segment.num_rows;
  return rows;
}

double EstimateDecodeFactor(const SegmentedTable& table,
                            const ScanPredicate& predicate) {
  size_t encoded = 0, packed = 0;
  for (const Segment& segment : table.segments()) {
    if (!SegmentMayMatch(segment, table.schema(), predicate) ||
        !CompressedChunksMayMatch(segment, table.schema(), predicate))
      continue;
    encoded += segment.encoded_bytes;
    packed += segment.packed_bytes;
  }
  if (encoded == 0) return 1.0;
  return 1.0 + 0.5 * (static_cast<double>(packed) /
                      static_cast<double>(encoded));
}

namespace {

/// Conservative intersection test of a double predicate range against the
/// exact int64 bounds of a packed block. Bound conversion rounds toward
/// the range's interior (ceil/floor); the ±1 strict-inequality tightening
/// only applies where doubles represent integers exactly, so the test can
/// under-prune but never over-prune.
bool IntRangeMayMatch(const ScanRange& range, int64_t vmin, int64_t vmax) {
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63
  constexpr double kExactInts = 9007199254740992.0;  // 2^53
  if (std::isfinite(range.lo)) {
    double c = std::ceil(range.lo);
    if (range.lo_strict && c == range.lo && std::fabs(c) < kExactInts)
      c += 1.0;
    if (c >= kTwo63) return false;  // lower bound above every int64
    const int64_t lo =
        c <= -kTwo63 ? std::numeric_limits<int64_t>::min()
                     : static_cast<int64_t>(c);
    if (vmax < lo) return false;
  }
  if (std::isfinite(range.hi)) {
    double f = std::floor(range.hi);
    if (range.hi_strict && f == range.hi && std::fabs(f) < kExactInts)
      f -= 1.0;
    if (f < -kTwo63) return false;  // upper bound below every int64
    const int64_t hi =
        f >= kTwo63 ? std::numeric_limits<int64_t>::max()
                    : static_cast<int64_t>(f);
    if (vmin > hi) return false;
  }
  return true;
}

}  // namespace

bool CompressedChunksMayMatch(const Segment& segment, const Schema& schema,
                              const ScanPredicate& predicate) {
  for (const auto& [column, range] : predicate.column_ranges) {
    const int idx = schema.IndexOf(column);
    if (idx < 0 || static_cast<size_t>(idx) >= segment.chunks.size())
      continue;
    const ColumnChunk& chunk = segment.chunks[static_cast<size_t>(idx)];
    // Only packed int64 chunks carry value-ordered exact bounds
    // (dictionary code bounds say nothing about the strings they stand
    // for). NULL placeholders inside the block only widen [min, max] —
    // widening never prunes a live row.
    if (chunk.encoding != ColumnEncoding::kPackedInt64) continue;
    if (!IntRangeMayMatch(range, chunk.block.min, chunk.block.max))
      return false;
  }
  return true;
}

bool SegmentMayMatch(const Segment& segment, const Schema& schema,
                     const ScanPredicate& predicate) {
  const ZoneMap& zone = segment.zone;
  if (predicate.min_prob_strict ? zone.max_prob <= predicate.min_prob
                                : zone.max_prob < predicate.min_prob)
    return false;
  for (const auto& [column, range] : predicate.column_ranges) {
    // The dedicated temporal bounds hold even when a column's generic
    // min/max is unavailable: every _ts is >= ts_min, every _te <= te_max
    // (widened one ulp so the int64→double conversion stays conservative).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (column == kTsColumn) {
      const double ts_min =
          std::nextafter(static_cast<double>(zone.ts_min), -kInf);
      if (range.hi < ts_min || (range.hi_strict && range.hi == ts_min))
        return false;
    }
    if (column == kTeColumn) {
      const double te_max =
          std::nextafter(static_cast<double>(zone.te_max), kInf);
      if (range.lo > te_max || (range.lo_strict && range.lo == te_max))
        return false;
    }
    const int idx = schema.IndexOf(column);
    if (idx < 0 || static_cast<size_t>(idx) >= zone.bounds.size()) continue;
    const ColumnBounds& bounds = zone.bounds[static_cast<size_t>(idx)];
    if (!bounds.valid) continue;  // non-numeric or all-NULL: cannot prune
    // Every row value lies in [bounds.min, bounds.max]; skip the segment
    // when that envelope cannot intersect the predicate's range.
    if (bounds.max < range.lo || (range.lo_strict && bounds.max == range.lo))
      return false;
    if (bounds.min > range.hi || (range.hi_strict && bounds.min == range.hi))
      return false;
  }
  return true;
}

SegmentScan::SegmentScan(const SegmentedTable* table, ScanPredicate predicate,
                         StorageStats* stats)
    : SegmentScan(table, std::move(predicate), 0,
                  table != nullptr ? table->segments().size() : 0, stats) {}

SegmentScan::SegmentScan(const SegmentedTable* table, ScanPredicate predicate,
                         size_t seg_begin, size_t seg_end, StorageStats* stats)
    : table_(table),
      predicate_(std::move(predicate)),
      seg_begin_(seg_begin),
      seg_end_(seg_end),
      stats_(stats) {
  TPDB_CHECK(table_ != nullptr);
  TPDB_CHECK_LE(seg_begin_, seg_end_);
  TPDB_CHECK_LE(seg_end_, table_->segments().size());
}

void SegmentScan::Open() {
  next_segment_ = seg_begin_;
  buffer_pos_ = 0;
  buffer_.clear();
}

bool SegmentScan::FillBuffer() {
  using Clock = std::chrono::steady_clock;
  while (next_segment_ < seg_end_) {
    const Segment& segment = table_->segments()[next_segment_++];
    if (!SegmentMayMatch(segment, table_->schema(), predicate_)) {
      if (stats_ != nullptr) ++stats_->segments_skipped;
      ScanMetrics::Get().segments_pruned->Add();
      continue;
    }
    if (!CompressedChunksMayMatch(segment, table_->schema(), predicate_)) {
      if (stats_ != nullptr) ++stats_->chunks_skipped_compressed;
      ScanMetrics::Get().chunks_pruned_compressed->Add();
      continue;
    }
    const Clock::time_point start = Clock::now();
    StatusOr<std::vector<const ColumnChunk*>> chunks =
        MaterializeSegment(segment, &storage_);
    // The snapshot's CRC already vouched for these bytes at load time; a
    // malformed block here is a programming error, not input corruption.
    TPDB_CHECK(chunks.ok()) << chunks.status().ToString();
    buffer_.resize(segment.num_rows);
    for (size_t row = 0; row < segment.num_rows; ++row) {
      Row& out = buffer_[row];
      out.clear();
      out.reserve(chunks->size());
      for (const ColumnChunk* chunk : *chunks)
        out.push_back(chunk->ValueAt(row));
    }
    buffer_pos_ = 0;
    const double decode_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (stats_ != nullptr) {
      ++stats_->segments_scanned;
      stats_->rows_decoded += segment.num_rows;
      stats_->bytes_mapped += segment.encoded_bytes;
      stats_->compressed_bytes += segment.packed_bytes;
      stats_->decode_seconds += decode_seconds;
    }
    ScanMetrics::Get().segments_scanned->Add();
    ScanMetrics::Get().rows_decoded->Add(segment.num_rows);
    ScanMetrics::Get().decode_us->Record(
        static_cast<uint64_t>(decode_seconds * 1e6));
    if (!buffer_.empty()) return true;
  }
  return false;
}

bool SegmentScan::Next(Row* out) {
  const Row* row = NextRef();
  if (row == nullptr) return false;
  *out = *row;
  return true;
}

const Row* SegmentScan::NextRef() {
  while (buffer_pos_ >= buffer_.size()) {
    buffer_.clear();
    buffer_pos_ = 0;
    if (!FillBuffer()) return nullptr;
  }
  return &buffer_[buffer_pos_++];
}

void SegmentScan::Close() {
  buffer_.clear();
  buffer_pos_ = 0;
}

namespace {

/// Views rows [off, off + n) of a segment chunk as a batch column — pure
/// span arithmetic, no value is decoded. Null bitmaps keep the chunk's
/// byte array with a bit offset (they are bit-packed, so they cannot be
/// subspanned at arbitrary rows).
vec::ColumnVector ViewChunk(const ColumnChunk& chunk, size_t off, size_t n) {
  using Rep = vec::ColumnVector::Rep;
  vec::ColumnVector v;
  switch (chunk.encoding) {
    case ColumnEncoding::kAllNull:
      v.rep = Rep::kAllNull;
      break;
    case ColumnEncoding::kPlainInt64:
      v.rep = Rep::kInt64;
      v.ints = chunk.ints.subspan(off, n);
      v.null_bits = chunk.null_bitmap;
      v.null_bit_offset = off;
      break;
    case ColumnEncoding::kPlainDouble:
      v.rep = Rep::kDouble;
      v.doubles = chunk.doubles.subspan(off, n);
      v.null_bits = chunk.null_bitmap;
      v.null_bit_offset = off;
      break;
    case ColumnEncoding::kDictString:
      v.rep = Rep::kDict;
      v.dict = &chunk.Dict();
      v.codes = chunk.codes.subspan(off, n);
      v.null_bits = chunk.null_bitmap;
      v.null_bit_offset = off;
      break;
    case ColumnEncoding::kLineage:
      v.rep = Rep::kLineage;
      v.lineage = std::span<const LineageRef>(chunk.lineage).subspan(off, n);
      break;
    case ColumnEncoding::kGeneric:
      v.rep = Rep::kGeneric;
      v.generic = std::span<const Datum>(chunk.generic).subspan(off, n);
      break;
    case ColumnEncoding::kPackedInt64:
    case ColumnEncoding::kPackedDict:
    case ColumnEncoding::kPackedLineage:
      TPDB_CHECK(false) << "ViewChunk on a deferred packed chunk; "
                           "MaterializeSegment first";
      break;
  }
  return v;
}

}  // namespace

SegmentBatchScan::SegmentBatchScan(const SegmentedTable* table,
                                   ScanPredicate predicate,
                                   StorageStats* stats,
                                   VectorStats* vstats)
    : SegmentBatchScan(table, std::move(predicate), 0,
                       table->segments().size(), stats, vstats) {}

SegmentBatchScan::SegmentBatchScan(const SegmentedTable* table,
                                   ScanPredicate predicate, size_t seg_begin,
                                   size_t seg_end, StorageStats* stats,
                                   VectorStats* vstats)
    : table_(table),
      predicate_(std::move(predicate)),
      seg_begin_(seg_begin),
      seg_end_(std::min(seg_end, table->segments().size())),
      stats_(stats),
      vstats_(vstats),
      segment_(seg_begin) {
  TPDB_CHECK(table_ != nullptr);
  TPDB_CHECK_LE(seg_begin_, seg_end_);
}

void SegmentBatchScan::Open() {
  segment_ = seg_begin_;
  row_ = 0;
}

const vec::ColumnBatch* SegmentBatchScan::NextBatch() {
  using Clock = std::chrono::steady_clock;
  while (segment_ < seg_end_) {
    const Segment& segment = table_->segments()[segment_];
    if (row_ == 0) {
      // First visit of this segment: prune or commit to scanning it.
      if (segment.num_rows == 0 ||
          !SegmentMayMatch(segment, table_->schema(), predicate_)) {
        if (segment.num_rows > 0) {
          if (stats_ != nullptr) ++stats_->segments_skipped;
          ScanMetrics::Get().segments_pruned->Add();
        }
        ++segment_;
        continue;
      }
      if (!CompressedChunksMayMatch(segment, table_->schema(), predicate_)) {
        if (stats_ != nullptr) ++stats_->chunks_skipped_compressed;
        ScanMetrics::Get().chunks_pruned_compressed->Add();
        ++segment_;
        continue;
      }
      // Decompress the segment's packed chunks once; every batch of this
      // segment views the materialized arrays.
      const Clock::time_point start = Clock::now();
      StatusOr<std::vector<const ColumnChunk*>> chunks =
          MaterializeSegment(segment, &storage_);
      TPDB_CHECK(chunks.ok()) << chunks.status().ToString();
      views_ = std::move(*chunks);
      const double decode_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (stats_ != nullptr) {
        ++stats_->segments_scanned;
        stats_->bytes_mapped += segment.encoded_bytes;
        stats_->compressed_bytes += segment.packed_bytes;
        stats_->decode_seconds += decode_seconds;
      }
      ScanMetrics::Get().segments_scanned->Add();
      ScanMetrics::Get().decode_us->Record(
          static_cast<uint64_t>(decode_seconds * 1e6));
    }
    const size_t n = std::min(vec::kBatchRows, segment.num_rows - row_);
    batch_.num_rows = n;
    batch_.sel_all = true;
    batch_.sel.clear();
    batch_.columns.clear();
    batch_.columns.reserve(views_.size());
    for (const ColumnChunk* chunk : views_)
      batch_.columns.push_back(ViewChunk(*chunk, row_, n));
    row_ += n;
    if (row_ >= segment.num_rows) {
      ++segment_;
      row_ = 0;
    }
    if (stats_ != nullptr) stats_->rows_decoded += n;
    ScanMetrics::Get().rows_decoded->Add(n);
    if (vstats_ != nullptr) {
      ++vstats_->batches;
      vstats_->rows_scanned += n;
    }
    return &batch_;
  }
  return nullptr;
}

}  // namespace tpdb::storage

