// Write-ahead log: the durable append path between two snapshots.
//
// A snapshot (storage/snapshot.h) is a full, atomic image of the database;
// the WAL makes the appends *since* the last snapshot durable without
// rewriting it. TPDatabase::Append applies rows in memory and then appends
// one framed record here, fsyncing before it acknowledges — a process
// killed at any point loses no acknowledged append: on restart, loading
// the snapshot and replaying the WAL reproduces the exact pre-crash
// catalog, tuples, variable names and probabilities.
//
// On-disk framing (little-endian, like every storage/ format):
//
//   u32 payload_len | payload bytes | u32 crc32(payload)
//
// repeated back to back. Record payload:
//
//   u64 sequence | u8 kind | body
//
//   kCreateRelation: string name | u32 ncols | (string name, u8 type)*
//   kAppendRows:     string relation | u32 nrows | per row:
//                      string var_name | f64 prob | i64 ts | i64 te |
//                      u32 arity | arity tagged datums
//                      (storage/column_codec.h EncodeTaggedDatum)
//
// Sequences increase monotonically across the WAL's whole lifetime and
// never reset: a snapshot records the last sequence it subsumes
// (SnapshotOptions::wal_sequence) and replay skips records at or below
// that floor, so replaying an over-long WAL against a newer snapshot is
// harmless.
//
// Torn tails: readers (and WalWriter::Open) accept the longest prefix of
// records whose length, checksum and payload all validate, and ignore —
// Open truncates — everything after the first invalid byte. A crash
// mid-write therefore only ever costs the unacknowledged record being
// written; corruption never crashes the process, it just ends replay.
#ifndef TPDB_STORAGE_WAL_WAL_H_
#define TPDB_STORAGE_WAL_WAL_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/row.h"
#include "engine/schema.h"

namespace tpdb::storage {

enum class WalRecordKind : uint8_t {
  kCreateRelation = 1,
  kAppendRows = 2,
};

/// One appended base tuple as logged: enough to replay AppendBase with the
/// identical variable name and probability.
struct WalAppendRow {
  std::string var_name;  ///< the registered name (auto names included)
  double prob = 1.0;
  int64_t ts = 0;
  int64_t te = 0;
  Row fact;
};

struct WalRecord {
  uint64_t sequence = 0;  ///< assigned by WalWriter::Append
  WalRecordKind kind = WalRecordKind::kAppendRows;
  std::string relation;
  Schema fact_schema;               ///< kCreateRelation
  std::vector<WalAppendRow> rows;   ///< kAppendRows
};

/// The records of the WAL at `path`: its longest valid prefix, in order,
/// plus how many bytes that prefix spans (everything after is a torn or
/// corrupt tail). A missing file reads as an empty log.
struct WalReadResult {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;
};
StatusOr<WalReadResult> ReadWal(const std::string& path);

/// Appender over one WAL file. Thread-safe; every Append is synced to
/// stable storage before it returns OK.
class WalWriter {
 public:
  /// Opens (creating if absent) the WAL at `path`, truncates any invalid
  /// tail, and positions sequences after max(`sequence_floor`, the last
  /// valid record in the file).
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   uint64_t sequence_floor);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Stamps the next sequence onto `record`, appends the framed record and
  /// fsyncs. Returns the assigned sequence.
  StatusOr<uint64_t> Append(WalRecord record);

  /// Empties the file (after a successful snapshot subsumed every record).
  /// Sequences keep counting — the snapshot remembers the floor.
  Status Reset();

  uint64_t last_sequence() const;
  size_t bytes() const;      ///< current valid file size
  uint64_t records() const;  ///< records appended since Open (plus preexisting)

 private:
  WalWriter(int fd, std::string path, uint64_t last_sequence, size_t bytes,
            uint64_t records);

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  uint64_t last_sequence_ = 0;
  size_t bytes_ = 0;
  uint64_t records_ = 0;
};

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_WAL_WAL_H_
