#include "storage/wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "storage/bytes.h"
#include "storage/column_codec.h"

namespace tpdb::storage {

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// Durability-path metrics. Appends are fsync-bound, so the two clock
/// reads per append are noise next to the sync itself.
struct WalMetrics {
  obs::Counter* appends = obs::MetricsRegistry::Default().counter(
      "tpdb_wal_appends_total", "storage", "WAL records appended.");
  obs::Counter* bytes = obs::MetricsRegistry::Default().counter(
      "tpdb_wal_bytes_total", "storage", "WAL bytes written (framed).");
  obs::Histogram* append_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_wal_append_us", "storage",
      "WAL append latency (encode + write + fsync) in microseconds.");
  obs::Histogram* fsync_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_wal_fsync_us", "storage",
      "fsync portion of the WAL append in microseconds.");

  static const WalMetrics& Get() {
    static const WalMetrics m;
    return m;
  }
};

std::string EncodeRecordPayload(const WalRecord& record) {
  ByteWriter w;
  w.PutU64(record.sequence);
  w.PutU8(static_cast<uint8_t>(record.kind));
  switch (record.kind) {
    case WalRecordKind::kCreateRelation: {
      w.PutString(record.relation);
      w.PutU32(static_cast<uint32_t>(record.fact_schema.num_columns()));
      for (const Column& col : record.fact_schema.columns()) {
        w.PutString(col.name);
        w.PutU8(static_cast<uint8_t>(col.type));
      }
      break;
    }
    case WalRecordKind::kAppendRows: {
      w.PutString(record.relation);
      w.PutU32(static_cast<uint32_t>(record.rows.size()));
      for (const WalAppendRow& row : record.rows) {
        w.PutString(row.var_name);
        w.PutF64(row.prob);
        w.PutI64(row.ts);
        w.PutI64(row.te);
        w.PutU32(static_cast<uint32_t>(row.fact.size()));
        for (const Datum& v : row.fact) {
          // Base facts hold plain values; lineage datums cannot appear.
          const Status s = EncodeTaggedDatum(v, nullptr, &w);
          TPDB_CHECK(s.ok()) << s.ToString();
        }
      }
      break;
    }
  }
  return std::move(w).TakeBuffer();
}

Status DecodeRecordPayload(std::span<const uint8_t> payload,
                           WalRecord* record) {
  ByteReader r(payload);
  TPDB_RETURN_IF_ERROR(r.GetU64(&record->sequence));
  uint8_t kind = 0;
  TPDB_RETURN_IF_ERROR(r.GetU8(&kind));
  switch (static_cast<WalRecordKind>(kind)) {
    case WalRecordKind::kCreateRelation: {
      record->kind = WalRecordKind::kCreateRelation;
      TPDB_RETURN_IF_ERROR(r.GetString(&record->relation));
      uint32_t ncols = 0;
      TPDB_RETURN_IF_ERROR(r.GetU32(&ncols));
      std::vector<Column> cols;
      for (uint32_t c = 0; c < ncols; ++c) {
        Column col;
        TPDB_RETURN_IF_ERROR(r.GetString(&col.name));
        uint8_t type = 0;
        TPDB_RETURN_IF_ERROR(r.GetU8(&type));
        if (type > static_cast<uint8_t>(DatumType::kLineage))
          return Status::IOError("wal: unknown column type " +
                                 std::to_string(type));
        col.type = static_cast<DatumType>(type);
        cols.push_back(std::move(col));
      }
      record->fact_schema = Schema(std::move(cols));
      break;
    }
    case WalRecordKind::kAppendRows: {
      record->kind = WalRecordKind::kAppendRows;
      TPDB_RETURN_IF_ERROR(r.GetString(&record->relation));
      uint32_t nrows = 0;
      TPDB_RETURN_IF_ERROR(r.GetU32(&nrows));
      for (uint32_t i = 0; i < nrows; ++i) {
        WalAppendRow row;
        TPDB_RETURN_IF_ERROR(r.GetString(&row.var_name));
        TPDB_RETURN_IF_ERROR(r.GetF64(&row.prob));
        TPDB_RETURN_IF_ERROR(r.GetI64(&row.ts));
        TPDB_RETURN_IF_ERROR(r.GetI64(&row.te));
        uint32_t arity = 0;
        TPDB_RETURN_IF_ERROR(r.GetU32(&arity));
        if (arity > r.remaining())
          return Status::IOError("wal: row arity overruns the record");
        row.fact.reserve(arity);
        for (uint32_t c = 0; c < arity; ++c) {
          Datum v;
          TPDB_RETURN_IF_ERROR(DecodeTaggedDatum(&r, nullptr, &v));
          row.fact.push_back(std::move(v));
        }
        record->rows.push_back(std::move(row));
      }
      break;
    }
    default:
      return Status::IOError("wal: unknown record kind " +
                             std::to_string(kind));
  }
  if (r.remaining() != 0)
    return Status::IOError("wal: trailing bytes in record payload");
  return Status::OK();
}

/// Scans the longest valid record prefix of `bytes`. Invalid framing or
/// content anywhere just ends the scan — the caller treats the rest as a
/// torn tail.
WalReadResult ScanRecords(std::span<const uint8_t> bytes) {
  WalReadResult result;
  ByteReader r(bytes);
  while (r.remaining() >= sizeof(uint32_t)) {
    uint32_t len = 0;
    if (!r.GetU32(&len).ok()) break;
    if (len < 9 || len + sizeof(uint32_t) > r.remaining()) break;
    std::span<const uint8_t> payload;
    if (!r.GetBlob(len, &payload).ok()) break;
    uint32_t crc = 0;
    if (!r.GetU32(&crc).ok()) break;
    if (Crc32(payload) != crc) break;
    WalRecord record;
    if (!DecodeRecordPayload(payload, &record).ok()) break;
    // Sequences must move strictly forward; a rollback means the file was
    // overwritten mid-record at some point — stop trusting it here.
    if (!result.records.empty() &&
        record.sequence <= result.records.back().sequence)
      break;
    result.records.push_back(std::move(record));
    result.valid_bytes = r.position();
  }
  return result;
}

StatusOr<std::string> ReadWholeFile(const std::string& path, bool* exists) {
  // POSIX read, not ifstream: libstdc++'s filebuf throws out of underflow
  // when handed a directory, and a WAL path must only ever surface Status.
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      *exists = false;
      return std::string();
    }
    return ErrnoError("cannot open wal", path);
  }
  *exists = true;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoError("cannot stat wal", path);
    ::close(fd);
    return s;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("wal path '" + path + "' is not a regular file");
  }
  std::string bytes;
  bytes.reserve(static_cast<size_t>(st.st_size));
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = ErrnoError("cannot read wal", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

}  // namespace

StatusOr<WalReadResult> ReadWal(const std::string& path) {
  bool exists = false;
  StatusOr<std::string> bytes = ReadWholeFile(path, &exists);
  if (!bytes.ok()) return bytes.status();
  if (!exists) return WalReadResult{};
  return ScanRecords(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size()));
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                     uint64_t sequence_floor) {
  bool exists = false;
  StatusOr<std::string> bytes = ReadWholeFile(path, &exists);
  if (!bytes.ok()) return bytes.status();
  WalReadResult scanned;
  if (exists)
    scanned = ScanRecords(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size()));

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return ErrnoError("cannot open wal", path);
  if (exists && scanned.valid_bytes < bytes->size()) {
    TPDB_LOG(WARN) << "wal '" << path << "': dropping torn tail of "
                   << bytes->size() - scanned.valid_bytes << " byte(s) after "
                   << scanned.records.size() << " valid record(s)";
  }
  // Drop the torn tail so every future append lands after a valid record.
  if (::ftruncate(fd, static_cast<off_t>(scanned.valid_bytes)) != 0) {
    const Status s = ErrnoError("cannot truncate wal", path);
    ::close(fd);
    return s;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status s = ErrnoError("cannot seek wal", path);
    ::close(fd);
    return s;
  }
  uint64_t last = sequence_floor;
  if (!scanned.records.empty())
    last = std::max(last, scanned.records.back().sequence);
  return std::unique_ptr<WalWriter>(new WalWriter(
      fd, path, last, scanned.valid_bytes, scanned.records.size()));
}

WalWriter::WalWriter(int fd, std::string path, uint64_t last_sequence,
                     size_t bytes, uint64_t records)
    : fd_(fd),
      path_(std::move(path)),
      last_sequence_(last_sequence),
      bytes_(bytes),
      records_(records) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<uint64_t> WalWriter::Append(WalRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  const uint64_t start_us = obs::NowUs();
  record.sequence = last_sequence_ + 1;
  const std::string payload = EncodeRecordPayload(record);
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutRaw(payload.data(), payload.size());
  frame.PutU32(Crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size())));
  const std::string& out = frame.buffer();
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + written, out.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Leave the partial frame in place: its checksum cannot validate, so
      // readers (and the next Open) treat it as a torn tail.
      return ErrnoError("cannot write wal", path_);
    }
    written += static_cast<size_t>(n);
  }
  const uint64_t fsync_start_us = obs::NowUs();
  if (::fsync(fd_) != 0) return ErrnoError("cannot sync wal", path_);
  const uint64_t end_us = obs::NowUs();
  WalMetrics::Get().appends->Add();
  WalMetrics::Get().bytes->Add(out.size());
  WalMetrics::Get().append_us->Record(end_us - start_us);
  WalMetrics::Get().fsync_us->Record(end_us - fsync_start_us);
  last_sequence_ = record.sequence;
  bytes_ += out.size();
  ++records_;
  return record.sequence;
}

Status WalWriter::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (::ftruncate(fd_, 0) != 0)
    return ErrnoError("cannot truncate wal", path_);
  if (::lseek(fd_, 0, SEEK_SET) < 0)
    return ErrnoError("cannot seek wal", path_);
  if (::fsync(fd_) != 0) return ErrnoError("cannot sync wal", path_);
  bytes_ = 0;
  records_ = 0;
  return Status::OK();
}

uint64_t WalWriter::last_sequence() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_sequence_;
}

size_t WalWriter::bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t WalWriter::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

}  // namespace tpdb::storage
