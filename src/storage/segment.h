// Columnar segments: the storage unit of the snapshot format and the cold
// scan path.
//
// A relation is stored as a sequence of segments of up to `segment_rows`
// tuples over the flattened engine layout (fact columns ++ _ts ++ _te ++
// _lin). Each segment holds one encoded chunk per column plus a zone map —
// per-column min/max for numeric columns, the segment's temporal bounds,
// and the maximum tuple probability — which the scan uses to skip whole
// segments that cannot satisfy a pushed-down predicate.
//
// Column encodings:
//   kAllNull      — every value NULL; no data
//   kPlainInt64   — null bitmap + raw int64 array (also _ts/_te)
//   kPlainDouble  — null bitmap + raw double array
//   kDictString   — null bitmap + string dictionary + u32 code array
//   kLineage      — u32 lineage-node id array (file-local ids on disk,
//                   resolved LineageRefs in memory; kNullId encodes NULL)
//   kGeneric      — per-value tagged datums (fallback for mixed-type chunks)
//   kPackedInt64  — null bitmap + compressed int64 block (storage/compress)
//   kPackedDict   — null bitmap + dictionary + compressed code block
//   kPackedLineage— compressed id block (decompressed eagerly at load:
//                   id resolution needs the load-time LineageIdMap)
//
// Decoded plain chunks view their raw arrays directly in the mapped
// snapshot (zero-copy); dictionaries, lineage refs and generic values are
// small and decoded eagerly at load time. Packed int/code chunks stay
// compressed in memory as a parsed-but-undecompressed block — scans
// decompress them on demand into scan-local ChunkStorage (so concurrent
// scans of one table never share mutable state), after the block's exact
// min/max has had a chance to prune the chunk compressed-domain.
#ifndef TPDB_STORAGE_SEGMENT_H_
#define TPDB_STORAGE_SEGMENT_H_

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/row.h"
#include "storage/bytes.h"
#include "storage/compress/compression.h"
#include "storage/mmap_file.h"
#include "temporal/interval.h"

namespace tpdb::storage {

/// Knobs of the column codec (storage/column_codec.h). The defaults
/// reproduce the historical plain format. Lives here rather than in
/// column_codec.h so EncodeSegmentBlob can take it without an include
/// cycle.
struct ColumnCodecOptions {
  /// Compress int64-normal-form chunks (plain ints, dictionary codes,
  /// lineage ids) through storage/compress. Chunks where no codec beats
  /// raw keep their plain zero-copy encodings.
  bool compress = false;
};

enum class ColumnEncoding : uint8_t {
  kAllNull = 0,
  kPlainInt64 = 1,
  kPlainDouble = 2,
  kDictString = 3,
  kLineage = 4,
  kGeneric = 5,
  kPackedInt64 = 6,
  kPackedDict = 7,
  kPackedLineage = 8,
};

/// Min/max of a numeric column within one segment (NULLs excluded).
/// `valid` is false for non-numeric or all-NULL chunks — no pruning there.
struct ColumnBounds {
  bool valid = false;
  double min = 0.0;
  double max = 0.0;
};

/// Per-segment statistics consulted before any row is decoded.
struct ZoneMap {
  /// Temporal bounds: the union of the segment's intervals lies within
  /// [ts_min, te_max).
  TimePoint ts_min = std::numeric_limits<TimePoint>::max();
  TimePoint te_max = std::numeric_limits<TimePoint>::min();
  /// Maximum exact tuple probability in the segment (at encode time).
  double max_prob = 0.0;
  /// One entry per flattened column (fact ++ _ts ++ _te ++ _lin).
  std::vector<ColumnBounds> bounds;
};

/// One decoded (or mapped, or still-compressed) column of a segment.
struct ColumnChunk {
  ColumnEncoding encoding = ColumnEncoding::kAllNull;
  DatumType declared = DatumType::kNull;
  std::span<const uint8_t> null_bitmap;   ///< bit i set = row i NULL
  std::span<const int64_t> ints;          ///< kPlainInt64
  std::span<const double> doubles;        ///< kPlainDouble
  std::span<const uint32_t> codes;        ///< kDictString
  std::vector<std::string> dict;          ///< kDictString, kPackedDict
  /// Set on chunks materialized from a kPackedDict chunk: the source
  /// chunk's dictionary, which outlives the scan. Readers must go through
  /// Dict() — dictionary consumers key caches on the dictionary's address
  /// (vector/predicate.cc), so a materialized chunk must expose the
  /// stable per-segment dictionary, not a copy in reused scan scratch.
  const std::vector<std::string>* dict_src = nullptr;
  std::vector<LineageRef> lineage;        ///< kLineage (resolved)
  std::vector<Datum> generic;             ///< kGeneric

  /// kPackedInt64/kPackedDict: the compressed block, parsed but not yet
  /// decompressed. Its exact min/max (of the ints or the codes) drives
  /// compressed-domain pruning without touching the payload.
  CompressedBlock block;
  /// Bytes this chunk stores compressed / would store plain. Zero for
  /// chunks that never went through a codec.
  size_t packed_bytes = 0;
  size_t unpacked_bytes = 0;

  /// True while the chunk's values live only in `block` — reading them
  /// requires MaterializeSegment first.
  bool deferred() const {
    return encoding == ColumnEncoding::kPackedInt64 ||
           encoding == ColumnEncoding::kPackedDict;
  }

  bool IsNull(size_t row) const {
    return (null_bitmap[row / 8] >> (row % 8)) & 1u;
  }

  /// The dictionary of a kDictString chunk, whether owned or aliased.
  const std::vector<std::string>& Dict() const {
    return dict_src != nullptr ? *dict_src : dict;
  }

  /// The value of `row` as a Datum (copies strings; ints/doubles read
  /// straight from the mapped array). CHECK-fails on a deferred chunk.
  Datum ValueAt(size_t row) const;
};

/// One segment: a zone map plus one chunk per flattened column.
struct Segment {
  size_t num_rows = 0;
  size_t encoded_bytes = 0;  ///< size of this segment's blob in the file
  size_t packed_bytes = 0;   ///< bytes stored compressed across the chunks
  size_t unpacked_bytes = 0; ///< plain-encoding size of those same bytes
  ZoneMap zone;
  std::vector<ColumnChunk> chunks;

  /// Decodes row `row` into `*out` (resized to the column count).
  /// CHECK-fails if any chunk is deferred — use MaterializeSegment.
  void DecodeRow(size_t row, Row* out) const;
};

/// Scan-local scratch for one segment visit: owns the decompressed arrays
/// and the materialized chunk views of the segment's deferred chunks.
/// One ChunkStorage per scan — segments themselves are shared immutable.
struct ChunkStorage {
  std::vector<ColumnChunk> chunks;          ///< materialized plain chunks
  std::vector<std::vector<int64_t>> ints;   ///< backing for their spans
  std::vector<std::vector<uint32_t>> codes;
};

/// Per-column views of `segment`'s chunks with every deferred chunk
/// decompressed into `storage` as its plain equivalent (kPackedInt64 →
/// kPlainInt64, kPackedDict → kDictString); plain chunks are returned
/// as-is. `storage` is reset on every call and must outlive the returned
/// pointers. Malformed payloads surface as a Status, never a crash.
StatusOr<std::vector<const ColumnChunk*>> MaterializeSegment(
    const Segment& segment, ChunkStorage* storage);

/// A relation's segments plus the flattened schema they follow. Keeps the
/// backing buffers (mapped snapshot, owned delta blobs) alive for the
/// lifetime of the spans inside the chunks.
///
/// A table is `num_base_segments` compacted base segments followed by any
/// number of delta segments appended since (ExtendDelta). Mutation happens
/// only under the catalog's exclusive lock; readers see a consistent
/// snapshot for the duration of their shared lock.
class SegmentedTable {
 public:
  /// `probability_epoch` is the owning manager's probability_epoch() at
  /// load time: zone-map max_prob values are only trusted while the
  /// manager still reports the same epoch (SetVariableProbability bumps
  /// it, staling every stored probability bound).
  SegmentedTable(Schema schema, std::vector<Segment> segments,
                 std::shared_ptr<const void> backing,
                 uint64_t probability_epoch);

  const Schema& schema() const { return schema_; }
  const std::vector<Segment>& segments() const { return segments_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_base_segments() const { return num_base_segments_; }
  size_t num_delta_segments() const {
    return segments_.size() - num_base_segments_;
  }
  uint64_t probability_epoch() const { return probability_epoch_; }

  /// Total packed/unpacked byte tallies across all segments.
  size_t packed_bytes() const;
  size_t unpacked_bytes() const;
  size_t encoded_bytes() const;

  /// Appends delta segments (an in-memory append batch) behind the base
  /// segments, keeping `backing` alive. Caller holds the exclusive
  /// catalog lock.
  void ExtendDelta(std::vector<Segment> segments,
                   std::shared_ptr<const void> backing);

 private:
  Schema schema_;
  std::vector<Segment> segments_;
  std::vector<std::shared_ptr<const void>> backings_;
  size_t num_rows_ = 0;
  size_t num_base_segments_ = 0;
  uint64_t probability_epoch_ = 0;
};

/// Maps file-local lineage ids (dense, per snapshot) to arena refs and
/// back. Save builds ref→local by walking every stored formula; load
/// rebuilds local→ref through the manager's constructors.
struct LineageIdMap {
  std::vector<std::pair<uint32_t, uint32_t>> ref_to_local;  // sorted by ref
  std::vector<LineageRef> local_to_ref;

  StatusOr<uint32_t> LocalOf(LineageRef ref) const;
  StatusOr<LineageRef> RefOf(uint32_t local) const;
};

/// Encodes rows [begin, end) of `table` into one segment blob (the bytes
/// that go in the snapshot, zone map included). `probs` holds the exact
/// tuple probability of each row of the full table (zone-map max_prob).
/// `ids == nullptr` writes raw arena lineage ids (in-process delta and
/// compaction segments); a map writes snapshot-local ids. Pure function of
/// its inputs, so segments encode in parallel.
StatusOr<std::string> EncodeSegmentBlob(const Table& table, size_t begin,
                                        size_t end,
                                        const std::vector<double>& probs,
                                        const LineageIdMap* ids,
                                        const ColumnCodecOptions& options = {});

/// Parses one segment blob (as produced by EncodeSegmentBlob). Raw arrays
/// become spans into the blob's bytes — the caller guarantees the backing
/// memory outlives the segment (SegmentedTable holds the mapping).
StatusOr<Segment> ParseSegmentBlob(std::span<const uint8_t> blob,
                                   const Schema& schema,
                                   const LineageIdMap* ids);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_SEGMENT_H_
