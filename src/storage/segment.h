// Columnar segments: the storage unit of the snapshot format and the cold
// scan path.
//
// A relation is stored as a sequence of segments of up to `segment_rows`
// tuples over the flattened engine layout (fact columns ++ _ts ++ _te ++
// _lin). Each segment holds one encoded chunk per column plus a zone map —
// per-column min/max for numeric columns, the segment's temporal bounds,
// and the maximum tuple probability — which the scan uses to skip whole
// segments that cannot satisfy a pushed-down predicate.
//
// Column encodings:
//   kAllNull    — every value NULL; no data
//   kPlainInt64 — null bitmap + raw int64 array (also _ts/_te)
//   kPlainDouble— null bitmap + raw double array
//   kDictString — null bitmap + string dictionary + u32 code array
//   kLineage    — u32 lineage-node id array (file-local ids on disk,
//                 resolved LineageRefs in memory; kNullId encodes NULL)
//   kGeneric    — per-value tagged datums (fallback for mixed-type chunks)
//
// Decoded chunks view their raw arrays directly in the mapped snapshot
// (zero-copy); dictionaries, lineage refs and generic values are small and
// decoded eagerly at load time.
#ifndef TPDB_STORAGE_SEGMENT_H_
#define TPDB_STORAGE_SEGMENT_H_

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/row.h"
#include "storage/bytes.h"
#include "storage/mmap_file.h"
#include "temporal/interval.h"

namespace tpdb::storage {

enum class ColumnEncoding : uint8_t {
  kAllNull = 0,
  kPlainInt64 = 1,
  kPlainDouble = 2,
  kDictString = 3,
  kLineage = 4,
  kGeneric = 5,
};

/// Min/max of a numeric column within one segment (NULLs excluded).
/// `valid` is false for non-numeric or all-NULL chunks — no pruning there.
struct ColumnBounds {
  bool valid = false;
  double min = 0.0;
  double max = 0.0;
};

/// Per-segment statistics consulted before any row is decoded.
struct ZoneMap {
  /// Temporal bounds: the union of the segment's intervals lies within
  /// [ts_min, te_max).
  TimePoint ts_min = std::numeric_limits<TimePoint>::max();
  TimePoint te_max = std::numeric_limits<TimePoint>::min();
  /// Maximum exact tuple probability in the segment (at encode time).
  double max_prob = 0.0;
  /// One entry per flattened column (fact ++ _ts ++ _te ++ _lin).
  std::vector<ColumnBounds> bounds;
};

/// One decoded (or mapped) column of a segment.
struct ColumnChunk {
  ColumnEncoding encoding = ColumnEncoding::kAllNull;
  DatumType declared = DatumType::kNull;
  std::span<const uint8_t> null_bitmap;   ///< bit i set = row i NULL
  std::span<const int64_t> ints;          ///< kPlainInt64
  std::span<const double> doubles;        ///< kPlainDouble
  std::span<const uint32_t> codes;        ///< kDictString
  std::vector<std::string> dict;          ///< kDictString
  std::vector<LineageRef> lineage;        ///< kLineage (resolved)
  std::vector<Datum> generic;             ///< kGeneric

  bool IsNull(size_t row) const {
    return (null_bitmap[row / 8] >> (row % 8)) & 1u;
  }

  /// The value of `row` as a Datum (copies strings; ints/doubles read
  /// straight from the mapped array).
  Datum ValueAt(size_t row) const;
};

/// One segment: a zone map plus one chunk per flattened column.
struct Segment {
  size_t num_rows = 0;
  size_t encoded_bytes = 0;  ///< size of this segment's blob in the file
  ZoneMap zone;
  std::vector<ColumnChunk> chunks;

  /// Decodes row `row` into `*out` (resized to the column count).
  void DecodeRow(size_t row, Row* out) const;
};

/// A relation's segments plus the flattened schema they follow. Keeps the
/// mapped snapshot alive for the lifetime of the spans inside the chunks.
class SegmentedTable {
 public:
  /// `probability_epoch` is the owning manager's probability_epoch() at
  /// load time: zone-map max_prob values are only trusted while the
  /// manager still reports the same epoch (SetVariableProbability bumps
  /// it, staling every stored probability bound).
  SegmentedTable(Schema schema, std::vector<Segment> segments,
                 std::shared_ptr<MappedFile> backing,
                 uint64_t probability_epoch);

  const Schema& schema() const { return schema_; }
  const std::vector<Segment>& segments() const { return segments_; }
  size_t num_rows() const { return num_rows_; }
  uint64_t probability_epoch() const { return probability_epoch_; }

 private:
  Schema schema_;
  std::vector<Segment> segments_;
  std::shared_ptr<MappedFile> backing_;
  size_t num_rows_ = 0;
  uint64_t probability_epoch_ = 0;
};

/// Maps file-local lineage ids (dense, per snapshot) to arena refs and
/// back. Save builds ref→local by walking every stored formula; load
/// rebuilds local→ref through the manager's constructors.
struct LineageIdMap {
  std::vector<std::pair<uint32_t, uint32_t>> ref_to_local;  // sorted by ref
  std::vector<LineageRef> local_to_ref;

  StatusOr<uint32_t> LocalOf(LineageRef ref) const;
  StatusOr<LineageRef> RefOf(uint32_t local) const;
};

/// Encodes rows [begin, end) of `table` into one segment blob (the bytes
/// that go in the snapshot, zone map included). `probs` holds the exact
/// tuple probability of each row of the full table (zone-map max_prob).
/// Pure function of its inputs, so segments encode in parallel.
StatusOr<std::string> EncodeSegmentBlob(const Table& table, size_t begin,
                                        size_t end,
                                        const std::vector<double>& probs,
                                        const LineageIdMap& ids);

/// Parses one segment blob (as produced by EncodeSegmentBlob). Raw arrays
/// become spans into the blob's bytes — the caller guarantees the backing
/// memory outlives the segment (SegmentedTable holds the mapping).
StatusOr<Segment> ParseSegmentBlob(std::span<const uint8_t> blob,
                                   const Schema& schema,
                                   const LineageIdMap& ids);

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_SEGMENT_H_
