// Read-only memory-mapped file — the backing of the cold scan path. The
// mapping stays alive as long as any SegmentedTable (or other holder of
// the shared_ptr) references it, so column spans handed out by the reader
// never dangle.
#ifndef TPDB_STORAGE_MMAP_FILE_H_
#define TPDB_STORAGE_MMAP_FILE_H_

#include <memory>
#include <span>
#include <string>

#include "common/status.h"

namespace tpdb::storage {

/// RAII read-only mapping of a whole file.
class MappedFile {
 public:
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Empty files map to an empty span.
  static StatusOr<std::shared_ptr<MappedFile>> Open(const std::string& path);

  std::span<const uint8_t> data() const {
    return std::span<const uint8_t>(static_cast<const uint8_t*>(addr_),
                                    size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, void* addr, size_t size)
      : path_(std::move(path)), addr_(addr), size_(size) {}

  std::string path_;
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_MMAP_FILE_H_
