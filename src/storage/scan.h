// SegmentScan: the cold read path. A Volcano leaf operator over a
// SegmentedTable that consults each segment's zone map against the pushed-
// down predicate before decoding anything — non-overlapping time ranges,
// out-of-bounds numeric ranges and sub-threshold probability segments are
// skipped whole. Matching segments are batch-decoded column-to-row one
// segment at a time (bounded memory), and NextRef serves rows out of that
// buffer without further copies.
//
// Pruning is conservative: a segment is skipped only when its zone map
// proves no row can satisfy the predicate, so the (still applied)
// downstream filter sees exactly the rows it would have seen without
// pruning.
#ifndef TPDB_STORAGE_SCAN_H_
#define TPDB_STORAGE_SCAN_H_

#include <limits>
#include <string>
#include <vector>

#include "engine/explain.h"
#include "engine/operator.h"
#include "engine/vector/batch_operator.h"
#include "storage/segment.h"

namespace tpdb::storage {

/// A conjunctive per-column range: lo {<,<=} value {<,<=} hi.
struct ScanRange {
  double lo = -std::numeric_limits<double>::infinity();
  bool lo_strict = false;
  double hi = std::numeric_limits<double>::infinity();
  bool hi_strict = false;
};

/// The fragment of a query predicate a scan can prune on: conjunctive
/// numeric column ranges (including _ts/_te time bounds) plus a lineage
/// probability threshold. Anything the planner cannot express here simply
/// stays out — the scan then prunes less but never wrongly. Callers
/// setting `min_prob` directly must hold the invariant the planner
/// enforces: the manager's probability_epoch() still equals the
/// SegmentedTable's (zone-map max_prob is snapshot-time data).
struct ScanPredicate {
  std::vector<std::pair<std::string, ScanRange>> column_ranges;
  double min_prob = 0.0;
  bool min_prob_strict = false;

  /// Tightens the range of `column` with `value` as a new lower bound.
  void AddLowerBound(const std::string& column, double value, bool strict);
  /// Tightens the range of `column` with `value` as a new upper bound.
  void AddUpperBound(const std::string& column, double value, bool strict);
  /// Equality pins both bounds.
  void AddEquals(const std::string& column, double value);
  /// Keeps the strongest probability threshold.
  void AddMinProb(double min_prob, bool strict);

  bool Empty() const {
    return column_ranges.empty() && min_prob <= 0.0 && !min_prob_strict;
  }

  /// "key in [3, 7) AND prob >= 0.5" rendering for Explain's physical tree.
  std::string ToString() const;

 private:
  ScanRange* RangeOf(const std::string& column);
};

/// True iff `segment`'s zone map admits at least one row satisfying
/// `predicate` (column names resolved against `schema`).
bool SegmentMayMatch(const Segment& segment, const Schema& schema,
                     const ScanPredicate& predicate);

/// Compressed-domain pruning: true iff every packed int64 chunk named by
/// `predicate` admits at least one row, judged by the exact min/max in the
/// chunk's block header — sharper than the zone map's ulp-widened double
/// bounds (e.g. `x > exact_max` prunes here but not there), and still
/// without decompressing a single value.
bool CompressedChunksMayMatch(const Segment& segment, const Schema& schema,
                              const ScanPredicate& predicate);

/// Zone-map cardinality estimate: total rows of the segments `predicate`
/// cannot prune (zone map and compressed-domain checks both applied). The
/// mode-selection pass costs cold scans with this (an upper bound on the
/// rows the scan will decode — pruning is conservative, the per-row filter
/// still runs above).
size_t EstimateScanRows(const SegmentedTable& table,
                        const ScanPredicate& predicate);

/// Relative per-row decode cost of the segments `predicate` leaves alive:
/// 1.0 for fully plain (zero-copy) segments, growing with the fraction of
/// their bytes that must be decompressed first. The mode-selection pass
/// multiplies this into its cold-scan cost units.
double EstimateDecodeFactor(const SegmentedTable& table,
                            const ScanPredicate& predicate);

/// Leaf operator over a SegmentedTable. The table (and its mapping) must
/// outlive the operator; `stats` (optional) accumulates scan counters.
class SegmentScan final : public Operator {
 public:
  SegmentScan(const SegmentedTable* table, ScanPredicate predicate,
              StorageStats* stats = nullptr);
  /// Scans only segments [seg_begin, seg_end) — the unit the planner's
  /// probability top-k path visits in zone-map upper-bound order.
  SegmentScan(const SegmentedTable* table, ScanPredicate predicate,
              size_t seg_begin, size_t seg_end, StorageStats* stats = nullptr);

  const Schema& schema() const override { return table_->schema(); }
  void Open() override;
  bool Next(Row* out) override;
  const Row* NextRef() override;
  void Close() override;

 private:
  /// Prunes/decodes segments until one yields rows or input is exhausted.
  bool FillBuffer();

  const SegmentedTable* table_;
  ScanPredicate predicate_;
  size_t seg_begin_;
  size_t seg_end_;
  StorageStats* stats_;
  size_t next_segment_ = 0;
  size_t buffer_pos_ = 0;
  std::vector<Row> buffer_;
  ChunkStorage storage_;  ///< scratch for decompressing packed chunks
};

/// Chunk-level batch scan: the vectorized cold read path. Serves
/// ColumnBatches of up to vec::kBatchRows rows whose column vectors view
/// the mapped segment chunks directly — no per-row materialization at all;
/// downstream batch filters only narrow the selection vector. Zone-map
/// pruning composes unchanged (the same SegmentMayMatch check as the row
/// scan, against the same pushed-down predicate).
///
/// The segment-range form scans only segments [seg_begin, seg_end) — the
/// morsel unit of the parallel batch driver: concatenating per-range
/// outputs in range order reproduces the full scan's row order exactly.
class SegmentBatchScan final : public vec::BatchOperator {
 public:
  SegmentBatchScan(const SegmentedTable* table, ScanPredicate predicate,
                   StorageStats* stats = nullptr,
                   VectorStats* vstats = nullptr);
  SegmentBatchScan(const SegmentedTable* table, ScanPredicate predicate,
                   size_t seg_begin, size_t seg_end,
                   StorageStats* stats = nullptr,
                   VectorStats* vstats = nullptr);

  const Schema& schema() const override { return table_->schema(); }
  void Open() override;
  const vec::ColumnBatch* NextBatch() override;
  void Close() override {}

 private:
  const SegmentedTable* table_;
  ScanPredicate predicate_;
  size_t seg_begin_;
  size_t seg_end_;
  StorageStats* stats_;
  VectorStats* vstats_;
  size_t segment_ = 0;  ///< current segment index
  size_t row_ = 0;      ///< next row within the current segment
  vec::ColumnBatch batch_;
  /// Chunk views of the current segment, packed chunks decompressed into
  /// `storage_` on the segment's first visit; batches view these until the
  /// segment is exhausted.
  std::vector<const ColumnChunk*> views_;
  ChunkStorage storage_;
};

}  // namespace tpdb::storage

#endif  // TPDB_STORAGE_SCAN_H_
