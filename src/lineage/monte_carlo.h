// Monte-Carlo probability estimation for lineage formulas.
//
// Exact probability computation (probability.h) is #P-hard in general and
// falls back to Shannon expansion on entangled formulas; for lineages of
// deeply nested queries a sampling estimate can be the only tractable
// option. This estimator implements possible-world sampling — fixed-budget
// and adaptive-to-precision — with standard-error reporting so callers can
// decide when an estimate is good enough.
#ifndef TPDB_LINEAGE_MONTE_CARLO_H_
#define TPDB_LINEAGE_MONTE_CARLO_H_

#include <cstdint>

#include "common/random.h"
#include "lineage/lineage.h"

namespace tpdb {

/// Standard normal quantile: the z with Φ(z) = p (0 < p < 1). Used to turn
/// an `APPROX(eps, delta)` contract into a target standard error eps/z with
/// z = NormalQuantile(1 - delta/2).
double NormalQuantile(double p);

/// Hoeffding bound: smallest n with P(|p̂ − p| > eps) ≤ delta for the mean
/// of n Bernoulli samples — a distribution-free cap on the adaptive
/// sampler, so the (eps, delta) guarantee holds even when the CLT stopping
/// rule is optimistic (p near 0 or 1).
uint64_t HoeffdingSamples(double eps, double delta);

/// Mixes a base seed with a lineage node id into a per-formula seed, so
/// sampling a relation is deterministic under any parallel schedule (the
/// estimate of a tuple does not depend on which worker draws it).
uint64_t DeriveSeed(uint64_t base_seed, uint32_t lineage_id);

/// Result of a sampling run.
struct MonteCarloEstimate {
  double probability = 0.0;
  /// Standard error of the estimate (σ/√n for the naive sampler).
  double standard_error = 0.0;
  uint64_t samples = 0;
};

/// Samples possible worlds over the formula's variables.
class MonteCarloEngine {
 public:
  /// `manager` must outlive the engine.
  MonteCarloEngine(LineageManager* manager, uint64_t seed = 42)
      : mgr_(manager), rng_(seed) {}

  /// Naive estimator: draws `samples` independent worlds (only over the
  /// variables occurring in `r`) and returns the hit frequency.
  MonteCarloEstimate Estimate(LineageRef r, uint64_t samples);

  /// Adaptive estimator: keeps sampling until the standard error drops
  /// below `target_stderr` (or `max_samples` is reached).
  MonteCarloEstimate EstimateToPrecision(LineageRef r, double target_stderr,
                                         uint64_t max_samples = 1 << 22);

 private:
  LineageManager* mgr_;
  Random rng_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_MONTE_CARLO_H_
