#include "lineage/monte_carlo.h"

#include <cmath>

namespace tpdb {

MonteCarloEstimate MonteCarloEngine::Estimate(LineageRef r,
                                              uint64_t samples) {
  TPDB_CHECK(!r.is_null());
  TPDB_CHECK_GT(samples, 0u);
  const std::vector<VarId> vars = mgr_->Variables(r);
  std::vector<bool> world(mgr_->num_variables(), false);
  uint64_t hits = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    for (const VarId v : vars)
      world[v] = rng_.Bernoulli(mgr_->VariableProbability(v));
    if (mgr_->Evaluate(r, world)) ++hits;
  }
  MonteCarloEstimate out;
  out.samples = samples;
  out.probability = static_cast<double>(hits) / static_cast<double>(samples);
  // Bernoulli standard error; clamp away from zero so callers comparing
  // against a target precision terminate even on degenerate formulas.
  const double p = out.probability;
  out.standard_error =
      std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                static_cast<double>(samples));
  return out;
}

MonteCarloEstimate MonteCarloEngine::EstimateToPrecision(
    LineageRef r, double target_stderr, uint64_t max_samples) {
  TPDB_CHECK_GT(target_stderr, 0.0);
  uint64_t total = 0;
  uint64_t hits = 0;
  uint64_t batch = 1024;
  const std::vector<VarId> vars = mgr_->Variables(r);
  std::vector<bool> world(mgr_->num_variables(), false);
  while (true) {
    for (uint64_t i = 0; i < batch; ++i) {
      for (const VarId v : vars)
        world[v] = rng_.Bernoulli(mgr_->VariableProbability(v));
      if (mgr_->Evaluate(r, world)) ++hits;
    }
    total += batch;
    const double p = static_cast<double>(hits) / static_cast<double>(total);
    const double se = std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                static_cast<double>(total));
    if (se <= target_stderr || total >= max_samples) {
      MonteCarloEstimate out;
      out.probability = p;
      out.standard_error = se;
      out.samples = total;
      return out;
    }
    batch = std::min<uint64_t>(batch * 2, max_samples - total);
  }
}

}  // namespace tpdb
