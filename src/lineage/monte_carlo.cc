#include "lineage/monte_carlo.h"

#include <cmath>

namespace tpdb {

double NormalQuantile(double p) {
  TPDB_CHECK(p > 0.0 && p < 1.0) << "quantile argument out of range: " << p;
  // Bisection on Φ(z) = 1 - erfc(z/√2)/2. Monotone and well-conditioned;
  // ~60 iterations reach full double precision, and this runs once per
  // query, not per sample.
  double lo = -40.0;
  double hi = 40.0;
  for (int i = 0; i < 200 && hi - lo > 1e-12; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double cdf = 1.0 - 0.5 * std::erfc(mid / std::sqrt(2.0));
    if (cdf < p)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

uint64_t HoeffdingSamples(double eps, double delta) {
  TPDB_CHECK(eps > 0.0 && eps < 1.0);
  TPDB_CHECK(delta > 0.0 && delta < 1.0);
  const double n = std::log(2.0 / delta) / (2.0 * eps * eps);
  return static_cast<uint64_t>(std::ceil(n));
}

uint64_t DeriveSeed(uint64_t base_seed, uint32_t lineage_id) {
  // splitmix64 finalizer over the combined value: adjacent lineage ids must
  // not produce correlated streams.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (lineage_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

MonteCarloEstimate MonteCarloEngine::Estimate(LineageRef r,
                                              uint64_t samples) {
  TPDB_CHECK(!r.is_null());
  TPDB_CHECK_GT(samples, 0u);
  const std::vector<VarId> vars = mgr_->Variables(r);
  std::vector<bool> world(mgr_->num_variables(), false);
  uint64_t hits = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    for (const VarId v : vars)
      world[v] = rng_.Bernoulli(mgr_->VariableProbability(v));
    if (mgr_->Evaluate(r, world)) ++hits;
  }
  MonteCarloEstimate out;
  out.samples = samples;
  out.probability = static_cast<double>(hits) / static_cast<double>(samples);
  // Bernoulli standard error; clamp away from zero so callers comparing
  // against a target precision terminate even on degenerate formulas.
  const double p = out.probability;
  out.standard_error =
      std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                static_cast<double>(samples));
  return out;
}

MonteCarloEstimate MonteCarloEngine::EstimateToPrecision(
    LineageRef r, double target_stderr, uint64_t max_samples) {
  TPDB_CHECK_GT(target_stderr, 0.0);
  uint64_t total = 0;
  uint64_t hits = 0;
  uint64_t batch = 1024;
  const std::vector<VarId> vars = mgr_->Variables(r);
  std::vector<bool> world(mgr_->num_variables(), false);
  while (true) {
    for (uint64_t i = 0; i < batch; ++i) {
      for (const VarId v : vars)
        world[v] = rng_.Bernoulli(mgr_->VariableProbability(v));
      if (mgr_->Evaluate(r, world)) ++hits;
    }
    total += batch;
    const double p = static_cast<double>(hits) / static_cast<double>(total);
    const double se = std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                                static_cast<double>(total));
    if (se <= target_stderr || total >= max_samples) {
      MonteCarloEstimate out;
      out.probability = p;
      out.standard_error = se;
      out.samples = total;
      return out;
    }
    batch = std::min<uint64_t>(batch * 2, max_samples - total);
  }
}

}  // namespace tpdb
