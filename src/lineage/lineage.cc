#include "lineage/lineage.h"

#include <algorithm>
#include <memory>

namespace tpdb {

LineageManager::LineageManager() {
  true_ = Intern(Node{LineageKind::kTrue, 0, 0});
  false_ = Intern(Node{LineageKind::kFalse, 0, 0});
}

LineageManager::~LineageManager() {
  const size_t n = num_nodes_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i)
    delete var_sets_[i].load(std::memory_order_acquire);
}

VarId LineageManager::RegisterVariable(double prob, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  TPDB_CHECK(prob >= 0.0 && prob <= 1.0) << "probability out of range: " << prob;
  const VarId id =
      static_cast<VarId>(num_vars_.load(std::memory_order_relaxed));
  var_probs_.Slot(id).store(prob, std::memory_order_relaxed);
  if (name.empty()) name = "x" + std::to_string(id);
  TPDB_CHECK(var_by_name_.emplace(name, id).second)
      << "duplicate variable name: " << name;
  var_names_.push_back(std::move(name));
  // Publish after the slot write so lock-free readers that observe the new
  // count also observe the probability.
  num_vars_.store(id + 1, std::memory_order_release);
  return id;
}

double LineageManager::VariableProbability(VarId v) const {
  TPDB_CHECK_LT(v, num_vars_.load(std::memory_order_acquire));
  return var_probs_[v].load(std::memory_order_acquire);
}

void LineageManager::SetVariableProbability(VarId v, double prob) {
  TPDB_CHECK_LT(v, num_vars_.load(std::memory_order_acquire));
  TPDB_CHECK(prob >= 0.0 && prob <= 1.0) << "probability out of range: " << prob;
  var_probs_[v].store(prob, std::memory_order_release);
  // Bump the epoch *before* clearing the shards: an evaluation that started
  // under the old epoch can no longer repopulate a shard after its clear
  // (StoreProbability re-checks the epoch under the shard lock), and a store
  // that slips in just before the clear is wiped by it.
  prob_epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : prob_shards_) {
    std::unique_lock lock(shard.mu);
    shard.map.clear();
  }
}

std::vector<double> LineageManager::SnapshotVariableProbabilities() const {
  const size_t n = num_vars_.load(std::memory_order_acquire);
  std::vector<double> probs(n);
  for (size_t v = 0; v < n; ++v)
    probs[v] = var_probs_[v].load(std::memory_order_acquire);
  return probs;
}

const std::string& LineageManager::VariableName(VarId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  TPDB_CHECK_LT(v, var_names_.size());
  return var_names_[v];
}

StatusOr<VarId> LineageManager::FindVariable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = var_by_name_.find(name);
  if (it == var_by_name_.end())
    return Status::NotFound("no variable named " + name);
  return it->second;
}

LineageRef LineageManager::Intern(Node n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = intern_.find(n);
  if (it != intern_.end()) return LineageRef{it->second};
  const uint32_t id =
      static_cast<uint32_t>(num_nodes_.load(std::memory_order_relaxed));
  TPDB_CHECK_LT(id, LineageRef::kNullId) << "lineage arena exhausted";
  nodes_.Slot(id) = n;
  // Force the matching var_sets_ chunk into existence while we hold the
  // writer lock, so Variables() can read its slot without one.
  var_sets_.Slot(id).store(nullptr, std::memory_order_relaxed);
  intern_.emplace(n, id);
  num_nodes_.store(id + 1, std::memory_order_release);
  return LineageRef{id};
}

LineageRef LineageManager::Var(VarId v) {
  TPDB_CHECK_LT(v, num_vars_.load(std::memory_order_acquire))
      << "unregistered variable";
  return Intern(Node{LineageKind::kVar, v, 0});
}

LineageRef LineageManager::Not(LineageRef a) {
  switch (KindOf(a)) {
    case LineageKind::kTrue:
      return false_;
    case LineageKind::kFalse:
      return true_;
    case LineageKind::kNot:
      return LineageRef{node(a).a};  // double negation
    default:
      return Intern(Node{LineageKind::kNot, a.id, 0});
  }
}

LineageRef LineageManager::And(LineageRef a, LineageRef b) {
  if (KindOf(a) == LineageKind::kFalse || KindOf(b) == LineageKind::kFalse)
    return false_;
  if (KindOf(a) == LineageKind::kTrue) return b;
  if (KindOf(b) == LineageKind::kTrue) return a;
  if (a == b) return a;
  if (b < a) std::swap(a, b);
  return Intern(Node{LineageKind::kAnd, a.id, b.id});
}

LineageRef LineageManager::Or(LineageRef a, LineageRef b) {
  if (KindOf(a) == LineageKind::kTrue || KindOf(b) == LineageKind::kTrue)
    return true_;
  if (KindOf(a) == LineageKind::kFalse) return b;
  if (KindOf(b) == LineageKind::kFalse) return a;
  if (a == b) return a;
  if (b < a) std::swap(a, b);
  return Intern(Node{LineageKind::kOr, a.id, b.id});
}

LineageRef LineageManager::AndAll(std::span<const LineageRef> operands) {
  std::vector<LineageRef> ops(operands.begin(), operands.end());
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  // Right fold over the sorted operands: deterministic (canonical identity
  // for equal operand sets) and renders in operand order, since each
  // composite node receives the largest id and stays on the right.
  LineageRef acc = true_;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) acc = And(*it, acc);
  return acc;
}

LineageRef LineageManager::OrAll(std::span<const LineageRef> operands) {
  std::vector<LineageRef> ops(operands.begin(), operands.end());
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  LineageRef acc = false_;
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) acc = Or(*it, acc);
  return acc;
}

LineageRef LineageManager::Left(LineageRef r) const {
  const Node& n = node(r);
  TPDB_CHECK(n.kind == LineageKind::kNot || n.kind == LineageKind::kAnd ||
             n.kind == LineageKind::kOr);
  return LineageRef{n.a};
}

LineageRef LineageManager::Right(LineageRef r) const {
  const Node& n = node(r);
  TPDB_CHECK(n.kind == LineageKind::kAnd || n.kind == LineageKind::kOr);
  return LineageRef{n.b};
}

VarId LineageManager::VarOf(LineageRef r) const {
  const Node& n = node(r);
  TPDB_CHECK(n.kind == LineageKind::kVar);
  return n.a;
}

const std::vector<VarId>& LineageManager::Variables(LineageRef r) {
  const Node& n = node(r);  // bounds-checks r before the slot access
  std::atomic<const std::vector<VarId>*>& slot = var_sets_[r.id];
  if (const std::vector<VarId>* hit = slot.load(std::memory_order_acquire))
    return *hit;
  auto fresh = std::make_unique<std::vector<VarId>>();
  switch (n.kind) {
    case LineageKind::kTrue:
    case LineageKind::kFalse:
      break;  // empty
    case LineageKind::kVar:
      fresh->push_back(n.a);
      break;
    case LineageKind::kNot:
      *fresh = Variables(LineageRef{n.a});
      break;
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      const std::vector<VarId>& va = Variables(LineageRef{n.a});
      const std::vector<VarId>& vb = Variables(LineageRef{n.b});
      fresh->resize(va.size() + vb.size());
      auto end = std::set_union(va.begin(), va.end(), vb.begin(), vb.end(),
                                fresh->begin());
      fresh->erase(end, fresh->end());
      break;
    }
  }
  const std::vector<VarId>* expected = nullptr;
  if (slot.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *fresh.release();
  }
  // Another thread published the same set first; ours is redundant.
  return *expected;
}

bool LineageManager::Evaluate(LineageRef r,
                              const std::vector<bool>& assignment) const {
  const Node& n = node(r);
  switch (n.kind) {
    case LineageKind::kTrue:
      return true;
    case LineageKind::kFalse:
      return false;
    case LineageKind::kVar:
      TPDB_CHECK_LT(n.a, assignment.size());
      return assignment[n.a];
    case LineageKind::kNot:
      return !Evaluate(LineageRef{n.a}, assignment);
    case LineageKind::kAnd:
      return Evaluate(LineageRef{n.a}, assignment) &&
             Evaluate(LineageRef{n.b}, assignment);
    case LineageKind::kOr:
      return Evaluate(LineageRef{n.a}, assignment) ||
             Evaluate(LineageRef{n.b}, assignment);
  }
  return false;
}

LineageRef LineageManager::Restrict(LineageRef r, VarId v, bool value) {
  std::unordered_map<uint32_t, LineageRef> memo;
  return RestrictRec(r, v, value, &memo);
}

LineageRef LineageManager::RestrictRec(
    LineageRef r, VarId v, bool value,
    std::unordered_map<uint32_t, LineageRef>* memo) {
  auto it = memo->find(r.id);
  if (it != memo->end()) return it->second;
  const Node& n = node(r);
  LineageRef result = r;
  switch (n.kind) {
    case LineageKind::kTrue:
    case LineageKind::kFalse:
      break;
    case LineageKind::kVar:
      if (n.a == v) result = value ? true_ : false_;
      break;
    case LineageKind::kNot:
      result = Not(RestrictRec(LineageRef{n.a}, v, value, memo));
      break;
    case LineageKind::kAnd:
      result = And(RestrictRec(LineageRef{n.a}, v, value, memo),
                   RestrictRec(LineageRef{n.b}, v, value, memo));
      break;
    case LineageKind::kOr:
      result = Or(RestrictRec(LineageRef{n.a}, v, value, memo),
                  RestrictRec(LineageRef{n.b}, v, value, memo));
      break;
  }
  memo->emplace(r.id, result);
  return result;
}

bool LineageManager::LookupProbability(LineageRef r, double* out) const {
  const ProbShard& shard = prob_shards_[r.id % kProbShards];
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(r.id);
  if (it == shard.map.end()) return false;
  *out = it->second;
  return true;
}

void LineageManager::StoreProbability(LineageRef r, double p,
                                      uint64_t epoch) {
  ProbShard& shard = prob_shards_[r.id % kProbShards];
  std::unique_lock lock(shard.mu);
  // A concurrent SetVariableProbability invalidated this computation: its
  // result may mix old and new marginals, so it must not enter the cache.
  if (epoch != prob_epoch_.load(std::memory_order_acquire)) return;
  shard.map.emplace(r.id, p);
}

bool LineageManager::Equivalent(LineageRef a, LineageRef b) {
  if (a == b) return true;
  const std::vector<VarId>& va = Variables(a);
  const std::vector<VarId>& vb = Variables(b);
  std::vector<VarId> vars(va.size() + vb.size());
  auto end =
      std::set_union(va.begin(), va.end(), vb.begin(), vb.end(), vars.begin());
  vars.erase(end, vars.end());
  TPDB_CHECK_LE(vars.size(), 24u) << "Equivalent: too many variables";
  std::vector<bool> assignment(num_variables(), false);
  const uint64_t limit = 1ull << vars.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    for (size_t i = 0; i < vars.size(); ++i)
      assignment[vars[i]] = (mask >> i) & 1;
    if (Evaluate(a, assignment) != Evaluate(b, assignment)) return false;
  }
  return true;
}

}  // namespace tpdb
