#include "lineage/compile/prob_eval.h"

#include <algorithm>

#include "lineage/probability.h"

namespace tpdb {

std::string ProbMethodsLabel(uint8_t mask) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (mask & kProbMethodExact) append("exact");
  if (mask & kProbMethodCompiled) append("compiled");
  if (mask & kProbMethodMonteCarlo) append("mc");
  return out;
}

ProbabilityEvaluator::ProbabilityEvaluator(LineageManager* manager,
                                           ProbEvalOptions options)
    : mgr_(manager),
      opts_(options),
      compiler_(manager, CompileOptions{.max_circuit_nodes =
                                            options.max_circuit_nodes}) {}

bool ProbabilityEvaluator::Decomposable(LineageRef r) {
  auto it = decomposable_.find(r.id);
  if (it != decomposable_.end()) return it->second;
  bool result = true;
  switch (mgr_->KindOf(r)) {
    case LineageKind::kTrue:
    case LineageKind::kFalse:
    case LineageKind::kVar:
      break;
    case LineageKind::kNot:
      result = Decomposable(mgr_->Left(r));
      break;
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      const LineageRef a = mgr_->Left(r);
      const LineageRef b = mgr_->Right(r);
      // Reuse the compiler's merge-intersection via Variables(); sharing
      // anywhere in the subtree forces Shannon work in the exact engine.
      const std::vector<VarId>& va = mgr_->Variables(a);
      const std::vector<VarId>& vb = mgr_->Variables(b);
      size_t i = 0;
      size_t j = 0;
      bool shares = false;
      while (i < va.size() && j < vb.size()) {
        if (va[i] == vb[j]) {
          shares = true;
          break;
        }
        if (va[i] < vb[j])
          ++i;
        else
          ++j;
      }
      result = !shares && Decomposable(a) && Decomposable(b);
      break;
    }
  }
  decomposable_.emplace(r.id, result);
  return result;
}

double ProbabilityEvaluator::Probability(LineageRef r) {
  TPDB_CHECK(!r.is_null()) << "probability of null lineage";
  if (opts_.approx_eps > 0.0) {
    methods_ |= kProbMethodMonteCarlo;
    return SampledProbability(r, opts_.approx_eps, opts_.approx_delta);
  }
  double cached = 0.0;
  if (mgr_->LookupProbability(r, &cached)) {
    // Memoized exact value (stored by either exact or compiled runs).
    methods_ |= kProbMethodExact;
    return cached;
  }
  if (Decomposable(r)) {
    methods_ |= kProbMethodExact;
    return ProbabilityEngine(mgr_).Probability(r);
  }
  return CompiledProbability(r);
}

double ProbabilityEvaluator::CompiledProbability(LineageRef r) {
  // Epoch before marginals: a SetVariableProbability racing with this
  // evaluation bumps the epoch first, so the (possibly mixed) result is
  // dropped by StoreProbability instead of cached.
  const uint64_t epoch = mgr_->probability_epoch();
  auto root = compiler_.Compile(r);
  if (!root.ok()) {
    // Circuit budget exhausted: sample instead. Never cached — it is an
    // estimate, not the exact value the memo promises.
    methods_ |= kProbMethodMonteCarlo;
    return SampledProbability(r, opts_.fallback_eps, opts_.fallback_delta);
  }
  methods_ |= kProbMethodCompiled;
  if (epoch != values_epoch_ || values_from_ == 0) {
    var_probs_ = mgr_->SnapshotVariableProbabilities();
    values_epoch_ = epoch;
    values_from_ = 0;
  } else {
    // Marginals unchanged; pick up variables registered since the last pass.
    const size_t n = mgr_->num_variables();
    for (size_t v = var_probs_.size(); v < n; ++v)
      var_probs_.push_back(mgr_->VariableProbability(static_cast<VarId>(v)));
  }
  compiler_.circuit().Evaluate(var_probs_, &values_, values_from_);
  values_from_ = compiler_.circuit().size();
  const double p = values_[*root];
  mgr_->StoreProbability(r, p, epoch);
  return p;
}

double ProbabilityEvaluator::SampledProbability(LineageRef r, double eps,
                                                double delta) {
  const double z = NormalQuantile(1.0 - delta / 2.0);
  MonteCarloEngine mc(mgr_, DeriveSeed(opts_.mc_seed, r.id));
  return mc
      .EstimateToPrecision(r, /*target_stderr=*/eps / z,
                           /*max_samples=*/HoeffdingSamples(eps, delta))
      .probability;
}

}  // namespace tpdb
