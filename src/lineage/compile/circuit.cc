#include "lineage/compile/circuit.h"

#include <cstdio>

namespace tpdb {

uint32_t Circuit::Add(CircuitNode n) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(n);
  return id;
}

uint32_t Circuit::AddConst(double value) {
  return Add(CircuitNode{.op = CircuitOp::kConst, .c = value});
}

uint32_t Circuit::AddVar(VarId v) {
  return Add(CircuitNode{.op = CircuitOp::kVar, .var = v});
}

uint32_t Circuit::AddNot(uint32_t a) {
  TPDB_CHECK_LT(a, nodes_.size());
  return Add(CircuitNode{.op = CircuitOp::kNot, .a = a});
}

uint32_t Circuit::AddAnd(uint32_t a, uint32_t b) {
  TPDB_CHECK_LT(a, nodes_.size());
  TPDB_CHECK_LT(b, nodes_.size());
  return Add(CircuitNode{.op = CircuitOp::kAnd, .a = a, .b = b});
}

uint32_t Circuit::AddOr(uint32_t a, uint32_t b) {
  TPDB_CHECK_LT(a, nodes_.size());
  TPDB_CHECK_LT(b, nodes_.size());
  return Add(CircuitNode{.op = CircuitOp::kOr, .a = a, .b = b});
}

uint32_t Circuit::AddDecision(VarId pivot, uint32_t hi, uint32_t lo) {
  TPDB_CHECK_LT(hi, nodes_.size());
  TPDB_CHECK_LT(lo, nodes_.size());
  return Add(
      CircuitNode{.op = CircuitOp::kDecision, .var = pivot, .a = hi, .b = lo});
}

void Circuit::Evaluate(std::span<const double> var_probs,
                       std::vector<double>* values, size_t from) const {
  values->resize(nodes_.size());
  double* v = values->data();
  for (size_t i = from; i < nodes_.size(); ++i) {
    const CircuitNode& n = nodes_[i];
    switch (n.op) {
      case CircuitOp::kConst:
        v[i] = n.c;
        break;
      case CircuitOp::kVar:
        TPDB_CHECK_LT(n.var, var_probs.size());
        v[i] = var_probs[n.var];
        break;
      case CircuitOp::kNot:
        v[i] = 1.0 - v[n.a];
        break;
      case CircuitOp::kAnd:
        v[i] = v[n.a] * v[n.b];
        break;
      case CircuitOp::kOr:
        v[i] = 1.0 - (1.0 - v[n.a]) * (1.0 - v[n.b]);
        break;
      case CircuitOp::kDecision: {
        TPDB_CHECK_LT(n.var, var_probs.size());
        const double pv = var_probs[n.var];
        v[i] = pv * v[n.a] + (1.0 - pv) * v[n.b];
        break;
      }
    }
  }
}

std::string Circuit::ToString() const {
  std::string out;
  char buf[96];
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const CircuitNode& n = nodes_[i];
    switch (n.op) {
      case CircuitOp::kConst:
        std::snprintf(buf, sizeof(buf), "n%zu = const %g\n", i, n.c);
        break;
      case CircuitOp::kVar:
        std::snprintf(buf, sizeof(buf), "n%zu = var x%u\n", i, n.var);
        break;
      case CircuitOp::kNot:
        std::snprintf(buf, sizeof(buf), "n%zu = not n%u\n", i, n.a);
        break;
      case CircuitOp::kAnd:
        std::snprintf(buf, sizeof(buf), "n%zu = and n%u n%u\n", i, n.a, n.b);
        break;
      case CircuitOp::kOr:
        std::snprintf(buf, sizeof(buf), "n%zu = or n%u n%u\n", i, n.a, n.b);
        break;
      case CircuitOp::kDecision:
        std::snprintf(buf, sizeof(buf), "n%zu = decide x%u ? n%u : n%u\n", i,
                      n.var, n.a, n.b);
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace tpdb
