#include "lineage/compile/compile.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace tpdb {

namespace {

/// Knowledge-compilation metrics: circuits built, circuit nodes emitted,
/// and cross-tuple subcircuit reuse via the arena-keyed memo.
struct CompileMetrics {
  obs::Counter* circuits = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_compile_circuits_total", "prob",
      "Lineage formulas compiled to arithmetic circuits.");
  obs::Counter* nodes = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_compile_nodes_total", "prob",
      "Arithmetic-circuit nodes emitted by the lineage compiler.");
  obs::Counter* reuse_hits = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_compile_reuse_hits_total", "prob",
      "Subformulas answered from the compile memo instead of recompiled.");
  obs::Histogram* latency = obs::MetricsRegistry::Default().histogram(
      "tpdb_prob_compile_seconds", "prob",
      "Latency of compiling one lineage formula.");

  static const CompileMetrics& Get() {
    static const CompileMetrics m;
    return m;
  }
};

}  // namespace

bool LineageCompiler::SharesVariables(LineageRef a, LineageRef b) {
  const std::vector<VarId>& va = mgr_->Variables(a);
  const std::vector<VarId>& vb = mgr_->Variables(b);
  size_t i = 0;
  size_t j = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i] == vb[j]) return true;
    if (va[i] < vb[j])
      ++i;
    else
      ++j;
  }
  return false;
}

VarId LineageCompiler::ChoosePivot(LineageRef r) {
  // Flatten the same-kind spine (AndAll/OrAll build right-leaning chains)
  // into its operand list.
  const LineageKind kind = mgr_->KindOf(r);
  std::vector<LineageRef> operands;
  LineageRef cur = r;
  while (mgr_->KindOf(cur) == kind) {
    operands.push_back(mgr_->Left(cur));
    cur = mgr_->Right(cur);
  }
  operands.push_back(cur);

  // A variable shared by the most operands disentangles the most structure
  // per expansion. Operand variable sets are sorted, so a merge-count over
  // the concatenation finds the winner in O(total vars).
  std::vector<VarId> all;
  for (LineageRef op : operands) {
    const std::vector<VarId>& vs = mgr_->Variables(op);
    all.insert(all.end(), vs.begin(), vs.end());
  }
  std::sort(all.begin(), all.end());
  VarId best = all[0];
  size_t best_count = 0;
  for (size_t i = 0; i < all.size();) {
    size_t j = i;
    while (j < all.size() && all[j] == all[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = all[i];
    }
    i = j;
  }
  // The caller only picks pivots for variable-sharing connectives, so some
  // variable occurs in ≥2 operands of the spine — or, if the sharing is
  // nested deeper, falling back to any variable is still a valid (if less
  // targeted) Shannon pivot.
  return best;
}

StatusOr<uint32_t> LineageCompiler::Compile(LineageRef r) {
  TPDB_CHECK(!r.is_null()) << "compile of null lineage";
  obs::ScopedLatencyTimer timer(CompileMetrics::Get().latency);
  const size_t nodes_before = circuit_.size();
  auto root = CompileRec(r);
  CompileMetrics::Get().nodes->Add(
      static_cast<uint64_t>(circuit_.size() - nodes_before));
  if (root.ok()) {
    ++stats_.compiled_roots;
    CompileMetrics::Get().circuits->Add();
  }
  return root;
}

StatusOr<uint32_t> LineageCompiler::CompileRec(LineageRef r) {
  auto it = memo_.find(r.id);
  if (it != memo_.end()) {
    ++stats_.memo_hits;
    CompileMetrics::Get().reuse_hits->Add();
    return it->second;
  }
  if (circuit_.size() >= opts_.max_circuit_nodes) {
    return Status::ResourceExhausted(
        "compiled circuit exceeds node budget (" +
        std::to_string(opts_.max_circuit_nodes) + ")");
  }

  uint32_t cid = 0;
  switch (mgr_->KindOf(r)) {
    case LineageKind::kTrue:
      cid = circuit_.AddConst(1.0);
      break;
    case LineageKind::kFalse:
      cid = circuit_.AddConst(0.0);
      break;
    case LineageKind::kVar:
      cid = circuit_.AddVar(mgr_->VarOf(r));
      break;
    case LineageKind::kNot: {
      auto a = CompileRec(mgr_->Left(r));
      if (!a.ok()) return a.status();
      cid = circuit_.AddNot(*a);
      break;
    }
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      const LineageRef a = mgr_->Left(r);
      const LineageRef b = mgr_->Right(r);
      if (!SharesVariables(a, b)) {
        auto ca = CompileRec(a);
        if (!ca.ok()) return ca.status();
        auto cb = CompileRec(b);
        if (!cb.ok()) return cb.status();
        cid = mgr_->KindOf(r) == LineageKind::kAnd ? circuit_.AddAnd(*ca, *cb)
                                                   : circuit_.AddOr(*ca, *cb);
      } else {
        // Shannon expansion. Restrict hash-conses the cofactors, so equal
        // cofactors across branches/tuples share one memo entry.
        const VarId pivot = ChoosePivot(r);
        const LineageRef hi = mgr_->Restrict(r, pivot, true);
        const LineageRef lo = mgr_->Restrict(r, pivot, false);
        auto chi = CompileRec(hi);
        if (!chi.ok()) return chi.status();
        auto clo = CompileRec(lo);
        if (!clo.ok()) return clo.status();
        ++stats_.decision_nodes;
        cid = circuit_.AddDecision(pivot, *chi, *clo);
      }
      break;
    }
  }
  memo_.emplace(r.id, cid);
  return cid;
}

}  // namespace tpdb
