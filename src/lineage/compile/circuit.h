// Arithmetic circuits compiled from lineage formulas (d-DNNF style).
//
// A circuit is a flat, topologically ordered array of nodes. The compiler
// (compile.h) only emits ∧/∨ nodes whose children mention disjoint variable
// sets (decomposability) and resolves every variable-sharing connective into
// a Shannon decision node, so each node's *value* under an evaluation pass
// is exactly the marginal probability of its subformula:
//
//   const c           -> c
//   var v             -> P(v)
//   not a             -> 1 - val(a)
//   and a b           -> val(a) * val(b)            (var-disjoint children)
//   or  a b           -> 1 - (1-val(a))(1-val(b))   (var-disjoint children)
//   decide v ? hi:lo  -> P(v)*val(hi) + (1-P(v))*val(lo)
//
// That makes evaluation a single lock-free linear pass over the array —
// re-runnable after SetVariableProbability without recompiling, and
// incrementally extensible: appending nodes never changes earlier values,
// so a caller can keep one values array and evaluate only the new suffix.
#ifndef TPDB_LINEAGE_COMPILE_CIRCUIT_H_
#define TPDB_LINEAGE_COMPILE_CIRCUIT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "lineage/lineage.h"

namespace tpdb {

enum class CircuitOp : uint8_t { kConst, kVar, kNot, kAnd, kOr, kDecision };

struct CircuitNode {
  CircuitOp op;
  uint32_t var = 0;  // kVar: variable id; kDecision: Shannon pivot
  uint32_t a = 0;    // kNot: child; kAnd/kOr: left; kDecision: hi cofactor
  uint32_t b = 0;    // kAnd/kOr: right; kDecision: lo cofactor
  double c = 0.0;    // kConst: value
};

/// Append-only arithmetic circuit. Node ids are array indices; children
/// always precede parents, so any prefix is a valid circuit.
class Circuit {
 public:
  uint32_t AddConst(double value);
  uint32_t AddVar(VarId v);
  uint32_t AddNot(uint32_t a);
  uint32_t AddAnd(uint32_t a, uint32_t b);
  uint32_t AddOr(uint32_t a, uint32_t b);
  uint32_t AddDecision(VarId pivot, uint32_t hi, uint32_t lo);

  size_t size() const { return nodes_.size(); }
  const CircuitNode& node(uint32_t id) const { return nodes_[id]; }

  /// Evaluates nodes [from, size()) into `values` (resized to size()),
  /// reading variable marginals from `var_probs` (indexed by VarId).
  /// Entries below `from` are reused as-is — pass 0 after marginals change,
  /// or the previous size() to evaluate only freshly appended nodes.
  /// Pure read pass over immutable data: safe to run concurrently from many
  /// threads, each with its own `values` buffer.
  void Evaluate(std::span<const double> var_probs, std::vector<double>* values,
                size_t from = 0) const;

  /// Debug rendering ("n3 = decide x2 ? n1 : n0" per line).
  std::string ToString() const;

 private:
  uint32_t Add(CircuitNode n);
  std::vector<CircuitNode> nodes_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_COMPILE_CIRCUIT_H_
