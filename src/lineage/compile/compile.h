// Knowledge compilation of lineage formulas into arithmetic circuits.
//
// The compiler walks the hash-consed lineage DAG bottom-up. Connectives
// whose children mention disjoint variable sets map directly onto circuit
// ∧/∨ nodes; a variable-sharing connective is resolved by Shannon expansion
// on a pivot chosen greedily from the most-entangled shared variable (a
// min-fill-style order over the flattened same-kind operand spine), with the
// two cofactors built through LineageManager::Restrict — which hash-conses
// them, so cofactors shared between tuples or between expansion branches
// land on the same arena node.
//
// The per-lineage-node memo is the point: it is keyed on arena node ids and
// kept *across* Compile() calls, so when a batch of tuples shares lineage
// suffixes (the common case for TP joins — PR-wide duplicate subformulas are
// interned once), each shared subformula compiles exactly once and later
// tuples just wire its circuit id. Compilation cost then scales with the
// number of *distinct* subformulas in the batch, not with ∑ formula sizes.
//
// Compilation is budgeted: once the circuit grows past
// CompileOptions::max_circuit_nodes, Compile returns ResourceExhausted and
// the caller falls back to sampling (see prob_eval.h).
#ifndef TPDB_LINEAGE_COMPILE_COMPILE_H_
#define TPDB_LINEAGE_COMPILE_COMPILE_H_

#include <cstdint>
#include <unordered_map>

#include "common/status.h"
#include "lineage/compile/circuit.h"
#include "lineage/lineage.h"

namespace tpdb {

struct CompileOptions {
  /// Hard cap on circuit size; exceeding it aborts the compilation with
  /// ResourceExhausted (caller falls back to Monte Carlo).
  size_t max_circuit_nodes = size_t{1} << 20;
};

struct CompileStats {
  uint64_t compiled_roots = 0;   // successful Compile() calls
  uint64_t memo_hits = 0;        // subformulas reused instead of recompiled
  uint64_t decision_nodes = 0;   // Shannon expansions materialized
};

/// Compiles lineage formulas of one arena into a single shared circuit.
/// Not thread-safe; use one compiler per evaluation thread (the underlying
/// manager is). Intended lifetime: one compiler per query (or bench run),
/// accumulating memoized subcircuits across all tuples it touches.
class LineageCompiler {
 public:
  explicit LineageCompiler(LineageManager* manager, CompileOptions options = {})
      : mgr_(manager), opts_(options) {}

  /// Compiles `r`, returning its root circuit node id. Reuses previously
  /// compiled subformulas. ResourceExhausted if the size budget is hit; the
  /// circuit keeps the partial nodes (values stay valid — callers need not
  /// roll back), but nothing new is memoized past the failure point.
  StatusOr<uint32_t> Compile(LineageRef r);

  const Circuit& circuit() const { return circuit_; }
  const CompileStats& stats() const { return stats_; }

 private:
  StatusOr<uint32_t> CompileRec(LineageRef r);
  /// Pivot choice for a variable-sharing connective `r`: flattens the
  /// same-kind spine into its operand list and picks the shared variable
  /// occurring in the most operands (ties to the smallest id), so each
  /// expansion step disentangles as many operands as possible.
  VarId ChoosePivot(LineageRef r);
  bool SharesVariables(LineageRef a, LineageRef b);

  LineageManager* mgr_;
  CompileOptions opts_;
  Circuit circuit_;
  /// Lineage arena node id -> circuit node id.
  std::unordered_map<uint32_t, uint32_t> memo_;
  CompileStats stats_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_COMPILE_COMPILE_H_
