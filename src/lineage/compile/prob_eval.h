// The probability-evaluation ladder: exact decomposition → compiled
// circuit → Monte Carlo sampling.
//
// One ProbabilityEvaluator serves all probability requests of a query
// (operator). Per formula it picks the cheapest sound method:
//
//   1. exact      — the formula is fully decomposable (no ∧/∨ with
//                   variable-sharing children anywhere), so the classic
//                   linear-time independent evaluation applies;
//   2. compiled   — otherwise compile to an arithmetic circuit under a node
//                   budget (subcircuits shared across the query's tuples)
//                   and evaluate with a linear pass;
//   3. monte carlo— the circuit budget blew up (#P-hard worst case), or the
//                   query asked for `WITH PROB APPROX(eps, delta)`:
//                   possible-world sampling with an (eps, delta) guarantee.
//
// The evaluator records which rungs it used as a bitmask so Explain can
// surface `prob=exact|compiled|mc` per plan node.
#ifndef TPDB_LINEAGE_COMPILE_PROB_EVAL_H_
#define TPDB_LINEAGE_COMPILE_PROB_EVAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lineage/compile/compile.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"

namespace tpdb {

/// Bitmask of evaluation methods a plan node ended up using.
enum ProbMethod : uint8_t {
  kProbMethodExact = 1,
  kProbMethodCompiled = 2,
  kProbMethodMonteCarlo = 4,
};

/// Renders a ProbMethod bitmask as "exact", "exact+compiled", "mc", ….
/// Empty string for 0 (no probability was evaluated).
std::string ProbMethodsLabel(uint8_t mask);

struct ProbEvalOptions {
  /// Circuit-size budget before falling back to sampling.
  size_t max_circuit_nodes = size_t{1} << 20;
  /// Approximation contract: eps > 0 requests `APPROX(eps, delta)`
  /// semantics — every probability is sampled to P(|p̂−p| ≤ eps) ≥ 1−delta
  /// and the exact/compiled rungs are skipped.
  double approx_eps = 0.0;
  double approx_delta = 0.05;
  /// Base seed for sampling; per-formula seeds are derived from it and the
  /// lineage id, so estimates are reproducible under any parallel schedule.
  uint64_t mc_seed = 42;
  /// Sampling precision used when the circuit budget forces a fallback on a
  /// query that did not ask for APPROX.
  double fallback_eps = 0.01;
  double fallback_delta = 0.05;
};

/// Evaluates lineage probabilities through the ladder above. Not
/// thread-safe: parallel operators create one evaluator per worker (the
/// compile memo is per-evaluator; exact results still share the manager's
/// sharded memo, and the relevant TSAN suites cover that mix).
class ProbabilityEvaluator {
 public:
  explicit ProbabilityEvaluator(LineageManager* manager,
                                ProbEvalOptions options = {});

  /// Probability of `r`, by the cheapest applicable method.
  double Probability(LineageRef r);

  /// Methods used so far (ProbMethod bitmask).
  uint8_t methods_used() const { return methods_; }

  const CompileStats& compile_stats() const { return compiler_.stats(); }
  size_t circuit_size() const { return compiler_.circuit().size(); }

 private:
  bool Decomposable(LineageRef r);
  double CompiledProbability(LineageRef r);
  double SampledProbability(LineageRef r, double eps, double delta);

  LineageManager* mgr_;
  ProbEvalOptions opts_;
  LineageCompiler compiler_;
  /// Circuit values, extended incrementally: values_from_ is the prefix
  /// already evaluated under values_epoch_.
  std::vector<double> values_;
  std::vector<double> var_probs_;
  size_t values_from_ = 0;
  uint64_t values_epoch_ = 0;
  /// Structural decomposability memo (probability-independent).
  std::unordered_map<uint32_t, bool> decomposable_;
  uint8_t methods_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_COMPILE_PROB_EVAL_H_
