// Human-readable rendering and parsing of lineage formulas, using the
// paper's notation: conjunction "∧" (or "&"), disjunction "∨" (or "|"),
// negation "¬" (or "!"), e.g. "a1 ∧ ¬(b3 ∨ b2)".
#ifndef TPDB_LINEAGE_PRINT_H_
#define TPDB_LINEAGE_PRINT_H_

#include <string>

#include "common/status.h"
#include "lineage/lineage.h"

namespace tpdb {

/// Renders `r` with variable display names and minimal parentheses.
/// Null lineage renders as "-".
std::string LineageToString(const LineageManager& mgr, LineageRef r);

/// Parses a formula over *registered* variable names. Accepts both unicode
/// (∧ ∨ ¬) and ASCII (& | !) connectives plus "true"/"false" and parens.
StatusOr<LineageRef> ParseLineage(LineageManager* mgr,
                                  const std::string& text);

}  // namespace tpdb

#endif  // TPDB_LINEAGE_PRINT_H_
