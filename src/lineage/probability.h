// Exact probability computation for lineage formulas under the standard
// tuple-independence assumption of probabilistic databases.
//
// Strategy (exact, following the classic extensional/intensional split):
//   1. independent decomposition — if the children of an ∧/∨ node mention
//      disjoint variable sets, combine their probabilities directly
//      (product / inclusion-exclusion); ¬ is always 1 - P;
//   2. otherwise Shannon expansion on a shared variable, memoized over the
//      hash-consed arena so co-factors are shared across the recursion.
//
// The lineages produced by TP joins (λr ∧ λs, λr ∧ ¬(λs1 ∨ … ∨ λsk) with
// variable-disjoint operands) hit the linear-time decomposition path; the
// Shannon fallback keeps the engine exact on arbitrary inputs (e.g. lineages
// of nested queries).
#ifndef TPDB_LINEAGE_PROBABILITY_H_
#define TPDB_LINEAGE_PROBABILITY_H_

#include <cstdint>

#include "lineage/lineage.h"

namespace tpdb {

/// Computes exact marginal probabilities of lineage formulas.
class ProbabilityEngine {
 public:
  /// The engine caches per-node results inside `manager`; it must outlive
  /// this object.
  explicit ProbabilityEngine(LineageManager* manager) : mgr_(manager) {}

  /// Exact probability of `r` being true. Null lineage is an error.
  double Probability(LineageRef r);

  /// Number of Shannon expansions performed so far (complexity metric,
  /// exposed for tests and the ablation bench).
  uint64_t shannon_expansions() const { return shannon_expansions_; }

  /// Brute-force possible-worlds probability; exponential in the number of
  /// variables (capped at 24). Reference oracle for tests.
  double BruteForceProbability(LineageRef r);

 private:
  double ProbRec(LineageRef r);
  /// True iff the sorted variable sets of `a` and `b` intersect.
  bool SharesVariables(LineageRef a, LineageRef b);

  LineageManager* mgr_;
  uint64_t shannon_expansions_ = 0;
  /// Memo epoch snapshotted at the top of Probability() (see
  /// LineageManager::StoreProbability).
  uint64_t epoch_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_PROBABILITY_H_
