#include "lineage/probability.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tpdb {

namespace {

/// Probability-engine metrics: how often lineage gets evaluated and how
/// often the hash-consed formula DAG's memo answers instead of recursion.
struct ProbMetrics {
  obs::Counter* evals = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_evals_total", "prob",
      "Top-level lineage probability evaluations.");
  obs::Counter* memo_hits = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_dag_memo_hits_total", "prob",
      "Formula-DAG probability lookups answered from the memo.");
  obs::Counter* shannon = obs::MetricsRegistry::Default().counter(
      "tpdb_prob_shannon_expansions_total", "prob",
      "Shannon expansions forced by variable-sharing subformulas.");

  static const ProbMetrics& Get() {
    static const ProbMetrics m;
    return m;
  }
};

}  // namespace

bool ProbabilityEngine::SharesVariables(LineageRef a, LineageRef b) {
  const std::vector<VarId>& va = mgr_->Variables(a);
  const std::vector<VarId>& vb = mgr_->Variables(b);
  // Both sorted; linear merge-intersection test.
  size_t i = 0;
  size_t j = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i] == vb[j]) return true;
    if (va[i] < vb[j])
      ++i;
    else
      ++j;
  }
  return false;
}

double ProbabilityEngine::Probability(LineageRef r) {
  TPDB_CHECK(!r.is_null()) << "probability of null lineage";
  ProbMetrics::Get().evals->Add();
  // Snapshot the memo epoch: results computed against these marginals are
  // only cached if no SetVariableProbability intervenes.
  epoch_ = mgr_->probability_epoch();
  return ProbRec(r);
}

double ProbabilityEngine::ProbRec(LineageRef r) {
  double cached = 0.0;
  if (mgr_->LookupProbability(r, &cached)) {
    ProbMetrics::Get().memo_hits->Add();
    return cached;
  }

  double result = 0.0;
  switch (mgr_->KindOf(r)) {
    case LineageKind::kTrue:
      result = 1.0;
      break;
    case LineageKind::kFalse:
      result = 0.0;
      break;
    case LineageKind::kVar:
      result = mgr_->VariableProbability(mgr_->VarOf(r));
      break;
    case LineageKind::kNot:
      result = 1.0 - ProbRec(mgr_->Left(r));
      break;
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      const LineageRef a = mgr_->Left(r);
      const LineageRef b = mgr_->Right(r);
      if (!SharesVariables(a, b)) {
        const double pa = ProbRec(a);
        const double pb = ProbRec(b);
        result = mgr_->KindOf(r) == LineageKind::kAnd
                     ? pa * pb
                     : 1.0 - (1.0 - pa) * (1.0 - pb);
      } else {
        // Shannon expansion on a shared variable: co-factor on the first
        // variable common to both children so the expansion actually
        // decouples them.
        const std::vector<VarId>& va = mgr_->Variables(a);
        const std::vector<VarId>& vb = mgr_->Variables(b);
        VarId pivot = 0;
        bool found = false;
        size_t i = 0;
        size_t j = 0;
        while (i < va.size() && j < vb.size()) {
          if (va[i] == vb[j]) {
            pivot = va[i];
            found = true;
            break;
          }
          if (va[i] < vb[j])
            ++i;
          else
            ++j;
        }
        TPDB_CHECK(found);
        ++shannon_expansions_;
        ProbMetrics::Get().shannon->Add();
        const double pv = mgr_->VariableProbability(pivot);
        const LineageRef hi = mgr_->Restrict(r, pivot, true);
        const LineageRef lo = mgr_->Restrict(r, pivot, false);
        result = pv * ProbRec(hi) + (1.0 - pv) * ProbRec(lo);
      }
      break;
    }
  }
  mgr_->StoreProbability(r, result, epoch_);
  return result;
}

double ProbabilityEngine::BruteForceProbability(LineageRef r) {
  const std::vector<VarId> vars = mgr_->Variables(r);  // copy: arena may grow
  TPDB_CHECK_LE(vars.size(), 24u) << "brute force: too many variables";
  std::vector<bool> assignment(mgr_->num_variables(), false);
  double total = 0.0;
  const uint64_t limit = 1ull << vars.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    double world = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      const bool value = (mask >> i) & 1;
      assignment[vars[i]] = value;
      const double pv = mgr_->VariableProbability(vars[i]);
      world *= value ? pv : 1.0 - pv;
    }
    if (mgr_->Evaluate(r, assignment)) total += world;
  }
  return total;
}

}  // namespace tpdb
