// Lineage subsystem: propositional formulas over independent Boolean
// base-tuple variables, stored as a hash-consed DAG in an arena.
//
// Every tuple of a TP relation carries a lineage λ; TP joins with negation
// combine lineages with ∧, ∨ and ¬ (the paper's and / andNot concatenation
// functions). Hash-consing gives syntactic-equality-by-id, which the window
// algorithms and duplicate elimination rely on: disjunctions are built over
// sorted operand lists, so the same set of matching tuples always yields the
// same LineageRef.
#ifndef TPDB_LINEAGE_LINEAGE_H_
#define TPDB_LINEAGE_LINEAGE_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace tpdb {

/// Identifier of a Boolean base-tuple variable.
using VarId = uint32_t;

/// Node kinds of the lineage DAG.
enum class LineageKind : uint8_t { kTrue, kFalse, kVar, kNot, kAnd, kOr };

namespace lineage_detail {

/// Append-only chunked slot array with lock-free indexed reads. Chunk c
/// holds 2^(kBaseBits+c) slots (geometric growth), so kMaxChunks chunks
/// cover the full 32-bit id space without ever moving a slot — unlike a
/// vector, published entries stay at a stable address forever, which is
/// what lets readers index without a lock. Writers are serialized by the
/// owner's mutex; readers must have learned the index through an acquire
/// load of the owner's size counter (whose release store happens after the
/// slot write).
template <typename T>
class ChunkedSlots {
 public:
  static constexpr size_t kBaseBits = 10;
  static constexpr size_t kMaxChunks = 33 - kBaseBits;

  ChunkedSlots() = default;
  ChunkedSlots(const ChunkedSlots&) = delete;
  ChunkedSlots& operator=(const ChunkedSlots&) = delete;
  ~ChunkedSlots() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }

  /// Slot `i`, allocating its chunk if needed (writer side; the caller
  /// serializes writers). The chunk pointer is published with release so a
  /// reader racing on a *different*, already-published slot of the same
  /// fresh chunk still sees the allocation.
  T& Slot(size_t i) {
    const size_t n = i + (size_t{1} << kBaseBits);
    const int k = std::bit_width(n) - 1;
    auto& cell = chunks_[static_cast<size_t>(k) - kBaseBits];
    T* chunk = cell.load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new T[size_t{1} << k]();
      cell.store(chunk, std::memory_order_release);
    }
    return chunk[n - (size_t{1} << k)];
  }

  /// Reader-side access: `i` must be below a size the caller read with
  /// acquire ordering.
  T& operator[](size_t i) const {
    const size_t n = i + (size_t{1} << kBaseBits);
    const int k = std::bit_width(n) - 1;
    return chunks_[static_cast<size_t>(k) - kBaseBits].load(
        std::memory_order_acquire)[n - (size_t{1} << k)];
  }

 private:
  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
};

}  // namespace lineage_detail

/// Owns all lineage nodes and base variables of a database instance.
///
/// Construction methods apply local simplifications (identity/annihilator
/// elements, double negation, idempotence on syntactically equal children)
/// and order commutative children canonically, then hash-cons, so
/// structurally equal formulas receive equal ids.
///
/// Thread-safe, with a read-mostly split so parallel sweep emission and
/// parallel circuit evaluation scale instead of serializing on one lock:
///
///   - Node *reads* (KindOf / Left / Right / VarOf / Evaluate / Variables
///     once memoized) are lock-free: nodes live in an append-only chunked
///     arena published through an atomic size counter, so a published node
///     is immutable at a stable address.
///   - Node *interning* and variable registration take the intern mutex —
///     now a plain mutex held once per construction call, not re-entered
///     per child probe.
///   - Variable marginals are atomic slots (lock-free reads; writes only
///     from SetVariableProbability).
///   - The probability memo is sharded behind per-shard shared_mutexes:
///     concurrent evaluations take shared locks on lookup and short
///     exclusive locks on store, and never contend with interning.
///
/// Note that concurrent interning makes node *ids* depend on thread
/// interleaving; formulas stay structurally canonical either way, so
/// probabilities and equivalence are unaffected.
class LineageManager {
 public:
  LineageManager();
  ~LineageManager();

  // Not copyable (LineageRefs are tied to one arena).
  LineageManager(const LineageManager&) = delete;
  LineageManager& operator=(const LineageManager&) = delete;

  /// Registers a fresh independent variable with marginal probability `prob`
  /// and an optional display name (e.g. "a1"). Returns its id.
  VarId RegisterVariable(double prob, std::string name = "");

  /// Number of registered variables.
  size_t num_variables() const {
    return num_vars_.load(std::memory_order_acquire);
  }

  /// Marginal probability of variable `v` (lock-free).
  double VariableProbability(VarId v) const;

  /// Updates the marginal probability of variable `v` (invalidates cached
  /// node probabilities).
  void SetVariableProbability(VarId v, double prob);

  /// Dense snapshot of every variable's marginal, indexed by VarId — the
  /// input of a compiled-circuit evaluation pass (lineage/compile/).
  std::vector<double> SnapshotVariableProbabilities() const;

  /// Display name of variable `v` ("x<i>" if none was given).
  const std::string& VariableName(VarId v) const;

  /// Looks up a variable by display name.
  StatusOr<VarId> FindVariable(const std::string& name) const;

  // -- Formula construction --------------------------------------------

  LineageRef True() const { return true_; }
  LineageRef False() const { return false_; }
  LineageRef Var(VarId v);
  LineageRef Not(LineageRef a);
  LineageRef And(LineageRef a, LineageRef b);
  LineageRef Or(LineageRef a, LineageRef b);

  /// Conjunction of all operands (sorted canonically). Empty span -> True.
  LineageRef AndAll(std::span<const LineageRef> operands);
  /// Disjunction of all operands (sorted canonically). Empty span -> False.
  LineageRef OrAll(std::span<const LineageRef> operands);

  /// The paper's andNot concatenation: λr ∧ ¬λs.
  LineageRef AndNot(LineageRef r, LineageRef s) { return And(r, Not(s)); }

  // -- Inspection (lock-free) -------------------------------------------

  LineageKind KindOf(LineageRef r) const { return node(r).kind; }
  /// Children of a binary node / child of a NOT node.
  LineageRef Left(LineageRef r) const;
  LineageRef Right(LineageRef r) const;
  /// Variable id of a kVar node.
  VarId VarOf(LineageRef r) const;

  /// Number of distinct nodes allocated (hash-consing statistic).
  size_t num_nodes() const {
    return num_nodes_.load(std::memory_order_acquire);
  }

  /// Sorted distinct variables occurring in the formula. Memoized per node
  /// behind an atomic pointer: lock-free on every hit, and a lost
  /// publication race just discards the duplicate.
  const std::vector<VarId>& Variables(LineageRef r);

  /// Evaluates the formula under a total assignment (indexed by VarId).
  bool Evaluate(LineageRef r, const std::vector<bool>& assignment) const;

  /// Substitutes variable `v` by the constant `value` and simplifies.
  LineageRef Restrict(LineageRef r, VarId v, bool value);

  /// Truth-table equivalence over the union of the variable sets.
  /// Intended for tests/assertions; aborts if more than 24 variables.
  bool Equivalent(LineageRef a, LineageRef b);

  /// Monotone counter bumped by every SetVariableProbability call.
  /// Consumers that cache derived probabilities (the memo below, snapshot
  /// zone maps, compiled-circuit values) snapshot this and treat a
  /// mismatch as "stale".
  uint64_t probability_epoch() const {
    return prob_epoch_.load(std::memory_order_acquire);
  }

 private:
  friend class ProbabilityEngine;
  friend class ProbabilityEvaluator;

  struct Node {
    LineageKind kind;
    uint32_t a;  // child or VarId
    uint32_t b;  // second child (kAnd/kOr only)
  };

  /// Probability-memo access for the probability engines. The memo is
  /// sharded by node id: lookups take a shared lock on one shard, stores a
  /// brief exclusive one — evaluation never contends with interning.
  /// Stores are epoch-guarded: a computation that started before a
  /// SetVariableProbability ran must not repopulate the freshly cleared
  /// cache with its stale result, so the engine snapshots
  /// probability_epoch() up front and StoreProbability drops the value if
  /// the epoch moved on.
  bool LookupProbability(LineageRef r, double* out) const;
  void StoreProbability(LineageRef r, double p, uint64_t epoch);

  struct NodeKeyHash {
    size_t operator()(const Node& n) const {
      uint64_t h = static_cast<uint64_t>(n.kind);
      h = h * 0x9e3779b97f4a7c15ull + n.a;
      h = h * 0x9e3779b97f4a7c15ull + n.b;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct NodeKeyEq {
    bool operator()(const Node& x, const Node& y) const {
      return x.kind == y.kind && x.a == y.a && x.b == y.b;
    }
  };

  LineageRef Intern(Node n);
  const Node& node(LineageRef r) const {
    TPDB_CHECK(!r.is_null()) << "null lineage dereferenced";
    TPDB_CHECK_LT(r.id, num_nodes_.load(std::memory_order_acquire));
    return nodes_[r.id];
  }
  LineageRef RestrictRec(LineageRef r, VarId v, bool value,
                         std::unordered_map<uint32_t, LineageRef>* memo);

  /// Guards interning (intern_ + arena growth) and variable registration
  /// (var_names_, var_by_name_). Plain mutex: public methods lock it at
  /// most once and all reads below it are lock-free.
  mutable std::mutex mu_;

  lineage_detail::ChunkedSlots<Node> nodes_;
  /// Published node count; release-stored after the slot write in Intern.
  std::atomic<size_t> num_nodes_{0};
  std::unordered_map<Node, uint32_t, NodeKeyHash, NodeKeyEq> intern_;

  lineage_detail::ChunkedSlots<std::atomic<double>> var_probs_;
  std::atomic<size_t> num_vars_{0};
  // Deque: VariableName() hands out references that must survive
  // concurrent RegisterVariable calls.
  std::deque<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_by_name_;

  /// Memoized sorted variable set per node id, published via CAS. A filled
  /// entry is immutable; losers of the publication race delete their copy.
  lineage_detail::ChunkedSlots<std::atomic<const std::vector<VarId>*>>
      var_sets_;

  /// Sharded probability memo (see LookupProbability above).
  static constexpr size_t kProbShards = 32;
  struct ProbShard {
    mutable std::shared_mutex mu;
    std::unordered_map<uint32_t, double> map;
  };
  mutable std::array<ProbShard, kProbShards> prob_shards_;
  /// Bumped by SetVariableProbability; guards stale memo stores.
  std::atomic<uint64_t> prob_epoch_{0};

  LineageRef true_;
  LineageRef false_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_LINEAGE_H_
