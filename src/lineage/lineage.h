// Lineage subsystem: propositional formulas over independent Boolean
// base-tuple variables, stored as a hash-consed DAG in an arena.
//
// Every tuple of a TP relation carries a lineage λ; TP joins with negation
// combine lineages with ∧, ∨ and ¬ (the paper's and / andNot concatenation
// functions). Hash-consing gives syntactic-equality-by-id, which the window
// algorithms and duplicate elimination rely on: disjunctions are built over
// sorted operand lists, so the same set of matching tuples always yields the
// same LineageRef.
#ifndef TPDB_LINEAGE_LINEAGE_H_
#define TPDB_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace tpdb {

/// Identifier of a Boolean base-tuple variable.
using VarId = uint32_t;

/// Node kinds of the lineage DAG.
enum class LineageKind : uint8_t { kTrue, kFalse, kVar, kNot, kAnd, kOr };

/// Owns all lineage nodes and base variables of a database instance.
///
/// Construction methods apply local simplifications (identity/annihilator
/// elements, double negation, idempotence on syntactically equal children)
/// and order commutative children canonically, then hash-cons, so
/// structurally equal formulas receive equal ids.
///
/// Thread-safe: all methods may be called concurrently from the parallel
/// execution runtime (exec/) — interning, variable registration and the
/// memo caches are guarded by one internal lock. References returned by
/// VariableName() and Variables() stay valid under concurrent growth (the
/// backing containers are deques, and a memoized entry is immutable once
/// filled). Note that concurrent interning makes node *ids* depend on
/// thread interleaving; formulas stay structurally canonical either way,
/// so probabilities and equivalence are unaffected.
class LineageManager {
 public:
  LineageManager();

  // Not copyable (LineageRefs are tied to one arena).
  LineageManager(const LineageManager&) = delete;
  LineageManager& operator=(const LineageManager&) = delete;

  /// Registers a fresh independent variable with marginal probability `prob`
  /// and an optional display name (e.g. "a1"). Returns its id.
  VarId RegisterVariable(double prob, std::string name = "");

  /// Number of registered variables.
  size_t num_variables() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return var_probs_.size();
  }

  /// Marginal probability of variable `v`.
  double VariableProbability(VarId v) const;

  /// Updates the marginal probability of variable `v` (invalidates cached
  /// node probabilities).
  void SetVariableProbability(VarId v, double prob);

  /// Display name of variable `v` ("x<i>" if none was given).
  const std::string& VariableName(VarId v) const;

  /// Looks up a variable by display name.
  StatusOr<VarId> FindVariable(const std::string& name) const;

  // -- Formula construction --------------------------------------------

  LineageRef True() const { return true_; }
  LineageRef False() const { return false_; }
  LineageRef Var(VarId v);
  LineageRef Not(LineageRef a);
  LineageRef And(LineageRef a, LineageRef b);
  LineageRef Or(LineageRef a, LineageRef b);

  /// Conjunction of all operands (sorted canonically). Empty span -> True.
  LineageRef AndAll(std::span<const LineageRef> operands);
  /// Disjunction of all operands (sorted canonically). Empty span -> False.
  LineageRef OrAll(std::span<const LineageRef> operands);

  /// The paper's andNot concatenation: λr ∧ ¬λs.
  LineageRef AndNot(LineageRef r, LineageRef s) { return And(r, Not(s)); }

  // -- Inspection -------------------------------------------------------

  LineageKind KindOf(LineageRef r) const;
  /// Children of a binary node / child of a NOT node.
  LineageRef Left(LineageRef r) const;
  LineageRef Right(LineageRef r) const;
  /// Variable id of a kVar node.
  VarId VarOf(LineageRef r) const;

  /// Number of distinct nodes allocated (hash-consing statistic).
  size_t num_nodes() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return nodes_.size();
  }

  /// Sorted distinct variables occurring in the formula (memoized).
  const std::vector<VarId>& Variables(LineageRef r);

  /// Evaluates the formula under a total assignment (indexed by VarId).
  bool Evaluate(LineageRef r, const std::vector<bool>& assignment) const;

  /// Substitutes variable `v` by the constant `value` and simplifies.
  LineageRef Restrict(LineageRef r, VarId v, bool value);

  /// Truth-table equivalence over the union of the variable sets.
  /// Intended for tests/assertions; aborts if more than 24 variables.
  bool Equivalent(LineageRef a, LineageRef b);

  /// Monotone counter bumped by every SetVariableProbability call.
  /// Consumers that cache derived probabilities (the memo below, snapshot
  /// zone maps) snapshot this and treat a mismatch as "stale".
  uint64_t probability_epoch() const;

 private:
  friend class ProbabilityEngine;

  struct Node {
    LineageKind kind;
    uint32_t a;  // child or VarId
    uint32_t b;  // second child (kAnd/kOr only)
  };

  /// Probability-memo access for ProbabilityEngine (locked; the cache is
  /// shared across engine instances and invalidated by
  /// SetVariableProbability). Stores are epoch-guarded: a computation that
  /// started before a SetVariableProbability ran must not repopulate the
  /// freshly cleared cache with its stale result, so the engine snapshots
  /// probability_epoch() up front and StoreProbability drops the value if
  /// the epoch moved on.
  bool LookupProbability(LineageRef r, double* out) const;
  void StoreProbability(LineageRef r, double p, uint64_t epoch);

  struct NodeKeyHash {
    size_t operator()(const Node& n) const {
      uint64_t h = static_cast<uint64_t>(n.kind);
      h = h * 0x9e3779b97f4a7c15ull + n.a;
      h = h * 0x9e3779b97f4a7c15ull + n.b;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct NodeKeyEq {
    bool operator()(const Node& x, const Node& y) const {
      return x.kind == y.kind && x.a == y.a && x.b == y.b;
    }
  };

  LineageRef Intern(Node n);
  const Node& node(LineageRef r) const {
    TPDB_CHECK(!r.is_null()) << "null lineage dereferenced";
    TPDB_CHECK_LT(r.id, nodes_.size());
    return nodes_[r.id];
  }
  LineageRef RestrictRec(LineageRef r, VarId v, bool value,
                         std::unordered_map<uint32_t, LineageRef>* memo);

  /// Guards every container below. Recursive because the construction
  /// methods call each other (And → KindOf, AndAll → And, …).
  mutable std::recursive_mutex mu_;

  std::vector<Node> nodes_;
  std::unordered_map<Node, uint32_t, NodeKeyHash, NodeKeyEq> intern_;
  std::vector<double> var_probs_;
  // Deque: VariableName() hands out references that must survive
  // concurrent RegisterVariable calls.
  std::deque<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_by_name_;
  // Memoized sorted variable sets per node id. Deque for the same
  // reference-stability reason; an entry is immutable once filled.
  std::deque<std::vector<VarId>> var_cache_;
  // Probability memo lives here so SetVariableProbability can invalidate it.
  std::unordered_map<uint32_t, double> prob_cache_;
  // Bumped by SetVariableProbability; guards stale memo stores.
  uint64_t prob_epoch_ = 0;

  LineageRef true_;
  LineageRef false_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_LINEAGE_H_
