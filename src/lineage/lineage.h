// Lineage subsystem: propositional formulas over independent Boolean
// base-tuple variables, stored as a hash-consed DAG in an arena.
//
// Every tuple of a TP relation carries a lineage λ; TP joins with negation
// combine lineages with ∧, ∨ and ¬ (the paper's and / andNot concatenation
// functions). Hash-consing gives syntactic-equality-by-id, which the window
// algorithms and duplicate elimination rely on: disjunctions are built over
// sorted operand lists, so the same set of matching tuples always yields the
// same LineageRef.
#ifndef TPDB_LINEAGE_LINEAGE_H_
#define TPDB_LINEAGE_LINEAGE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/datum.h"
#include "common/status.h"

namespace tpdb {

/// Identifier of a Boolean base-tuple variable.
using VarId = uint32_t;

/// Node kinds of the lineage DAG.
enum class LineageKind : uint8_t { kTrue, kFalse, kVar, kNot, kAnd, kOr };

/// Owns all lineage nodes and base variables of a database instance.
///
/// Construction methods apply local simplifications (identity/annihilator
/// elements, double negation, idempotence on syntactically equal children)
/// and order commutative children canonically, then hash-cons, so
/// structurally equal formulas receive equal ids.
class LineageManager {
 public:
  LineageManager();

  // Not copyable (LineageRefs are tied to one arena).
  LineageManager(const LineageManager&) = delete;
  LineageManager& operator=(const LineageManager&) = delete;

  /// Registers a fresh independent variable with marginal probability `prob`
  /// and an optional display name (e.g. "a1"). Returns its id.
  VarId RegisterVariable(double prob, std::string name = "");

  /// Number of registered variables.
  size_t num_variables() const { return var_probs_.size(); }

  /// Marginal probability of variable `v`.
  double VariableProbability(VarId v) const;

  /// Updates the marginal probability of variable `v` (invalidates cached
  /// node probabilities).
  void SetVariableProbability(VarId v, double prob);

  /// Display name of variable `v` ("x<i>" if none was given).
  const std::string& VariableName(VarId v) const;

  /// Looks up a variable by display name.
  StatusOr<VarId> FindVariable(const std::string& name) const;

  // -- Formula construction --------------------------------------------

  LineageRef True() const { return true_; }
  LineageRef False() const { return false_; }
  LineageRef Var(VarId v);
  LineageRef Not(LineageRef a);
  LineageRef And(LineageRef a, LineageRef b);
  LineageRef Or(LineageRef a, LineageRef b);

  /// Conjunction of all operands (sorted canonically). Empty span -> True.
  LineageRef AndAll(std::span<const LineageRef> operands);
  /// Disjunction of all operands (sorted canonically). Empty span -> False.
  LineageRef OrAll(std::span<const LineageRef> operands);

  /// The paper's andNot concatenation: λr ∧ ¬λs.
  LineageRef AndNot(LineageRef r, LineageRef s) { return And(r, Not(s)); }

  // -- Inspection -------------------------------------------------------

  LineageKind KindOf(LineageRef r) const;
  /// Children of a binary node / child of a NOT node.
  LineageRef Left(LineageRef r) const;
  LineageRef Right(LineageRef r) const;
  /// Variable id of a kVar node.
  VarId VarOf(LineageRef r) const;

  /// Number of distinct nodes allocated (hash-consing statistic).
  size_t num_nodes() const { return nodes_.size(); }

  /// Sorted distinct variables occurring in the formula (memoized).
  const std::vector<VarId>& Variables(LineageRef r);

  /// Evaluates the formula under a total assignment (indexed by VarId).
  bool Evaluate(LineageRef r, const std::vector<bool>& assignment) const;

  /// Substitutes variable `v` by the constant `value` and simplifies.
  LineageRef Restrict(LineageRef r, VarId v, bool value);

  /// Truth-table equivalence over the union of the variable sets.
  /// Intended for tests/assertions; aborts if more than 24 variables.
  bool Equivalent(LineageRef a, LineageRef b);

 private:
  friend class ProbabilityEngine;

  struct Node {
    LineageKind kind;
    uint32_t a;  // child or VarId
    uint32_t b;  // second child (kAnd/kOr only)
  };

  struct NodeKeyHash {
    size_t operator()(const Node& n) const {
      uint64_t h = static_cast<uint64_t>(n.kind);
      h = h * 0x9e3779b97f4a7c15ull + n.a;
      h = h * 0x9e3779b97f4a7c15ull + n.b;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct NodeKeyEq {
    bool operator()(const Node& x, const Node& y) const {
      return x.kind == y.kind && x.a == y.a && x.b == y.b;
    }
  };

  LineageRef Intern(Node n);
  const Node& node(LineageRef r) const {
    TPDB_CHECK(!r.is_null()) << "null lineage dereferenced";
    TPDB_CHECK_LT(r.id, nodes_.size());
    return nodes_[r.id];
  }
  LineageRef RestrictRec(LineageRef r, VarId v, bool value,
                         std::unordered_map<uint32_t, LineageRef>* memo);

  std::vector<Node> nodes_;
  std::unordered_map<Node, uint32_t, NodeKeyHash, NodeKeyEq> intern_;
  std::vector<double> var_probs_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_by_name_;
  // Memoized sorted variable sets per node id.
  std::vector<std::vector<VarId>> var_cache_;
  // Probability memo lives here so SetVariableProbability can invalidate it.
  std::unordered_map<uint32_t, double> prob_cache_;

  LineageRef true_;
  LineageRef false_;
};

}  // namespace tpdb

#endif  // TPDB_LINEAGE_LINEAGE_H_
