#include "lineage/print.h"

#include <cctype>

namespace tpdb {

namespace {

// Precedence levels for minimal parenthesisation: Or < And < Not/atom.
int Precedence(LineageKind k) {
  switch (k) {
    case LineageKind::kOr:
      return 1;
    case LineageKind::kAnd:
      return 2;
    default:
      return 3;
  }
}

void Render(const LineageManager& mgr, LineageRef r, int parent_prec,
            std::string* out) {
  const LineageKind k = mgr.KindOf(r);
  const int prec = Precedence(k);
  const bool parens = prec < parent_prec;
  if (parens) out->push_back('(');
  switch (k) {
    case LineageKind::kTrue:
      out->append("true");
      break;
    case LineageKind::kFalse:
      out->append("false");
      break;
    case LineageKind::kVar:
      out->append(mgr.VariableName(mgr.VarOf(r)));
      break;
    case LineageKind::kNot:
      out->append("¬");
      Render(mgr, mgr.Left(r), 3, out);
      break;
    case LineageKind::kAnd:
      Render(mgr, mgr.Left(r), 2, out);
      out->append(" ∧ ");
      Render(mgr, mgr.Right(r), 2, out);
      break;
    case LineageKind::kOr:
      Render(mgr, mgr.Left(r), 1, out);
      out->append(" ∨ ");
      Render(mgr, mgr.Right(r), 1, out);
      break;
  }
  if (parens) out->push_back(')');
}

// --- Recursive-descent parser -------------------------------------------

struct Parser {
  LineageManager* mgr;
  const std::string& text;
  size_t pos = 0;
  Status error = Status::OK();

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n'))
      ++pos;
  }

  // Consumes `token` (an operator, possibly multi-byte UTF-8) if present.
  bool Consume(const char* token) {
    SkipSpace();
    const size_t len = std::char_traits<char>::length(token);
    if (text.compare(pos, len, token) == 0) {
      pos += len;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  LineageRef Fail(const std::string& msg) {
    if (error.ok())
      error = Status::InvalidArgument(msg + " at offset " +
                                      std::to_string(pos) + " in '" + text +
                                      "'");
    return LineageRef::Null();
  }

  LineageRef ParseOr() {
    LineageRef left = ParseAnd();
    if (!error.ok()) return left;
    while (Consume("∨") || Consume("|")) {
      LineageRef right = ParseAnd();
      if (!error.ok()) return right;
      left = mgr->Or(left, right);
    }
    return left;
  }

  LineageRef ParseAnd() {
    LineageRef left = ParseUnary();
    if (!error.ok()) return left;
    while (Consume("∧") || Consume("&")) {
      LineageRef right = ParseUnary();
      if (!error.ok()) return right;
      left = mgr->And(left, right);
    }
    return left;
  }

  LineageRef ParseUnary() {
    if (Consume("¬") || Consume("!")) {
      LineageRef inner = ParseUnary();
      if (!error.ok()) return inner;
      return mgr->Not(inner);
    }
    return ParseAtom();
  }

  LineageRef ParseAtom() {
    SkipSpace();
    if (Consume("(")) {
      LineageRef inner = ParseOr();
      if (!error.ok()) return inner;
      if (!Consume(")")) return Fail("expected ')'");
      return inner;
    }
    // Identifier: [A-Za-z_][A-Za-z0-9_]*
    const size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '_'))
      ++pos;
    if (pos == start) return Fail("expected identifier");
    const std::string name = text.substr(start, pos - start);
    if (name == "true") return mgr->True();
    if (name == "false") return mgr->False();
    StatusOr<VarId> v = mgr->FindVariable(name);
    if (!v.ok()) {
      error = v.status();
      return LineageRef::Null();
    }
    return mgr->Var(*v);
  }
};

}  // namespace

std::string LineageToString(const LineageManager& mgr, LineageRef r) {
  if (r.is_null()) return "-";
  std::string out;
  Render(mgr, r, 0, &out);
  return out;
}

StatusOr<LineageRef> ParseLineage(LineageManager* mgr,
                                  const std::string& text) {
  Parser p{mgr, text};
  LineageRef result = p.ParseOr();
  if (!p.error.ok()) return p.error;
  if (!p.AtEnd())
    return Status::InvalidArgument("trailing input in lineage '" + text + "'");
  return result;
}

}  // namespace tpdb
