// Work-stealing thread pool + task scheduler: the core of the parallel
// execution runtime (morsel-driven parallelism in the style of Leis et al.;
// PostgreSQL's parallel executor is the shape the paper's system plugs
// into).
//
// Each worker owns a deque of tasks: it pops from the front of its own
// queue and steals from the back of a victim's queue when its own is
// empty. Submission round-robins across workers so independent sessions
// spread immediately.
//
// TaskGroup is the scheduler layer: a batch of Status-returning tasks
// submitted together. Wait() *helps* — it runs queued tasks on the calling
// thread while waiting — so a query never deadlocks even when the pool is
// saturated by other sessions (and parallelism degrades gracefully to the
// caller's thread when the pool has fewer threads than tasks).
#ifndef TPDB_EXEC_THREAD_POOL_H_
#define TPDB_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tpdb {

/// Fixed-size pool of worker threads with per-worker work-stealing deques.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Never blocks; tasks run in unspecified order.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is available.
  /// Returns false when every queue was empty at the time of the scan.
  bool RunOneTask();

  /// Index of the pool worker running the current thread, or -1 when called
  /// from a thread the pool does not own (e.g. a session thread helping via
  /// TaskGroup::Wait).
  static int CurrentWorker();

  /// Process-wide shared pool, lazily created with HardwareParallelism()
  /// threads. Never destroyed (intentionally leaked: sessions may hold it
  /// until exit).
  static ThreadPool* Default();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t HardwareParallelism();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// Pops from worker `self`'s front, else steals from another queue's
  /// back. Returns an empty function when nothing was found.
  std::function<void()> TakeTask(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  /// Round-robin cursor for external submissions.
  std::atomic<size_t> next_queue_{0};
  /// Tasks queued but not yet taken (idle/wake bookkeeping only).
  std::atomic<size_t> pending_{0};
};

/// A batch of tasks whose completion (and first error) the submitter waits
/// for. The completion state is shared with the tasks, so the group object
/// itself may be destroyed as soon as Wait() returns.
class TaskGroup {
 public:
  /// `pool` may be null: tasks then run inline in Spawn (serial fallback).
  explicit TaskGroup(ThreadPool* pool)
      : pool_(pool), state_(std::make_shared<State>()) {}

  /// Schedules `fn` on the pool. The first non-OK status wins Wait().
  void Spawn(std::function<Status()> fn);

  /// Blocks until every spawned task finished, helping run queued tasks on
  /// the calling thread. Returns the first error (OK if none).
  Status Wait();

 private:
  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t outstanding = 0;
    Status first_error = Status::OK();
  };

  static void Finish(const std::shared_ptr<State>& state, Status status);

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

}  // namespace tpdb

#endif  // TPDB_EXEC_THREAD_POOL_H_
