#include "exec/session.h"

#include <chrono>

#include "obs/slow_query.h"

namespace tpdb {

Session::Session(TPDatabase* db, SessionOptions options)
    : db_(db), options_(options) {
  TPDB_CHECK(db_ != nullptr);
}

StatusOr<TPRelation> Session::Query(const std::string& text) const {
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  StatusOr<LogicalPlan> plan = db_->Plan(text);
  if (!plan.ok()) return plan.status();
  StatusOr<TPRelation> result = Execute(*plan);
  if (result.ok()) {
    obs::SlowQueryLog::Record(
        text,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count(),
        result->size());
  }
  return result;
}

StatusOr<TPRelation> Session::Execute(const LogicalPlan& plan) const {
  Planner planner(db_, options_);
  return planner.Execute(plan);
}

StatusOr<std::string> Session::Explain(const std::string& text) const {
  StatusOr<LogicalPlan> plan = db_->Plan(text);
  if (!plan.ok()) return plan.status();
  ExecStats stats;
  Planner planner(db_, options_);
  StatusOr<TPRelation> result = planner.Execute(*plan, &stats);
  if (!result.ok()) return result.status();
  std::string out = "Logical plan:\n" + plan->ToString();
  if (!stats.physical_plan().empty())
    out += "\nPhysical plan (est | actual):\n" + stats.physical_plan();
  out += "\nLowered pipeline (bottom-up):\n" + stats.ToString();
  return out;
}

StatusOr<Session::TraceResult> Session::Trace(const std::string& text,
                                              uint64_t trace_id) const {
  TraceResult out;
  out.trace = obs::TraceContext(trace_id);
  const uint64_t query_span = out.trace.StartSpan("query");
  const uint64_t parse_span = out.trace.StartSpan("parse");
  StatusOr<LogicalPlan> plan = db_->Plan(text);
  out.trace.EndSpan(parse_span);
  if (!plan.ok()) return plan.status();
  ExecStats stats;
  stats.set_trace(&out.trace);
  Planner planner(db_, options_);
  StatusOr<TPRelation> result = planner.Execute(*plan, &stats);
  out.trace.EndSpan(query_span);
  if (!result.ok()) return result.status();
  out.physical_plan = stats.physical_plan();
  out.rows = result->size();
  obs::SlowQueryLog::Record(
      text,
      static_cast<double>(out.trace.spans()[query_span - 1].dur_us) / 1e6,
      out.rows);
  return out;
}

}  // namespace tpdb
