#include "exec/session.h"

namespace tpdb {

Session::Session(TPDatabase* db, SessionOptions options)
    : db_(db), options_(options) {
  TPDB_CHECK(db_ != nullptr);
}

StatusOr<TPRelation> Session::Query(const std::string& text) const {
  StatusOr<LogicalPlan> plan = db_->Plan(text);
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

StatusOr<TPRelation> Session::Execute(const LogicalPlan& plan) const {
  Planner planner(db_, options_);
  return planner.Execute(plan);
}

StatusOr<std::string> Session::Explain(const std::string& text) const {
  StatusOr<LogicalPlan> plan = db_->Plan(text);
  if (!plan.ok()) return plan.status();
  ExecStats stats;
  Planner planner(db_, options_);
  StatusOr<TPRelation> result = planner.Execute(*plan, &stats);
  if (!result.ok()) return result.status();
  std::string out = "Logical plan:\n" + plan->ToString();
  if (!stats.physical_plan().empty())
    out += "\nPhysical plan (est | actual):\n" + stats.physical_plan();
  out += "\nLowered pipeline (bottom-up):\n" + stats.ToString();
  return out;
}

}  // namespace tpdb
