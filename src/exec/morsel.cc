#include "exec/morsel.h"

#include <algorithm>

namespace tpdb {

std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size,
                                size_t max_morsels) {
  std::vector<Morsel> morsels;
  if (n == 0) return morsels;
  if (morsel_size == 0) morsel_size = kDefaultMorselSize;
  if (max_morsels > 0) {
    // Grow the chunk so at most `max_morsels` chunks cover n (ceiling).
    morsel_size = std::max(morsel_size, (n + max_morsels - 1) / max_morsels);
  }
  morsels.reserve((n + morsel_size - 1) / morsel_size);
  for (size_t begin = 0; begin < n; begin += morsel_size)
    morsels.push_back(Morsel{begin, std::min(begin + morsel_size, n)});
  return morsels;
}

TPRelation SliceRelation(const TPRelation& rel, const Morsel& m) {
  TPDB_CHECK_LE(m.begin, m.end);
  TPDB_CHECK_LE(m.end, rel.size());
  TPRelation out(rel.name(), rel.fact_schema(), rel.manager());
  for (size_t i = m.begin; i < m.end; ++i) {
    const TPTuple& t = rel.tuple(i);
    const Status status = out.AppendDerived(t.fact, t.interval, t.lineage);
    TPDB_CHECK(status.ok()) << status.ToString();  // source tuples are valid
  }
  return out;
}

uint64_t HashFactRow(const Row& fact) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const Datum& d : fact) h = h * 0x9e3779b97f4a7c15ull + d.Hash();
  return h;
}

std::vector<TPRelation> HashPartitionRelation(const TPRelation& rel,
                                              size_t parts) {
  TPDB_CHECK_GE(parts, 1u);
  std::vector<TPRelation> out;
  out.reserve(parts);
  for (size_t i = 0; i < parts; ++i)
    out.emplace_back(rel.name(), rel.fact_schema(), rel.manager());
  for (const TPTuple& t : rel.tuples()) {
    TPRelation& target = out[HashFactRow(t.fact) % parts];
    const Status status = target.AppendDerived(t.fact, t.interval, t.lineage);
    TPDB_CHECK(status.ok()) << status.ToString();
  }
  return out;
}

}  // namespace tpdb
