// Session: one client's handle onto a shared TPDatabase.
//
// Any number of sessions may query the same database concurrently: query
// execution takes the catalog in shared (read) mode, DDL (create /
// register / drop) takes it exclusively, and the LineageManager interns
// nodes thread-safely, so concurrent Query() calls need no external
// locking. Each session carries its own planner knobs — most importantly
// `parallelism`, which selects the serial path (1), hardware concurrency
// (0) or an explicit worker count for the morsel drivers.
#ifndef TPDB_EXEC_SESSION_H_
#define TPDB_EXEC_SESSION_H_

#include <string>

#include "api/database.h"
#include "api/planner.h"
#include "obs/trace.h"

namespace tpdb {

/// Per-session execution knobs. One set of knobs exists (the planner's);
/// a session simply carries its own copy — most importantly
/// `parallelism`: 1 = serial (bit-for-bit the pre-exec planner),
/// 0 = hardware concurrency, n > 1 = explicit worker count.
using SessionOptions = PlannerOptions;

/// A lightweight, copyable view: sessions hold no catalog state of their
/// own, only options. The database must outlive every session.
class Session {
 public:
  explicit Session(TPDatabase* db, SessionOptions options = {});

  TPDatabase* database() const { return db_; }
  const SessionOptions& options() const { return options_; }

  /// Parses, plans and executes one query under this session's options.
  StatusOr<TPRelation> Query(const std::string& text) const;

  /// Executes an already-built logical plan.
  StatusOr<TPRelation> Execute(const LogicalPlan& plan) const;

  /// Plans and runs `text`, rendering the logical tree, the lowered
  /// pipeline and — for parallel runs — the per-worker timings.
  StatusOr<std::string> Explain(const std::string& text) const;

  /// One traced execution of `text`: the trace's span tree (parse →
  /// optimize → execute → one span per physical node) and the physical
  /// plan rendering come from the SAME run, reading the same NodeStats —
  /// the per-node actuals in both views are identical by construction.
  struct TraceResult {
    obs::TraceContext trace;
    std::string physical_plan;  ///< "est | actual" tree of this run
    uint64_t rows = 0;
  };
  StatusOr<TraceResult> Trace(const std::string& text,
                              uint64_t trace_id = 0) const;

 private:
  TPDatabase* db_;
  SessionOptions options_;
};

}  // namespace tpdb

#endif  // TPDB_EXEC_SESSION_H_
