// ExecContext: the per-query handle onto the parallel runtime — the pool,
// the parallelism/morsel knobs, and the per-worker timing registry that
// engine/explain renders.
#ifndef TPDB_EXEC_EXEC_CONTEXT_H_
#define TPDB_EXEC_EXEC_CONTEXT_H_

#include <mutex>
#include <vector>

#include "engine/explain.h"
#include "exec/morsel.h"
#include "exec/thread_pool.h"

namespace tpdb {

/// Knobs of the parallel execution runtime.
struct ExecOptions {
  /// Worker threads: 1 = serial (the pre-exec code path, bit-for-bit),
  /// 0 = ThreadPool::HardwareParallelism().
  int parallelism = 0;
  /// Tuples per morsel handed to a worker.
  size_t morsel_size = kDefaultMorselSize;
  /// Driving inputs smaller than this run serially even when parallelism
  /// > 1 (task setup would dominate).
  size_t min_parallel_rows = 512;
};

/// Per-query execution state shared by the parallel drivers.
class ExecContext {
 public:
  /// `pool` may be null, in which case tasks run on the calling thread.
  ExecContext(ThreadPool* pool, ExecOptions options);

  ThreadPool* pool() const { return pool_; }
  const ExecOptions& options() const { return options_; }

  /// Resolved worker count (>= 1; 0 in the options means hardware).
  int parallelism() const { return parallelism_; }

  /// True iff a driver with `driving_rows` input tuples should go parallel.
  bool ShouldParallelize(size_t driving_rows) const {
    return parallelism_ > 1 && driving_rows >= options_.min_parallel_rows;
  }

  /// Records one finished task of the current thread (pool worker or the
  /// session thread helping). Thread-safe.
  void RecordTask(uint64_t rows, double seconds);

  /// Per-worker aggregates collected so far, sorted by worker index (the
  /// session thread reports as worker -1).
  std::vector<WorkerStats> CollectWorkerStats() const;

 private:
  ThreadPool* pool_;
  ExecOptions options_;
  int parallelism_;
  mutable std::mutex mu_;
  std::vector<WorkerStats> workers_;  // sparse, keyed by worker index
};

}  // namespace tpdb

#endif  // TPDB_EXEC_EXEC_CONTEXT_H_
