// Morsel partitioning: splits materialized tables and TP relations into
// fixed-size chunks the scheduler hands to workers.
//
// Two partitioners:
//   - contiguous morsels (MakeMorsels / SliceRelation) — used by the
//     parallel joins and pipelines, where concatenating the per-morsel
//     outputs in morsel order reproduces the serial emit order exactly
//     (window pipelines emit per driving tuple, in driving-input order);
//   - hash partitioning (HashPartitionRelation) — used by the parallel set
//     operations, whose θ is equality on all fact columns: tuples that can
//     interact land in the same partition, so partition pairs (r_i, s_i)
//     run completely independent set-op pipelines.
#ifndef TPDB_EXEC_MORSEL_H_
#define TPDB_EXEC_MORSEL_H_

#include <vector>

#include "engine/row.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Default number of tuples per morsel.
inline constexpr size_t kDefaultMorselSize = 1024;

/// A contiguous chunk [begin, end) of a table or relation.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// Splits [0, n) into chunks of ~`morsel_size` tuples. With `max_morsels`
/// > 0 the chunk size grows instead of exceeding that many chunks (a cap
/// used by drivers that pay a per-morsel setup cost, e.g. re-building the
/// join's probe partition). n == 0 yields no morsels.
std::vector<Morsel> MakeMorsels(size_t n, size_t morsel_size,
                                size_t max_morsels = 0);

/// Copies tuples [m.begin, m.end) of `rel` into a fresh relation bound to
/// the same manager (same name and fact schema).
TPRelation SliceRelation(const TPRelation& rel, const Morsel& m);

/// Order-independent hash of a fact row (combines Datum::Hash per column).
uint64_t HashFactRow(const Row& fact);

/// Splits `rel` into `parts` relations by fact-row hash. Deterministic for
/// a given `parts`; every tuple lands in exactly one partition, and tuples
/// with equal facts share a partition.
std::vector<TPRelation> HashPartitionRelation(const TPRelation& rel,
                                              size_t parts);

}  // namespace tpdb

#endif  // TPDB_EXEC_MORSEL_H_
