// Parallel drivers for the hot TP operators, built on the morsel
// partitioners and the work-stealing pool:
//
//   - ParallelTPJoin     — runs each window pipeline of a lineage-aware
//     join over contiguous morsels of its driving input (r for the
//     r-driven pipeline, s for the s-driven one). Window pipelines emit
//     per driving tuple in driving-input order, so concatenating the
//     per-morsel outputs in morsel order reproduces the serial join's
//     tuple sequence exactly.
//   - ParallelTPSetOp    — hash-partitions both inputs on the full fact
//     row (set-op θ is equality on all fact columns) and runs fully
//     independent pipeline pairs per partition. Contents match the serial
//     operator element-wise; tuple order is the deterministic partition
//     order instead of the serial emit order.
//   - ParallelPipeline   — splits a materialized table into morsels, runs
//     a caller-built row-local operator chain (filter / project /
//     probability threshold) over each morsel, and merges the outputs in
//     morsel order (ordered merge: byte-identical to the serial pipeline).
//
// Every driver degrades to the serial operator when the context says the
// input is too small or parallelism is 1, and records per-worker timings
// into the ExecContext for engine/explain.
#ifndef TPDB_EXEC_PARALLEL_H_
#define TPDB_EXEC_PARALLEL_H_

#include <functional>
#include <string>

#include "engine/vector/batch_operator.h"
#include "exec/exec_context.h"
#include "exec/time_partition.h"
#include "tp/operators.h"
#include "tp/set_ops.h"

namespace tpdb {

/// Parallel TPJoin. Falls back to the serial TPJoin for the temporal-
/// alignment strategy and for inputs below the context's parallel
/// threshold. Results are element-wise AND order-identical to TPJoin.
/// With overlap_algorithm == kSweep the join runs time-partitioned
/// (exec/time_partition.h) and, when `report` is non-null, fills it with
/// per-slice rows and active-set high-water marks for Explain.
StatusOr<TPRelation> ParallelTPJoin(ExecContext* ctx, TPJoinKind kind,
                                    const TPRelation& r, const TPRelation& s,
                                    const JoinCondition& theta,
                                    const TPJoinOptions& options = {},
                                    TimePartitionReport* report = nullptr);

/// Parallel set operation. Falls back to the serial TPSetOp below the
/// parallel threshold. Results are element-wise identical to TPSetOp;
/// tuple order is the (deterministic) hash-partition order.
StatusOr<TPRelation> ParallelTPSetOp(ExecContext* ctx, TPSetOpKind kind,
                                     const TPRelation& r, const TPRelation& s,
                                     std::string result_name = "");

/// Spec forms — the physical-plan executors construct the spec from a
/// PhysTPJoin / PhysTPSetOp node and dispatch here when a context is live.
StatusOr<TPRelation> ParallelTPJoin(ExecContext* ctx, const TPJoinSpec& spec,
                                    const TPRelation& r, const TPRelation& s,
                                    TimePartitionReport* report = nullptr);
StatusOr<TPRelation> ParallelTPSetOp(ExecContext* ctx,
                                     const TPSetOpSpec& spec,
                                     const TPRelation& r,
                                     const TPRelation& s);

/// Builds one instance of a row-local operator chain over `source` (a scan
/// of one morsel). Must be safe to call concurrently.
using PipelineFactory =
    std::function<StatusOr<OperatorPtr>(OperatorPtr source)>;

/// Runs `factory`'s chain over every morsel of `input` and merges the
/// per-morsel outputs in morsel order. The chain must be row-local
/// (filter / project — no sort, limit or aggregation), which makes the
/// merged table byte-identical to a serial run of the same chain.
StatusOr<Table> ParallelPipeline(ExecContext* ctx, const Table& input,
                                 const PipelineFactory& factory);

/// Builds the batch source for morsel `i` (a TableBatchScan over a row
/// range, a SegmentBatchScan over a segment range, …). Must be safe to
/// call concurrently.
using BatchSourceFactory =
    std::function<StatusOr<vec::BatchOperatorPtr>(size_t morsel)>;

/// Builds one instance of a row-local batch operator chain over `source`.
/// Must be safe to call concurrently (compiled predicates carry per-batch
/// scratch state, so every morsel gets its own chain).
using BatchChainFactory =
    std::function<StatusOr<vec::BatchOperatorPtr>(vec::BatchOperatorPtr)>;

/// Runs `chain` over every one of `num_morsels` independent batch sources
/// and merges the materialized per-morsel outputs in morsel order. The
/// chain must be row-local (filter / project / probability threshold — no
/// limit or aggregation), which makes the merged table byte-identical to
/// one serial run over the concatenated sources.
StatusOr<Table> ParallelBatchPipeline(ExecContext* ctx, size_t num_morsels,
                                      const BatchSourceFactory& source,
                                      const BatchChainFactory& chain);

}  // namespace tpdb

#endif  // TPDB_EXEC_PARALLEL_H_
