// Time-partitioned parallel sweep execution: range-partitions the time
// axis into disjoint slices and runs one independent sweep-line join
// (tp/sweep_join.h) per slice on the ThreadPool.
//
// Slice boundaries are equi-depth quantiles of the interval-start
// distribution — taken from segment zone-map ts_min histograms when a
// relation has a cold columnar backing, from the tuple starts otherwise.
// A tuple spanning a boundary is replicated into every slice its interval
// overlaps; emitted windows are deduplicated by the slice-owns-window-start
// rule (a slice only emits windows starting at or after its lower bound),
// which needs no hashing: a window's start lies in exactly one slice, and
// both tuples of its pair are replicated there, because the start lies
// inside both intervals.
//
// After the per-slice sweeps, the overlapping windows are regrouped per
// driving tuple (concatenating slices in order preserves the per-rid
// window-start order), and the LAWAU/LAWAN/emit tail of the pipeline runs
// in parallel over contiguous rid ranges, absorbed in rid order — so the
// result is element-wise AND order-identical to the serial kSweep join.
// Unmatched detection is global: only a rid with no window in ANY slice
// yields the full-interval unmatched window.
#ifndef TPDB_EXEC_TIME_PARTITION_H_
#define TPDB_EXEC_TIME_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "tp/operators.h"
#include "tp/set_ops.h"
#include "tp/sweep_join.h"

namespace tpdb {

/// Execution counters of one time slice.
struct TimeSliceStats {
  TimePoint lo = 0;        ///< slice bounds [lo, hi)
  TimePoint hi = 0;
  uint64_t r_rows = 0;     ///< driving-side tuples assigned (incl. replicas)
  uint64_t s_rows = 0;
  uint64_t windows = 0;    ///< overlapping windows this slice emitted
  uint64_t active_max = 0;
};

/// What a time-partitioned execution did — surfaced in Explain (per-slice
/// rows + active-set high-water marks) and the tpdb_join_sweep_* metrics.
/// A join running both pipelines (full outer) reports the r-driven and
/// s-driven slices back to back.
struct TimePartitionReport {
  int slices = 0;
  uint64_t replicated = 0;  ///< extra tuple assignments beyond one per tuple
  uint64_t endpoints = 0;
  uint64_t active_max = 0;  ///< max across slices
  std::vector<TimeSliceStats> per_slice;
};

/// Picks at most `target - 1` interior boundaries as equi-depth quantiles
/// of the combined interval-start distribution (zone-map ts_min weighted by
/// segment rows when a cold backing exists, exact tuple starts otherwise).
/// The boundary count is halved while boundary-spanning replication would
/// exceed half the input — all-overlapping workloads degenerate to a
/// single slice (empty result) instead of replicating everything
/// everywhere.
std::vector<TimePoint> ChooseTimeSlices(const TPRelation& r,
                                        const TPRelation& s, int target);

/// Time-partitioned ParallelTPJoin body: element-wise and order-identical
/// to TPJoin(kind, …) with overlap_algorithm = kSweep. `options.time_slices`
/// caps the slice count (0 = the context's parallelism).
StatusOr<TPRelation> TimePartitionedTPJoin(
    ExecContext* ctx, TPJoinKind kind, const TPRelation& r,
    const TPRelation& s, const JoinCondition& theta,
    const TPJoinOptions& options = {}, TimePartitionReport* report = nullptr);

/// The same driver for the set operations (θ = full-fact equality) —
/// element-wise identical to TPSetOp; used by ParallelTPSetOp when fact
/// skew degenerates its hash partitioning.
StatusOr<TPRelation> TimePartitionedTPSetOp(
    ExecContext* ctx, TPSetOpKind kind, const TPRelation& r,
    const TPRelation& s, std::string result_name = "",
    TimePartitionReport* report = nullptr);

}  // namespace tpdb

#endif  // TPDB_EXEC_TIME_PARTITION_H_
