#include "exec/exec_context.h"

#include <algorithm>

namespace tpdb {

ExecContext::ExecContext(ThreadPool* pool, ExecOptions options)
    : pool_(pool), options_(options) {
  if (options_.morsel_size == 0) options_.morsel_size = kDefaultMorselSize;
  int p = options_.parallelism;
  if (p <= 0) p = static_cast<int>(ThreadPool::HardwareParallelism());
  if (pool_ == nullptr) p = 1;
  parallelism_ = std::max(p, 1);
}

void ExecContext::RecordTask(uint64_t rows, double seconds) {
  const int worker = ThreadPool::CurrentWorker();
  std::lock_guard<std::mutex> lock(mu_);
  for (WorkerStats& w : workers_) {
    if (w.worker == worker) {
      ++w.tasks;
      w.rows += rows;
      w.seconds += seconds;
      return;
    }
  }
  workers_.push_back(WorkerStats{worker, 1, rows, seconds});
}

std::vector<WorkerStats> ExecContext::CollectWorkerStats() const {
  std::vector<WorkerStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = workers_;
  }
  std::sort(out.begin(), out.end(),
            [](const WorkerStats& a, const WorkerStats& b) {
              return a.worker < b.worker;
            });
  return out;
}

}  // namespace tpdb
