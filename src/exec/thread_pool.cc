#include "exec/thread_pool.h"

#include <chrono>

#include "obs/metrics.h"

namespace tpdb {

namespace {
/// Which pool owns the current thread, and its worker index there. The
/// index is only meaningful against `current_pool`: a worker of pool A
/// touching pool B (e.g. a task submitting to the shared Default() pool)
/// must be treated as an external thread by B.
thread_local const ThreadPool* current_pool = nullptr;
thread_local int current_worker = -1;

/// Pool-wide (all pools share these: in practice one Default() pool runs
/// the process) scheduling metrics.
struct PoolMetrics {
  obs::Counter* tasks = obs::MetricsRegistry::Default().counter(
      "tpdb_exec_tasks_total", "exec", "Tasks submitted to thread pools.");
  obs::Counter* steals = obs::MetricsRegistry::Default().counter(
      "tpdb_exec_steals_total", "exec",
      "Tasks taken from another worker's queue.");
  obs::Gauge* queue_depth = obs::MetricsRegistry::Default().gauge(
      "tpdb_exec_queue_depth", "exec",
      "Tasks currently queued and not yet taken.");
  obs::Histogram* task_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_exec_task_us", "exec", "Task run time in microseconds.");

  static const PoolMetrics& Get() {
    static const PoolMetrics m;
    return m;
  }
};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    threads_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TPDB_CHECK(task != nullptr);
  // Prefer the submitting worker's own queue (locality); round-robin from
  // external threads — including workers of OTHER pools, whose index
  // would be meaningless (or out of bounds) here.
  const size_t target =
      current_pool == this && current_worker >= 0
          ? static_cast<size_t>(current_worker)
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  // Count before publish: a taker decrements at take, so the counter must
  // never be behind the queue contents (underflow would read as "busy").
  pending_.fetch_add(1, std::memory_order_relaxed);
  PoolMetrics::Get().tasks->Add();
  PoolMetrics::Get().queue_depth->Add(1);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(size_t self) {
  // Own queue first; stealing happens from the back of a victim's queue.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      std::function<void()> task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return task;
    }
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      std::function<void()> task = std::move(q.tasks.back());
      q.tasks.pop_back();
      PoolMetrics::Get().steals->Add();
      return task;
    }
  }
  return nullptr;
}

bool ThreadPool::RunOneTask() {
  const size_t self = current_pool == this && current_worker >= 0
                          ? static_cast<size_t>(current_worker)
                          : 0;
  std::function<void()> task = TakeTask(self);
  if (task == nullptr) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  PoolMetrics::Get().queue_depth->Sub(1);
  {
    const obs::ScopedLatencyTimer timer(PoolMetrics::Get().task_us);
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  current_pool = this;
  current_worker = static_cast<int>(self);
  while (true) {
    std::function<void()> task = TakeTask(self);
    if (task != nullptr) {
      // pending_ counts *queued* tasks, so decrement at take: idle
      // workers must not spin while someone else runs a long task.
      pending_.fetch_sub(1, std::memory_order_relaxed);
      PoolMetrics::Get().queue_depth->Sub(1);
      {
        const obs::ScopedLatencyTimer timer(PoolMetrics::Get().task_us);
        task();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_) return;
    // Re-check under the wake lock: a Submit may have raced the scan.
    if (pending_.load(std::memory_order_relaxed) > 0) continue;
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

int ThreadPool::CurrentWorker() { return current_worker; }

ThreadPool* ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(HardwareParallelism());
  return pool;
}

size_t ThreadPool::HardwareParallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  TPDB_CHECK(fn != nullptr);
  if (pool_ == nullptr) {
    Finish(state_, fn());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->outstanding;
  }
  // The task captures the shared state, not the group: the group object may
  // be gone by the time a stolen task finishes.
  pool_->Submit(
      [state = state_, fn = std::move(fn)] { Finish(state, fn()); });
}

void TaskGroup::Finish(const std::shared_ptr<State>& state, Status status) {
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->first_error.ok() && !status.ok())
    state->first_error = std::move(status);
  if (state->outstanding > 0 && --state->outstanding == 0)
    state->done_cv.notify_all();
}

Status TaskGroup::Wait() {
  if (pool_ == nullptr) {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->first_error;
  }
  // Help: run queued tasks (this group's or anyone's — progress either way)
  // instead of blocking, so nested or saturated pools cannot deadlock.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->outstanding == 0) return state_->first_error;
    }
    if (pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->outstanding == 0) return state_->first_error;
    state_->done_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
}

}  // namespace tpdb
