#include "exec/time_partition.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "storage/segment.h"
#include "tp/lawan.h"
#include "tp/lawau.h"

namespace tpdb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PartitionMetrics {
  obs::Counter* slices = obs::MetricsRegistry::Default().counter(
      "tpdb_join_sweep_slices_total", "join",
      "Time slices executed by partitioned sweep joins.");
  obs::Counter* replicated = obs::MetricsRegistry::Default().counter(
      "tpdb_join_sweep_replicated_total", "join",
      "Boundary-spanning tuple replicas created by time partitioning.");

  static const PartitionMetrics& Get() {
    static const PartitionMetrics m;
    return m;
  }
};

/// Slice of time point `t`: bounds[i] is the (inclusive) lower bound of
/// slice i + 1, so slices are [.., bounds[0]), [bounds[0], bounds[1]), ...
size_t SliceOf(const std::vector<TimePoint>& bounds, TimePoint t) {
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), t) - bounds.begin());
}

/// Interior boundaries as equi-depth quantiles of the weighted start
/// histogram: the value at cumulative weight total*i/k, deduplicated and
/// kept strictly above the global minimum (a bound at the minimum would
/// only create an empty leading slice).
std::vector<TimePoint> BoundariesFor(
    const std::vector<std::pair<TimePoint, uint64_t>>& hist, uint64_t total,
    int k) {
  std::vector<TimePoint> bounds;
  uint64_t cum = 0;
  size_t pos = 0;
  for (int i = 1; i < k; ++i) {
    const uint64_t want = total * static_cast<uint64_t>(i) /
                          static_cast<uint64_t>(k);
    while (pos < hist.size() && cum + hist[pos].second <= want)
      cum += hist[pos++].second;
    if (pos >= hist.size()) break;
    const TimePoint b = hist[pos].first;
    if (b > hist.front().first && (bounds.empty() || b > bounds.back()))
      bounds.push_back(b);
  }
  return bounds;
}

/// Distributes the rows of one flattened side into per-slice id lists: a
/// row goes to every slice its interval [ts, te) overlaps. Rows are visited
/// in _ts order (sorted inputs skip the sort), so each slice's list is
/// already ordered by _ts — the per-slice sweeps never sort again.
void AssignSlices(const Table& table, int ts_col, int te_col, bool sorted,
                  const std::vector<TimePoint>& bounds,
                  std::vector<std::vector<uint32_t>>* ids,
                  uint64_t* replicated) {
  ids->assign(bounds.size() + 1, {});
  std::vector<uint32_t> order(table.rows.size());
  std::iota(order.begin(), order.end(), 0u);
  if (!sorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return table.rows[a][ts_col].AsInt64() <
                              table.rows[b][ts_col].AsInt64();
                     });
  }
  for (uint32_t idx : order) {
    const Row& row = table.rows[idx];
    const size_t first = SliceOf(bounds, row[ts_col].AsInt64());
    const size_t last = SliceOf(bounds, row[te_col].AsInt64() - 1);
    for (size_t sl = first; sl <= last; ++sl) (*ids)[sl].push_back(idx);
    *replicated += last - first;
  }
}

/// The per-rid-range tail of one pipeline: consumes the (already
/// LAWAU/LAWAN-extended) window stream and appends output tuples.
using WindowTailFn =
    std::function<Status(Operator* windows, const WindowLayout& layout,
                         TPRelation* partial)>;

/// Runs ONE window pipeline (r-driven orientation: `r` is the driving
/// side) time-partitioned: per-slice parallel sweeps, a serial regroup
/// into per-rid buckets (slice order preserves the per-rid window-start
/// order), then the LAWAU/LAWAN/emit tail in parallel over contiguous rid
/// ranges, absorbed in rid order. Output tuples land in `result` in
/// exactly the serial pipeline's order.
Status PartitionedWindows(ExecContext* ctx, const TPRelation& r,
                          const TPRelation& s, const JoinCondition& theta,
                          WindowStage stage, int slices_hint,
                          const WindowTailFn& tail, TPRelation* result,
                          TimePartitionReport* report) {
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta, r.fact_schema(), s.fact_schema());
  if (!matcher.ok()) return matcher.status();
  const WindowLayout layout(
      static_cast<int>(r.fact_schema().num_columns()),
      static_cast<int>(s.fact_schema().num_columns()));
  const Schema window_schema =
      layout.MakeSchema(r.fact_schema(), s.fact_schema());
  const int n_rf = layout.num_r_facts();
  const int n_sf = layout.num_s_facts();
  const Table r_table = r.ToTable();
  const Table s_table = s.ToTable();

  const int target = slices_hint > 0 ? slices_hint : ctx->parallelism();
  const std::vector<TimePoint> bounds = ChooseTimeSlices(r, s, target);
  const size_t k = bounds.size() + 1;

  uint64_t replicated = 0;
  std::vector<std::vector<uint32_t>> r_ids;
  std::vector<std::vector<uint32_t>> s_ids;
  AssignSlices(r_table, n_rf, n_rf + 1, r.sorted_by_ts(), bounds, &r_ids,
               &replicated);
  AssignSlices(s_table, n_sf, n_sf + 1, s.sorted_by_ts(), bounds, &s_ids,
               &replicated);

  // Phase A: one independent sweep per slice. Replica dedup is the
  // emit_lo rule — a slice only emits windows starting inside it.
  std::vector<std::vector<Row>> slice_windows(k);
  std::vector<SweepStats> slice_stats(k);
  TaskGroup sweeps(ctx->pool());
  for (size_t i = 0; i < k; ++i) {
    sweeps.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      SweepSpec spec;
      spec.r_table = &r_table;
      spec.s_table = &s_table;
      spec.layout = layout;
      spec.r_ids = &r_ids[i];
      spec.s_ids = &s_ids[i];
      spec.r_sorted = true;  // AssignSlices visits rows in _ts order
      spec.s_sorted = true;
      if (i > 0) spec.emit_lo = bounds[i - 1];
      RunSweep(spec, *matcher, &slice_windows[i], &slice_stats[i]);
      ctx->RecordTask(slice_windows[i].size(), SecondsSince(start));
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(sweeps.Wait());

  // Regroup per driving tuple, visiting slices in order: a rid's windows
  // concatenate to nondecreasing start, exactly the serial sweep's per-rid
  // order. Unmatched detection is global — a rid with no window in ANY
  // slice gets its full-interval unmatched fill-in from the source below.
  std::vector<std::vector<Row>> buckets(r_table.rows.size());
  for (size_t i = 0; i < k; ++i) {
    for (Row& row : slice_windows[i]) {
      const size_t rid = static_cast<size_t>(row[0].AsInt64());
      buckets[rid].push_back(std::move(row));
    }
    slice_windows[i].clear();
  }

  // Phase B: the LAWAU/LAWAN/emit tail over contiguous rid ranges. Both
  // operators are per-rid streaming, so a range run equals the matching
  // piece of the full-stream run; absorbing in range order reproduces the
  // serial emit order.
  const std::vector<Morsel> ranges =
      MakeMorsels(r_table.rows.size(), ctx->options().morsel_size,
                  static_cast<size_t>(ctx->parallelism()) * 4);
  std::vector<std::unique_ptr<TPRelation>> slots(ranges.size());
  TaskGroup tails(ctx->pool());
  for (size_t i = 0; i < ranges.size(); ++i) {
    tails.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      OperatorPtr root = std::make_unique<BucketWindowSource>(
          &buckets, ranges[i].begin, ranges[i].end, &r_table, layout,
          window_schema);
      if (stage != WindowStage::kOverlap)
        root = std::make_unique<Lawau>(std::move(root), layout);
      if (stage == WindowStage::kWuon)
        root = std::make_unique<Lawan>(std::move(root), layout, r.manager());
      auto partial = std::make_unique<TPRelation>(
          result->name(), result->fact_schema(), r.manager());
      TPDB_RETURN_IF_ERROR(tail(root.get(), layout, partial.get()));
      ctx->RecordTask(partial->size(), SecondsSince(start));
      slots[i] = std::move(partial);
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(tails.Wait());
  for (std::unique_ptr<TPRelation>& slot : slots) {
    TPDB_CHECK(slot != nullptr);
    TPDB_RETURN_IF_ERROR(result->Absorb(std::move(*slot)));
  }

  if (report != nullptr) {
    TimePoint data_lo = std::numeric_limits<TimePoint>::max();
    TimePoint data_hi = std::numeric_limits<TimePoint>::min();
    for (const Row& row : r_table.rows) {
      data_lo = std::min(data_lo, row[n_rf].AsInt64());
      data_hi = std::max(data_hi, row[n_rf + 1].AsInt64());
    }
    for (const Row& row : s_table.rows) {
      data_lo = std::min(data_lo, row[n_sf].AsInt64());
      data_hi = std::max(data_hi, row[n_sf + 1].AsInt64());
    }
    if (data_lo > data_hi) data_lo = data_hi = 0;
    report->slices += static_cast<int>(k);
    report->replicated += replicated;
    for (size_t i = 0; i < k; ++i) {
      TimeSliceStats ts;
      ts.lo = i == 0 ? data_lo : bounds[i - 1];
      ts.hi = i == k - 1 ? data_hi : bounds[i];
      ts.r_rows = r_ids[i].size();
      ts.s_rows = s_ids[i].size();
      ts.windows = slice_stats[i].windows;
      ts.active_max = slice_stats[i].active_max;
      report->per_slice.push_back(ts);
      report->endpoints += slice_stats[i].endpoints;
      report->active_max =
          std::max(report->active_max, slice_stats[i].active_max);
    }
  }
  const PartitionMetrics& m = PartitionMetrics::Get();
  m.slices->Add(k);
  m.replicated->Add(replicated);
  return Status::OK();
}

}  // namespace

std::vector<TimePoint> ChooseTimeSlices(const TPRelation& r,
                                        const TPRelation& s, int target) {
  if (target <= 1) return {};

  // Weighted start histogram. Cold relations contribute one point per
  // segment (zone-map ts_min, weighted by segment rows) so slice choice
  // never decodes a segment; warm relations contribute exact starts.
  std::vector<std::pair<TimePoint, uint64_t>> hist;
  const auto gather = [&hist](const TPRelation& rel) {
    const std::shared_ptr<const storage::SegmentedTable>& cold =
        rel.cold_storage();
    if (cold != nullptr && !cold->segments().empty()) {
      for (const storage::Segment& seg : cold->segments())
        hist.emplace_back(seg.zone.ts_min, seg.num_rows);
    } else {
      for (const TPTuple& t : rel.tuples())
        hist.emplace_back(t.interval.start, 1);
    }
  };
  gather(r);
  gather(s);
  if (hist.empty()) return {};
  std::sort(hist.begin(), hist.end());
  uint64_t total = 0;
  for (const auto& [t, w] : hist) total += w;
  if (total == 0) return {};

  // Halve the slice count while boundary-spanning replication would exceed
  // half the input: long-interval / all-overlapping workloads degrade
  // toward a single slice instead of replicating every tuple everywhere.
  const uint64_t input = r.size() + s.size();
  for (int k = target; k > 1; k /= 2) {
    const std::vector<TimePoint> bounds = BoundariesFor(hist, total, k);
    if (bounds.empty()) return {};
    uint64_t replicas = 0;
    for (const TPRelation* rel : {&r, &s}) {
      for (const TPTuple& t : rel->tuples())
        replicas += SliceOf(bounds, t.interval.end - 1) -
                    SliceOf(bounds, t.interval.start);
    }
    if (replicas * 2 < input) return bounds;
  }
  return {};
}

StatusOr<TPRelation> TimePartitionedTPJoin(ExecContext* ctx, TPJoinKind kind,
                                           const TPRelation& r,
                                           const TPRelation& s,
                                           const JoinCondition& theta,
                                           const TPJoinOptions& options,
                                           TimePartitionReport* report) {
  TPDB_CHECK(ctx != nullptr);
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  if (options.validate_inputs) {
    TaskGroup validation(ctx->pool());
    validation.Spawn([&r] { return r.Validate(); });
    validation.Spawn([&s] { return s.Validate(); });
    TPDB_RETURN_IF_ERROR(validation.Wait());
  }
  std::string name = options.result_name;
  if (name.empty())
    name = r.name() + "_" + TPJoinKindName(kind) + "_" + s.name();
  TPRelation result(std::move(name),
                    TPJoinOutputSchema(kind, r.fact_schema(), s.fact_schema()),
                    r.manager());
  LineageManager* manager = r.manager();
  const WindowStage stage =
      kind == TPJoinKind::kInner ? WindowStage::kOverlap : WindowStage::kWuon;

  const JoinPipelines pipelines = LineageAwareJoinPipelines(kind);
  if (pipelines.r_driven) {
    TPDB_RETURN_IF_ERROR(PartitionedWindows(
        ctx, r, s, theta, stage, options.time_slices,
        [&](Operator* windows, const WindowLayout& layout,
            TPRelation* partial) {
          return EmitJoinWindows(kind, /*s_driven=*/false, windows, layout,
                                 manager, partial);
        },
        &result, report));
  }
  if (pipelines.s_driven) {
    TPDB_RETURN_IF_ERROR(PartitionedWindows(
        ctx, s, r, SwapJoinCondition(theta), stage, options.time_slices,
        [&](Operator* windows, const WindowLayout& layout,
            TPRelation* partial) {
          return EmitJoinWindows(kind, /*s_driven=*/true, windows, layout,
                                 manager, partial);
        },
        &result, report));
  }
  return result;
}

StatusOr<TPRelation> TimePartitionedTPSetOp(ExecContext* ctx,
                                            TPSetOpKind kind,
                                            const TPRelation& r,
                                            const TPRelation& s,
                                            std::string result_name,
                                            TimePartitionReport* report) {
  TPDB_CHECK(ctx != nullptr);
  StatusOr<JoinCondition> theta = SetOpCondition(r, s);
  if (!theta.ok()) return theta.status();
  if (result_name.empty())
    result_name = r.name() + "_" + TPSetOpKindName(kind) + "_" + s.name();
  TPRelation result(std::move(result_name), r.fact_schema(), r.manager());
  LineageManager* manager = r.manager();

  TPDB_RETURN_IF_ERROR(PartitionedWindows(
      ctx, r, s, *theta, WindowStage::kWuon, /*slices_hint=*/0,
      [&](Operator* windows, const WindowLayout& layout, TPRelation* partial) {
        return EmitSetOpWindows(kind, /*swapped=*/false, windows, layout,
                                manager, partial);
      },
      &result, report));
  if (SetOpHasSDrivenPipeline(kind)) {
    TPDB_RETURN_IF_ERROR(PartitionedWindows(
        ctx, s, r, SwapJoinCondition(*theta), WindowStage::kWuon,
        /*slices_hint=*/0,
        [&](Operator* windows, const WindowLayout& layout,
            TPRelation* partial) {
          return EmitSetOpWindows(kind, /*swapped=*/true, windows, layout,
                                  manager, partial);
        },
        &result, report));
  }
  return result;
}

}  // namespace tpdb
