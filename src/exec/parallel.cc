#include "exec/parallel.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "engine/materialize.h"
#include "engine/scan.h"
#include "engine/vector/adapters.h"

namespace tpdb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One output slot per task; filled out of order, merged in slot order.
using PartialSlots = std::vector<std::unique_ptr<TPRelation>>;

Status MergeSlots(PartialSlots* slots, TPRelation* result) {
  for (std::unique_ptr<TPRelation>& slot : *slots) {
    TPDB_CHECK(slot != nullptr);  // every task fills its slot on success
    TPDB_RETURN_IF_ERROR(result->Absorb(std::move(*slot)));
  }
  return Status::OK();
}

}  // namespace

StatusOr<TPRelation> ParallelTPJoin(ExecContext* ctx, TPJoinKind kind,
                                    const TPRelation& r, const TPRelation& s,
                                    const JoinCondition& theta,
                                    const TPJoinOptions& options,
                                    TimePartitionReport* report) {
  TPDB_CHECK(ctx != nullptr);
  const JoinPipelines pipelines = LineageAwareJoinPipelines(kind);
  const size_t driving_rows =
      std::max(pipelines.r_driven ? r.size() : size_t{0},
               pipelines.s_driven ? s.size() : size_t{0});
  if (options.strategy != JoinStrategy::kLineageAware ||
      !ctx->ShouldParallelize(driving_rows))
    return TPJoin(kind, r, s, theta, options);

  // The sweep algorithm parallelizes along the time axis, not the driving
  // input: disjoint time slices, one sweep each (exec/time_partition.h).
  if (options.overlap_algorithm == OverlapAlgorithm::kSweep)
    return TimePartitionedTPJoin(ctx, kind, r, s, theta, options, report);

  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  std::string name = options.result_name;
  if (name.empty())
    name = r.name() + "_" + TPJoinKindName(kind) + "_" + s.name();
  const Schema out_schema =
      TPJoinOutputSchema(kind, r.fact_schema(), s.fact_schema());

  if (options.validate_inputs) {
    // Both invariant checks are independent — overlap them.
    TaskGroup validation(ctx->pool());
    validation.Spawn([&r] { return r.Validate(); });
    validation.Spawn([&s] { return s.Validate(); });
    TPDB_RETURN_IF_ERROR(validation.Wait());
  }

  // Fixed-size morsels, capped at a small multiple of the worker count.
  // The probe side of each pipeline is flattened + partitioned ONCE and
  // shared read-only across the morsel plans, so extra morsels only cost
  // their own slice, not a rebuild.
  const size_t max_morsels = static_cast<size_t>(ctx->parallelism()) * 4;
  const std::vector<Morsel> r_morsels =
      pipelines.r_driven
          ? MakeMorsels(r.size(), ctx->options().morsel_size, max_morsels)
          : std::vector<Morsel>{};
  const std::vector<Morsel> s_morsels =
      pipelines.s_driven
          ? MakeMorsels(s.size(), ctx->options().morsel_size, max_morsels)
          : std::vector<Morsel>{};

  // kAuto's cost model would pick per morsel; pin the partitioned plan
  // (the one whose build is shareable — and the paper's NJ choice).
  const OverlapAlgorithm algorithm =
      options.overlap_algorithm == OverlapAlgorithm::kAuto
          ? OverlapAlgorithm::kPartitioned
          : options.overlap_algorithm;

  OverlapProbeSide s_probe;  // probe side of the r-driven pipeline
  if (pipelines.r_driven) {
    StatusOr<OverlapProbeSide> probe =
        MakeWindowProbeSide(s, r.fact_schema(), theta, algorithm);
    if (!probe.ok()) return probe.status();
    s_probe = std::move(*probe);
  }
  OverlapProbeSide r_probe;  // probe side of the s-driven pipeline
  if (pipelines.s_driven) {
    StatusOr<OverlapProbeSide> probe = MakeWindowProbeSide(
        r, s.fact_schema(), SwapJoinCondition(theta), algorithm);
    if (!probe.ok()) return probe.status();
    r_probe = std::move(*probe);
  }

  PartialSlots r_slots(r_morsels.size());
  PartialSlots s_slots(s_morsels.size());

  TaskGroup group(ctx->pool());
  for (size_t i = 0; i < r_morsels.size(); ++i) {
    group.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      const TPRelation slice = SliceRelation(r, r_morsels[i]);
      auto partial =
          std::make_unique<TPRelation>(name, out_schema, r.manager());
      TPDB_RETURN_IF_ERROR(RunLineageAwareJoinPipeline(
          kind, /*s_driven=*/false, slice, s, theta, algorithm,
          partial.get(), &s_probe));
      ctx->RecordTask(partial->size(), SecondsSince(start));
      r_slots[i] = std::move(partial);
      return Status::OK();
    });
  }
  for (size_t i = 0; i < s_morsels.size(); ++i) {
    group.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      const TPRelation slice = SliceRelation(s, s_morsels[i]);
      auto partial =
          std::make_unique<TPRelation>(name, out_schema, r.manager());
      TPDB_RETURN_IF_ERROR(RunLineageAwareJoinPipeline(
          kind, /*s_driven=*/true, r, slice, theta, algorithm,
          partial.get(), &r_probe));
      ctx->RecordTask(partial->size(), SecondsSince(start));
      s_slots[i] = std::move(partial);
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(group.Wait());

  // Serial emit order: the whole r-driven pipeline, then the s-driven one.
  TPRelation result(std::move(name), out_schema, r.manager());
  TPDB_RETURN_IF_ERROR(MergeSlots(&r_slots, &result));
  TPDB_RETURN_IF_ERROR(MergeSlots(&s_slots, &result));
  return result;
}

StatusOr<TPRelation> ParallelTPSetOp(ExecContext* ctx, TPSetOpKind kind,
                                     const TPRelation& r, const TPRelation& s,
                                     std::string result_name) {
  TPDB_CHECK(ctx != nullptr);
  if (!ctx->ShouldParallelize(std::max(r.size(), s.size())))
    return TPSetOp(kind, r, s, std::move(result_name));

  if (result_name.empty())
    result_name = r.name() + "_" + TPSetOpKindName(kind) + "_" + s.name();

  // Deterministic for a given parallelism level: partition count depends
  // only on the knob, and tuples are routed by fact hash.
  const size_t parts = static_cast<size_t>(ctx->parallelism()) * 2;
  const std::vector<TPRelation> r_parts = HashPartitionRelation(r, parts);
  const std::vector<TPRelation> s_parts = HashPartitionRelation(s, parts);

  // Fact hashing degenerates under heavy fact skew (one hot fact chain
  // lands in one partition and serializes the run); time partitioning
  // splits a hot chain across slices instead.
  size_t largest = 0;
  for (size_t i = 0; i < parts; ++i)
    largest = std::max(largest, r_parts[i].size() + s_parts[i].size());
  if (largest * 2 > r.size() + s.size())
    return TimePartitionedTPSetOp(ctx, kind, r, s, std::move(result_name));

  const bool s_driven = SetOpHasSDrivenPipeline(kind);
  PartialSlots r_slots(parts);
  PartialSlots s_slots(s_driven ? parts : 0);

  TaskGroup group(ctx->pool());
  for (size_t i = 0; i < parts; ++i) {
    group.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      auto partial = std::make_unique<TPRelation>(
          result_name, r.fact_schema(), r.manager());
      TPDB_RETURN_IF_ERROR(RunSetOpPipeline(
          kind, /*s_driven=*/false, r_parts[i], s_parts[i], partial.get()));
      ctx->RecordTask(partial->size(), SecondsSince(start));
      r_slots[i] = std::move(partial);
      return Status::OK();
    });
    if (s_driven) {
      group.Spawn([&, i]() -> Status {
        const Clock::time_point start = Clock::now();
        auto partial = std::make_unique<TPRelation>(
            result_name, r.fact_schema(), r.manager());
        TPDB_RETURN_IF_ERROR(RunSetOpPipeline(
            kind, /*s_driven=*/true, r_parts[i], s_parts[i], partial.get()));
        ctx->RecordTask(partial->size(), SecondsSince(start));
        s_slots[i] = std::move(partial);
        return Status::OK();
      });
    }
  }
  TPDB_RETURN_IF_ERROR(group.Wait());

  TPRelation result(std::move(result_name), r.fact_schema(), r.manager());
  TPDB_RETURN_IF_ERROR(MergeSlots(&r_slots, &result));
  TPDB_RETURN_IF_ERROR(MergeSlots(&s_slots, &result));
  return result;
}

StatusOr<Table> ParallelPipeline(ExecContext* ctx, const Table& input,
                                 const PipelineFactory& factory) {
  TPDB_CHECK(ctx != nullptr);
  TPDB_CHECK(factory != nullptr);

  const auto run_serial = [&]() -> StatusOr<Table> {
    StatusOr<OperatorPtr> op =
        factory(std::make_unique<TableScan>(&input));
    if (!op.ok()) return op.status();
    return Materialize(op->get());
  };
  if (!ctx->ShouldParallelize(input.rows.size())) return run_serial();

  const std::vector<Morsel> morsels =
      MakeMorsels(input.rows.size(), ctx->options().morsel_size);
  if (morsels.size() < 2) return run_serial();

  std::vector<Table> slots(morsels.size());
  TaskGroup group(ctx->pool());
  for (size_t i = 0; i < morsels.size(); ++i) {
    group.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      StatusOr<OperatorPtr> op = factory(std::make_unique<TableScan>(
          &input, morsels[i].begin, morsels[i].end));
      if (!op.ok()) return op.status();
      slots[i] = Materialize(op->get());
      ctx->RecordTask(slots[i].rows.size(), SecondsSince(start));
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(group.Wait());

  // Ordered merge: morsel order == scan order == the serial row order.
  Table out;
  out.schema = slots[0].schema;
  size_t total = 0;
  for (const Table& t : slots) total += t.rows.size();
  out.rows.reserve(total);
  for (Table& t : slots)
    for (Row& row : t.rows) out.rows.push_back(std::move(row));
  return out;
}

StatusOr<Table> ParallelBatchPipeline(ExecContext* ctx, size_t num_morsels,
                                      const BatchSourceFactory& source,
                                      const BatchChainFactory& chain) {
  TPDB_CHECK(ctx != nullptr);
  TPDB_CHECK(source != nullptr);
  TPDB_CHECK(chain != nullptr);
  TPDB_CHECK_GT(num_morsels, 0u);

  std::vector<Table> slots(num_morsels);
  TaskGroup group(ctx->pool());
  for (size_t i = 0; i < num_morsels; ++i) {
    group.Spawn([&, i]() -> Status {
      const Clock::time_point start = Clock::now();
      StatusOr<vec::BatchOperatorPtr> src = source(i);
      if (!src.ok()) return src.status();
      StatusOr<vec::BatchOperatorPtr> op = chain(std::move(*src));
      if (!op.ok()) return op.status();
      slots[i] = vec::MaterializeBatches(op->get());
      ctx->RecordTask(slots[i].rows.size(), SecondsSince(start));
      return Status::OK();
    });
  }
  TPDB_RETURN_IF_ERROR(group.Wait());

  // Ordered merge: morsel order == source order == the serial row order.
  Table out;
  out.schema = slots[0].schema;
  size_t total = 0;
  for (const Table& t : slots) total += t.rows.size();
  out.rows.reserve(total);
  for (Table& t : slots)
    for (Row& row : t.rows) out.rows.push_back(std::move(row));
  return out;
}

StatusOr<TPRelation> ParallelTPJoin(ExecContext* ctx, const TPJoinSpec& spec,
                                    const TPRelation& r, const TPRelation& s,
                                    TimePartitionReport* report) {
  return ParallelTPJoin(ctx, spec.kind, r, s, spec.theta, spec.options,
                        report);
}

StatusOr<TPRelation> ParallelTPSetOp(ExecContext* ctx,
                                     const TPSetOpSpec& spec,
                                     const TPRelation& r,
                                     const TPRelation& s) {
  return ParallelTPSetOp(ctx, spec.kind, r, s, spec.result_name);
}

}  // namespace tpdb
