#include "api/database.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace tpdb {

StatusOr<TPRelation*> TPDatabase::CreateRelation(const std::string& name,
                                                 Schema fact_schema) {
  if (relations_.count(name) > 0)
    return Status::AlreadyExists("relation '" + name + "' already exists");
  auto rel =
      std::make_unique<TPRelation>(name, std::move(fact_schema), &manager_);
  TPRelation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Status TPDatabase::Register(TPRelation relation) {
  if (relation.manager() != &manager_)
    return Status::InvalidArgument(
        "relation '" + relation.name() +
        "' is bound to a different LineageManager");
  if (relations_.count(relation.name()) > 0)
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  const std::string name = relation.name();
  relations_.emplace(name,
                     std::make_unique<TPRelation>(std::move(relation)));
  return Status::OK();
}

StatusOr<TPRelation*> TPDatabase::Get(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end())
    return Status::NotFound("no relation named '" + name + "'");
  return it->second.get();
}

StatusOr<const TPRelation*> TPDatabase::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end())
    return Status::NotFound("no relation named '" + name + "'");
  return const_cast<const TPRelation*>(it->second.get());
}

Status TPDatabase::Drop(const std::string& name) {
  if (relations_.erase(name) == 0)
    return Status::NotFound("no relation named '" + name + "'");
  return Status::OK();
}

std::vector<std::string> TPDatabase::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

StatusOr<TPRelation> TPDatabase::Join(TPJoinKind kind,
                                      const std::string& left,
                                      const std::string& right,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options,
                                      const std::string& register_as) {
  StatusOr<TPRelation*> l = Get(left);
  if (!l.ok()) return l.status();
  StatusOr<TPRelation*> r = Get(right);
  if (!r.ok()) return r.status();
  TPJoinOptions opts = options;
  if (!register_as.empty()) opts.result_name = register_as;
  StatusOr<TPRelation> result = TPJoin(kind, **l, **r, theta, opts);
  if (!result.ok()) return result.status();
  if (!register_as.empty()) {
    TPDB_RETURN_IF_ERROR(Register(TPRelation(*result)));
  }
  return result;
}

namespace {

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(
                          static_cast<unsigned char>(c)));
  return out;
}

/// Tokenizes on whitespace, keeping "a=b,c=d" condition blobs intact.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

StatusOr<JoinCondition> ParseOnClause(const std::string& clause) {
  JoinCondition theta;
  for (const std::string& part : Split(clause, ',')) {
    const std::string item(Trim(part));
    if (item.empty())
      return Status::InvalidArgument("empty θ term in '" + clause + "'");
    const std::vector<std::string> sides = Split(item, '=');
    if (sides.size() == 1) {
      theta.equal_columns.emplace_back(item, item);
    } else if (sides.size() == 2) {
      theta.equal_columns.emplace_back(std::string(Trim(sides[0])),
                                       std::string(Trim(sides[1])));
    } else {
      return Status::InvalidArgument("malformed θ term '" + item + "'");
    }
  }
  return theta;
}

}  // namespace

StatusOr<TPRelation> TPDatabase::Query(const std::string& text) {
  const std::vector<std::string> tokens = Tokenize(text);
  if (tokens.size() < 3)
    return Status::InvalidArgument("query too short: '" + text + "'");

  // Set operations: <rel> UNION|INTERSECT|EXCEPT <rel>.
  if (tokens.size() == 3) {
    const std::string op = Upper(tokens[1]);
    StatusOr<TPRelation*> l = Get(tokens[0]);
    if (!l.ok()) return l.status();
    StatusOr<TPRelation*> r = Get(tokens[2]);
    if (!r.ok()) return r.status();
    if (op == "UNION") return TPUnion(**l, **r);
    if (op == "INTERSECT") return TPIntersect(**l, **r);
    if (op == "EXCEPT") return TPDifference(**l, **r);
    return Status::InvalidArgument("unknown set operation '" + tokens[1] +
                                   "'");
  }

  // Joins: <rel> [kind] JOIN <rel> ON <cond> [USING TA].
  size_t pos = 1;
  TPJoinKind kind = TPJoinKind::kInner;
  const std::string kind_token = Upper(tokens[pos]);
  if (kind_token != "JOIN") {
    if (kind_token == "INNER") kind = TPJoinKind::kInner;
    else if (kind_token == "LEFT") kind = TPJoinKind::kLeftOuter;
    else if (kind_token == "RIGHT") kind = TPJoinKind::kRightOuter;
    else if (kind_token == "FULL") kind = TPJoinKind::kFullOuter;
    else if (kind_token == "ANTI") kind = TPJoinKind::kAnti;
    else if (kind_token == "SEMI") kind = TPJoinKind::kSemi;
    else
      return Status::InvalidArgument("unknown join kind '" + tokens[pos] +
                                     "'");
    ++pos;
  }
  if (pos >= tokens.size() || Upper(tokens[pos]) != "JOIN")
    return Status::InvalidArgument("expected JOIN in '" + text + "'");
  ++pos;
  if (pos >= tokens.size())
    return Status::InvalidArgument("missing right relation in '" + text +
                                   "'");
  const std::string right = tokens[pos++];
  if (pos >= tokens.size() || Upper(tokens[pos]) != "ON")
    return Status::InvalidArgument("expected ON in '" + text + "'");
  ++pos;
  if (pos >= tokens.size())
    return Status::InvalidArgument("missing θ after ON in '" + text + "'");
  StatusOr<JoinCondition> theta = ParseOnClause(tokens[pos++]);
  if (!theta.ok()) return theta.status();

  TPJoinOptions options;
  if (pos + 1 < tokens.size() && Upper(tokens[pos]) == "USING" &&
      Upper(tokens[pos + 1]) == "TA") {
    options.strategy = JoinStrategy::kTemporalAlignment;
    pos += 2;
  }
  if (pos != tokens.size())
    return Status::InvalidArgument("trailing tokens in '" + text + "'");

  return Join(kind, tokens[0], right, *theta, options);
}

}  // namespace tpdb
