#include "api/database.h"

#include "api/parser.h"
#include "api/planner.h"

namespace tpdb {

StatusOr<TPRelation*> TPDatabase::CreateRelation(const std::string& name,
                                                 Schema fact_schema) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relations_.count(name) > 0)
    return Status::AlreadyExists("relation '" + name + "' already exists");
  auto rel =
      std::make_unique<TPRelation>(name, std::move(fact_schema), &manager_);
  TPRelation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  return ptr;
}

Status TPDatabase::Register(TPRelation&& relation) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relation.manager() != &manager_)
    return Status::InvalidArgument(
        "relation '" + relation.name() +
        "' is bound to a different LineageManager");
  if (relations_.count(relation.name()) > 0)
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  const std::string name = relation.name();
  relations_.emplace(name,
                     std::make_unique<TPRelation>(std::move(relation)));
  return Status::OK();
}

StatusOr<TPRelation*> TPDatabase::FindLocked(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end())
    return Status::NotFound("no relation named '" + name + "'");
  return it->second.get();
}

StatusOr<const TPRelation*> TPDatabase::FindLocked(
    const std::string& name) const {
  StatusOr<TPRelation*> rel = const_cast<TPDatabase*>(this)->FindLocked(name);
  if (!rel.ok()) return rel.status();
  return const_cast<const TPRelation*>(*rel);
}

StatusOr<TPRelation*> TPDatabase::Get(const std::string& name) {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return FindLocked(name);
}

StatusOr<const TPRelation*> TPDatabase::Get(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return FindLocked(name);
}

StatusOr<TPRelation*> TPDatabase::GetAssumingLocked(const std::string& name) {
  return FindLocked(name);
}

Status TPDatabase::Drop(const std::string& name) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relations_.erase(name) == 0)
    return Status::NotFound("no relation named '" + name + "'");
  return Status::OK();
}

std::vector<std::string> TPDatabase::RelationNames() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

StatusOr<TPRelation> TPDatabase::Join(TPJoinKind kind,
                                      const std::string& left,
                                      const std::string& right,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options,
                                      const std::string& register_as) {
  StatusOr<TPRelation> result = [&]() -> StatusOr<TPRelation> {
    // Hold the catalog for lookup + join so concurrent DDL cannot drop an
    // input mid-join; Register below takes the exclusive lock afterwards.
    const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    StatusOr<TPRelation*> l = FindLocked(left);
    if (!l.ok()) return l.status();
    StatusOr<TPRelation*> r = FindLocked(right);
    if (!r.ok()) return r.status();
    TPJoinOptions opts = options;
    if (!register_as.empty()) opts.result_name = register_as;
    return TPJoin(kind, **l, **r, theta, opts);
  }();
  if (!result.ok()) return result.status();
  if (!register_as.empty()) {
    TPDB_RETURN_IF_ERROR(Register(TPRelation(*result)));
  }
  return result;
}

StatusOr<TPRelation> TPDatabase::Query(const std::string& text) {
  StatusOr<LogicalPlan> plan = Plan(text);
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

StatusOr<LogicalPlan> TPDatabase::Plan(const std::string& text) const {
  StatusOr<ParsedStatement> stmt = ParseStatement(text);
  if (!stmt.ok()) return stmt.status();
  return BuildLogicalPlan(*stmt);
}

StatusOr<TPRelation> TPDatabase::Execute(const LogicalPlan& plan) {
  Planner planner(this);
  return planner.Execute(plan);
}

StatusOr<TPRelation> TPDatabase::Execute(const QueryBuilder& builder) {
  StatusOr<LogicalPlan> plan = builder.Build();
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

StatusOr<std::string> TPDatabase::Explain(const std::string& text) {
  StatusOr<LogicalPlan> plan = Plan(text);
  if (!plan.ok()) return plan.status();
  return Explain(*plan);
}

StatusOr<std::string> TPDatabase::Explain(const LogicalPlan& plan) {
  ExecStats stats;
  Planner planner(this);
  StatusOr<TPRelation> result = planner.Execute(plan, &stats);
  if (!result.ok()) return result.status();
  std::string out = "Logical plan:\n" + plan.ToString();
  if (!stats.physical_plan().empty())
    out += "\nPhysical plan (est | actual):\n" + stats.physical_plan();
  out += "\nLowered pipeline (bottom-up):\n" + stats.ToString();
  return out;
}

Status TPDatabase::SaveSnapshot(const std::string& path,
                                const storage::SnapshotOptions& options) {
  // Hold the catalog in shared mode for the whole save so DDL cannot
  // add or drop relations while the snapshot is being assembled.
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<const TPRelation*> relations;
  relations.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) relations.push_back(rel.get());
  return storage::SaveSnapshotFile(&manager_, relations, path, options);
}

Status TPDatabase::LoadSnapshot(const std::string& path,
                                const storage::SnapshotOptions& options) {
  // The whole load runs under the exclusive catalog lock, like any other
  // DDL: no Register/CreateRelation can take a snapshot name mid-load, so
  // the pre-flight clash check below stays authoritative and a rejected
  // load mutates nothing. (LoadSnapshotFile only touches the lineage
  // manager — its own lock — never the catalog, so this cannot deadlock.
  // Variable-name clashes are checked inside LoadSnapshotFile before the
  // first registration.)
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  {
    StatusOr<std::vector<std::string>> names =
        storage::ReadSnapshotRelationNames(path);
    if (!names.ok()) return names.status();
    for (const std::string& name : *names)
      if (relations_.count(name) > 0)
        return Status::AlreadyExists("cannot load snapshot: relation '" +
                                     name + "' already exists");
  }
  StatusOr<storage::LoadedSnapshot> loaded =
      storage::LoadSnapshotFile(&manager_, path, options);
  if (!loaded.ok()) return loaded.status();
  for (TPRelation& rel : loaded->relations) {
    const std::string name = rel.name();
    relations_.emplace(name, std::make_unique<TPRelation>(std::move(rel)));
  }
  return Status::OK();
}

}  // namespace tpdb
