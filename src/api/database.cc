#include "api/database.h"

#include <cinttypes>
#include <cstdio>

#include "api/parser.h"
#include "api/planner.h"
#include "common/logging.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "storage/compact/compactor.h"

namespace tpdb {

TPDatabase::~TPDatabase() {
  std::unique_lock<std::mutex> lock(compact_mu_);
  compact_cv_.wait(lock, [&] { return compactions_inflight_ == 0; });
}

StatusOr<TPRelation*> TPDatabase::CreateRelation(const std::string& name,
                                                 Schema fact_schema) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relations_.count(name) > 0)
    return Status::AlreadyExists("relation '" + name + "' already exists");
  auto rel =
      std::make_unique<TPRelation>(name, std::move(fact_schema), &manager_);
  TPRelation* ptr = rel.get();
  relations_.emplace(name, std::move(rel));
  if (wal_ != nullptr) {
    storage::WalRecord record;
    record.kind = storage::WalRecordKind::kCreateRelation;
    record.relation = name;
    record.fact_schema = ptr->fact_schema();
    StatusOr<uint64_t> seq = wal_->Append(std::move(record));
    if (!seq.ok()) {
      relations_.erase(name);  // not durable, so not created
      return seq.status();
    }
  }
  return ptr;
}

Status TPDatabase::Append(const std::string& relation,
                          std::vector<AppendRow> rows) {
  if (rows.empty()) return Status::OK();
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  StatusOr<TPRelation*> rel = FindLocked(relation);
  if (!rel.ok()) return rel.status();
  return AppendRowsLocked(*rel, std::move(rows), /*log=*/true);
}

Status TPDatabase::AppendRowsLocked(TPRelation* rel,
                                    std::vector<AppendRow> rows, bool log) {
  // Validate every row up front so the batch applies all-or-nothing:
  // AppendBase below cannot fail once these checks pass.
  for (size_t i = 0; i < rows.size(); ++i) {
    const AppendRow& row = rows[i];
    if (row.fact.size() != rel->fact_schema().num_columns())
      return Status::InvalidArgument(
          rel->name() + ": fact arity " + std::to_string(row.fact.size()) +
          " does not match schema arity " +
          std::to_string(rel->fact_schema().num_columns()));
    if (row.interval.empty())
      return Status::InvalidArgument("empty interval " +
                                     row.interval.ToString());
    if (row.prob < 0.0 || row.prob > 1.0)
      return Status::InvalidArgument("probability out of [0,1]: " +
                                     std::to_string(row.prob));
    for (const Datum& v : row.fact)
      if (v.type() == DatumType::kLineage)
        return Status::InvalidArgument(
            "lineage values cannot appear in base facts");
    if (row.var_name.empty()) continue;
    if (manager_.FindVariable(row.var_name).ok())
      return Status::AlreadyExists("variable '" + row.var_name +
                                   "' already exists");
    for (size_t j = 0; j < i; ++j)
      if (rows[j].var_name == row.var_name)
        return Status::InvalidArgument("duplicate variable name '" +
                                       row.var_name + "' in one append");
  }

  std::shared_ptr<const storage::SegmentedTable> cold = rel->cold_storage();
  const size_t first = rel->size();
  storage::WalRecord record;
  record.kind = storage::WalRecordKind::kAppendRows;
  record.relation = rel->name();
  record.rows.reserve(rows.size());
  for (AppendRow& row : rows) {
    storage::WalAppendRow logged;
    logged.prob = row.prob;
    logged.ts = row.interval.start;
    logged.te = row.interval.end;
    logged.fact = row.fact;
    TPDB_RETURN_IF_ERROR(rel->AppendBase(std::move(row.fact), row.interval,
                                         row.prob, row.var_name));
    // Log the name actually registered so replay reproduces auto names.
    const TPTuple& tuple = rel->tuple(rel->size() - 1);
    logged.var_name = manager_.VariableName(manager_.VarOf(tuple.lineage));
    record.rows.push_back(std::move(logged));
  }
  if (log && wal_ != nullptr) {
    StatusOr<uint64_t> seq = wal_->Append(std::move(record));
    if (!seq.ok()) return seq.status();
  }
  if (cold != nullptr) {
    TPDB_RETURN_IF_ERROR(ExtendColdLocked(rel, std::move(cold), first));
    MaybeScheduleCompactionLocked(rel);
  }
  return Status::OK();
}

Status TPDatabase::ExtendColdLocked(
    TPRelation* rel, std::shared_ptr<const storage::SegmentedTable> cold,
    size_t first) {
  // The table was created mutable; the relation's accessor is const only
  // to fence off everything outside the exclusive-locked append paths.
  TPDB_RETURN_IF_ERROR(storage::AppendDeltaSegment(
      std::const_pointer_cast<storage::SegmentedTable>(cold).get(),
      rel->fact_schema(), rel->tuples(), first, &manager_));
  rel->set_cold_storage(std::move(cold));
  return Status::OK();
}

Status TPDatabase::Compact(const std::string& relation) {
  {
    std::unique_lock<std::mutex> lock(compact_mu_);
    compact_cv_.wait(lock,
                     [&] { return compacting_.count(relation) == 0; });
    compacting_.insert(relation);
  }
  const Status status = CompactRelation(relation);
  {
    // Notify under the lock: the destructor destroys the condvar as soon
    // as it observes the predicate, so touching it after releasing the
    // mutex would race with that teardown.
    const std::lock_guard<std::mutex> lock(compact_mu_);
    compacting_.erase(relation);
    compact_cv_.notify_all();
  }
  return status;
}

void TPDatabase::MaybeScheduleCompactionLocked(TPRelation* rel) {
  const size_t threshold = compaction_threshold_.load();
  if (threshold == 0) return;
  const auto& cold = rel->cold_storage();
  if (cold == nullptr || cold->num_delta_segments() < threshold) return;
  const std::string name = rel->name();
  {
    const std::lock_guard<std::mutex> lock(compact_mu_);
    if (!compacting_.insert(name).second) return;  // one at a time
    ++compactions_inflight_;
  }
  ThreadPool::Default()->Submit([this, name] {
    // Best-effort: an error leaves the deltas in place for the next try —
    // but an operator must see it happening.
    const Status status = CompactRelation(name);
    if (!status.ok()) {
      TPDB_LOG(ERROR) << "background compaction of '" << name
                      << "' failed: " << status.ToString();
    }
    {
      // Notify under the lock (see Compact): once inflight hits zero the
      // destructor may destroy the condvar.
      const std::lock_guard<std::mutex> lock(compact_mu_);
      compacting_.erase(name);
      --compactions_inflight_;
      compact_cv_.notify_all();
    }
  });
}

namespace {

/// Compaction metrics: cadence, cost, and what it buys back.
struct CompactionMetrics {
  obs::Counter* compactions = obs::MetricsRegistry::Default().counter(
      "tpdb_storage_compactions_total", "storage",
      "Completed compaction rebuild+swap cycles.");
  obs::Counter* bytes_reclaimed = obs::MetricsRegistry::Default().counter(
      "tpdb_storage_compaction_bytes_reclaimed_total", "storage",
      "Encoded bytes released by compaction rebuilds.");
  obs::Histogram* duration_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_storage_compaction_us", "storage",
      "Compaction duration (copy + rebuild + swap) in microseconds.");

  static const CompactionMetrics& Get() {
    static const CompactionMetrics m;
    return m;
  }
};

}  // namespace

Status TPDatabase::CompactRelation(const std::string& name) {
  const uint64_t start_us = obs::NowUs();
  // Phase 1: copy the rebuild input under the shared lock.
  storage::CompactionInput input;
  size_t captured = 0;
  uint64_t bytes_before = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    StatusOr<TPRelation*> rel = FindLocked(name);
    if (!rel.ok()) return rel.status();
    if ((*rel)->cold_storage() == nullptr ||
        (*rel)->cold_storage()->num_delta_segments() == 0)
      return Status::OK();
    input.fact_schema = (*rel)->fact_schema();
    input.tuples = (*rel)->tuples();
    input.manager = &manager_;
    input.segment_rows = compaction_segment_rows_.load();
    captured = input.tuples.size();
    bytes_before = (*rel)->cold_storage()->encoded_bytes();
  }

  // Phase 2: the pure rebuild — no locks held, readers run undisturbed.
  StatusOr<storage::CompactionResult> built =
      storage::BuildCompacted(std::move(input));
  if (!built.ok()) return built.status();

  // Phase 3: swap under the exclusive lock. Rows appended while phase 2
  // ran (the only cold-preserving mutation) become a fresh tail delta.
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  StatusOr<TPRelation*> rel = FindLocked(name);
  if (!rel.ok()) return Status::OK();  // dropped meanwhile
  TPRelation* r = *rel;
  if (r->cold_storage() == nullptr || r->size() < captured)
    return Status::OK();  // detached or replaced meanwhile: rebuild is stale
  TPDB_RETURN_IF_ERROR(storage::AppendDeltaSegment(
      built->table.get(), r->fact_schema(), r->tuples(), captured,
      &manager_));
  built->tuples.reserve(r->size());
  for (size_t i = captured; i < r->size(); ++i)
    built->tuples.push_back(r->tuple(i));
  TPDB_RETURN_IF_ERROR(
      r->ReplaceContents(std::move(built->tuples), built->table));
  {
    const std::lock_guard<std::mutex> stats_lock(compact_mu_);
    ++compactions_done_;
  }
  const uint64_t bytes_after =
      r->cold_storage() != nullptr ? r->cold_storage()->encoded_bytes() : 0;
  const uint64_t reclaimed =
      bytes_before > bytes_after ? bytes_before - bytes_after : 0;
  const uint64_t took_us = obs::NowUs() - start_us;
  CompactionMetrics::Get().compactions->Add();
  CompactionMetrics::Get().bytes_reclaimed->Add(reclaimed);
  CompactionMetrics::Get().duration_us->Record(took_us);
  TPDB_LOG(INFO) << "compacted '" << name << "' in " << took_us / 1000
                 << " ms, reclaimed " << reclaimed << " encoded byte(s)";
  return Status::OK();
}

TPDatabase::DatabaseStats TPDatabase::Stats() const {
  DatabaseStats stats;
  {
    const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    for (const auto& [name, rel] : relations_) {
      RelationStats r;
      r.name = name;
      r.rows = rel->size();
      if (const auto& cold = rel->cold_storage(); cold != nullptr) {
        r.cold = true;
        r.base_segments = cold->num_base_segments();
        r.delta_segments = cold->num_delta_segments();
        r.encoded_bytes = cold->encoded_bytes();
        r.packed_bytes = cold->packed_bytes();
        r.unpacked_bytes = cold->unpacked_bytes();
      }
      stats.relations.push_back(std::move(r));
    }
    if (wal_ != nullptr) {
      stats.wal_enabled = true;
      stats.wal_bytes = wal_->bytes();
      stats.wal_records = wal_->records();
      stats.wal_sequence = wal_->last_sequence();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(compact_mu_);
    stats.compactions = compactions_done_;
  }
  return stats;
}

double TPDatabase::DatabaseStats::CompressionRatio() const {
  size_t actual = 0;
  size_t plain = 0;
  for (const RelationStats& r : relations) {
    actual += r.encoded_bytes;
    plain += r.encoded_bytes - r.packed_bytes + r.unpacked_bytes;
  }
  return actual == 0 ? 1.0
                     : static_cast<double>(plain) / static_cast<double>(actual);
}

std::string TPDatabase::DatabaseStats::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-20s %10s %8s %8s %12s %12s\n",
                "relation", "rows", "base", "delta", "encoded", "packed");
  out += line;
  for (const RelationStats& r : relations) {
    if (r.cold) {
      std::snprintf(line, sizeof(line), "%-20s %10zu %8zu %8zu %12zu %12zu\n",
                    r.name.c_str(), r.rows, r.base_segments, r.delta_segments,
                    r.encoded_bytes, r.packed_bytes);
    } else {
      std::snprintf(line, sizeof(line), "%-20s %10zu %8s %8s %12s %12s\n",
                    r.name.c_str(), r.rows, "-", "-", "-", "-");
    }
    out += line;
  }
  if (wal_enabled) {
    std::snprintf(line, sizeof(line),
                  "wal: %zu bytes, %" PRIu64 " records, last sequence %" PRIu64
                  "\n",
                  wal_bytes, wal_records, wal_sequence);
  } else {
    std::snprintf(line, sizeof(line), "wal: disabled\n");
  }
  out += line;
  std::snprintf(line, sizeof(line),
                "compactions: %" PRIu64 "  compression ratio: %.2fx\n",
                compactions, CompressionRatio());
  out += line;
  return out;
}

Status TPDatabase::EnableWal(const std::string& path) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (wal_ != nullptr)
    return Status::InvalidArgument("wal already enabled");
  StatusOr<storage::WalReadResult> read = storage::ReadWal(path);
  if (!read.ok()) return read.status();
  for (const storage::WalRecord& record : read->records) {
    if (record.sequence <= wal_floor_.load()) continue;
    TPDB_RETURN_IF_ERROR(ReplayWalRecordLocked(record));
  }
  StatusOr<std::unique_ptr<storage::WalWriter>> writer =
      storage::WalWriter::Open(path, wal_floor_.load());
  if (!writer.ok()) return writer.status();
  wal_ = std::move(*writer);
  return Status::OK();
}

Status TPDatabase::ReplayWalRecordLocked(const storage::WalRecord& record) {
  switch (record.kind) {
    case storage::WalRecordKind::kCreateRelation: {
      if (relations_.count(record.relation) > 0)
        return Status::IOError("wal replay: relation '" + record.relation +
                               "' already exists");
      relations_.emplace(record.relation,
                         std::make_unique<TPRelation>(
                             record.relation, record.fact_schema, &manager_));
      return Status::OK();
    }
    case storage::WalRecordKind::kAppendRows: {
      StatusOr<TPRelation*> rel = FindLocked(record.relation);
      if (!rel.ok()) return rel.status();
      std::vector<AppendRow> rows;
      rows.reserve(record.rows.size());
      for (const storage::WalAppendRow& logged : record.rows) {
        AppendRow row;
        row.fact = logged.fact;
        row.interval = Interval(logged.ts, logged.te);
        row.prob = logged.prob;
        row.var_name = logged.var_name;
        rows.push_back(std::move(row));
      }
      return AppendRowsLocked(*rel, std::move(rows), /*log=*/false);
    }
  }
  return Status::IOError("wal replay: unknown record kind");
}

Status TPDatabase::Register(TPRelation&& relation) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relation.manager() != &manager_)
    return Status::InvalidArgument(
        "relation '" + relation.name() +
        "' is bound to a different LineageManager");
  if (relations_.count(relation.name()) > 0)
    return Status::AlreadyExists("relation '" + relation.name() +
                                 "' already exists");
  const std::string name = relation.name();
  relations_.emplace(name,
                     std::make_unique<TPRelation>(std::move(relation)));
  return Status::OK();
}

StatusOr<TPRelation*> TPDatabase::FindLocked(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end())
    return Status::NotFound("no relation named '" + name + "'");
  return it->second.get();
}

StatusOr<const TPRelation*> TPDatabase::FindLocked(
    const std::string& name) const {
  StatusOr<TPRelation*> rel = const_cast<TPDatabase*>(this)->FindLocked(name);
  if (!rel.ok()) return rel.status();
  return const_cast<const TPRelation*>(*rel);
}

StatusOr<TPRelation*> TPDatabase::Get(const std::string& name) {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return FindLocked(name);
}

StatusOr<const TPRelation*> TPDatabase::Get(const std::string& name) const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return FindLocked(name);
}

StatusOr<TPRelation*> TPDatabase::GetAssumingLocked(const std::string& name) {
  return FindLocked(name);
}

Status TPDatabase::Drop(const std::string& name) {
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (relations_.erase(name) == 0)
    return Status::NotFound("no relation named '" + name + "'");
  return Status::OK();
}

std::vector<std::string> TPDatabase::RelationNames() const {
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

StatusOr<TPRelation> TPDatabase::Join(TPJoinKind kind,
                                      const std::string& left,
                                      const std::string& right,
                                      const JoinCondition& theta,
                                      const TPJoinOptions& options,
                                      const std::string& register_as) {
  StatusOr<TPRelation> result = [&]() -> StatusOr<TPRelation> {
    // Hold the catalog for lookup + join so concurrent DDL cannot drop an
    // input mid-join; Register below takes the exclusive lock afterwards.
    const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
    StatusOr<TPRelation*> l = FindLocked(left);
    if (!l.ok()) return l.status();
    StatusOr<TPRelation*> r = FindLocked(right);
    if (!r.ok()) return r.status();
    TPJoinOptions opts = options;
    if (!register_as.empty()) opts.result_name = register_as;
    return TPJoin(kind, **l, **r, theta, opts);
  }();
  if (!result.ok()) return result.status();
  if (!register_as.empty()) {
    TPDB_RETURN_IF_ERROR(Register(TPRelation(*result)));
  }
  return result;
}

StatusOr<TPRelation> TPDatabase::Query(const std::string& text) {
  StatusOr<LogicalPlan> plan = Plan(text);
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

StatusOr<LogicalPlan> TPDatabase::Plan(const std::string& text) const {
  StatusOr<ParsedStatement> stmt = ParseStatement(text);
  if (!stmt.ok()) return stmt.status();
  return BuildLogicalPlan(*stmt);
}

StatusOr<TPRelation> TPDatabase::Execute(const LogicalPlan& plan) {
  Planner planner(this);
  return planner.Execute(plan);
}

StatusOr<TPRelation> TPDatabase::Execute(const QueryBuilder& builder) {
  StatusOr<LogicalPlan> plan = builder.Build();
  if (!plan.ok()) return plan.status();
  return Execute(*plan);
}

StatusOr<std::string> TPDatabase::Explain(const std::string& text) {
  StatusOr<LogicalPlan> plan = Plan(text);
  if (!plan.ok()) return plan.status();
  return Explain(*plan);
}

StatusOr<std::string> TPDatabase::Explain(const LogicalPlan& plan) {
  ExecStats stats;
  Planner planner(this);
  StatusOr<TPRelation> result = planner.Execute(plan, &stats);
  if (!result.ok()) return result.status();
  std::string out = "Logical plan:\n" + plan.ToString();
  if (!stats.physical_plan().empty())
    out += "\nPhysical plan (est | actual):\n" + stats.physical_plan();
  out += "\nLowered pipeline (bottom-up):\n" + stats.ToString();
  return out;
}

Status TPDatabase::SaveSnapshot(const std::string& path,
                                const storage::SnapshotOptions& options) {
  // Hold the catalog in shared mode for the whole save so DDL cannot
  // add or drop relations while the snapshot is being assembled.
  const std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  std::vector<const TPRelation*> relations;
  relations.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) relations.push_back(rel.get());
  storage::SnapshotOptions opts = options;
  if (wal_ != nullptr) opts.wal_sequence = wal_->last_sequence();
  TPDB_RETURN_IF_ERROR(
      storage::SaveSnapshotFile(&manager_, relations, path, opts));
  if (wal_ != nullptr) {
    // Every logged record is now inside the snapshot: empty the log. A
    // crash before the truncate just replays records the floor skips.
    wal_floor_.store(opts.wal_sequence);
    TPDB_RETURN_IF_ERROR(wal_->Reset());
  }
  return Status::OK();
}

Status TPDatabase::LoadSnapshot(const std::string& path,
                                const storage::SnapshotOptions& options) {
  // The whole load runs under the exclusive catalog lock, like any other
  // DDL: no Register/CreateRelation can take a snapshot name mid-load, so
  // the pre-flight clash check below stays authoritative and a rejected
  // load mutates nothing. (LoadSnapshotFile only touches the lineage
  // manager — its own lock — never the catalog, so this cannot deadlock.
  // Variable-name clashes are checked inside LoadSnapshotFile before the
  // first registration.)
  const std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  {
    StatusOr<std::vector<std::string>> names =
        storage::ReadSnapshotRelationNames(path);
    if (!names.ok()) return names.status();
    for (const std::string& name : *names)
      if (relations_.count(name) > 0)
        return Status::AlreadyExists("cannot load snapshot: relation '" +
                                     name + "' already exists");
  }
  StatusOr<storage::LoadedSnapshot> loaded =
      storage::LoadSnapshotFile(&manager_, path, options);
  if (!loaded.ok()) return loaded.status();
  for (TPRelation& rel : loaded->relations) {
    const std::string name = rel.name();
    relations_.emplace(name, std::make_unique<TPRelation>(std::move(rel)));
  }
  // Replay (EnableWal) resumes after the last record this file subsumed.
  wal_floor_.store(loaded->wal_sequence);
  return Status::OK();
}

}  // namespace tpdb
