// TPDatabase: the top-level facade — a catalog of named TP relations bound
// to one LineageManager, with join / set-operation entry points and a small
// textual query interface for interactive use and examples.
//
// Query grammar (case-insensitive keywords):
//   <rel> [INNER|LEFT|RIGHT|FULL|ANTI|SEMI] JOIN <rel>
//         ON <col>[=<col>][, <col>[=<col>] ...]   [USING TA]
//   <rel> UNION <rel> | <rel> INTERSECT <rel> | <rel> EXCEPT <rel>
// e.g.  "wants LEFT JOIN hotels ON Loc"
//       "r ANTI JOIN s ON key=id USING TA"
#ifndef TPDB_API_DATABASE_H_
#define TPDB_API_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tp/operators.h"
#include "tp/set_ops.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Owns the lineage manager and the named relations of one database.
class TPDatabase {
 public:
  TPDatabase() = default;

  // Not copyable (relations reference the owned manager).
  TPDatabase(const TPDatabase&) = delete;
  TPDatabase& operator=(const TPDatabase&) = delete;

  LineageManager* manager() { return &manager_; }

  /// Creates an empty relation. Fails if the name is taken.
  StatusOr<TPRelation*> CreateRelation(const std::string& name,
                                       Schema fact_schema);

  /// Registers an existing relation (e.g. a join result) under its name.
  /// The relation must use this database's manager.
  Status Register(TPRelation relation);

  /// Looks up a relation by name.
  StatusOr<TPRelation*> Get(const std::string& name);
  StatusOr<const TPRelation*> Get(const std::string& name) const;

  /// Removes a relation. Fails if absent.
  Status Drop(const std::string& name);

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  /// Runs a join between two named relations and returns the result
  /// (also registering it when `register_as` is non-empty).
  StatusOr<TPRelation> Join(TPJoinKind kind, const std::string& left,
                            const std::string& right,
                            const JoinCondition& theta,
                            const TPJoinOptions& options = {},
                            const std::string& register_as = "");

  /// Parses and runs one query of the grammar above.
  StatusOr<TPRelation> Query(const std::string& text);

 private:
  LineageManager manager_;
  std::map<std::string, std::unique_ptr<TPRelation>> relations_;
};

}  // namespace tpdb

#endif  // TPDB_API_DATABASE_H_
