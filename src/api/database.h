// TPDatabase: the top-level facade — a catalog of named TP relations bound
// to one LineageManager, with join / set-operation entry points and a
// layered textual query interface (api/parser.h → api/logical_plan.h →
// api/planner.h).
//
// Query grammar (case-insensitive keywords; full EBNF in README.md):
//
//   SELECT <*|cols|aggs> FROM <rel>
//     [[INNER|LEFT|RIGHT|FULL|ANTI|SEMI] [OUTER] JOIN <rel>
//         ON <col>[=<col>] {,|AND ...} [USING TA]]...
//     [WHERE <predicate>] [GROUP BY <cols>]
//     [{UNION|INTERSECT|EXCEPT} <rel | SELECT core>]...
//     [ORDER BY <col> [ASC|DESC], ...] [LIMIT n [OFFSET m]]
//     [WITH PROB {>=|>} p]
//
//   e.g. "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc
//         WHERE Loc = 'ZAK' ORDER BY Name LIMIT 5 WITH PROB >= 0.3"
//
// The seed's one-line grammar is still accepted:
//   "wants LEFT JOIN hotels ON Loc", "r ANTI JOIN s ON key=id USING TA",
//   "x UNION y" / "x INTERSECT y" / "x EXCEPT y"
//
// Persistence statements round-trip the whole database through the
// columnar snapshot format of storage/snapshot.h:
//   "SAVE SNAPSHOT 'db.tpdb'" / "LOAD SNAPSHOT 'db.tpdb'"
//
// Programs can skip the string front end entirely via QueryBuilder
// (api/logical_plan.h) and Execute(), and inspect a query's lowered
// operator tree with Explain().
#ifndef TPDB_API_DATABASE_H_
#define TPDB_API_DATABASE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/logical_plan.h"
#include "common/status.h"
#include "storage/snapshot.h"
#include "tp/operators.h"
#include "tp/set_ops.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Owns the lineage manager and the named relations of one database.
///
/// Thread-safe for concurrent use by multiple sessions (exec/session.h):
/// query execution holds the catalog in shared (read) mode for its whole
/// run, DDL (CreateRelation / Register / Drop) takes it exclusively, and
/// the LineageManager is internally synchronized. Callers must not mutate
/// a relation (via the pointers Get hands out) while queries run.
class TPDatabase {
 public:
  TPDatabase() = default;

  // Not copyable (relations reference the owned manager).
  TPDatabase(const TPDatabase&) = delete;
  TPDatabase& operator=(const TPDatabase&) = delete;

  LineageManager* manager() { return &manager_; }

  /// Creates an empty relation. Fails if the name is taken.
  StatusOr<TPRelation*> CreateRelation(const std::string& name,
                                       Schema fact_schema);

  /// Registers an existing relation (e.g. a join result) under its name,
  /// taking ownership. The relation must use this database's manager and
  /// its name must be free; on error a descriptive Status is returned and
  /// the argument is left unmoved (still usable by the caller).
  Status Register(TPRelation&& relation);

  /// Looks up a relation by name.
  StatusOr<TPRelation*> Get(const std::string& name);
  StatusOr<const TPRelation*> Get(const std::string& name) const;

  /// Lookup that skips the catalog lock — for callers already holding it
  /// via ReadLockCatalog() (the planner, for the duration of a query).
  StatusOr<TPRelation*> GetAssumingLocked(const std::string& name);

  /// Acquires the catalog in shared mode; queries hold this while they
  /// run so Drop/Register cannot invalidate relations mid-execution.
  std::shared_lock<std::shared_mutex> ReadLockCatalog() const {
    return std::shared_lock<std::shared_mutex>(catalog_mu_);
  }

  /// Removes a relation. Fails if absent.
  Status Drop(const std::string& name);

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  /// Runs a join between two named relations and returns the result
  /// (also registering it when `register_as` is non-empty).
  StatusOr<TPRelation> Join(TPJoinKind kind, const std::string& left,
                            const std::string& right,
                            const JoinCondition& theta,
                            const TPJoinOptions& options = {},
                            const std::string& register_as = "");

  /// Parses one query of the grammar above, plans it, and executes it.
  StatusOr<TPRelation> Query(const std::string& text);

  /// Parses a query into its logical plan without executing it.
  StatusOr<LogicalPlan> Plan(const std::string& text) const;

  /// Executes a logical plan (from Plan() or QueryBuilder::Build()).
  StatusOr<TPRelation> Execute(const LogicalPlan& plan);

  /// Convenience: builds and executes a QueryBuilder chain.
  StatusOr<TPRelation> Execute(const QueryBuilder& builder);

  /// Plans and runs `text`, returning the logical tree plus the lowered
  /// operator pipeline with per-node row counts and wall times (rendered
  /// through engine/explain), plus a storage section (segments scanned /
  /// skipped, bytes mapped, decode time) when a scan ran cold.
  StatusOr<std::string> Explain(const std::string& text);

  /// Same, for an already-built plan.
  StatusOr<std::string> Explain(const LogicalPlan& plan);

  /// Persists the whole database — catalog, every relation, and the
  /// lineage state (variables, base probabilities, formulas) — to a
  /// columnar snapshot at `path` (storage/snapshot.h; also reachable as
  /// the statement "SAVE SNAPSHOT 'path'"). A database reloaded from the
  /// snapshot answers every query with identical results and
  /// probabilities.
  Status SaveSnapshot(const std::string& path,
                      const storage::SnapshotOptions& options = {});

  /// Restores a snapshot into this database ("LOAD SNAPSHOT 'path'").
  /// Relation and variable names must not clash with existing ones —
  /// intended for a fresh database. Loaded relations keep the snapshot
  /// mapped as their columnar cold-scan backing (zone-map pruning).
  Status LoadSnapshot(const std::string& path,
                      const storage::SnapshotOptions& options = {});

 private:
  StatusOr<TPRelation*> FindLocked(const std::string& name);
  StatusOr<const TPRelation*> FindLocked(const std::string& name) const;

  LineageManager manager_;
  /// Guards relations_ (the map, not the relations' contents): shared for
  /// lookups and query execution, exclusive for DDL.
  mutable std::shared_mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<TPRelation>> relations_;
};

}  // namespace tpdb

#endif  // TPDB_API_DATABASE_H_
