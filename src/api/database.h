// TPDatabase: the top-level facade — a catalog of named TP relations bound
// to one LineageManager, with join / set-operation entry points and a
// layered textual query interface (api/parser.h → api/logical_plan.h →
// api/planner.h).
//
// Query grammar (case-insensitive keywords; full EBNF in README.md):
//
//   SELECT <*|cols|aggs> FROM <rel>
//     [[INNER|LEFT|RIGHT|FULL|ANTI|SEMI] [OUTER] JOIN <rel>
//         ON <col>[=<col>] {,|AND ...} [USING TA]]...
//     [WHERE <predicate>] [GROUP BY <cols>]
//     [{UNION|INTERSECT|EXCEPT} <rel | SELECT core>]...
//     [ORDER BY <col> [ASC|DESC], ...] [LIMIT n [OFFSET m]]
//     [WITH PROB {>=|>} p]
//
//   e.g. "SELECT Name, Hotel FROM wants LEFT JOIN hotels ON Loc
//         WHERE Loc = 'ZAK' ORDER BY Name LIMIT 5 WITH PROB >= 0.3"
//
// The seed's one-line grammar is still accepted:
//   "wants LEFT JOIN hotels ON Loc", "r ANTI JOIN s ON key=id USING TA",
//   "x UNION y" / "x INTERSECT y" / "x EXCEPT y"
//
// Persistence statements round-trip the whole database through the
// columnar snapshot format of storage/snapshot.h:
//   "SAVE SNAPSHOT 'db.tpdb'" / "LOAD SNAPSHOT 'db.tpdb'"
//
// Programs can skip the string front end entirely via QueryBuilder
// (api/logical_plan.h) and Execute(), and inspect a query's lowered
// operator tree with Explain().
#ifndef TPDB_API_DATABASE_H_
#define TPDB_API_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/logical_plan.h"
#include "common/status.h"
#include "storage/snapshot.h"
#include "storage/wal/wal.h"
#include "tp/operators.h"
#include "tp/set_ops.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// Owns the lineage manager and the named relations of one database.
///
/// Thread-safe for concurrent use by multiple sessions (exec/session.h):
/// query execution holds the catalog in shared (read) mode for its whole
/// run, DDL (CreateRelation / Register / Drop) takes it exclusively, and
/// the LineageManager is internally synchronized. Callers must not mutate
/// a relation (via the pointers Get hands out) while queries run.
class TPDatabase {
 public:
  TPDatabase() = default;
  /// Joins any in-flight background compactions.
  ~TPDatabase();

  // Not copyable (relations reference the owned manager).
  TPDatabase(const TPDatabase&) = delete;
  TPDatabase& operator=(const TPDatabase&) = delete;

  LineageManager* manager() { return &manager_; }

  /// Creates an empty relation. Fails if the name is taken. Logged to the
  /// WAL when one is enabled.
  StatusOr<TPRelation*> CreateRelation(const std::string& name,
                                       Schema fact_schema);

  /// One row of an Append call.
  struct AppendRow {
    Row fact;
    Interval interval;
    double prob = 1.0;
    std::string var_name;  ///< "" = auto-assign ("x" + variable id)
  };

  /// The durable append path: validates every row, applies them as base
  /// tuples (all-or-nothing), logs one WAL record (when EnableWal ran) and
  /// fsyncs before returning OK — an acknowledged append survives any
  /// crash. A relation served from cold storage additionally gets the rows
  /// as an in-memory compressed delta segment, so cold scans stay
  /// coherent without detaching from the snapshot mapping.
  Status Append(const std::string& relation, std::vector<AppendRow> rows);

  /// Arms the WAL at `path`: replays any records beyond the last loaded
  /// snapshot's wal_sequence (call after LoadSnapshot), truncates torn
  /// tails, then logs every subsequent CreateRelation/Append. The WAL
  /// covers exactly those two mutations; Drop/Register and operator
  /// results become durable only through the next SaveSnapshot.
  Status EnableWal(const std::string& path);

  bool wal_enabled() const { return wal_ != nullptr; }
  const storage::WalWriter* wal() const { return wal_.get(); }

  /// Synchronously compacts `relation`'s cold storage (storage/compact):
  /// delta segments merge into compressed, interval-sorted base segments
  /// with fresh zone maps. The rebuild runs without the catalog lock;
  /// readers only wait for the final pointer swap. No-op for relations
  /// without cold storage or without deltas.
  Status Compact(const std::string& relation);

  /// Appends schedule a background compaction (on the shared exec/ pool)
  /// once a cold relation accumulates this many delta segments.
  /// 0 disables the trigger. Default 8.
  void set_compaction_threshold(size_t segments) {
    compaction_threshold_ = segments;
  }
  /// Tuples per base segment written by compaction (default 4096).
  void set_compaction_segment_rows(size_t rows) {
    compaction_segment_rows_ = rows;
  }

  /// Storage accounting of one relation (Stats()).
  struct RelationStats {
    std::string name;
    size_t rows = 0;
    bool cold = false;  ///< has a columnar cold-scan backing
    size_t base_segments = 0;
    size_t delta_segments = 0;
    size_t encoded_bytes = 0;   ///< total segment blob bytes
    size_t packed_bytes = 0;    ///< bytes stored compressed within those
    size_t unpacked_bytes = 0;  ///< plain-encoding size of the packed bytes
  };

  /// Database-wide storage statistics (the shell's \s command).
  struct DatabaseStats {
    std::vector<RelationStats> relations;
    bool wal_enabled = false;
    size_t wal_bytes = 0;
    uint64_t wal_records = 0;
    uint64_t wal_sequence = 0;
    uint64_t compactions = 0;
    /// Plain-equivalent bytes over actual bytes across cold relations
    /// (1.0 when nothing is compressed or nothing is cold).
    double CompressionRatio() const;
    std::string ToString() const;
  };
  DatabaseStats Stats() const;

  /// Registers an existing relation (e.g. a join result) under its name,
  /// taking ownership. The relation must use this database's manager and
  /// its name must be free; on error a descriptive Status is returned and
  /// the argument is left unmoved (still usable by the caller).
  Status Register(TPRelation&& relation);

  /// Looks up a relation by name.
  StatusOr<TPRelation*> Get(const std::string& name);
  StatusOr<const TPRelation*> Get(const std::string& name) const;

  /// Lookup that skips the catalog lock — for callers already holding it
  /// via ReadLockCatalog() (the planner, for the duration of a query).
  StatusOr<TPRelation*> GetAssumingLocked(const std::string& name);

  /// Acquires the catalog in shared mode; queries hold this while they
  /// run so Drop/Register cannot invalidate relations mid-execution.
  std::shared_lock<std::shared_mutex> ReadLockCatalog() const {
    return std::shared_lock<std::shared_mutex>(catalog_mu_);
  }

  /// Removes a relation. Fails if absent.
  Status Drop(const std::string& name);

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  /// Runs a join between two named relations and returns the result
  /// (also registering it when `register_as` is non-empty).
  StatusOr<TPRelation> Join(TPJoinKind kind, const std::string& left,
                            const std::string& right,
                            const JoinCondition& theta,
                            const TPJoinOptions& options = {},
                            const std::string& register_as = "");

  /// Parses one query of the grammar above, plans it, and executes it.
  StatusOr<TPRelation> Query(const std::string& text);

  /// Parses a query into its logical plan without executing it.
  StatusOr<LogicalPlan> Plan(const std::string& text) const;

  /// Executes a logical plan (from Plan() or QueryBuilder::Build()).
  StatusOr<TPRelation> Execute(const LogicalPlan& plan);

  /// Convenience: builds and executes a QueryBuilder chain.
  StatusOr<TPRelation> Execute(const QueryBuilder& builder);

  /// Plans and runs `text`, returning the logical tree plus the lowered
  /// operator pipeline with per-node row counts and wall times (rendered
  /// through engine/explain), plus a storage section (segments scanned /
  /// skipped, bytes mapped, decode time) when a scan ran cold.
  StatusOr<std::string> Explain(const std::string& text);

  /// Same, for an already-built plan.
  StatusOr<std::string> Explain(const LogicalPlan& plan);

  /// Persists the whole database — catalog, every relation, and the
  /// lineage state (variables, base probabilities, formulas) — to a
  /// columnar snapshot at `path` (storage/snapshot.h; also reachable as
  /// the statement "SAVE SNAPSHOT 'path'"). A database reloaded from the
  /// snapshot answers every query with identical results and
  /// probabilities.
  Status SaveSnapshot(const std::string& path,
                      const storage::SnapshotOptions& options = {});

  /// Restores a snapshot into this database ("LOAD SNAPSHOT 'path'").
  /// Relation and variable names must not clash with existing ones —
  /// intended for a fresh database. Loaded relations keep the snapshot
  /// mapped as their columnar cold-scan backing (zone-map pruning).
  Status LoadSnapshot(const std::string& path,
                      const storage::SnapshotOptions& options = {});

 private:
  StatusOr<TPRelation*> FindLocked(const std::string& name);
  StatusOr<const TPRelation*> FindLocked(const std::string& name) const;

  /// Shared body of Append and WAL replay (which must not re-log).
  Status AppendRowsLocked(TPRelation* rel, std::vector<AppendRow> rows,
                          bool log);
  /// Re-encodes tuples [first, size) as one compressed delta segment
  /// behind `cold`'s base segments and re-attaches it to the relation.
  Status ExtendColdLocked(TPRelation* rel,
                          std::shared_ptr<const storage::SegmentedTable> cold,
                          size_t first);
  Status ReplayWalRecordLocked(const storage::WalRecord& record);
  /// Copy-rebuild-swap of one relation (storage/compact). Callers
  /// serialize per relation through compacting_.
  Status CompactRelation(const std::string& name);
  /// Fires a background compaction when `rel` crossed the delta
  /// threshold. Caller holds the exclusive catalog lock.
  void MaybeScheduleCompactionLocked(TPRelation* rel);

  LineageManager manager_;
  /// Guards relations_ (the map, not the relations' contents): shared for
  /// lookups and query execution, exclusive for DDL.
  mutable std::shared_mutex catalog_mu_;
  std::map<std::string, std::unique_ptr<TPRelation>> relations_;
  /// Armed by EnableWal; internally synchronized. Appends to it happen
  /// under the exclusive catalog lock, snapshot saves under the shared
  /// one — the writer's own mutex covers that overlap.
  std::unique_ptr<storage::WalWriter> wal_;
  /// Sequence of the last WAL record the current on-disk snapshot
  /// subsumes: replay skips records at or below it.
  std::atomic<uint64_t> wal_floor_{0};

  std::atomic<size_t> compaction_threshold_{8};
  std::atomic<size_t> compaction_segment_rows_{4096};
  /// Guards the compaction bookkeeping below (never held together with
  /// catalog_mu_ except compact_mu_ inside catalog_mu_).
  mutable std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  std::set<std::string> compacting_;  ///< relations with a compaction running
  size_t compactions_inflight_ = 0;   ///< background tasks not yet finished
  uint64_t compactions_done_ = 0;
};

}  // namespace tpdb

#endif  // TPDB_API_DATABASE_H_
