#include "api/planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "api/database.h"
#include "api/lowering_common.h"
#include "api/passes/passes.h"
#include "baseline/ta_join.h"
#include "engine/materialize.h"
#include "engine/scan.h"
#include "engine/vector/adapters.h"
#include "engine/vector/batch_ops.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/scan.h"
#include "tp/set_ops.h"

namespace tpdb {

namespace {

using Clock = std::chrono::steady_clock;

/// Engine-wide query metrics — every execution path funnels through
/// Planner::Execute, so this is the one place the per-query counters live.
struct EngineMetrics {
  obs::Counter* queries = obs::MetricsRegistry::Default().counter(
      "tpdb_engine_queries_total", "engine",
      "Logical plans executed (all paths: in-process and server).");
  obs::Histogram* query_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_engine_query_us", "engine",
      "End-to-end plan execution latency in microseconds.");

  static const EngineMetrics& Get() {
    static const EngineMetrics m;
    return m;
  }
};

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Reports one whole-operator node (join, set op, scan, exchange region)
/// into the registry and links it to its physical node for the tree
/// rendering.
NodeStats* ReportNode(ExecStats* stats, PhysicalNode* node, std::string label,
                      uint64_t rows, double seconds) {
  if (stats == nullptr) return nullptr;
  NodeStats* slot = stats->AddNode(std::move(label));
  slot->rows = rows;
  slot->open_calls = 1;
  slot->seconds = seconds;
  if (node != nullptr) node->actual = slot;
  return slot;
}

TPSetOpKind MapSetOpKind(SetOpKind kind) {
  switch (kind) {
    case SetOpKind::kUnion: return TPSetOpKind::kUnion;
    case SetOpKind::kIntersect: return TPSetOpKind::kIntersect;
    case SetOpKind::kExcept: return TPSetOpKind::kDifference;
  }
  return TPSetOpKind::kUnion;
}

/// The planner-wide probability-evaluation knobs. Per-stage APPROX
/// contracts layer on top inside the lowering helpers (StageProbOptions).
ProbEvalOptions BaseProbOptions(const PlannerOptions& options) {
  ProbEvalOptions prob;
  prob.max_circuit_nodes = options.prob_compile_budget;
  prob.mc_seed = options.prob_mc_seed;
  return prob;
}

/// Lowers stages [first, stages.size()) on the row path over `op`,
/// instrumenting each stage into `stats` when given.
StatusOr<OperatorPtr> LowerRowTail(OperatorPtr op,
                                   const std::vector<PhysicalNode*>& stages,
                                   size_t first, LineageManager* manager,
                                   ExecStats* stats,
                                   const ProbEvalOptions& prob_base) {
  for (size_t i = first; i < stages.size(); ++i) {
    StatusOr<OperatorPtr> next =
        LowerPipelineStage(*stages[i], std::move(op), manager, prob_base);
    if (!next.ok()) return next.status();
    op = std::move(*next);
    if (stats != nullptr) {
      NodeStats* slot = stats->AddNode(stages[i]->Label());
      stages[i]->actual = slot;
      op = Instrument(slot, std::move(op));
    }
  }
  return op;
}

/// The serial tail of a batch chain: materialize directly when every
/// stage lowered batch, else adapter + instrumented row stages.
StatusOr<Table> FinishBatchTail(vec::BatchOperatorPtr op,
                                const ChainExec& chain,
                                LineageManager* manager, VectorStats* vstats,
                                ExecStats* stats,
                                const ProbEvalOptions& prob_base) {
  if (chain.batch_prefix == chain.stages.size())
    return vec::MaterializeBatches(op.get(), vstats);
  OperatorPtr rop =
      std::make_unique<vec::BatchToRowAdapter>(std::move(op), vstats);
  StatusOr<OperatorPtr> tail =
      LowerRowTail(std::move(rop), chain.stages, chain.batch_prefix, manager,
                   stats, prob_base);
  if (!tail.ok()) return tail.status();
  return Materialize(tail->get());
}

}  // namespace

Planner::Planner(TPDatabase* db, PlannerOptions options)
    : db_(db), options_(std::move(options)) {
  TPDB_CHECK(db_ != nullptr);
}

StatusOr<TPRelation> Planner::Execute(const LogicalPlan& plan,
                                      ExecStats* stats) {
  if (plan.root == nullptr)
    return Status::InvalidArgument("empty logical plan");
  EngineMetrics::Get().queries->Add();
  const obs::ScopedLatencyTimer query_timer(EngineMetrics::Get().query_us);
  obs::TraceContext* trace = stats != nullptr ? stats->trace() : nullptr;

  // Snapshot statements run before the catalog lock below: SaveSnapshot
  // takes its own shared lock, LoadSnapshot registers relations through
  // the exclusive DDL path.
  if (plan.root->op == LogicalOp::kSaveSnapshot ||
      plan.root->op == LogicalOp::kLoadSnapshot) {
    const Clock::time_point start = Clock::now();
    const Status status =
        plan.root->op == LogicalOp::kSaveSnapshot
            ? db_->SaveSnapshot(plan.root->snapshot_path)
            : db_->LoadSnapshot(plan.root->snapshot_path);
    if (!status.ok()) return status;
    if (stats != nullptr) {
      NodeStats* node = stats->AddNode(plan.root->Label());
      node->open_calls = 1;
      node->seconds = SecondsSince(start);
    }
    return TPRelation("snapshot", Schema({{"path", DatumType::kString}}),
                      db_->manager());
  }

  // Queries hold the catalog in shared mode for their whole run, so
  // concurrent sessions read a stable catalog while DDL waits its turn.
  const std::shared_lock<std::shared_mutex> catalog_lock =
      db_->ReadLockCatalog();

  // parallelism == 1 pins the serial path: no pool, no exec context — the
  // evaluation below is bit-for-bit the serial planner.
  ExecOptions exec_options;
  exec_options.parallelism = options_.parallelism;
  exec_options.morsel_size = options_.morsel_size;
  exec_options.min_parallel_rows = options_.min_parallel_rows;
  ThreadPool* pool =
      options_.parallelism == 1 ? nullptr : ThreadPool::Default();
  ExecContext ctx(pool, exec_options);
  ctx_ = ctx.parallelism() > 1 ? &ctx : nullptr;

  // Bind → optimize → execute: the one lowering path.
  const uint64_t optimize_span =
      trace != nullptr ? trace->StartSpan("optimize") : 0;
  StatusOr<PhysicalPlan> physical = LowerLocked(plan, ctx.parallelism());
  if (trace != nullptr) trace->EndSpan(optimize_span);
  if (!physical.ok()) {
    ctx_ = nullptr;
    return physical.status();
  }

  const uint64_t execute_span =
      trace != nullptr ? trace->StartSpan("execute") : 0;
  StatusOr<EvalResult> result = ExecNode(physical->root.get(), stats);
  ctx_ = nullptr;
  if (trace != nullptr) trace->EndSpan(execute_span);
  if (stats != nullptr) {
    for (const WorkerStats& w : ctx.CollectWorkerStats())
      stats->AddWorker(w);
    stats->set_physical_plan(physical->ToString());
    // Mirror the executed tree into the trace AFTER set_physical_plan:
    // both read the same NodeStats slots, so the span payloads and the
    // rendered actuals agree node-for-node by construction.
    if (trace != nullptr)
      obs::AddPlanSpans(*physical->root, execute_span,
                        trace->spans()[execute_span - 1].start_us, trace);
  }
  if (!result.ok()) return result.status();
  if (result->owned) return std::move(*result->owned);
  // A bare catalog scan at the root: copy once, here.
  return TPRelation(*result->borrowed);
}

StatusOr<PhysicalPlan> Planner::Lower(const LogicalPlan& plan) {
  if (plan.root == nullptr)
    return Status::InvalidArgument("empty logical plan");
  if (plan.root->op == LogicalOp::kSaveSnapshot ||
      plan.root->op == LogicalOp::kLoadSnapshot)
    return Status::InvalidArgument(
        "snapshot statements have no physical plan");
  // Resolve the worker count the way ExecContext would, without touching
  // the shared pool — a plan-inspection call must not spawn threads.
  int parallelism = options_.parallelism;
  if (parallelism <= 0)
    parallelism = static_cast<int>(ThreadPool::HardwareParallelism());
  parallelism = std::max(parallelism, 1);
  const std::shared_lock<std::shared_mutex> catalog_lock =
      db_->ReadLockCatalog();
  return LowerLocked(plan, parallelism);
}

StatusOr<PhysicalPlan> Planner::LowerLocked(const LogicalPlan& plan,
                                            int parallelism) {
  StatusOr<PhysicalPlan> physical = BuildPhysicalPlan(plan, db_);
  if (!physical.ok()) return physical.status();
  const PassContext pass_ctx{&options_, parallelism};
  TPDB_RETURN_IF_ERROR(RunPassPipeline(&*physical, pass_ctx));
  return physical;
}

StatusOr<Planner::EvalResult> Planner::ExecNode(PhysicalNode* node,
                                                ExecStats* stats) {
  switch (node->op) {
    case PhysOp::kScan:
    case PhysOp::kBatchScan:
      // A bare source outside any chain: zero-copy borrow.
      ReportNode(stats, node, node->Label(), node->rel->size(), 0.0);
      return EvalResult{std::nullopt, node->rel};
    case PhysOp::kFilter:
    case PhysOp::kProject:
    case PhysOp::kSort:
    case PhysOp::kLimit:
    case PhysOp::kExchange:
      return ExecPipeline(node, stats);
    case PhysOp::kAggregate:
      return ExecAggregate(node, stats);
    case PhysOp::kTPJoin:
    case PhysOp::kAlign:
      return ExecJoin(node, stats);
    case PhysOp::kTPSetOp:
      return ExecSetOp(node, stats);
  }
  return Status::Internal("unhandled physical node");
}

StatusOr<Planner::EvalResult> Planner::ExecJoin(PhysicalNode* node,
                                                ExecStats* stats) {
  StatusOr<EvalResult> left = ExecNode(node->children[0].get(), stats);
  if (!left.ok()) return left.status();
  StatusOr<EvalResult> right = ExecNode(node->children[1].get(), stats);
  if (!right.ok()) return right.status();

  const Clock::time_point start = Clock::now();
  TimePartitionReport partition_report;
  StatusOr<TPRelation> result = [&]() -> StatusOr<TPRelation> {
    if (node->op == PhysOp::kAlign) {
      // The temporal-alignment strategy, constructed from the PhysAlign
      // node (always serial — the TA baseline has no parallel driver).
      TPAlignSpec spec;
      spec.kind = node->join_kind;
      spec.theta.equal_columns = node->join_on;
      spec.validate_inputs = options_.validate_inputs;
      return TemporalAlignmentJoin(spec, left->rel(), right->rel());
    }
    TPJoinSpec spec;
    spec.kind = node->join_kind;
    spec.theta.equal_columns = node->join_on;
    spec.options.strategy = JoinStrategy::kLineageAware;
    // The mode-selection pass resolved kAuto and chose the slice count
    // from zone-map statistics — run what the node says, not the raw knob.
    spec.options.overlap_algorithm = node->join_algorithm;
    spec.options.time_slices = node->time_slices;
    spec.options.validate_inputs = options_.validate_inputs;
    return ctx_ != nullptr
               ? ParallelTPJoin(ctx_, spec, left->rel(), right->rel(),
                                &partition_report)
               : TPJoin(spec, left->rel(), right->rel());
  }();
  if (!result.ok()) return result.status();
  ReportNode(stats, node, node->Label(), result->size(), SecondsSince(start));
  // Per-slice breakdown of a time-partitioned sweep: rows and active-set
  // high-water mark per slice, rendered under the join node.
  if (stats != nullptr) {
    for (const TimeSliceStats& slice : partition_report.per_slice) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "  sweep slice [%lld, %lld) active_max=%llu",
                    static_cast<long long>(slice.lo),
                    static_cast<long long>(slice.hi),
                    static_cast<unsigned long long>(slice.active_max));
      NodeStats* slot = stats->AddNode(buf);
      slot->rows = slice.windows;
      slot->open_calls = 1;
    }
  }
  return EvalResult{std::move(*result), nullptr};
}

StatusOr<Planner::EvalResult> Planner::ExecSetOp(PhysicalNode* node,
                                                 ExecStats* stats) {
  StatusOr<EvalResult> left = ExecNode(node->children[0].get(), stats);
  if (!left.ok()) return left.status();
  StatusOr<EvalResult> right = ExecNode(node->children[1].get(), stats);
  if (!right.ok()) return right.status();

  const Clock::time_point start = Clock::now();
  TPSetOpSpec spec;
  spec.kind = MapSetOpKind(node->set_op);
  StatusOr<TPRelation> result =
      ctx_ != nullptr ? ParallelTPSetOp(ctx_, spec, left->rel(), right->rel())
                      : TPSetOp(spec, left->rel(), right->rel());
  if (!result.ok()) return result.status();
  ReportNode(stats, node, node->Label(), result->size(), SecondsSince(start));
  return EvalResult{std::move(*result), nullptr};
}

StatusOr<Planner::EvalResult> Planner::ExecPipeline(PhysicalNode* top,
                                                    ExecStats* stats) {
  ChainExec chain = CollectExecChain(top);
  PhysicalNode* source = chain.source;
  const ProbEvalOptions prob_base = BaseProbOptions(options_);

  // `ORDER BY _prob DESC LIMIT k` chains take the pruned top-k path when
  // they fit its shape (catalog source, row-local stages under the sort).
  {
    StatusOr<std::optional<EvalResult>> topk = ExecTopKProb(chain, stats);
    if (!topk.ok()) return topk.status();
    if (topk->has_value()) return std::move(**topk);
  }

  // -- Cold catalog chains read the mapped segments directly. ------------
  if (IsCatalogSource(*source) && source->cold) {
    const storage::SegmentedTable* table = source->rel->cold_storage().get();
    LineageManager* manager = source->rel->manager();
    const storage::ScanPredicate& predicate = source->scan_predicate;

    if (chain.batch_prefix > 0) {
      // Parallel: morsels of whole segments run the row-local batch
      // prefix independently (zone-map pruning composes per morsel); the
      // merged table — in segment order, i.e. the serial scan order —
      // feeds any remaining stages on the row path. Per-morsel storage
      // and vector counters merge into the explain registry, so pruning
      // is reported even on the parallel route.
      if (chain.exchange != nullptr && ctx_ != nullptr &&
          ctx_->ShouldParallelize(table->num_rows()) &&
          table->segments().size() >= 2) {
        const size_t lowered = chain.parallel_prefix;
        const size_t max_morsels =
            static_cast<size_t>(ctx_->parallelism()) * 4;
        const std::vector<Morsel> morsels =
            MakeMorsels(table->segments().size(), 1, max_morsels);
        std::vector<StorageStats> counters(morsels.size());
        std::vector<VectorStats> vcounters(morsels.size());
        const Clock::time_point start = Clock::now();
        StatusOr<Table> merged = ParallelBatchPipeline(
            ctx_, morsels.size(),
            [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
              return vec::BatchOperatorPtr(
                  std::make_unique<storage::SegmentBatchScan>(
                      table, predicate, morsels[i].begin, morsels[i].end,
                      &counters[i], &vcounters[i]));
            },
            [&](vec::BatchOperatorPtr src)
                -> StatusOr<vec::BatchOperatorPtr> {
              return LowerBatchStages(std::move(src), chain.stages, lowered,
                                      manager, nullptr, nullptr, prob_base);
            });
        if (!merged.ok()) return merged.status();
        if (stats != nullptr) {
          StorageStats storage;
          VectorStats vstats;
          for (const StorageStats& c : counters) storage.Merge(c);
          for (const VectorStats& v : vcounters) vstats.Merge(v);
          vstats.rows_emitted += merged->rows.size();
          NodeStats* scan_stats = ReportNode(
              stats, source, source->Label() + " (cold)",
              storage.rows_decoded, storage.decode_seconds);
          scan_stats->open_calls = 1;
          stats->AddStorage(storage);
          stats->AddVector(vstats);
          ReportNode(stats, chain.exchange, chain.exchange->Label(),
                     merged->rows.size(), SecondsSince(start));
        }
        StatusOr<TPRelation> result = FinishRowStagesOverTable(
            source->rel->name(), std::move(*merged), chain.stages, lowered,
            manager, prob_base);
        if (!result.ok()) return result.status();
        return EvalResult{std::move(*result), nullptr};
      }

      // Serial: chunk-level batch scan → lowered batch stages → (adapter
      // + remaining row stages, when the chain has a non-batch tail).
      VectorStats vstats;
      StorageStats counters;
      NodeStats* scan_stats =
          stats != nullptr ? stats->AddNode(source->Label() + " (cold)")
                           : nullptr;
      if (scan_stats != nullptr) source->actual = scan_stats;
      vec::BatchOperatorPtr op = std::make_unique<storage::SegmentBatchScan>(
          table, predicate, &counters, &vstats);
      op = LowerBatchStages(std::move(op), chain.stages, chain.batch_prefix,
                            manager, &vstats, stats, prob_base);
      StatusOr<Table> out = FinishBatchTail(std::move(op), chain, manager,
                                            &vstats, stats, prob_base);
      if (!out.ok()) return out.status();
      if (stats != nullptr) {
        scan_stats->rows = counters.rows_decoded;
        scan_stats->open_calls = 1;
        scan_stats->seconds = counters.decode_seconds;
        stats->AddStorage(counters);
        stats->AddVector(vstats);
      }
      StatusOr<TPRelation> result =
          TPRelation::FromTable(source->rel->name(), *out, manager);
      if (!result.ok()) return result.status();
      return EvalResult{std::move(*result), nullptr};
    }

    // Row-mode cold chain (serial — the decode already dominates).
    StorageStats counters;
    NodeStats* scan_stats =
        stats != nullptr ? stats->AddNode(source->Label() + " (cold)")
                         : nullptr;
    if (scan_stats != nullptr) source->actual = scan_stats;
    StatusOr<OperatorPtr> lowered = LowerRowTail(
        std::make_unique<storage::SegmentScan>(table, predicate, &counters),
        chain.stages, 0, manager, stats, prob_base);
    if (!lowered.ok()) return lowered.status();
    const Table out = Materialize(lowered->get());
    if (stats != nullptr) {
      scan_stats->rows = counters.rows_decoded;
      scan_stats->open_calls = 1;
      scan_stats->seconds = counters.decode_seconds;
      stats->AddStorage(counters);
    }
    StatusOr<TPRelation> result =
        TPRelation::FromTable(source->rel->name(), out, manager);
    if (!result.ok()) return result.status();
    return EvalResult{std::move(*result), nullptr};
  }

  // -- Warm chains run over the flattened table of their source. ---------
  std::string name;
  LineageManager* manager = nullptr;
  auto table = std::make_unique<Table>();
  if (IsCatalogSource(*source)) {
    name = source->rel->name();
    manager = source->rel->manager();
    ReportNode(stats, source, source->Label(), source->rel->size(), 0.0);
    *table = source->rel->ToTable();
  } else {
    StatusOr<EvalResult> base = ExecNode(source, stats);
    if (!base.ok()) return base.status();
    name = base->rel().name();
    manager = base->rel().manager();
    *table = base->rel().ToTable();
  }

  if (chain.batch_prefix > 0) {
    // Parallel: contiguous morsels of the flattened table through the
    // row-local batch prefix, ordered merge, remaining stages on the row
    // path.
    if (chain.exchange != nullptr && ctx_ != nullptr &&
        ctx_->ShouldParallelize(table->rows.size())) {
      const std::vector<Morsel> morsels =
          MakeMorsels(table->rows.size(), ctx_->options().morsel_size);
      if (morsels.size() >= 2) {
        const size_t lowered = chain.parallel_prefix;
        std::vector<VectorStats> vcounters(morsels.size());
        const Clock::time_point start = Clock::now();
        StatusOr<Table> merged = ParallelBatchPipeline(
            ctx_, morsels.size(),
            [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
              return vec::BatchOperatorPtr(
                  std::make_unique<vec::TableBatchScan>(
                      table.get(), morsels[i].begin, morsels[i].end,
                      &vcounters[i]));
            },
            [&](vec::BatchOperatorPtr src)
                -> StatusOr<vec::BatchOperatorPtr> {
              return LowerBatchStages(std::move(src), chain.stages, lowered,
                                      manager, nullptr, nullptr, prob_base);
            });
        if (!merged.ok()) return merged.status();
        if (stats != nullptr) {
          VectorStats vstats;
          for (const VectorStats& v : vcounters) vstats.Merge(v);
          vstats.rows_emitted += merged->rows.size();
          stats->AddVector(vstats);
          ReportNode(stats, chain.exchange, chain.exchange->Label(),
                     merged->rows.size(), SecondsSince(start));
        }
        StatusOr<TPRelation> result = FinishRowStagesOverTable(
            name, std::move(*merged), chain.stages, lowered, manager,
            prob_base);
        if (!result.ok()) return result.status();
        return EvalResult{std::move(*result), nullptr};
      }
    }

    // Serial batch.
    VectorStats vstats;
    vec::BatchOperatorPtr op =
        std::make_unique<vec::TableBatchScan>(table.get(), &vstats);
    op = LowerBatchStages(std::move(op), chain.stages, chain.batch_prefix,
                          manager, &vstats, stats, prob_base);
    StatusOr<Table> out = FinishBatchTail(std::move(op), chain, manager,
                                          &vstats, stats, prob_base);
    if (!out.ok()) return out.status();
    if (stats != nullptr) stats->AddVector(vstats);
    StatusOr<TPRelation> result = TPRelation::FromTable(name, *out, manager);
    if (!result.ok()) return result.status();
    return EvalResult{std::move(*result), nullptr};
  }

  // Row path: the exchange's row-local prefix goes through the parallel
  // driver (each morsel runs its own chain instance; outputs merge in
  // morsel order, matching the serial pipeline exactly); sort, limit and
  // everything above stay serial.
  size_t first_serial_stage = 0;
  if (chain.exchange != nullptr && ctx_ != nullptr &&
      ctx_->ShouldParallelize(table->rows.size())) {
    const size_t row_local = chain.parallel_prefix;
    const Clock::time_point start = Clock::now();
    StatusOr<Table> out = ParallelPipeline(
        ctx_, *table,
        [&chain, row_local, manager,
         &prob_base](OperatorPtr source_op) -> StatusOr<OperatorPtr> {
          OperatorPtr op = std::move(source_op);
          for (size_t i = 0; i < row_local; ++i) {
            StatusOr<OperatorPtr> lowered = LowerPipelineStage(
                *chain.stages[i], std::move(op), manager, prob_base);
            if (!lowered.ok()) return lowered.status();
            op = std::move(*lowered);
          }
          return op;
        });
    if (!out.ok()) return out.status();
    *table = std::move(*out);
    first_serial_stage = row_local;
    if (stats != nullptr)
      ReportNode(stats, chain.exchange, chain.exchange->Label(),
                 table->rows.size(), SecondsSince(start));
  }

  StatusOr<TPRelation> rel = [&]() -> StatusOr<TPRelation> {
    if (first_serial_stage == chain.stages.size()) {
      // Everything ran in the parallel driver; `table` is the result.
      return TPRelation::FromTable(name, *table, manager);
    }
    StatusOr<OperatorPtr> lowered =
        LowerRowTail(std::make_unique<TableScan>(table.get()), chain.stages,
                     first_serial_stage, manager, stats, prob_base);
    if (!lowered.ok()) return lowered.status();
    const Table out = Materialize(lowered->get());
    return TPRelation::FromTable(name, out, manager);
  }();
  if (!rel.ok()) return rel.status();
  return EvalResult{std::move(*rel), nullptr};
}

StatusOr<std::optional<Planner::EvalResult>> Planner::ExecTopKProb(
    const ChainExec& chain, ExecStats* stats) {
  const std::optional<EvalResult> no_match;

  // Shape check: ... → row-local stages → Sort(top_k, fused by the top-k
  // pass from a single `_prob DESC` key) → Limit, over a catalog source.
  if (chain.stages.size() < 2) return no_match;
  PhysicalNode* limit = chain.stages.back();
  PhysicalNode* sort = chain.stages[chain.stages.size() - 2];
  if (limit->op != PhysOp::kLimit || sort->op != PhysOp::kSort ||
      sort->top_k < 0)
    return no_match;
  PhysicalNode* source = chain.source;
  if (!IsCatalogSource(*source)) return no_match;
  const size_t sort_idx = chain.stages.size() - 2;
  for (size_t i = 0; i < sort_idx; ++i) {
    const PhysOp op = chain.stages[i]->op;
    if (op != PhysOp::kFilter && op != PhysOp::kProject) return no_match;
  }

  const size_t k = static_cast<size_t>(sort->top_k);
  LineageManager* manager = source->rel->manager();
  const ProbEvalOptions prob_base = BaseProbOptions(options_);
  ProbabilityEvaluator evaluator(manager, prob_base);
  const int lin_col = sort->schema.IndexOf(kLineageColumn);
  TPDB_CHECK_GE(lin_col, 0);
  const Clock::time_point start = Clock::now();

  // One visit unit per cold segment, carrying the zone map's probability
  // upper bound — trusted only while the manager's epoch still matches the
  // table's (SetVariableProbability stales every stored bound, so a stale
  // table degrades to bound 1.0: no pruning, still correct). The warm path
  // is the degenerate single unit over the flattened table.
  struct Unit {
    double upper = 1.0;
    size_t segment = 0;   ///< cold only
    size_t seq_base = 0;  ///< global row offset of the unit's first row
  };
  std::vector<Unit> units;
  const storage::SegmentedTable* cold =
      source->cold ? source->rel->cold_storage().get() : nullptr;
  std::unique_ptr<Table> warm;
  if (cold != nullptr) {
    const bool fresh =
        manager->probability_epoch() == cold->probability_epoch();
    size_t base = 0;
    units.reserve(cold->segments().size());
    for (size_t s = 0; s < cold->segments().size(); ++s) {
      const storage::Segment& seg = cold->segments()[s];
      units.push_back(Unit{fresh ? seg.zone.max_prob : 1.0, s, base});
      base += seg.num_rows;
    }
  } else {
    warm = std::make_unique<Table>(source->rel->ToTable());
    units.push_back(Unit{});
  }
  // Best bound first; stable, so equal bounds keep storage order.
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     return a.upper > b.upper;
                   });

  // The running top k. Parity with ProbSort's stable sort + Limit means
  // ordering candidates by (probability desc, scan position asc); the heap
  // keeps its WORST kept entry on top, so it is evicted first and its
  // probability is the running k-th lower bound.
  struct Entry {
    double prob;
    size_t seq;
    Row row;
  };
  const auto better = [](const Entry& a, const Entry& b) {
    if (a.prob != b.prob) return a.prob > b.prob;
    return a.seq < b.seq;
  };
  std::vector<Entry> kept;  // heap ordered by `better` (worst on top)
  kept.reserve(k + 1);

  StorageStats counters;
  uint64_t rows_evaluated = 0;
  size_t units_visited = 0;
  for (const Unit& unit : units) {
    if (k == 0) break;
    // Stop once no remaining unit can beat the k-th kept probability.
    // Equality must keep scanning: a tying row with a smaller scan
    // position wins its tie-break.
    if (kept.size() == k && kept.front().prob > unit.upper) break;
    ++units_visited;

    OperatorPtr op =
        cold != nullptr
            ? OperatorPtr(std::make_unique<storage::SegmentScan>(
                  cold, source->scan_predicate, unit.segment,
                  unit.segment + 1, &counters))
            : OperatorPtr(std::make_unique<TableScan>(warm.get()));
    for (size_t i = 0; i < sort_idx; ++i) {
      StatusOr<OperatorPtr> next = LowerPipelineStage(
          *chain.stages[i], std::move(op), manager, prob_base);
      if (!next.ok()) return next.status();
      op = std::move(*next);
    }
    op->Open();
    Row row;
    size_t local = 0;
    while (op->Next(&row)) {
      // Filtering preserves relative order, so the pre-filter unit base
      // plus the post-filter local index ties rows exactly like the full
      // sort's stable scan order.
      const size_t seq = unit.seq_base + local++;
      const double prob = evaluator.Probability(row[lin_col].AsLineage());
      ++rows_evaluated;
      if (kept.size() == k && !better(Entry{prob, seq, {}}, kept.front()))
        continue;
      kept.push_back(Entry{prob, seq, std::move(row)});
      std::push_heap(kept.begin(), kept.end(), better);
      if (kept.size() > k) {
        std::pop_heap(kept.begin(), kept.end(), better);
        kept.pop_back();
      }
    }
    op->Close();
  }
  sort->prob_methods |= evaluator.methods_used();

  std::sort(kept.begin(), kept.end(), better);
  Table out;
  out.schema = sort->schema;
  out.rows.reserve(kept.size());
  for (Entry& e : kept) out.rows.push_back(std::move(e.row));

  const double seconds = SecondsSince(start);
  if (stats != nullptr) {
    NodeStats* scan_slot = ReportNode(
        stats, source,
        source->Label() + (cold != nullptr ? " (cold)" : ""),
        cold != nullptr ? counters.rows_decoded : warm->rows.size(),
        counters.decode_seconds);
    scan_slot->open_calls = 1;
    if (cold != nullptr) stats->AddStorage(counters);
    ReportNode(stats, sort, sort->Label() + " (top-k)", out.rows.size(),
               seconds);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  top-k visited %zu/%zu units, evaluated %llu rows",
                  units_visited, units.size(),
                  static_cast<unsigned long long>(rows_evaluated));
    NodeStats* detail = stats->AddNode(buf);
    detail->rows = rows_evaluated;
    detail->open_calls = 1;
    ReportNode(stats, limit, limit->Label(), out.rows.size(), 0.0);
  }

  StatusOr<TPRelation> result =
      TPRelation::FromTable(source->rel->name(), out, manager);
  if (!result.ok()) return result.status();
  return std::optional<EvalResult>(EvalResult{std::move(*result), nullptr});
}

StatusOr<Planner::EvalResult> Planner::ExecAggregate(PhysicalNode* node,
                                                     ExecStats* stats) {
  if (node->mode == ExecMode::kBatch) {
    StatusOr<std::optional<EvalResult>> batch =
        ExecBatchAggregate(node, stats);
    if (!batch.ok()) return batch.status();
    if (batch->has_value()) return std::move(**batch);
    // The batch plan did not apply at run time (degenerate input); the row
    // aggregate computes the identical result.
  }
  return ExecRowAggregate(node, stats);
}

StatusOr<Planner::EvalResult> Planner::ExecRowAggregate(PhysicalNode* node,
                                                        ExecStats* stats) {
  StatusOr<EvalResult> child = ExecNode(node->children[0].get(), stats);
  if (!child.ok()) return child.status();
  const TPRelation& input = child->rel();
  const Clock::time_point start = Clock::now();

  StatusOr<AggPlan> plan =
      ResolveAggregatePlan(node->group_by, node->group_aliases,
                           node->aggregates, input.fact_schema());
  if (!plan.ok()) return plan.status();
  const std::vector<int>& group_idx = plan->group_idx;
  const std::vector<int>& agg_idx = plan->agg_idx;

  struct Group {
    std::vector<Datum> acc;  // one slot per aggregate (count as int64)
    TimePoint min_ts = 0;
    TimePoint max_te = 0;
    std::vector<LineageRef> lineages;
  };
  const auto row_less = [](const Row& a, const Row& b) {
    return CompareRows(a, b) < 0;
  };
  std::map<Row, Group, decltype(row_less)> groups(row_less);

  for (const TPTuple& tuple : input.tuples()) {
    Row key;
    key.reserve(group_idx.size());
    for (const int idx : group_idx)
      key.push_back(tuple.fact[static_cast<size_t>(idx)]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Group& g = it->second;
    if (inserted) {
      g.acc.assign(node->aggregates.size(), Datum::Null());
      g.min_ts = tuple.interval.start;
      g.max_te = tuple.interval.end;
    } else {
      g.min_ts = std::min(g.min_ts, tuple.interval.start);
      g.max_te = std::max(g.max_te, tuple.interval.end);
    }
    g.lineages.push_back(tuple.lineage);
    for (size_t j = 0; j < node->aggregates.size(); ++j) {
      const SelectItem& item = node->aggregates[j];
      const Datum* value = agg_idx[j] >= 0
                               ? &tuple.fact[static_cast<size_t>(agg_idx[j])]
                               : nullptr;
      switch (item.fn) {
        case AggFn::kCount: {
          if (value != nullptr && value->is_null()) break;
          const int64_t so_far =
              g.acc[j].is_null() ? 0 : g.acc[j].AsInt64();
          g.acc[j] = Datum(so_far + 1);
          break;
        }
        case AggFn::kSum: {
          if (value->is_null()) break;
          if (g.acc[j].is_null()) {
            g.acc[j] = *value;
          } else if (value->type() == DatumType::kDouble) {
            g.acc[j] = Datum(g.acc[j].AsDouble() + value->AsDouble());
          } else {
            g.acc[j] = Datum(g.acc[j].AsInt64() + value->AsInt64());
          }
          break;
        }
        case AggFn::kMin:
          if (!value->is_null() &&
              (g.acc[j].is_null() || *value < g.acc[j]))
            g.acc[j] = *value;
          break;
        case AggFn::kMax:
          if (!value->is_null() &&
              (g.acc[j].is_null() || g.acc[j] < *value))
            g.acc[j] = *value;
          break;
      }
    }
  }

  TPRelation result(input.name() + "_agg", Schema(std::move(plan->out_cols)),
                    input.manager());
  for (auto& [key, g] : groups) {
    Row fact = key;
    for (size_t j = 0; j < node->aggregates.size(); ++j) {
      if (node->aggregates[j].fn == AggFn::kCount && g.acc[j].is_null())
        g.acc[j] = Datum(static_cast<int64_t>(0));
      fact.push_back(std::move(g.acc[j]));
    }
    // The group spans its tuples' intervals; its lineage is the disjunction
    // of their lineages, so Probability() reports Pr[group non-empty].
    const LineageRef lineage = input.manager()->OrAll(g.lineages);
    TPDB_RETURN_IF_ERROR(result.AppendDerived(
        std::move(fact), Interval(g.min_ts, g.max_te), lineage));
  }
  ReportNode(stats, node, node->Label(), result.size(), SecondsSince(start));
  return EvalResult{std::move(result), nullptr};
}

StatusOr<std::optional<Planner::EvalResult>> Planner::ExecBatchAggregate(
    PhysicalNode* node, ExecStats* stats) {
  // The child chain was pre-validated by the mode pass: a fully batchable
  // Scan→Filter… chain over a catalog relation, optionally with an
  // exchange over its (row-local) whole length.
  ChainExec chain = CollectExecChain(node->children[0].get());
  PhysicalNode* source = chain.source;
  const ProbEvalOptions prob_base = BaseProbOptions(options_);
  TPDB_CHECK(IsCatalogSource(*source));
  const TPRelation* rel = source->rel;
  LineageManager* manager = rel->manager();
  const storage::SegmentedTable* cold =
      source->cold ? rel->cold_storage().get() : nullptr;

  Schema flat;
  const size_t batchable = CountBatchStages(source->schema, chain.stages,
                                            /*row_local_only=*/false, &flat);
  if (batchable != chain.stages.size()) return std::optional<EvalResult>();

  // Group/aggregate columns resolve against the fact prefix of the
  // flattened schema (the reserved columns sit at the end), so the
  // validation — and its errors — match the row path's exactly.
  StatusOr<AggPlan> plan = ResolveAggregatePlan(
      node->group_by, node->group_aliases, node->aggregates,
      FactSchemaOf(flat));
  if (!plan.ok()) return plan.status();
  std::vector<vec::BatchAggItem> items;
  items.reserve(node->aggregates.size());
  for (size_t j = 0; j < node->aggregates.size(); ++j)
    items.push_back(
        vec::BatchAggItem{MapAggFn(node->aggregates[j].fn), plan->agg_idx[j]});
  Schema out_schema =
      FlattenFactSchema(Schema(std::move(plan->out_cols)));

  const storage::ScanPredicate& predicate = source->scan_predicate;
  std::unique_ptr<Table> warm;  // flattened backing of the warm path
  if (cold == nullptr) warm = std::make_unique<Table>(rel->ToTable());

  VectorStats vstats;
  StorageStats counters;
  NodeStats* scan_stats = nullptr;
  std::unique_ptr<Table> merged;  // parallel prefix output
  vec::BatchOperatorPtr op;

  // Parallel prefix: the exchange covers the whole (row-local) chain; the
  // aggregate itself consumes the ordered merge serially.
  if (chain.exchange != nullptr && ctx_ != nullptr &&
      !chain.stages.empty() &&
      ctx_->ShouldParallelize(cold != nullptr ? cold->num_rows()
                                              : warm->rows.size()) &&
      (cold == nullptr || cold->segments().size() >= 2)) {
    const std::vector<Morsel> morsels =
        cold != nullptr
            ? MakeMorsels(cold->segments().size(), 1,
                          static_cast<size_t>(ctx_->parallelism()) * 4)
            : MakeMorsels(warm->rows.size(), ctx_->options().morsel_size);
    // A single morsel would only add a materialize + re-transpose round
    // trip over the serial stream below.
    if (morsels.size() >= 2) {
      std::vector<StorageStats> pcounters(morsels.size());
      std::vector<VectorStats> pvcounters(morsels.size());
      const Clock::time_point start = Clock::now();
      StatusOr<Table> out = ParallelBatchPipeline(
          ctx_, morsels.size(),
          [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
            if (cold != nullptr)
              return vec::BatchOperatorPtr(
                  std::make_unique<storage::SegmentBatchScan>(
                      cold, predicate, morsels[i].begin, morsels[i].end,
                      &pcounters[i], &pvcounters[i]));
            return vec::BatchOperatorPtr(
                std::make_unique<vec::TableBatchScan>(
                    warm.get(), morsels[i].begin, morsels[i].end,
                    &pvcounters[i]));
          },
          [&](vec::BatchOperatorPtr src) -> StatusOr<vec::BatchOperatorPtr> {
            return LowerBatchStages(std::move(src), chain.stages,
                                    chain.stages.size(), manager, nullptr,
                                    nullptr, prob_base);
          });
      if (!out.ok()) return out.status();
      if (stats != nullptr) {
        StorageStats storage;
        for (const StorageStats& c : pcounters) storage.Merge(c);
        for (const VectorStats& v : pvcounters) vstats.Merge(v);
        if (cold != nullptr) {
          NodeStats* slot = ReportNode(stats, source,
                                       source->Label() + " (cold)",
                                       storage.rows_decoded,
                                       storage.decode_seconds);
          slot->open_calls = 1;
          stats->AddStorage(storage);
        } else {
          ReportNode(stats, source, source->Label(), rel->size(), 0.0);
        }
        ReportNode(stats, chain.exchange, chain.exchange->Label(),
                   out->rows.size(), SecondsSince(start));
      }
      merged = std::make_unique<Table>(std::move(*out));
      op = std::make_unique<vec::TableBatchScan>(merged.get(), nullptr);
    }
  }
  if (op == nullptr && cold != nullptr) {
    scan_stats = stats != nullptr
                     ? stats->AddNode(source->Label() + " (cold)")
                     : nullptr;
    if (scan_stats != nullptr) source->actual = scan_stats;
    op = std::make_unique<storage::SegmentBatchScan>(cold, predicate,
                                                     &counters, &vstats);
    op = LowerBatchStages(std::move(op), chain.stages, chain.stages.size(),
                          manager, &vstats, stats, prob_base);
  } else if (op == nullptr) {
    ReportNode(stats, source, source->Label(), rel->size(), 0.0);
    op = std::make_unique<vec::TableBatchScan>(warm.get(), &vstats);
    op = LowerBatchStages(std::move(op), chain.stages, chain.stages.size(),
                          manager, &vstats, stats, prob_base);
  }

  op = std::make_unique<vec::BatchHashAggregate>(
      std::move(op), std::move(plan->group_idx), std::move(items),
      std::move(out_schema), manager);
  if (stats != nullptr) {
    NodeStats* slot = stats->AddNode(node->Label() + " (vec)");
    node->actual = slot;
    op = vec::InstrumentBatch(slot, std::move(op));
  }
  const Table out = vec::MaterializeBatches(op.get(), &vstats);

  if (stats != nullptr) {
    if (scan_stats != nullptr) {
      scan_stats->rows = counters.rows_decoded;
      scan_stats->open_calls = 1;
      scan_stats->seconds = counters.decode_seconds;
      stats->AddStorage(counters);
    }
    stats->AddVector(vstats);
  }
  StatusOr<TPRelation> result =
      TPRelation::FromTable(rel->name() + "_agg", out, manager);
  if (!result.ok()) return result.status();
  return std::optional<EvalResult>(EvalResult{std::move(*result), nullptr});
}

}  // namespace tpdb
