#include "api/planner.h"

#include <chrono>
#include <map>
#include <shared_mutex>
#include <utility>

#include "api/database.h"
#include "engine/filter.h"
#include "engine/limit.h"
#include "engine/materialize.h"
#include "engine/project.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/vector/adapters.h"
#include "engine/vector/batch_ops.h"
#include "engine/vector/predicate.h"
#include "exec/exec_context.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "lineage/probability.h"
#include "storage/scan.h"
#include "tp/set_ops.h"

namespace tpdb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Reports one TP-level (non-Volcano) operator into the stats registry.
void Report(ExecStats* stats, std::string label, uint64_t rows,
            double seconds) {
  if (stats == nullptr) return;
  NodeStats* node = stats->AddNode(std::move(label));
  node->rows = rows;
  node->open_calls = 1;
  node->seconds = seconds;
}

bool IsPipelined(LogicalOp op) {
  return op == LogicalOp::kFilter || op == LogicalOp::kProject ||
         op == LogicalOp::kSort || op == LogicalOp::kLimit ||
         op == LogicalOp::kProbThreshold;
}

bool IsReservedColumn(const std::string& name) {
  return name == kTsColumn || name == kTeColumn || name == kLineageColumn;
}

/// Static result type of a predicate operand against `schema` (used to
/// decide whether a comparison needs int64↔double promotion).
DatumType StaticType(const AstExpr& e, const Schema& schema) {
  switch (e.kind) {
    case AstExprKind::kColumn: {
      const int idx = schema.IndexOf(e.column);
      return idx >= 0 ? schema.column(static_cast<size_t>(idx)).type
                      : DatumType::kNull;
    }
    case AstExprKind::kLiteral:
      return e.literal.type();
    default:
      return DatumType::kInt64;  // comparisons and connectives are boolean
  }
}

bool DatumToDouble(const Datum& d, double* out) {
  if (d.type() == DatumType::kInt64) {
    *out = static_cast<double>(d.AsInt64());
    return true;
  }
  if (d.type() == DatumType::kDouble) {
    *out = d.AsDouble();
    return true;
  }
  return false;
}

/// Comparison with numeric promotion: int64 and double operands are
/// compared as doubles (Datum::Compare alone orders by type rank).
ExprPtr PromotedCompare(CompareOp op, ExprPtr a, ExprPtr b) {
  return Fn(
      [op, a, b](const Row& row) -> Datum {
        const Datum da = a->Eval(row);
        const Datum db = b->Eval(row);
        if (da.is_null() || db.is_null()) return Datum::Null();
        double x = 0, y = 0;
        if (!DatumToDouble(da, &x) || !DatumToDouble(db, &y))
          return Datum::Null();
        bool result = false;
        switch (op) {
          case CompareOp::kEq: result = x == y; break;
          case CompareOp::kNe: result = x != y; break;
          case CompareOp::kLt: result = x < y; break;
          case CompareOp::kLe: result = x <= y; break;
          case CompareOp::kGt: result = x > y; break;
          case CompareOp::kGe: result = x >= y; break;
        }
        return Datum(static_cast<int64_t>(result));
      },
      std::string("num") + CompareOpSymbol(op));
}

/// Compiles a predicate AST into an engine expression over `schema`.
StatusOr<ExprPtr> CompilePredicate(const AstExprPtr& e, const Schema& schema) {
  TPDB_CHECK(e != nullptr);
  switch (e->kind) {
    case AstExprKind::kColumn: {
      const int idx = schema.IndexOf(e->column);
      if (idx < 0)
        return Status::NotFound("unknown column '" + e->column +
                                "' (have: " + schema.ToString() + ")");
      return Col(idx, e->column);
    }
    case AstExprKind::kLiteral:
      return Lit(e->literal);
    case AstExprKind::kCompare: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<ExprPtr> b = CompilePredicate(e->right, schema);
      if (!b.ok()) return b.status();
      const DatumType ta = StaticType(*e->left, schema);
      const DatumType tb = StaticType(*e->right, schema);
      const bool numeric_mix =
          (ta == DatumType::kInt64 && tb == DatumType::kDouble) ||
          (ta == DatumType::kDouble && tb == DatumType::kInt64);
      if (numeric_mix)
        return PromotedCompare(e->compare_op, std::move(*a), std::move(*b));
      return Compare(e->compare_op, std::move(*a), std::move(*b));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<ExprPtr> b = CompilePredicate(e->right, schema);
      if (!b.ok()) return b.status();
      return e->kind == AstExprKind::kAnd
                 ? AndExpr(std::move(*a), std::move(*b))
                 : OrExpr(std::move(*a), std::move(*b));
    }
    case AstExprKind::kNot: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return NotExpr(std::move(*a));
    }
    case AstExprKind::kIsNull: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return IsNull(std::move(*a));
    }
  }
  return Status::Internal("unhandled predicate node");
}

/// True for stages that decide each row independently — the ones the
/// parallel pipeline driver may run per-morsel with an ordered merge.
bool IsRowLocal(LogicalOp op) {
  return op == LogicalOp::kFilter || op == LogicalOp::kProject ||
         op == LogicalOp::kProbThreshold;
}

/// Resolved form of one projection stage: source indices and output names
/// (the reserved interval/lineage columns ride along at the end). Shared
/// by the row and batch lowerings so both validate identically.
struct ProjectPlan {
  std::vector<int> indices;
  std::vector<std::string> names;
};

StatusOr<ProjectPlan> PlanProjectStage(const LogicalNode& stage,
                                       const Schema& schema) {
  ProjectPlan plan;
  for (size_t i = 0; i < stage.columns.size(); ++i) {
    const std::string& name = stage.columns[i];
    if (IsReservedColumn(name))
      return Status::InvalidArgument(
          "cannot project reserved column '" + name +
          "' (interval and lineage are kept implicitly)");
    const int idx = schema.IndexOf(name);
    if (idx < 0)
      return Status::NotFound("unknown column '" + name +
                              "' (have: " + schema.ToString() + ")");
    plan.indices.push_back(idx);
    plan.names.push_back(i < stage.aliases.size() && !stage.aliases[i].empty()
                             ? stage.aliases[i]
                             : name);
  }
  // Interval and lineage ride along on every projection.
  for (const char* reserved : {kTsColumn, kTeColumn, kLineageColumn}) {
    plan.indices.push_back(schema.IndexOf(reserved));
    plan.names.push_back(reserved);
  }
  return plan;
}

/// Lowers ONE pipelined logical stage onto `op`. Pure (no planner state),
/// so the parallel driver can instantiate the same chain once per morsel.
StatusOr<OperatorPtr> LowerPipelineStage(const LogicalNode& stage,
                                         OperatorPtr op,
                                         LineageManager* manager) {
  const Schema& schema = op->schema();
  switch (stage.op) {
    case LogicalOp::kFilter: {
      StatusOr<ExprPtr> pred = CompilePredicate(stage.predicate, schema);
      if (!pred.ok()) return pred.status();
      return OperatorPtr(
          std::make_unique<Filter>(std::move(op), std::move(*pred)));
    }
    case LogicalOp::kProject: {
      StatusOr<ProjectPlan> plan = PlanProjectStage(stage, schema);
      if (!plan.ok()) return plan.status();
      return OperatorPtr(std::make_unique<Project>(
          std::move(op), std::move(plan->indices), std::move(plan->names)));
    }
    case LogicalOp::kSort: {
      std::vector<SortKey> keys;
      for (const OrderItem& item : stage.order_by) {
        const int idx = schema.IndexOf(item.column);
        if (idx < 0)
          return Status::NotFound("unknown ORDER BY column '" + item.column +
                                  "'");
        keys.push_back(SortKey{idx, item.ascending});
      }
      return OperatorPtr(
          std::make_unique<Sort>(std::move(op), std::move(keys)));
    }
    case LogicalOp::kLimit:
      return OperatorPtr(std::make_unique<Limit>(
          std::move(op), static_cast<size_t>(stage.limit),
          static_cast<size_t>(stage.offset)));
    case LogicalOp::kProbThreshold: {
      const int lin = schema.IndexOf(kLineageColumn);
      TPDB_CHECK(lin >= 0);
      const double threshold = stage.min_prob;
      const bool strict = stage.min_prob_strict;
      // Exact probability of the tuple's lineage; results are memoized
      // inside the manager, so repeated thresholds stay cheap.
      ExprPtr prob_pred = Fn(
          [manager, lin, threshold, strict](const Row& row) -> Datum {
            ProbabilityEngine engine(manager);
            const double p = engine.Probability(row[lin].AsLineage());
            return Datum(
                static_cast<int64_t>(strict ? p > threshold
                                            : p >= threshold));
          },
          "prob" + std::string(strict ? ">" : ">=") +
              std::to_string(threshold));
      return OperatorPtr(
          std::make_unique<Filter>(std::move(op), std::move(prob_pred)));
    }
    default:
      return Status::Internal("non-pipelined node in chain");
  }
}

/// Mirrors a comparison for a flipped "literal OP column" term.
CompareOp MirrorCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

/// Harvests conjunctive column-vs-numeric-literal bounds from a filter
/// predicate into a scan predicate the cold path can prune on. Anything
/// it cannot express (OR, NOT, column-vs-column, strings) contributes no
/// bound — pruning stays conservative and the filter still runs.
void CollectScanBounds(const AstExprPtr& e, storage::ScanPredicate* pred) {
  if (e == nullptr) return;
  if (e->kind == AstExprKind::kAnd) {
    CollectScanBounds(e->left, pred);
    CollectScanBounds(e->right, pred);
    return;
  }
  if (e->kind != AstExprKind::kCompare) return;
  const AstExpr* column = nullptr;
  const AstExpr* literal = nullptr;
  bool flipped = false;
  if (e->left->kind == AstExprKind::kColumn &&
      e->right->kind == AstExprKind::kLiteral) {
    column = e->left.get();
    literal = e->right.get();
  } else if (e->left->kind == AstExprKind::kLiteral &&
             e->right->kind == AstExprKind::kColumn) {
    column = e->right.get();
    literal = e->left.get();
    flipped = true;
  } else {
    return;
  }
  double value = 0.0;
  if (!DatumToDouble(literal->literal, &value)) return;
  switch (flipped ? MirrorCompare(e->compare_op) : e->compare_op) {
    case CompareOp::kEq:
      pred->AddEquals(column->column, value);
      break;
    case CompareOp::kLt:
      pred->AddUpperBound(column->column, value, /*strict=*/true);
      break;
    case CompareOp::kLe:
      pred->AddUpperBound(column->column, value, /*strict=*/false);
      break;
    case CompareOp::kGt:
      pred->AddLowerBound(column->column, value, /*strict=*/true);
      break;
    case CompareOp::kGe:
      pred->AddLowerBound(column->column, value, /*strict=*/false);
      break;
    case CompareOp::kNe:
      break;  // no range information
  }
}

/// Output column name of an aggregate, e.g. "count", "sum_Temp".
std::string AggOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string fn;
  switch (item.fn) {
    case AggFn::kCount: fn = "count"; break;
    case AggFn::kSum: fn = "sum"; break;
    case AggFn::kMin: fn = "min"; break;
    case AggFn::kMax: fn = "max"; break;
  }
  return item.column == "*" ? fn : fn + "_" + item.column;
}

// -- Vectorized lowering ---------------------------------------------------

StatusOr<vec::VOperand> CompileVectorOperand(const AstExpr& e,
                                             const Schema& schema) {
  if (e.kind == AstExprKind::kColumn) {
    const int idx = schema.IndexOf(e.column);
    if (idx < 0)
      return Status::NotFound("unknown column '" + e.column + "'");
    return vec::VOperand::Column(idx);
  }
  if (e.kind == AstExprKind::kLiteral)
    return vec::VOperand::Literal(e.literal);
  return Status::InvalidArgument("operand shape not vectorizable");
}

/// Compiles a predicate AST into a vectorized expression over `schema`,
/// with the same column resolution and numeric-promotion decisions as
/// CompilePredicate. Shapes the vector evaluator does not cover (e.g. a
/// comparison whose operand is itself a comparison) return an error and
/// the planner keeps that stage on the row path — which also owns the
/// user-facing error reporting for genuinely malformed predicates.
StatusOr<vec::VectorExprPtr> CompileVectorPredicate(const AstExprPtr& e,
                                                    const Schema& schema) {
  TPDB_CHECK(e != nullptr);
  switch (e->kind) {
    case AstExprKind::kColumn:
    case AstExprKind::kLiteral: {
      StatusOr<vec::VOperand> op = CompileVectorOperand(*e, schema);
      if (!op.ok()) return op.status();
      return vec::VTruthy(std::move(*op));
    }
    case AstExprKind::kCompare: {
      StatusOr<vec::VOperand> a = CompileVectorOperand(*e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<vec::VOperand> b = CompileVectorOperand(*e->right, schema);
      if (!b.ok()) return b.status();
      const DatumType ta = StaticType(*e->left, schema);
      const DatumType tb = StaticType(*e->right, schema);
      const bool numeric_mix =
          (ta == DatumType::kInt64 && tb == DatumType::kDouble) ||
          (ta == DatumType::kDouble && tb == DatumType::kInt64);
      return vec::VCompare(e->compare_op, numeric_mix, std::move(*a),
                           std::move(*b));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<vec::VectorExprPtr> b =
          CompileVectorPredicate(e->right, schema);
      if (!b.ok()) return b.status();
      return e->kind == AstExprKind::kAnd
                 ? vec::VAnd(std::move(*a), std::move(*b))
                 : vec::VOr(std::move(*a), std::move(*b));
    }
    case AstExprKind::kNot: {
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return vec::VNot(std::move(*a));
    }
    case AstExprKind::kIsNull: {
      if (e->left->kind == AstExprKind::kColumn ||
          e->left->kind == AstExprKind::kLiteral) {
        StatusOr<vec::VOperand> op = CompileVectorOperand(*e->left, schema);
        if (!op.ok()) return op.status();
        return vec::VIsNull(std::move(*op));
      }
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return vec::VIsNullOf(std::move(*a));
    }
  }
  return Status::Internal("unhandled predicate node");
}

/// How many leading stages the batch path can lower over a source with
/// `schema` — filters with vectorizable predicates, projections,
/// probability thresholds, and (unless `row_local_only`, the parallel
/// driver's constraint) limits. Tracks the schema across projections;
/// `out_schema`, when given, receives the schema after the lowered run.
size_t CountBatchStages(Schema schema,
                        const std::vector<const LogicalNode*>& stages,
                        bool row_local_only, Schema* out_schema = nullptr) {
  size_t n = 0;
  for (const LogicalNode* stage : stages) {
    switch (stage->op) {
      case LogicalOp::kFilter:
        if (!CompileVectorPredicate(stage->predicate, schema).ok())
          goto done;
        break;
      case LogicalOp::kProject: {
        StatusOr<ProjectPlan> plan = PlanProjectStage(*stage, schema);
        if (!plan.ok()) goto done;
        std::vector<Column> cols;
        cols.reserve(plan->indices.size());
        for (size_t i = 0; i < plan->indices.size(); ++i) {
          Column c = schema.column(static_cast<size_t>(plan->indices[i]));
          c.name = plan->names[i];
          cols.push_back(std::move(c));
        }
        schema = Schema(std::move(cols));
        break;
      }
      case LogicalOp::kProbThreshold:
        break;
      case LogicalOp::kLimit:
        if (row_local_only) goto done;
        break;
      default:
        goto done;
    }
    ++n;
  }
done:
  if (out_schema != nullptr) *out_schema = std::move(schema);
  return n;
}

/// Lowers exactly `count` leading stages — pre-validated by
/// CountBatchStages — onto batch operators over `op`. With `stats`, each
/// stage is instrumented as a "(vec)" node (rows = active rows emitted).
vec::BatchOperatorPtr LowerBatchStages(
    vec::BatchOperatorPtr op, const std::vector<const LogicalNode*>& stages,
    size_t count, LineageManager* manager, VectorStats* vstats,
    ExecStats* stats) {
  for (size_t i = 0; i < count; ++i) {
    const LogicalNode& stage = *stages[i];
    switch (stage.op) {
      case LogicalOp::kFilter: {
        StatusOr<vec::VectorExprPtr> pred =
            CompileVectorPredicate(stage.predicate, op->schema());
        TPDB_CHECK(pred.ok()) << pred.status().ToString();
        op = std::make_unique<vec::BatchFilter>(std::move(op),
                                                std::move(*pred), vstats);
        break;
      }
      case LogicalOp::kProject: {
        StatusOr<ProjectPlan> plan = PlanProjectStage(stage, op->schema());
        TPDB_CHECK(plan.ok()) << plan.status().ToString();
        op = std::make_unique<vec::BatchProject>(
            std::move(op), std::move(plan->indices), std::move(plan->names));
        break;
      }
      case LogicalOp::kProbThreshold:
        op = std::make_unique<vec::BatchProbThreshold>(
            std::move(op), manager, stage.min_prob, stage.min_prob_strict,
            vstats);
        break;
      case LogicalOp::kLimit:
        op = std::make_unique<vec::BatchLimit>(
            std::move(op), static_cast<size_t>(stage.limit),
            static_cast<size_t>(stage.offset), vstats);
        break;
      default:
        TPDB_CHECK(false) << "non-batch stage in pre-validated chain";
    }
    if (stats != nullptr)
      op = vec::InstrumentBatch(stage.Label() + " (vec)", std::move(op),
                                stats);
  }
  return op;
}

/// The scan predicate the cold paths push down: conjunctive bounds from
/// the leading run of filter / probability-threshold stages, with the
/// probability dimension epoch-gated (zone-map max_prob is snapshot-time
/// data — see EvalColdPipeline).
storage::ScanPredicate CollectColdScanPredicate(
    const std::vector<const LogicalNode*>& stages, LineageManager* manager,
    const storage::SegmentedTable* table) {
  const bool prob_maps_fresh =
      manager->probability_epoch() == table->probability_epoch();
  storage::ScanPredicate predicate;
  for (const LogicalNode* stage : stages) {
    if (stage->op == LogicalOp::kFilter) {
      CollectScanBounds(stage->predicate, &predicate);
    } else if (stage->op == LogicalOp::kProbThreshold) {
      if (prob_maps_fresh)
        predicate.AddMinProb(stage->min_prob, stage->min_prob_strict);
    } else {
      break;
    }
  }
  return predicate;
}

/// Runs the row-path stages [first, stages.size()) over `table` and
/// converts the result back to a relation — the tail of a batch pipeline
/// whose prefix was merged by the parallel driver.
StatusOr<TPRelation> FinishRowStagesOverTable(
    std::string name, Table table,
    const std::vector<const LogicalNode*>& stages, size_t first,
    LineageManager* manager) {
  if (first == stages.size())
    return TPRelation::FromTable(std::move(name), table, manager);
  OperatorPtr op = std::make_unique<TableScan>(&table);
  for (size_t i = first; i < stages.size(); ++i) {
    StatusOr<OperatorPtr> next =
        LowerPipelineStage(*stages[i], std::move(op), manager);
    if (!next.ok()) return next.status();
    op = std::move(*next);
  }
  const Table out = Materialize(op.get());
  return TPRelation::FromTable(std::move(name), out, manager);
}

/// Resolved aggregate: group/aggregate column indices (into the fact
/// schema — which equals the flattened prefix) and the output fact
/// columns. Shared by the row and batch aggregate paths so both validate
/// identically.
struct AggPlan {
  std::vector<int> group_idx;
  std::vector<int> agg_idx;  ///< -1 for COUNT(*)
  std::vector<Column> out_cols;
};

StatusOr<AggPlan> ResolveAggregatePlan(const LogicalNode& node,
                                       const Schema& facts) {
  AggPlan plan;
  for (size_t g = 0; g < node.group_by.size(); ++g) {
    const std::string& name = node.group_by[g];
    const int idx = facts.IndexOf(name);
    if (idx < 0)
      return Status::NotFound("unknown GROUP BY column '" + name + "'");
    plan.group_idx.push_back(idx);
    Column col = facts.column(static_cast<size_t>(idx));
    if (g < node.group_aliases.size() && !node.group_aliases[g].empty())
      col.name = node.group_aliases[g];
    plan.out_cols.push_back(std::move(col));
  }
  for (const SelectItem& item : node.aggregates) {
    int idx = -1;
    DatumType type = DatumType::kInt64;
    if (item.column == "*") {
      if (item.fn != AggFn::kCount)
        return Status::InvalidArgument("'*' is only valid for COUNT");
    } else {
      idx = facts.IndexOf(item.column);
      if (idx < 0)
        return Status::NotFound("unknown aggregate column '" + item.column +
                                "'");
      type = facts.column(static_cast<size_t>(idx)).type;
    }
    if (item.fn == AggFn::kSum && type != DatumType::kInt64 &&
        type != DatumType::kDouble)
      return Status::InvalidArgument("SUM requires a numeric column, got '" +
                                     item.column + "'");
    plan.agg_idx.push_back(idx);
    plan.out_cols.push_back(
        {AggOutputName(item),
         item.fn == AggFn::kCount ? DatumType::kInt64 : type});
  }
  return plan;
}

vec::BatchAggFn MapAggFn(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return vec::BatchAggFn::kCount;
    case AggFn::kSum: return vec::BatchAggFn::kSum;
    case AggFn::kMin: return vec::BatchAggFn::kMin;
    case AggFn::kMax: return vec::BatchAggFn::kMax;
  }
  return vec::BatchAggFn::kCount;
}

}  // namespace

Planner::Planner(TPDatabase* db, PlannerOptions options)
    : db_(db), options_(std::move(options)) {
  TPDB_CHECK(db_ != nullptr);
}

StatusOr<TPRelation> Planner::Execute(const LogicalPlan& plan,
                                      ExecStats* stats) {
  if (plan.root == nullptr)
    return Status::InvalidArgument("empty logical plan");

  // Snapshot statements run before the catalog lock below: SaveSnapshot
  // takes its own shared lock, LoadSnapshot registers relations through
  // the exclusive DDL path.
  if (plan.root->op == LogicalOp::kSaveSnapshot ||
      plan.root->op == LogicalOp::kLoadSnapshot) {
    const Clock::time_point start = Clock::now();
    const Status status =
        plan.root->op == LogicalOp::kSaveSnapshot
            ? db_->SaveSnapshot(plan.root->snapshot_path)
            : db_->LoadSnapshot(plan.root->snapshot_path);
    if (!status.ok()) return status;
    Report(stats, plan.root->Label(), 0, SecondsSince(start));
    return TPRelation("snapshot", Schema({{"path", DatumType::kString}}),
                      db_->manager());
  }

  // Queries hold the catalog in shared mode for their whole run, so
  // concurrent sessions read a stable catalog while DDL waits its turn.
  const std::shared_lock<std::shared_mutex> catalog_lock =
      db_->ReadLockCatalog();

  // parallelism == 1 pins the serial path: no pool, no exec context — the
  // evaluation below is bit-for-bit the pre-exec planner.
  ExecOptions exec_options;
  exec_options.parallelism = options_.parallelism;
  exec_options.morsel_size = options_.morsel_size;
  exec_options.min_parallel_rows = options_.min_parallel_rows;
  ThreadPool* pool =
      options_.parallelism == 1 ? nullptr : ThreadPool::Default();
  ExecContext ctx(pool, exec_options);
  ctx_ = ctx.parallelism() > 1 ? &ctx : nullptr;

  StatusOr<EvalResult> result = Eval(*plan.root, stats);
  ctx_ = nullptr;
  if (stats != nullptr) {
    for (const WorkerStats& w : ctx.CollectWorkerStats())
      stats->AddWorker(w);
  }
  if (!result.ok()) return result.status();
  if (result->owned) return std::move(*result->owned);
  // A bare catalog scan at the root: copy once, here.
  return TPRelation(*result->borrowed);
}

StatusOr<Planner::EvalResult> Planner::Eval(const LogicalNode& node,
                                            ExecStats* stats) {
  if (IsPipelined(node.op)) return EvalPipelined(node, stats);
  switch (node.op) {
    case LogicalOp::kScan: {
      StatusOr<TPRelation*> rel = db_->GetAssumingLocked(node.relation);
      if (!rel.ok()) return rel.status();
      Report(stats, node.Label(), (*rel)->size(), 0.0);
      return EvalResult{std::nullopt, *rel};
    }
    case LogicalOp::kJoin:
      return EvalJoin(node, stats);
    case LogicalOp::kSetOp:
      return EvalSetOp(node, stats);
    case LogicalOp::kAggregate:
      return EvalAggregate(node, stats);
    case LogicalOp::kSaveSnapshot:
    case LogicalOp::kLoadSnapshot:
      return Status::InvalidArgument(
          "snapshot statements are only valid as the plan root");
    default:
      return Status::Internal("unhandled logical node");
  }
}

StatusOr<Planner::EvalResult> Planner::EvalJoin(const LogicalNode& node,
                                                ExecStats* stats) {
  StatusOr<EvalResult> left = Eval(*node.children[0], stats);
  if (!left.ok()) return left.status();
  StatusOr<EvalResult> right = Eval(*node.children[1], stats);
  if (!right.ok()) return right.status();

  JoinCondition theta;
  theta.equal_columns = node.join_on;
  TPJoinOptions opts;
  opts.strategy = node.strategy;
  opts.overlap_algorithm = options_.overlap_algorithm;
  opts.validate_inputs = options_.validate_inputs;

  const Clock::time_point start = Clock::now();
  StatusOr<TPRelation> result =
      ctx_ != nullptr
          ? ParallelTPJoin(ctx_, node.join_kind, left->rel(), right->rel(),
                           theta, opts)
          : TPJoin(node.join_kind, left->rel(), right->rel(), theta, opts);
  if (!result.ok()) return result.status();
  Report(stats, node.Label(), result->size(), SecondsSince(start));
  return EvalResult{std::move(*result), nullptr};
}

StatusOr<Planner::EvalResult> Planner::EvalSetOp(const LogicalNode& node,
                                                 ExecStats* stats) {
  StatusOr<EvalResult> left = Eval(*node.children[0], stats);
  if (!left.ok()) return left.status();
  StatusOr<EvalResult> right = Eval(*node.children[1], stats);
  if (!right.ok()) return right.status();

  const Clock::time_point start = Clock::now();
  StatusOr<TPRelation> result = [&]() -> StatusOr<TPRelation> {
    TPSetOpKind kind;
    switch (node.set_op) {
      case SetOpKind::kUnion: kind = TPSetOpKind::kUnion; break;
      case SetOpKind::kIntersect: kind = TPSetOpKind::kIntersect; break;
      case SetOpKind::kExcept: kind = TPSetOpKind::kDifference; break;
      default: return Status::Internal("unhandled set operation");
    }
    return ctx_ != nullptr
               ? ParallelTPSetOp(ctx_, kind, left->rel(), right->rel())
               : TPSetOp(kind, left->rel(), right->rel());
  }();
  if (!result.ok()) return result.status();
  Report(stats, node.Label(), result->size(), SecondsSince(start));
  return EvalResult{std::move(*result), nullptr};
}

StatusOr<Planner::EvalResult> Planner::EvalAggregate(const LogicalNode& node,
                                                     ExecStats* stats) {
  if (options_.vectorize) {
    StatusOr<std::optional<EvalResult>> batch = TryBatchAggregate(node, stats);
    if (!batch.ok()) return batch.status();
    if (batch->has_value()) return std::move(**batch);
  }

  StatusOr<EvalResult> child = Eval(*node.children[0], stats);
  if (!child.ok()) return child.status();
  const TPRelation& input = child->rel();
  const Clock::time_point start = Clock::now();

  StatusOr<AggPlan> plan = ResolveAggregatePlan(node, input.fact_schema());
  if (!plan.ok()) return plan.status();
  const std::vector<int>& group_idx = plan->group_idx;
  const std::vector<int>& agg_idx = plan->agg_idx;
  std::vector<Column>& out_cols = plan->out_cols;

  struct Group {
    std::vector<Datum> acc;  // one slot per aggregate (count as int64)
    TimePoint min_ts = 0;
    TimePoint max_te = 0;
    std::vector<LineageRef> lineages;
  };
  const auto row_less = [](const Row& a, const Row& b) {
    return CompareRows(a, b) < 0;
  };
  std::map<Row, Group, decltype(row_less)> groups(row_less);

  for (const TPTuple& tuple : input.tuples()) {
    Row key;
    key.reserve(group_idx.size());
    for (const int idx : group_idx)
      key.push_back(tuple.fact[static_cast<size_t>(idx)]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    Group& g = it->second;
    if (inserted) {
      g.acc.assign(node.aggregates.size(), Datum::Null());
      g.min_ts = tuple.interval.start;
      g.max_te = tuple.interval.end;
    } else {
      g.min_ts = std::min(g.min_ts, tuple.interval.start);
      g.max_te = std::max(g.max_te, tuple.interval.end);
    }
    g.lineages.push_back(tuple.lineage);
    for (size_t j = 0; j < node.aggregates.size(); ++j) {
      const SelectItem& item = node.aggregates[j];
      const Datum* value = agg_idx[j] >= 0
                               ? &tuple.fact[static_cast<size_t>(agg_idx[j])]
                               : nullptr;
      switch (item.fn) {
        case AggFn::kCount: {
          if (value != nullptr && value->is_null()) break;
          const int64_t so_far =
              g.acc[j].is_null() ? 0 : g.acc[j].AsInt64();
          g.acc[j] = Datum(so_far + 1);
          break;
        }
        case AggFn::kSum: {
          if (value->is_null()) break;
          if (g.acc[j].is_null()) {
            g.acc[j] = *value;
          } else if (value->type() == DatumType::kDouble) {
            g.acc[j] = Datum(g.acc[j].AsDouble() + value->AsDouble());
          } else {
            g.acc[j] = Datum(g.acc[j].AsInt64() + value->AsInt64());
          }
          break;
        }
        case AggFn::kMin:
          if (!value->is_null() &&
              (g.acc[j].is_null() || *value < g.acc[j]))
            g.acc[j] = *value;
          break;
        case AggFn::kMax:
          if (!value->is_null() &&
              (g.acc[j].is_null() || g.acc[j] < *value))
            g.acc[j] = *value;
          break;
      }
    }
  }

  TPRelation result(input.name() + "_agg", Schema(std::move(out_cols)),
                    input.manager());
  for (auto& [key, g] : groups) {
    Row fact = key;
    for (size_t j = 0; j < node.aggregates.size(); ++j) {
      if (node.aggregates[j].fn == AggFn::kCount && g.acc[j].is_null())
        g.acc[j] = Datum(static_cast<int64_t>(0));
      fact.push_back(std::move(g.acc[j]));
    }
    // The group spans its tuples' intervals; its lineage is the disjunction
    // of their lineages, so Probability() reports Pr[group non-empty].
    const LineageRef lineage = input.manager()->OrAll(g.lineages);
    TPDB_RETURN_IF_ERROR(result.AppendDerived(
        std::move(fact), Interval(g.min_ts, g.max_te), lineage));
  }
  Report(stats, node.Label(), result.size(), SecondsSince(start));
  return EvalResult{std::move(result), nullptr};
}

StatusOr<Planner::EvalResult> Planner::EvalPipelined(const LogicalNode& node,
                                                     ExecStats* stats) {
  // Collect the maximal chain of pipelined nodes below (and including)
  // `node`, top-down; the chain is lowered to ONE engine pipeline over the
  // flattened table of the barrier child's result.
  std::vector<const LogicalNode*> chain;
  const LogicalNode* cursor = &node;
  while (IsPipelined(cursor->op)) {
    chain.push_back(cursor);
    cursor = cursor->children[0].get();
  }
  // Bottom-up stage order (the order rows flow through them).
  const std::vector<const LogicalNode*> stages(chain.rbegin(), chain.rend());

  // Cold path: a chain rooted in a catalog scan whose relation carries a
  // columnar snapshot backing reads the mapped segments directly instead
  // of flattening the in-memory tuples — with zone maps pruning segments
  // the pushed-down predicate rules out.
  if (cursor->op == LogicalOp::kScan) {
    StatusOr<TPRelation*> rel = db_->GetAssumingLocked(cursor->relation);
    if (!rel.ok()) return rel.status();
    if ((*rel)->cold_storage() != nullptr) {
      if (options_.vectorize) {
        StatusOr<std::optional<EvalResult>> batch =
            EvalColdBatch(**rel, *cursor, stages, stats);
        if (!batch.ok()) return batch.status();
        if (batch->has_value()) return std::move(**batch);
      }
      return EvalColdPipeline(**rel, *cursor, stages, stats);
    }
  }

  StatusOr<EvalResult> base = Eval(*cursor, stats);
  if (!base.ok()) return base.status();
  LineageManager* manager = base->rel().manager();

  auto table = std::make_unique<Table>(base->rel().ToTable());

  if (options_.vectorize) {
    StatusOr<std::optional<EvalResult>> batch =
        EvalWarmBatch(base->rel().name(), *table, manager, stages, stats);
    if (!batch.ok()) return batch.status();
    if (batch->has_value()) return std::move(**batch);
  }

  // The leading run of row-local stages (filter / project / probability
  // threshold) can go through the parallel driver: each morsel runs its
  // own instance of the chain and the outputs merge in morsel order, so
  // the rows match the serial pipeline exactly. Sort and limit — and any
  // stage above them — stay serial. Explain keeps the whole chain serial:
  // per-stage instrumentation counts rows of ONE pipeline instance.
  size_t first_serial_stage = 0;
  if (ctx_ != nullptr && stats == nullptr) {
    size_t row_local = 0;
    while (row_local < stages.size() && IsRowLocal(stages[row_local]->op))
      ++row_local;
    if (row_local > 0 && ctx_->ShouldParallelize(table->rows.size())) {
      StatusOr<Table> out = ParallelPipeline(
          ctx_, *table,
          [&stages, row_local, manager](
              OperatorPtr source) -> StatusOr<OperatorPtr> {
            OperatorPtr op = std::move(source);
            for (size_t i = 0; i < row_local; ++i) {
              StatusOr<OperatorPtr> lowered =
                  LowerPipelineStage(*stages[i], std::move(op), manager);
              if (!lowered.ok()) return lowered.status();
              op = std::move(*lowered);
            }
            return op;
          });
      if (!out.ok()) return out.status();
      *table = std::move(*out);
      first_serial_stage = row_local;
    }
  }

  StatusOr<TPRelation> rel = [&]() -> StatusOr<TPRelation> {
    if (first_serial_stage == stages.size()) {
      // Everything ran in the parallel driver; `table` is the result.
      return TPRelation::FromTable(base->rel().name(), *table, manager);
    }
    OperatorPtr op = std::make_unique<TableScan>(table.get());
    for (size_t i = first_serial_stage; i < stages.size(); ++i) {
      StatusOr<OperatorPtr> lowered =
          LowerPipelineStage(*stages[i], std::move(op), manager);
      if (!lowered.ok()) return lowered.status();
      op = std::move(*lowered);
      if (stats != nullptr)
        op = Instrument(stages[i]->Label(), std::move(op), stats);
    }
    const Table out = Materialize(op.get());
    return TPRelation::FromTable(base->rel().name(), out, manager);
  }();
  if (!rel.ok()) return rel.status();
  return EvalResult{std::move(*rel), nullptr};
}

StatusOr<Planner::EvalResult> Planner::EvalColdPipeline(
    const TPRelation& rel, const LogicalNode& scan_node,
    const std::vector<const LogicalNode*>& stages, ExecStats* stats) {
  const storage::SegmentedTable* table = rel.cold_storage().get();
  LineageManager* manager = rel.manager();

  // Push bounds from the leading run of row-local predicate stages into
  // the scan. Stages past the first project/sort/limit see transformed
  // rows (renamed columns, truncated streams), so they must not prune.
  // Zone-map max_prob values reflect base probabilities as of the
  // snapshot; after SetVariableProbability they could wrongly prune, so
  // probability pushdown is gated on the manager's epoch (numeric and
  // temporal bounds are unaffected — facts and intervals never restate).
  storage::ScanPredicate predicate =
      CollectColdScanPredicate(stages, manager, table);

  StorageStats counters;
  NodeStats* scan_stats =
      stats != nullptr ? stats->AddNode(scan_node.Label() + " (cold)")
                       : nullptr;
  OperatorPtr op = std::make_unique<storage::SegmentScan>(
      table, std::move(predicate), &counters);
  for (const LogicalNode* stage : stages) {
    StatusOr<OperatorPtr> lowered =
        LowerPipelineStage(*stage, std::move(op), manager);
    if (!lowered.ok()) return lowered.status();
    op = std::move(*lowered);
    if (stats != nullptr)
      op = Instrument(stage->Label(), std::move(op), stats);
  }
  const Table out = Materialize(op.get());
  if (stats != nullptr) {
    scan_stats->rows = counters.rows_decoded;
    scan_stats->open_calls = 1;
    scan_stats->seconds = counters.decode_seconds;
    stats->AddStorage(counters);
  }
  StatusOr<TPRelation> result =
      TPRelation::FromTable(rel.name(), out, manager);
  if (!result.ok()) return result.status();
  return EvalResult{std::move(*result), nullptr};
}

StatusOr<std::optional<Planner::EvalResult>> Planner::EvalColdBatch(
    const TPRelation& rel, const LogicalNode& scan_node,
    const std::vector<const LogicalNode*>& stages, ExecStats* stats) {
  const storage::SegmentedTable* table = rel.cold_storage().get();
  LineageManager* manager = rel.manager();
  const storage::ScanPredicate predicate =
      CollectColdScanPredicate(stages, manager, table);

  // Parallel: morsels of whole segments run the row-local batch prefix
  // independently (zone-map pruning composes per morsel); the merged
  // table — in segment order, i.e. the serial scan order — feeds any
  // remaining stages on the row path. Explain keeps the run serial so
  // per-stage counters describe one pipeline instance.
  if (ctx_ != nullptr && stats == nullptr &&
      ctx_->ShouldParallelize(table->num_rows()) &&
      table->segments().size() >= 2) {
    const size_t lowered =
        CountBatchStages(table->schema(), stages, /*row_local_only=*/true);
    if (lowered > 0) {
      const size_t max_morsels =
          static_cast<size_t>(ctx_->parallelism()) * 4;
      const std::vector<Morsel> morsels =
          MakeMorsels(table->segments().size(), 1, max_morsels);
      StatusOr<Table> merged = ParallelBatchPipeline(
          ctx_, morsels.size(),
          [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
            return vec::BatchOperatorPtr(
                std::make_unique<storage::SegmentBatchScan>(
                    table, predicate, morsels[i].begin, morsels[i].end));
          },
          [&](vec::BatchOperatorPtr src) -> StatusOr<vec::BatchOperatorPtr> {
            return LowerBatchStages(std::move(src), stages, lowered, manager,
                                    nullptr, nullptr);
          });
      if (!merged.ok()) return merged.status();
      StatusOr<TPRelation> result = FinishRowStagesOverTable(
          rel.name(), std::move(*merged), stages, lowered, manager);
      if (!result.ok()) return result.status();
      return std::optional<EvalResult>(
          EvalResult{std::move(*result), nullptr});
    }
  }

  // Serial: chunk-level batch scan → lowered batch stages → (adapter +
  // remaining row stages, when the chain has a non-vectorizable tail).
  const size_t lowered =
      CountBatchStages(table->schema(), stages, /*row_local_only=*/false);
  if (lowered == 0) return std::optional<EvalResult>();

  VectorStats vstats;
  StorageStats counters;
  NodeStats* scan_stats =
      stats != nullptr ? stats->AddNode(scan_node.Label() + " (cold)")
                       : nullptr;
  vec::BatchOperatorPtr op = std::make_unique<storage::SegmentBatchScan>(
      table, predicate, &counters, &vstats);
  op = LowerBatchStages(std::move(op), stages, lowered, manager, &vstats,
                        stats);
  Table out;
  if (lowered == stages.size()) {
    out = vec::MaterializeBatches(op.get(), &vstats);
  } else {
    OperatorPtr rop =
        std::make_unique<vec::BatchToRowAdapter>(std::move(op), &vstats);
    for (size_t i = lowered; i < stages.size(); ++i) {
      StatusOr<OperatorPtr> next =
          LowerPipelineStage(*stages[i], std::move(rop), manager);
      if (!next.ok()) return next.status();
      rop = std::move(*next);
      if (stats != nullptr)
        rop = Instrument(stages[i]->Label(), std::move(rop), stats);
    }
    out = Materialize(rop.get());
  }
  if (stats != nullptr) {
    scan_stats->rows = counters.rows_decoded;
    scan_stats->open_calls = 1;
    scan_stats->seconds = counters.decode_seconds;
    stats->AddStorage(counters);
    stats->AddVector(vstats);
  }
  StatusOr<TPRelation> result =
      TPRelation::FromTable(rel.name(), out, manager);
  if (!result.ok()) return result.status();
  return std::optional<EvalResult>(EvalResult{std::move(*result), nullptr});
}

StatusOr<std::optional<Planner::EvalResult>> Planner::EvalWarmBatch(
    const std::string& name, const Table& table, LineageManager* manager,
    const std::vector<const LogicalNode*>& stages, ExecStats* stats) {
  // Parallel: contiguous morsels of the flattened table through the
  // row-local batch prefix, ordered merge, remaining stages on the row
  // path (mirrors the row path's ParallelPipeline conditions).
  if (ctx_ != nullptr && stats == nullptr &&
      ctx_->ShouldParallelize(table.rows.size())) {
    const size_t lowered =
        CountBatchStages(table.schema, stages, /*row_local_only=*/true);
    if (lowered > 0) {
      const std::vector<Morsel> morsels =
          MakeMorsels(table.rows.size(), ctx_->options().morsel_size);
      if (morsels.size() >= 2) {
        StatusOr<Table> merged = ParallelBatchPipeline(
            ctx_, morsels.size(),
            [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
              return vec::BatchOperatorPtr(
                  std::make_unique<vec::TableBatchScan>(
                      &table, morsels[i].begin, morsels[i].end));
            },
            [&](vec::BatchOperatorPtr src)
                -> StatusOr<vec::BatchOperatorPtr> {
              return LowerBatchStages(std::move(src), stages, lowered,
                                      manager, nullptr, nullptr);
            });
        if (!merged.ok()) return merged.status();
        StatusOr<TPRelation> result = FinishRowStagesOverTable(
            name, std::move(*merged), stages, lowered, manager);
        if (!result.ok()) return result.status();
        return std::optional<EvalResult>(
            EvalResult{std::move(*result), nullptr});
      }
    }
  }

  const size_t lowered =
      CountBatchStages(table.schema, stages, /*row_local_only=*/false);
  if (lowered == 0) return std::optional<EvalResult>();

  VectorStats vstats;
  vec::BatchOperatorPtr op =
      std::make_unique<vec::TableBatchScan>(&table, &vstats);
  op = LowerBatchStages(std::move(op), stages, lowered, manager, &vstats,
                        stats);
  Table out;
  if (lowered == stages.size()) {
    out = vec::MaterializeBatches(op.get(), &vstats);
  } else {
    OperatorPtr rop =
        std::make_unique<vec::BatchToRowAdapter>(std::move(op), &vstats);
    for (size_t i = lowered; i < stages.size(); ++i) {
      StatusOr<OperatorPtr> next =
          LowerPipelineStage(*stages[i], std::move(rop), manager);
      if (!next.ok()) return next.status();
      rop = std::move(*next);
      if (stats != nullptr)
        rop = Instrument(stages[i]->Label(), std::move(rop), stats);
    }
    out = Materialize(rop.get());
  }
  if (stats != nullptr) stats->AddVector(vstats);
  StatusOr<TPRelation> result = TPRelation::FromTable(name, out, manager);
  if (!result.ok()) return result.status();
  return std::optional<EvalResult>(EvalResult{std::move(*result), nullptr});
}

StatusOr<std::optional<Planner::EvalResult>> Planner::TryBatchAggregate(
    const LogicalNode& node, ExecStats* stats) {
  // The child must be a pipelined chain rooted at a catalog scan, and
  // every stage must vectorize — the aggregate consumes the whole stream
  // batch-at-a-time, reading only the columns it references.
  std::vector<const LogicalNode*> chain;
  const LogicalNode* cursor = node.children[0].get();
  while (IsPipelined(cursor->op)) {
    chain.push_back(cursor);
    cursor = cursor->children[0].get();
  }
  if (cursor->op != LogicalOp::kScan) return std::optional<EvalResult>();
  const std::vector<const LogicalNode*> stages(chain.rbegin(), chain.rend());

  StatusOr<TPRelation*> rel = db_->GetAssumingLocked(cursor->relation);
  if (!rel.ok()) return rel.status();
  LineageManager* manager = (*rel)->manager();
  const storage::SegmentedTable* cold = (*rel)->cold_storage().get();

  // The flattened source schema is derivable without materializing rows
  // (facts ++ _ts/_te/_lin), so the vectorizability check runs before the
  // warm path pays for ToTable().
  Schema source_schema;
  if (cold != nullptr) {
    source_schema = cold->schema();
  } else {
    source_schema = (*rel)->fact_schema();
    source_schema.AddColumn({kTsColumn, DatumType::kInt64});
    source_schema.AddColumn({kTeColumn, DatumType::kInt64});
    source_schema.AddColumn({kLineageColumn, DatumType::kLineage});
  }
  Schema flat;
  if (CountBatchStages(source_schema, stages, /*row_local_only=*/false,
                       &flat) != stages.size())
    return std::optional<EvalResult>();
  std::unique_ptr<Table> warm;  // flattened backing of the warm path
  if (cold == nullptr) warm = std::make_unique<Table>((*rel)->ToTable());

  // Group/aggregate columns resolve against the fact prefix of the
  // flattened schema (the reserved columns sit at the end), so the
  // validation — and its errors — match the row path's exactly.
  TPDB_CHECK_GE(flat.num_columns(), 3u);
  const Schema facts(std::vector<Column>(flat.columns().begin(),
                                         flat.columns().end() - 3));
  StatusOr<AggPlan> plan = ResolveAggregatePlan(node, facts);
  if (!plan.ok()) return plan.status();
  std::vector<vec::BatchAggItem> items;
  items.reserve(node.aggregates.size());
  for (size_t j = 0; j < node.aggregates.size(); ++j)
    items.push_back(
        vec::BatchAggItem{MapAggFn(node.aggregates[j].fn), plan->agg_idx[j]});
  std::vector<Column> out_cols = std::move(plan->out_cols);
  out_cols.push_back({kTsColumn, DatumType::kInt64});
  out_cols.push_back({kTeColumn, DatumType::kInt64});
  out_cols.push_back({kLineageColumn, DatumType::kLineage});
  Schema out_schema(std::move(out_cols));

  const storage::ScanPredicate predicate =
      cold != nullptr ? CollectColdScanPredicate(stages, manager, cold)
                      : storage::ScanPredicate();

  VectorStats vstats;
  StorageStats counters;
  NodeStats* scan_stats = nullptr;
  std::unique_ptr<Table> merged;  // parallel prefix output
  vec::BatchOperatorPtr op;

  // Parallel prefix: the stages are row-local (limits never sit below an
  // aggregate in built plans), so the same morsel drivers apply; the
  // aggregate itself consumes the ordered merge serially.
  const size_t driving_rows =
      cold != nullptr ? cold->num_rows() : warm->rows.size();
  const bool parallel =
      ctx_ != nullptr && stats == nullptr && !stages.empty() &&
      ctx_->ShouldParallelize(driving_rows) &&
      CountBatchStages(source_schema, stages, /*row_local_only=*/true) ==
          stages.size() &&
      (cold == nullptr || cold->segments().size() >= 2);
  if (parallel) {
    const std::vector<Morsel> morsels =
        cold != nullptr
            ? MakeMorsels(cold->segments().size(), 1,
                          static_cast<size_t>(ctx_->parallelism()) * 4)
            : MakeMorsels(warm->rows.size(), ctx_->options().morsel_size);
    // A single morsel would only add a materialize + re-transpose round
    // trip over the serial stream below.
    if (morsels.size() >= 2) {
      StatusOr<Table> out = ParallelBatchPipeline(
          ctx_, morsels.size(),
          [&](size_t i) -> StatusOr<vec::BatchOperatorPtr> {
            if (cold != nullptr)
              return vec::BatchOperatorPtr(
                  std::make_unique<storage::SegmentBatchScan>(
                      cold, predicate, morsels[i].begin, morsels[i].end));
            return vec::BatchOperatorPtr(
                std::make_unique<vec::TableBatchScan>(
                    warm.get(), morsels[i].begin, morsels[i].end));
          },
          [&](vec::BatchOperatorPtr src) -> StatusOr<vec::BatchOperatorPtr> {
            return LowerBatchStages(std::move(src), stages, stages.size(),
                                    manager, nullptr, nullptr);
          });
      if (!out.ok()) return out.status();
      merged = std::make_unique<Table>(std::move(*out));
      op = std::make_unique<vec::TableBatchScan>(merged.get(), nullptr);
    }
  }
  if (op == nullptr && cold != nullptr) {
    scan_stats = stats != nullptr
                     ? stats->AddNode(cursor->Label() + " (cold)")
                     : nullptr;
    op = std::make_unique<storage::SegmentBatchScan>(cold, predicate,
                                                     &counters, &vstats);
    op = LowerBatchStages(std::move(op), stages, stages.size(), manager,
                          &vstats, stats);
  } else if (op == nullptr) {
    if (stats != nullptr)
      Report(stats, cursor->Label(), (*rel)->size(), 0.0);
    op = std::make_unique<vec::TableBatchScan>(warm.get(), &vstats);
    op = LowerBatchStages(std::move(op), stages, stages.size(), manager,
                          &vstats, stats);
  }

  op = std::make_unique<vec::BatchHashAggregate>(
      std::move(op), std::move(plan->group_idx), std::move(items),
      std::move(out_schema), manager);
  if (stats != nullptr)
    op = vec::InstrumentBatch(node.Label() + " (vec)", std::move(op), stats);
  const Table out = vec::MaterializeBatches(op.get(), &vstats);

  if (stats != nullptr) {
    if (scan_stats != nullptr) {
      scan_stats->rows = counters.rows_decoded;
      scan_stats->open_calls = 1;
      scan_stats->seconds = counters.decode_seconds;
      stats->AddStorage(counters);
    }
    stats->AddVector(vstats);
  }
  StatusOr<TPRelation> result =
      TPRelation::FromTable((*rel)->name() + "_agg", out, manager);
  if (!result.ok()) return result.status();
  return std::optional<EvalResult>(EvalResult{std::move(*result), nullptr});
}

}  // namespace tpdb
