// Tokenizer + recursive-descent parser for the query language — the first
// stage of the layered API (parse → logical plan → planner).
//
// Extended grammar (see README.md for the full EBNF; keywords are
// case-insensitive):
//
//   SELECT <*|items> FROM <rel>
//     [[INNER|LEFT|RIGHT|FULL|ANTI|SEMI] [OUTER] JOIN <rel>
//         ON <col>[=<col>] {,|AND <col>[=<col>]} [USING TA]]...
//     [WHERE <predicate>] [GROUP BY <cols>]
//     [{UNION|INTERSECT|EXCEPT} <rel or SELECT core>]...
//     [ORDER BY <col> [ASC|DESC], ...] [LIMIT n [OFFSET m]]
//     [WITH PROB {>=|>} p]
//
// The legacy one-line grammar of the seed API is still accepted and parses
// into the same SelectStatement:
//
//   <rel> [kind] JOIN <rel> ON <terms> [USING TA]
//   <rel> UNION|INTERSECT|EXCEPT <rel>
//
// Top-level persistence statements (ParseStatement only):
//
//   SAVE SNAPSHOT '<path>'   |   LOAD SNAPSHOT '<path>'
#ifndef TPDB_API_PARSER_H_
#define TPDB_API_PARSER_H_

#include <string>

#include "api/ast.h"
#include "common/status.h"

namespace tpdb {

/// Parses one query (extended or legacy form) into a statement.
/// Returns InvalidArgument with a descriptive message on any syntax error;
/// never aborts.
StatusOr<SelectStatement> ParseQuery(const std::string& text);

/// Parses one top-level statement: a query as above, or a persistence
/// statement — "SAVE SNAPSHOT 'path'" / "LOAD SNAPSHOT 'path'".
StatusOr<ParsedStatement> ParseStatement(const std::string& text);

/// Parses a standalone predicate, e.g. "Loc = 'ZAK' AND _ts >= 4"
/// (the WHERE sub-language; used by QueryBuilder::Where(std::string)).
StatusOr<AstExprPtr> ParsePredicate(const std::string& text);

}  // namespace tpdb

#endif  // TPDB_API_PARSER_H_
