#include "api/physical_plan.h"

#include <cstdio>
#include <utility>

#include "api/database.h"
#include "api/lowering_common.h"
#include "common/strings.h"
#include "lineage/compile/prob_eval.h"
#include "tp/operators.h"

namespace tpdb {

const char* PhysOpName(PhysOp op) {
  switch (op) {
    case PhysOp::kScan: return "Scan";
    case PhysOp::kBatchScan: return "BatchScan";
    case PhysOp::kFilter: return "Filter";
    case PhysOp::kProject: return "Project";
    case PhysOp::kAggregate: return "Aggregate";
    case PhysOp::kTPJoin: return "TPJoin";
    case PhysOp::kTPSetOp: return "TPSetOp";
    case PhysOp::kAlign: return "Align";
    case PhysOp::kSort: return "Sort";
    case PhysOp::kLimit: return "Limit";
    case PhysOp::kExchange: return "Exchange";
  }
  return "?";
}

bool IsPipelinedPhysOp(PhysOp op) {
  return op == PhysOp::kFilter || op == PhysOp::kProject ||
         op == PhysOp::kSort || op == PhysOp::kLimit;
}

bool IsCatalogSource(const PhysicalNode& source) {
  return (source.op == PhysOp::kScan || source.op == PhysOp::kBatchScan) &&
         source.rel != nullptr;
}

std::string PhysicalNode::Label() const {
  switch (op) {
    case PhysOp::kScan:
      return "Scan(" + relation + ")";
    case PhysOp::kBatchScan:
      return "BatchScan(" + relation + ")";
    case PhysOp::kFilter: {
      if (is_prob) {
        char buf[96];
        if (approx_eps > 0.0) {
          std::snprintf(buf, sizeof(buf),
                        "ProbThreshold[APPROX(%g, %g) %s %g]", approx_eps,
                        approx_delta, min_prob_strict ? ">" : ">=", min_prob);
        } else {
          std::snprintf(buf, sizeof(buf), "ProbThreshold[%s %g]",
                        min_prob_strict ? ">" : ">=", min_prob);
        }
        std::string label = buf;
        // Filled in at run time; Explain of an executed plan shows which
        // rungs of the evaluation ladder fired.
        const std::string methods = ProbMethodsLabel(prob_methods);
        if (!methods.empty()) label += " prob=" + methods;
        return label;
      }
      return "Filter[" + (predicate ? predicate->ToString() : "true") + "]";
    }
    case PhysOp::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < columns.size(); ++i) {
        std::string part = columns[i];
        if (i < aliases.size() && !aliases[i].empty() &&
            aliases[i] != columns[i])
          part += " AS " + aliases[i];
        parts.push_back(std::move(part));
      }
      return "Project[" + tpdb::Join(parts, ", ") + "]";
    }
    case PhysOp::kAggregate: {
      std::vector<std::string> parts;
      for (const SelectItem& item : aggregates)
        parts.push_back(item.ToString());
      std::string label = "Aggregate[" + tpdb::Join(parts, ", ");
      if (!group_by.empty()) label += " BY " + tpdb::Join(group_by, ", ");
      return label + "]";
    }
    case PhysOp::kTPJoin:
    case PhysOp::kAlign: {
      std::vector<std::string> terms;
      for (const auto& [l, r] : join_on) terms.push_back(l + "=" + r);
      std::string label = std::string("Join[") + TPJoinKindName(join_kind) +
                          ", on " + tpdb::Join(terms, ",");
      if (op == PhysOp::kAlign) label += ", TA";
      if (op == PhysOp::kTPJoin &&
          join_algorithm != OverlapAlgorithm::kPartitioned) {
        label += std::string(", alg=") + OverlapAlgorithmName(join_algorithm);
        if (time_slices > 1) label += " x" + std::to_string(time_slices);
      }
      return label + "]";
    }
    case PhysOp::kTPSetOp:
      return std::string("SetOp[") + SetOpKindName(set_op) + "]";
    case PhysOp::kSort: {
      std::vector<std::string> parts;
      for (const OrderItem& item : order_by)
        parts.push_back(item.column + (item.ascending ? " ASC" : " DESC"));
      std::string label = "Sort[" + tpdb::Join(parts, ", ");
      if (top_k >= 0) label += ", top " + std::to_string(top_k);
      label += "]";
      const std::string methods = ProbMethodsLabel(prob_methods);
      if (!methods.empty()) label += " prob=" + methods;
      return label;
    }
    case PhysOp::kLimit: {
      std::string label = "Limit[" + std::to_string(limit);
      if (offset > 0) label += " OFFSET " + std::to_string(offset);
      return label + "]";
    }
    case PhysOp::kExchange:
      return "Exchange[" + std::to_string(workers) + " workers]";
  }
  return "?";
}

std::string PhysicalNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Label();
  if ((op == PhysOp::kScan || op == PhysOp::kBatchScan) &&
      !scan_predicate.Empty())
    out += " pushdown=[" + scan_predicate.ToString() + "]";
  char buf[96];
  if (op == PhysOp::kExchange) {
    std::snprintf(buf, sizeof(buf), "  {est %.3g rows, cost %.3g}",
                  est.rows, est.cost);
  } else {
    std::snprintf(buf, sizeof(buf), "  {%s, est %.3g rows, cost %.3g}",
                  mode == ExecMode::kBatch ? "batch" : "row", est.rows,
                  est.cost);
  }
  out += buf;
  if (actual != nullptr) {
    std::snprintf(buf, sizeof(buf), "  (actual %llu rows, %.3f ms)",
                  static_cast<unsigned long long>(actual->rows),
                  actual->seconds * 1000.0);
    out += buf;
  }
  out += "\n";
  for (const PhysicalNodePtr& child : children)
    out += child->ToString(indent + 1);
  return out;
}

namespace {

StatusOr<PhysicalNodePtr> Build(const LogicalNode& node, TPDatabase* db) {
  auto phys = std::make_unique<PhysicalNode>();
  for (const LogicalNodePtr& child : node.children) {
    StatusOr<PhysicalNodePtr> built = Build(*child, db);
    if (!built.ok()) return built.status();
    phys->children.push_back(std::move(*built));
  }
  switch (node.op) {
    case LogicalOp::kScan: {
      phys->op = PhysOp::kScan;
      phys->relation = node.relation;
      StatusOr<TPRelation*> rel = db->GetAssumingLocked(node.relation);
      if (!rel.ok()) return rel.status();
      phys->rel = *rel;
      phys->cold = (*rel)->cold_storage() != nullptr;
      phys->schema = phys->cold ? (*rel)->cold_storage()->schema()
                                : FlattenFactSchema((*rel)->fact_schema());
      break;
    }
    case LogicalOp::kFilter:
      phys->op = PhysOp::kFilter;
      phys->predicate = node.predicate;
      phys->schema = phys->children[0]->schema;
      break;
    case LogicalOp::kProbThreshold:
      phys->op = PhysOp::kFilter;
      phys->is_prob = true;
      phys->min_prob = node.min_prob;
      phys->min_prob_strict = node.min_prob_strict;
      phys->approx_eps = node.approx_eps;
      phys->approx_delta = node.approx_delta;
      phys->schema = phys->children[0]->schema;
      break;
    case LogicalOp::kProject: {
      phys->op = PhysOp::kProject;
      phys->columns = node.columns;
      phys->aliases = node.aliases;
      StatusOr<ProjectPlan> plan = PlanProjectStage(
          phys->columns, phys->aliases, phys->children[0]->schema);
      if (!plan.ok()) return plan.status();
      phys->schema = ProjectOutputSchema(*plan, phys->children[0]->schema);
      break;
    }
    case LogicalOp::kSort:
      phys->op = PhysOp::kSort;
      phys->order_by = node.order_by;
      phys->schema = phys->children[0]->schema;
      break;
    case LogicalOp::kLimit:
      phys->op = PhysOp::kLimit;
      phys->limit = node.limit;
      phys->offset = node.offset;
      phys->schema = phys->children[0]->schema;
      break;
    case LogicalOp::kAggregate: {
      phys->op = PhysOp::kAggregate;
      phys->group_by = node.group_by;
      phys->group_aliases = node.group_aliases;
      phys->aggregates = node.aggregates;
      StatusOr<AggPlan> plan = ResolveAggregatePlan(
          phys->group_by, phys->group_aliases, phys->aggregates,
          FactSchemaOf(phys->children[0]->schema));
      if (!plan.ok()) return plan.status();
      phys->schema = FlattenFactSchema(Schema(std::move(plan->out_cols)));
      break;
    }
    case LogicalOp::kJoin: {
      phys->op = node.strategy == JoinStrategy::kTemporalAlignment
                     ? PhysOp::kAlign
                     : PhysOp::kTPJoin;
      phys->join_kind = node.join_kind;
      phys->join_on = node.join_on;
      phys->schema = FlattenFactSchema(
          TPJoinOutputSchema(node.join_kind,
                             FactSchemaOf(phys->children[0]->schema),
                             FactSchemaOf(phys->children[1]->schema)));
      break;
    }
    case LogicalOp::kSetOp:
      phys->op = PhysOp::kTPSetOp;
      phys->set_op = node.set_op;
      phys->schema = phys->children[0]->schema;
      break;
    case LogicalOp::kSaveSnapshot:
    case LogicalOp::kLoadSnapshot:
      return Status::InvalidArgument(
          "snapshot statements are only valid as the plan root");
  }
  return phys;
}

}  // namespace

StatusOr<PhysicalPlan> BuildPhysicalPlan(const LogicalPlan& plan,
                                         TPDatabase* db) {
  if (plan.root == nullptr)
    return Status::InvalidArgument("empty logical plan");
  TPDB_CHECK(db != nullptr);
  StatusOr<PhysicalNodePtr> root = Build(*plan.root, db);
  if (!root.ok()) return root.status();
  PhysicalPlan physical;
  physical.root = std::move(*root);
  return physical;
}

}  // namespace tpdb
