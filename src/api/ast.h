// Abstract syntax of the query language: scalar predicate expressions and
// SELECT statements. The parser (api/parser.h) produces these; the logical
// plan builder (api/logical_plan.h) consumes them. The AST is deliberately
// name-based — columns and relations are resolved against the catalog only
// when the planner lowers the plan, so a statement can be built (by hand,
// by QueryBuilder, or by the parser) without a database in scope.
#ifndef TPDB_API_AST_H_
#define TPDB_API_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/datum.h"
#include "engine/aggregate.h"
#include "engine/expr.h"
#include "tp/operators.h"

namespace tpdb {

// -- Scalar predicate expressions -----------------------------------------

/// Node kinds of the predicate AST (kNot and kIsNull use `left` only).
enum class AstExprKind {
  kColumn,
  kLiteral,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kIsNull,
};

struct AstExpr;
using AstExprPtr = std::shared_ptr<const AstExpr>;

/// Immutable predicate node. Only the fields of its `kind` are meaningful.
struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  std::string column;                      ///< kColumn: unresolved name
  Datum literal;                           ///< kLiteral
  CompareOp compare_op = CompareOp::kEq;   ///< kCompare
  AstExprPtr left;
  AstExprPtr right;

  /// SQL-ish rendering, e.g. "(Loc = 'ZAK' AND _ts >= 4)".
  std::string ToString() const;
};

AstExprPtr AstColumn(std::string name);
AstExprPtr AstLiteral(Datum value);
AstExprPtr AstCompare(CompareOp op, AstExprPtr a, AstExprPtr b);
AstExprPtr AstAnd(AstExprPtr a, AstExprPtr b);
AstExprPtr AstOr(AstExprPtr a, AstExprPtr b);
AstExprPtr AstNot(AstExprPtr a);
AstExprPtr AstIsNull(AstExprPtr a);

/// The symbol of `op` ("=", "<>", "<", "<=", ">", ">=").
const char* CompareOpSymbol(CompareOp op);

// -- SELECT statements ----------------------------------------------------

/// One entry of the select list: a plain column or an aggregate call.
struct SelectItem {
  bool is_aggregate = false;
  AggFn fn = AggFn::kCount;  ///< aggregate function (is_aggregate only)
  std::string column;        ///< source column; "*" for COUNT(*)
  std::string alias;         ///< output name ("" = derived from the source)

  static SelectItem Col(std::string column, std::string alias = "");
  static SelectItem Agg(AggFn fn, std::string column, std::string alias = "");

  /// e.g. "Loc", "SUM(Price) AS total".
  std::string ToString() const;
};

/// One JOIN clause of a select core.
struct JoinClause {
  TPJoinKind kind = TPJoinKind::kInner;
  std::string relation;
  /// ON terms: (left column, right column) equality pairs.
  std::vector<std::pair<std::string, std::string>> on;
  /// USING TA — run the Temporal Alignment baseline instead of NJ.
  bool using_ta = false;
};

/// One ORDER BY key.
struct OrderItem {
  std::string column;
  bool ascending = true;
};

/// Set operations combining select cores.
enum class SetOpKind { kUnion, kIntersect, kExcept };

const char* SetOpKindName(SetOpKind kind);

/// SELECT ... FROM ... [JOIN ...] [WHERE ...] [GROUP BY ...] — everything
/// that produces one relation before set operations and output modifiers.
struct SelectCore {
  std::vector<SelectItem> items;  ///< empty = SELECT *
  std::string from;
  std::vector<JoinClause> joins;
  AstExprPtr where;               ///< null = no WHERE
  std::vector<std::string> group_by;
};

/// A full query: a core, optional set operations against further cores,
/// and the output modifiers ORDER BY / LIMIT / WITH PROB.
struct SelectStatement {
  SelectCore core;
  std::vector<std::pair<SetOpKind, SelectCore>> set_ops;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  int64_t offset = 0;
  /// WITH PROB >= p (or > p when `min_prob_strict`): keep only result
  /// tuples whose exact lineage probability clears the threshold.
  std::optional<double> min_prob;
  bool min_prob_strict = false;
  /// WITH PROB APPROX(eps, delta) >= p: evaluate probabilities by sampling
  /// to P(|p̂ − p| ≤ eps) ≥ 1 − delta instead of exactly. 0 = exact.
  double approx_eps = 0.0;
  double approx_delta = 0.0;
};

// -- Top-level statements -------------------------------------------------

/// Statement forms of the query language beyond SELECT.
enum class StatementKind {
  kSelect,        ///< SELECT ... (or a legacy one-liner)
  kSaveSnapshot,  ///< SAVE SNAPSHOT 'path'
  kLoadSnapshot,  ///< LOAD SNAPSHOT 'path'
};

/// One parsed top-level statement. Only the payload of its `kind` is
/// meaningful.
struct ParsedStatement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;      ///< kSelect
  std::string snapshot_path;   ///< kSaveSnapshot / kLoadSnapshot
};

}  // namespace tpdb

#endif  // TPDB_API_AST_H_
