#include "api/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <vector>

namespace tpdb {

namespace {

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

// -- Tokenizer ------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  bool is_double = false;  // kNumber: had a '.' or exponent
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
// '-' continues an identifier so that derived relation names like
// "wants_left-outer_hotels" stay addressable; the language has no
// arithmetic, and a leading '-' (negative literal) is still a symbol.
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

StatusOr<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      tokens.push_back({TokKind::kIdent, text.substr(i, j - i)});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int dots = 0;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.')) {
        if (text[j] == '.') ++dots;
        ++j;
      }
      if (dots > 1)
        return Status::InvalidArgument("malformed number '" +
                                       text.substr(i, j - i) + "'");
      tokens.push_back({TokKind::kNumber, text.substr(i, j - i), dots > 0});
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      while (j < n) {
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {  // SQL-style '' escape
            value.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        value.push_back(text[j++]);
      }
      if (j >= n)
        return Status::InvalidArgument("unterminated string literal in '" +
                                       text + "'");
      tokens.push_back({TokKind::kString, std::move(value)});
      i = j + 1;
      continue;
    }
    // Two-character comparison symbols first.
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      if (two == ">=" || two == "<=" || two == "!=" || two == "<>") {
        tokens.push_back({TokKind::kSymbol, two});
        i += 2;
        continue;
      }
    }
    if (c == '(' || c == ')' || c == ',' || c == '=' || c == '<' ||
        c == '>' || c == '*' || c == '-') {
      tokens.push_back({TokKind::kSymbol, std::string(1, c)});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "' in query");
  }
  tokens.push_back({TokKind::kEnd, "<end>"});
  return tokens;
}

// -- Parser ---------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedStatement> ParseTopLevel() {
    ParsedStatement stmt;
    if ((IsKeyword("SAVE") || IsKeyword("LOAD")) && IsKeyword("SNAPSHOT", 1)) {
      stmt.kind = IsKeyword("SAVE") ? StatementKind::kSaveSnapshot
                                    : StatementKind::kLoadSnapshot;
      Advance();  // SAVE / LOAD
      Advance();  // SNAPSHOT
      const Token& path = Peek();
      if (path.kind != TokKind::kString)
        return Status::InvalidArgument(
            "expected quoted snapshot path, found '" + path.text + "'");
      stmt.snapshot_path = path.text;
      Advance();
      if (Peek().kind != TokKind::kEnd)
        return Status::InvalidArgument("trailing tokens at '" + Peek().text +
                                       "'");
      return stmt;
    }
    StatusOr<SelectStatement> select = ParseStatement();
    if (!select.ok()) return select.status();
    stmt.kind = StatementKind::kSelect;
    stmt.select = std::move(*select);
    return stmt;
  }

  StatusOr<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    if (IsKeyword("SELECT")) {
      StatusOr<SelectCore> core = ParseSelectCore();
      if (!core.ok()) return core.status();
      stmt.core = std::move(*core);
      TPDB_RETURN_IF_ERROR(ParseSetOps(&stmt));
      TPDB_RETURN_IF_ERROR(ParseModifiers(&stmt));
    } else {
      TPDB_RETURN_IF_ERROR(ParseLegacy(&stmt));
    }
    if (Peek().kind != TokKind::kEnd)
      return Status::InvalidArgument("trailing tokens at '" + Peek().text +
                                     "'");
    return stmt;
  }

  StatusOr<AstExprPtr> ParseStandalonePredicate() {
    StatusOr<AstExprPtr> pred = ParseOrExpr();
    if (!pred.ok()) return pred.status();
    if (Peek().kind != TokKind::kEnd)
      return Status::InvalidArgument("trailing tokens at '" + Peek().text +
                                     "' in predicate");
    return pred;
  }

 private:
  const Token& Peek(size_t offset = 0) const {
    const size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool IsKeyword(const char* kw, size_t offset = 0) const {
    const Token& t = Peek(offset);
    return t.kind == TokKind::kIdent && Upper(t.text) == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::InvalidArgument(std::string("expected ") + kw +
                                   ", found '" + Peek().text + "'");
  }
  bool MatchSymbol(const char* sym) {
    const Token& t = Peek();
    if (t.kind != TokKind::kSymbol || t.text != sym) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Status::InvalidArgument(std::string("expected '") + sym +
                                   "', found '" + Peek().text + "'");
  }
  StatusOr<std::string> ExpectIdent(const char* what) {
    const Token& t = Peek();
    if (t.kind != TokKind::kIdent)
      return Status::InvalidArgument(std::string("expected ") + what +
                                     ", found '" + t.text + "'");
    std::string name = t.text;
    Advance();
    return name;
  }

  bool PeekJoinKind(TPJoinKind* kind) const {
    if (Peek().kind != TokKind::kIdent) return false;
    const std::string kw = Upper(Peek().text);
    if (kw == "INNER") *kind = TPJoinKind::kInner;
    else if (kw == "LEFT") *kind = TPJoinKind::kLeftOuter;
    else if (kw == "RIGHT") *kind = TPJoinKind::kRightOuter;
    else if (kw == "FULL") *kind = TPJoinKind::kFullOuter;
    else if (kw == "ANTI") *kind = TPJoinKind::kAnti;
    else if (kw == "SEMI") *kind = TPJoinKind::kSemi;
    else return false;
    return true;
  }

  bool AtJoinClause() const {
    TPJoinKind kind;
    return IsKeyword("JOIN") || (PeekJoinKind(&kind) && IsKeyword("JOIN", 1)) ||
           (PeekJoinKind(&kind) && IsKeyword("OUTER", 1) &&
            IsKeyword("JOIN", 2));
  }

  /// Parses "[kind] [OUTER] JOIN <rel> ON <terms> [USING TA]" starting at
  /// the kind-or-JOIN token.
  StatusOr<JoinClause> ParseJoinClause() {
    JoinClause join;
    if (!MatchKeyword("JOIN")) {
      if (!PeekJoinKind(&join.kind))
        return Status::InvalidArgument("unknown join kind '" + Peek().text +
                                       "'");
      Advance();
      MatchKeyword("OUTER");
      TPDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    }
    StatusOr<std::string> rel = ExpectIdent("relation after JOIN");
    if (!rel.ok()) return rel.status();
    join.relation = std::move(*rel);
    TPDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    // θ terms: col or col=col, separated by ',' or AND.
    do {
      StatusOr<std::string> left = ExpectIdent("join column after ON");
      if (!left.ok()) return left.status();
      std::string right = *left;
      if (MatchSymbol("=")) {
        StatusOr<std::string> r = ExpectIdent("right join column");
        if (!r.ok()) return r.status();
        right = std::move(*r);
      }
      join.on.emplace_back(std::move(*left), std::move(right));
    } while (MatchSymbol(",") || MatchKeyword("AND"));
    if (MatchKeyword("USING")) {
      TPDB_RETURN_IF_ERROR(ExpectKeyword("TA"));
      join.using_ta = true;
    }
    return join;
  }

  StatusOr<SelectItem> ParseSelectItem() {
    StatusOr<std::string> name = ExpectIdent("select-list entry");
    if (!name.ok()) return name.status();
    SelectItem item;
    const std::string upper = Upper(*name);
    const bool is_agg_fn = upper == "COUNT" || upper == "SUM" ||
                           upper == "MIN" || upper == "MAX";
    if (is_agg_fn && Peek().kind == TokKind::kSymbol && Peek().text == "(") {
      Advance();
      item.is_aggregate = true;
      if (upper == "COUNT") item.fn = AggFn::kCount;
      else if (upper == "SUM") item.fn = AggFn::kSum;
      else if (upper == "MIN") item.fn = AggFn::kMin;
      else item.fn = AggFn::kMax;
      if (MatchSymbol("*")) {
        if (item.fn != AggFn::kCount)
          return Status::InvalidArgument(upper +
                                         "(*) is only valid for COUNT");
        item.column = "*";
      } else {
        StatusOr<std::string> col = ExpectIdent("aggregate argument");
        if (!col.ok()) return col.status();
        item.column = std::move(*col);
      }
      TPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      item.column = std::move(*name);
    }
    if (MatchKeyword("AS")) {
      StatusOr<std::string> alias = ExpectIdent("alias after AS");
      if (!alias.ok()) return alias.status();
      item.alias = std::move(*alias);
    }
    return item;
  }

  StatusOr<SelectCore> ParseSelectCore() {
    SelectCore core;
    TPDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (!MatchSymbol("*")) {
      do {
        StatusOr<SelectItem> item = ParseSelectItem();
        if (!item.ok()) return item.status();
        core.items.push_back(std::move(*item));
      } while (MatchSymbol(","));
    }
    TPDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    StatusOr<std::string> from = ExpectIdent("relation after FROM");
    if (!from.ok()) return from.status();
    core.from = std::move(*from);
    while (AtJoinClause()) {
      StatusOr<JoinClause> join = ParseJoinClause();
      if (!join.ok()) return join.status();
      core.joins.push_back(std::move(*join));
    }
    if (MatchKeyword("WHERE")) {
      StatusOr<AstExprPtr> pred = ParseOrExpr();
      if (!pred.ok()) return pred.status();
      core.where = std::move(*pred);
    }
    if (MatchKeyword("GROUP")) {
      TPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        StatusOr<std::string> col = ExpectIdent("GROUP BY column");
        if (!col.ok()) return col.status();
        core.group_by.push_back(std::move(*col));
      } while (MatchSymbol(","));
    }
    return core;
  }

  Status ParseSetOps(SelectStatement* stmt) {
    while (true) {
      SetOpKind kind;
      if (MatchKeyword("UNION")) kind = SetOpKind::kUnion;
      else if (MatchKeyword("INTERSECT")) kind = SetOpKind::kIntersect;
      else if (MatchKeyword("EXCEPT")) kind = SetOpKind::kExcept;
      else return Status::OK();
      if (IsKeyword("SELECT")) {
        StatusOr<SelectCore> core = ParseSelectCore();
        if (!core.ok()) return core.status();
        stmt->set_ops.emplace_back(kind, std::move(*core));
      } else {
        StatusOr<std::string> rel = ExpectIdent("relation after set op");
        if (!rel.ok()) return rel.status();
        SelectCore core;
        core.from = std::move(*rel);
        stmt->set_ops.emplace_back(kind, std::move(core));
      }
    }
  }

  Status ParseModifiers(SelectStatement* stmt) {
    if (MatchKeyword("ORDER")) {
      TPDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        StatusOr<std::string> col = ExpectIdent("ORDER BY column");
        if (!col.ok()) return col.status();
        OrderItem item;
        item.column = std::move(*col);
        if (MatchKeyword("DESC")) item.ascending = false;
        else MatchKeyword("ASC");
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      StatusOr<int64_t> n = ExpectInteger("LIMIT");
      if (!n.ok()) return n.status();
      stmt->limit = *n;
      if (MatchKeyword("OFFSET")) {
        StatusOr<int64_t> off = ExpectInteger("OFFSET");
        if (!off.ok()) return off.status();
        stmt->offset = *off;
      }
    }
    if (MatchKeyword("WITH")) {
      TPDB_RETURN_IF_ERROR(ExpectKeyword("PROB"));
      if (MatchKeyword("APPROX")) {
        if (!MatchSymbol("("))
          return Status::InvalidArgument("expected ( after APPROX");
        StatusOr<double> eps = ExpectNumber("APPROX epsilon");
        if (!eps.ok()) return eps.status();
        if (!MatchSymbol(","))
          return Status::InvalidArgument("expected , in APPROX(eps, delta)");
        StatusOr<double> delta = ExpectNumber("APPROX delta");
        if (!delta.ok()) return delta.status();
        if (!MatchSymbol(")"))
          return Status::InvalidArgument("expected ) after APPROX(eps, delta");
        if (!(*eps > 0.0 && *eps < 1.0))
          return Status::InvalidArgument("APPROX epsilon must be in (0, 1)");
        if (!(*delta > 0.0 && *delta < 1.0))
          return Status::InvalidArgument("APPROX delta must be in (0, 1)");
        stmt->approx_eps = *eps;
        stmt->approx_delta = *delta;
      }
      if (MatchSymbol(">=")) stmt->min_prob_strict = false;
      else if (MatchSymbol(">")) stmt->min_prob_strict = true;
      else
        return Status::InvalidArgument("expected >= or > after WITH PROB");
      const Token& t = Peek();
      if (t.kind != TokKind::kNumber)
        return Status::InvalidArgument("expected probability after WITH "
                                       "PROB, found '" + t.text + "'");
      stmt->min_prob = std::strtod(t.text.c_str(), nullptr);
      Advance();
    }
    return Status::OK();
  }

  StatusOr<int64_t> ExpectInteger(const char* what) {
    const Token& t = Peek();
    if (t.kind != TokKind::kNumber || t.is_double)
      return Status::InvalidArgument(std::string("expected integer after ") +
                                     what + ", found '" + t.text + "'");
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(t.text.c_str(), &end, 10);
    if (errno == ERANGE || v < 0)
      return Status::OutOfRange(std::string(what) + " value '" + t.text +
                                "' is out of range");
    Advance();
    return static_cast<int64_t>(v);
  }

  StatusOr<double> ExpectNumber(const char* what) {
    const Token& t = Peek();
    if (t.kind != TokKind::kNumber)
      return Status::InvalidArgument(std::string("expected number after ") +
                                     what + ", found '" + t.text + "'");
    const double v = std::strtod(t.text.c_str(), nullptr);
    Advance();
    return v;
  }

  // Legacy grammar: "<rel> [kind] JOIN <rel> ON <terms> [USING TA]" and
  // "<rel> UNION|INTERSECT|EXCEPT <rel>".
  Status ParseLegacy(SelectStatement* stmt) {
    if (Peek().kind == TokKind::kEnd)
      return Status::InvalidArgument("empty query");
    StatusOr<std::string> left = ExpectIdent("relation");
    if (!left.ok()) return left.status();
    stmt->core.from = std::move(*left);

    SetOpKind set_kind;
    if (MatchKeyword("UNION")) set_kind = SetOpKind::kUnion;
    else if (MatchKeyword("INTERSECT")) set_kind = SetOpKind::kIntersect;
    else if (MatchKeyword("EXCEPT")) set_kind = SetOpKind::kExcept;
    else {
      if (!AtJoinClause())
        return Status::InvalidArgument(
            "expected JOIN or set operation, found '" + Peek().text + "'");
      StatusOr<JoinClause> join = ParseJoinClause();
      if (!join.ok()) return join.status();
      stmt->core.joins.push_back(std::move(*join));
      return Status::OK();
    }
    StatusOr<std::string> right = ExpectIdent("relation after set op");
    if (!right.ok()) return right.status();
    SelectCore other;
    other.from = std::move(*right);
    stmt->set_ops.emplace_back(set_kind, std::move(other));
    return Status::OK();
  }

  // -- Predicates ---------------------------------------------------------

  StatusOr<AstExprPtr> ParseOrExpr() {
    StatusOr<AstExprPtr> a = ParseAndExpr();
    if (!a.ok()) return a.status();
    AstExprPtr expr = std::move(*a);
    while (MatchKeyword("OR")) {
      StatusOr<AstExprPtr> b = ParseAndExpr();
      if (!b.ok()) return b.status();
      expr = AstOr(std::move(expr), std::move(*b));
    }
    return expr;
  }

  StatusOr<AstExprPtr> ParseAndExpr() {
    StatusOr<AstExprPtr> a = ParseUnaryExpr();
    if (!a.ok()) return a.status();
    AstExprPtr expr = std::move(*a);
    while (MatchKeyword("AND")) {
      StatusOr<AstExprPtr> b = ParseUnaryExpr();
      if (!b.ok()) return b.status();
      expr = AstAnd(std::move(expr), std::move(*b));
    }
    return expr;
  }

  StatusOr<AstExprPtr> ParseUnaryExpr() {
    if (MatchKeyword("NOT")) {
      StatusOr<AstExprPtr> a = ParseUnaryExpr();
      if (!a.ok()) return a.status();
      return AstNot(std::move(*a));
    }
    return ParsePrimaryExpr();
  }

  StatusOr<AstExprPtr> ParsePrimaryExpr() {
    if (MatchSymbol("(")) {
      StatusOr<AstExprPtr> e = ParseOrExpr();
      if (!e.ok()) return e.status();
      TPDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    StatusOr<AstExprPtr> lhs = ParseOperand();
    if (!lhs.ok()) return lhs.status();
    if (MatchKeyword("IS")) {
      const bool negated = MatchKeyword("NOT");
      TPDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      AstExprPtr e = AstIsNull(std::move(*lhs));
      return negated ? AstNot(std::move(e)) : e;
    }
    CompareOp op;
    if (MatchSymbol("=")) op = CompareOp::kEq;
    else if (MatchSymbol("!=") || MatchSymbol("<>")) op = CompareOp::kNe;
    else if (MatchSymbol("<=")) op = CompareOp::kLe;
    else if (MatchSymbol(">=")) op = CompareOp::kGe;
    else if (MatchSymbol("<")) op = CompareOp::kLt;
    else if (MatchSymbol(">")) op = CompareOp::kGt;
    else
      return Status::InvalidArgument(
          "expected comparison operator, found '" + Peek().text + "'");
    StatusOr<AstExprPtr> rhs = ParseOperand();
    if (!rhs.ok()) return rhs.status();
    return AstCompare(op, std::move(*lhs), std::move(*rhs));
  }

  StatusOr<AstExprPtr> ParseOperand() {
    const Token& t = Peek();
    if (t.kind == TokKind::kIdent) {
      std::string name = t.text;
      Advance();
      return AstColumn(std::move(name));
    }
    if (t.kind == TokKind::kString) {
      std::string value = t.text;
      Advance();
      return AstLiteral(Datum(std::move(value)));
    }
    bool negate = false;
    if (t.kind == TokKind::kSymbol && t.text == "-") {
      negate = true;
      Advance();
    }
    const Token& num = Peek();
    if (num.kind != TokKind::kNumber)
      return Status::InvalidArgument("expected column, literal or number, "
                                     "found '" + num.text + "'");
    Datum value = num.is_double
                      ? Datum(std::strtod(num.text.c_str(), nullptr) *
                              (negate ? -1.0 : 1.0))
                      : Datum(static_cast<int64_t>(
                            std::atoll(num.text.c_str()) * (negate ? -1 : 1)));
    Advance();
    return AstLiteral(std::move(value));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SelectStatement> ParseQuery(const std::string& text) {
  StatusOr<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  if (tokens->size() <= 1)
    return Status::InvalidArgument("empty query");
  Parser parser(std::move(*tokens));
  return parser.ParseStatement();
}

StatusOr<ParsedStatement> ParseStatement(const std::string& text) {
  StatusOr<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  if (tokens->size() <= 1)
    return Status::InvalidArgument("empty query");
  Parser parser(std::move(*tokens));
  return parser.ParseTopLevel();
}

StatusOr<AstExprPtr> ParsePredicate(const std::string& text) {
  StatusOr<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  if (tokens->size() <= 1)
    return Status::InvalidArgument("empty predicate");
  Parser parser(std::move(*tokens));
  return parser.ParseStandalonePredicate();
}

}  // namespace tpdb
