// Planner — the last stage of the layered API. Lowers a logical plan onto
// the executors the seed already ships:
//
//   - kJoin    → tp/operators.h TPJoin (NJ window plans or the TA baseline)
//   - kSetOp   → tp/set_ops.h TPUnion / TPIntersect / TPDifference
//   - kFilter / kProject / kSort / kLimit / kProbThreshold → one fused
//     engine/ Volcano pipeline (TableScan → Filter → … → Limit) over the
//     flattened table (fact columns ++ _ts ++ _te ++ _lin), converted back
//     with TPRelation::FromTable
//   - kAggregate → grouped aggregation where each group's interval is the
//     span of its tuples and its lineage is the disjunction of their
//     lineages (probability stays exact). An aggregate over an empty input
//     yields an empty relation — unlike SQL's global COUNT, a TP tuple
//     cannot exist without a validity interval
//
// When an ExecStats registry is supplied, every lowered engine operator is
// wrapped with engine/explain Instrument and every TP-level operator
// reports its row count and wall time into the same registry — this is
// what TPDatabase::Explain renders.
#ifndef TPDB_API_PLANNER_H_
#define TPDB_API_PLANNER_H_

#include <optional>
#include <vector>

#include "api/logical_plan.h"
#include "common/status.h"
#include "engine/explain.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

class ExecContext;
class TPDatabase;

/// Physical knobs shared by every node of one execution.
struct PlannerOptions {
  /// Physical algorithm for the NJ overlap join.
  OverlapAlgorithm overlap_algorithm = OverlapAlgorithm::kPartitioned;
  /// Validate the duplicate-free-in-time invariant of join inputs.
  bool validate_inputs = true;
  /// Name given to the result relation of the plan root ("" = derived).
  std::string result_name;
  /// Worker threads for the exec/ parallel runtime: 1 = the serial path
  /// (bit-for-bit identical to the pre-exec planner), 0 = hardware
  /// concurrency, n > 1 = explicit worker count on the shared pool.
  int parallelism = 0;
  /// Tuples per morsel for the partitioned drivers.
  size_t morsel_size = 1024;
  /// Driving inputs smaller than this run serially even when
  /// parallelism > 1 (task setup would dominate).
  size_t min_parallel_rows = 512;
  /// Batch-at-a-time execution (engine/vector/): the planner lowers the
  /// leading Scan→Filter→Project(→Aggregate/Limit) prefix of a pipeline
  /// onto ColumnBatch operators — zero-copy over columnar snapshots, typed
  /// column loops for predicates — and falls back to the row path for
  /// anything it cannot vectorize (sort, exotic predicates). Results are
  /// element-wise and order identical either way; `false` forces the
  /// row path bit-for-bit.
  bool vectorize = true;
};

/// Executes logical plans against one database's catalog.
class Planner {
 public:
  explicit Planner(TPDatabase* db, PlannerOptions options = {});

  /// Runs `plan` to completion. With `stats`, every lowered operator
  /// reports rows and wall time into the registry (registration order is
  /// bottom-up per pipeline, matching ExecStats::ToString).
  StatusOr<TPRelation> Execute(const LogicalPlan& plan,
                               ExecStats* stats = nullptr);

 private:
  /// A node's result: either a relation the planner materialized, or a
  /// borrowed pointer into the catalog (scans are zero-copy — only a plan
  /// whose ROOT is a bare scan pays one copy, in Execute).
  struct EvalResult {
    std::optional<TPRelation> owned;
    const TPRelation* borrowed = nullptr;

    const TPRelation& rel() const { return owned ? *owned : *borrowed; }
  };

  StatusOr<EvalResult> Eval(const LogicalNode& node, ExecStats* stats);
  StatusOr<EvalResult> EvalPipelined(const LogicalNode& node,
                                     ExecStats* stats);
  /// The cold read path: serves a Scan→(Filter|Project|…)* chain straight
  /// from the relation's columnar snapshot backing, pushing time-range,
  /// numeric and probability bounds into the scan (zone-map pruning).
  StatusOr<EvalResult> EvalColdPipeline(
      const TPRelation& rel, const LogicalNode& scan_node,
      const std::vector<const LogicalNode*>& stages, ExecStats* stats);
  /// Vectorized pipeline paths (engine/vector/): lower the leading
  /// batch-supported run of `stages` onto a ColumnBatch pipeline — over
  /// the mapped segments (cold) or the flattened table (warm) — with the
  /// row path picking up any remaining stages through BatchToRowAdapter.
  /// Return nullopt when no stage vectorizes; the caller then runs the
  /// row path (which also owns error reporting for malformed stages).
  StatusOr<std::optional<EvalResult>> EvalColdBatch(
      const TPRelation& rel, const LogicalNode& scan_node,
      const std::vector<const LogicalNode*>& stages, ExecStats* stats);
  StatusOr<std::optional<EvalResult>> EvalWarmBatch(
      const std::string& name, const Table& table, LineageManager* manager,
      const std::vector<const LogicalNode*>& stages, ExecStats* stats);
  /// Vectorized aggregation: when the aggregate's child is a fully
  /// batch-lowerable Scan→Filter… chain, group straight off the batches.
  StatusOr<std::optional<EvalResult>> TryBatchAggregate(
      const LogicalNode& node, ExecStats* stats);
  StatusOr<EvalResult> EvalJoin(const LogicalNode& node, ExecStats* stats);
  StatusOr<EvalResult> EvalSetOp(const LogicalNode& node, ExecStats* stats);
  StatusOr<EvalResult> EvalAggregate(const LogicalNode& node,
                                     ExecStats* stats);

  TPDatabase* db_;
  PlannerOptions options_;
  /// Parallel-runtime handle of the execution in flight (set by Execute;
  /// null while idle and on the parallelism == 1 serial path).
  ExecContext* ctx_ = nullptr;
};

}  // namespace tpdb

#endif  // TPDB_API_PLANNER_H_
