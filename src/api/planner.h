// Planner — the last stage of the layered API. Since the physical-plan IR
// refactor it is a thin three-step driver:
//
//   1. BuildPhysicalPlan (api/physical_plan.h): bind the logical tree
//      against the catalog into a typed physical-operator tree.
//   2. RunPassPipeline (api/passes/): constant folding, predicate &
//      probability-threshold pushdown into the scans, projection pruning,
//      and zone-map-costed row/batch/parallel mode selection.
//   3. Execute the annotated tree: pipelined chains (PhysFilter /
//      PhysProject / PhysSort / PhysLimit over a source) fuse into one
//      engine/ or engine/vector/ operator chain per their ExecMode
//      annotations, PhysExchange regions run on the exec/ morsel drivers
//      with an ordered merge, and PhysTPJoin / PhysTPSetOp / PhysAlign
//      construct the tp/ and baseline/ operators from their node specs.
//
// There is exactly one lowering path: every query — row or batch, serial
// or parallel, warm or cold — routes through the same physical tree, and
// Explain renders that tree with per-node cost estimates next to actuals.
#ifndef TPDB_API_PLANNER_H_
#define TPDB_API_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "api/logical_plan.h"
#include "api/physical_plan.h"
#include "common/status.h"
#include "engine/explain.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

class ExecContext;
class TPDatabase;
struct ChainExec;

/// Physical knobs shared by every node of one execution.
struct PlannerOptions {
  /// Physical algorithm for the NJ overlap join.
  OverlapAlgorithm overlap_algorithm = OverlapAlgorithm::kPartitioned;
  /// Validate the duplicate-free-in-time invariant of join inputs.
  bool validate_inputs = true;
  /// Name given to the result relation of the plan root ("" = derived).
  std::string result_name;
  /// Worker threads for the exec/ parallel runtime: 1 = the serial path
  /// (bit-for-bit identical to the pre-exec planner), 0 = hardware
  /// concurrency, n > 1 = explicit worker count on the shared pool.
  int parallelism = 0;
  /// Tuples per morsel for the partitioned drivers.
  size_t morsel_size = 1024;
  /// Driving inputs smaller than this run serially even when
  /// parallelism > 1 (task setup would dominate).
  size_t min_parallel_rows = 512;
  /// Batch-at-a-time execution (engine/vector/). Unset (the default): the
  /// mode-selection pass picks row vs batch per pipeline by cost — batch
  /// for cold scans and large warm inputs, row where the transpose would
  /// dominate. `true` forces the batch path wherever a stage vectorizes;
  /// `false` pins the row path bit-for-bit. Results are element-wise and
  /// order identical under every setting.
  std::optional<bool> vectorize;
  /// Run the optimizing passes (constant folding, pushdown, projection
  /// pruning). `false` keeps only the mandatory mode-selection pass — the
  /// parity baseline the physical-plan suite compares against.
  bool optimize = true;
  /// Node budget for compiled probability circuits: lineage formulas whose
  /// compilation would exceed this fall back to Monte-Carlo sampling.
  size_t prob_compile_budget = size_t{1} << 20;
  /// Base seed of the Monte-Carlo probability path (`WITH PROB
  /// APPROX(eps, delta)` and budget fallbacks). Per-formula streams are
  /// derived from it, so runs with equal seeds reproduce exactly.
  uint64_t prob_mc_seed = 42;
};

/// Executes logical plans against one database's catalog.
class Planner {
 public:
  explicit Planner(TPDatabase* db, PlannerOptions options = {});

  /// Runs `plan` to completion. With `stats`, every lowered operator
  /// reports rows and wall time into the registry (registration order is
  /// bottom-up per pipeline, matching ExecStats::ToString), and the
  /// registry's physical_plan() is set to the executed tree rendered with
  /// estimates next to actuals.
  StatusOr<TPRelation> Execute(const LogicalPlan& plan,
                               ExecStats* stats = nullptr);

  /// Binds and optimizes `plan` without executing it (takes the catalog
  /// lock internally). The returned tree references catalog relations —
  /// valid until the next DDL on the database. Snapshot statements are not
  /// lowerable.
  StatusOr<PhysicalPlan> Lower(const LogicalPlan& plan);

 private:
  /// A node's result: either a relation the planner materialized, or a
  /// borrowed pointer into the catalog (scans are zero-copy — only a plan
  /// whose ROOT is a bare scan pays one copy, in Execute).
  struct EvalResult {
    std::optional<TPRelation> owned;
    const TPRelation* borrowed = nullptr;

    const TPRelation& rel() const { return owned ? *owned : *borrowed; }
  };

  /// Binds + optimizes under an already-held catalog lock, annotating for
  /// `parallelism` resolved workers (shared by Execute and Lower).
  StatusOr<PhysicalPlan> LowerLocked(const LogicalPlan& plan,
                                     int parallelism);

  StatusOr<EvalResult> ExecNode(PhysicalNode* node, ExecStats* stats);
  /// Executes the maximal pipelined chain rooted at `top` (stages +
  /// optional exchange marker over a source) per its mode annotations.
  StatusOr<EvalResult> ExecPipeline(PhysicalNode* top, ExecStats* stats);
  /// The pruned `ORDER BY _prob DESC LIMIT k` path: visits segments in
  /// zone-map max-probability order and stops once the running k-th
  /// probability beats every remaining segment's upper bound. Returns
  /// nullopt when the chain is not that shape (the generic pipeline runs).
  StatusOr<std::optional<EvalResult>> ExecTopKProb(const ChainExec& chain,
                                                   ExecStats* stats);
  StatusOr<EvalResult> ExecJoin(PhysicalNode* node, ExecStats* stats);
  StatusOr<EvalResult> ExecSetOp(PhysicalNode* node, ExecStats* stats);
  StatusOr<EvalResult> ExecAggregate(PhysicalNode* node, ExecStats* stats);
  StatusOr<EvalResult> ExecRowAggregate(PhysicalNode* node, ExecStats* stats);
  StatusOr<std::optional<EvalResult>> ExecBatchAggregate(PhysicalNode* node,
                                                         ExecStats* stats);

  TPDatabase* db_;
  PlannerOptions options_;
  /// Parallel-runtime handle of the execution in flight (set by Execute;
  /// null while idle and on the parallelism == 1 serial path).
  ExecContext* ctx_ = nullptr;
};

}  // namespace tpdb

#endif  // TPDB_API_PLANNER_H_
