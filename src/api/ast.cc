#include "api/ast.h"

namespace tpdb {

namespace {

AstExprPtr MakeNode(AstExpr node) {
  return std::make_shared<const AstExpr>(std::move(node));
}

std::string AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

}  // namespace

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* SetOpKindName(SetOpKind kind) {
  switch (kind) {
    case SetOpKind::kUnion: return "UNION";
    case SetOpKind::kIntersect: return "INTERSECT";
    case SetOpKind::kExcept: return "EXCEPT";
  }
  return "?";
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kColumn:
      return column;
    case AstExprKind::kLiteral:
      return literal.type() == DatumType::kString
                 ? "'" + literal.AsString() + "'"
                 : literal.ToString();
    case AstExprKind::kCompare:
      return "(" + left->ToString() + " " + CompareOpSymbol(compare_op) +
             " " + right->ToString() + ")";
    case AstExprKind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case AstExprKind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case AstExprKind::kNot:
      return "(NOT " + left->ToString() + ")";
    case AstExprKind::kIsNull:
      return "(" + left->ToString() + " IS NULL)";
  }
  return "?";
}

AstExprPtr AstColumn(std::string name) {
  AstExpr e;
  e.kind = AstExprKind::kColumn;
  e.column = std::move(name);
  return MakeNode(std::move(e));
}

AstExprPtr AstLiteral(Datum value) {
  AstExpr e;
  e.kind = AstExprKind::kLiteral;
  e.literal = std::move(value);
  return MakeNode(std::move(e));
}

AstExprPtr AstCompare(CompareOp op, AstExprPtr a, AstExprPtr b) {
  AstExpr e;
  e.kind = AstExprKind::kCompare;
  e.compare_op = op;
  e.left = std::move(a);
  e.right = std::move(b);
  return MakeNode(std::move(e));
}

AstExprPtr AstAnd(AstExprPtr a, AstExprPtr b) {
  AstExpr e;
  e.kind = AstExprKind::kAnd;
  e.left = std::move(a);
  e.right = std::move(b);
  return MakeNode(std::move(e));
}

AstExprPtr AstOr(AstExprPtr a, AstExprPtr b) {
  AstExpr e;
  e.kind = AstExprKind::kOr;
  e.left = std::move(a);
  e.right = std::move(b);
  return MakeNode(std::move(e));
}

AstExprPtr AstNot(AstExprPtr a) {
  AstExpr e;
  e.kind = AstExprKind::kNot;
  e.left = std::move(a);
  return MakeNode(std::move(e));
}

AstExprPtr AstIsNull(AstExprPtr a) {
  AstExpr e;
  e.kind = AstExprKind::kIsNull;
  e.left = std::move(a);
  return MakeNode(std::move(e));
}

SelectItem SelectItem::Col(std::string column, std::string alias) {
  SelectItem item;
  item.column = std::move(column);
  item.alias = std::move(alias);
  return item;
}

SelectItem SelectItem::Agg(AggFn fn, std::string column, std::string alias) {
  SelectItem item;
  item.is_aggregate = true;
  item.fn = fn;
  item.column = std::move(column);
  item.alias = std::move(alias);
  return item;
}

std::string SelectItem::ToString() const {
  std::string out = is_aggregate ? AggFnName(fn) + "(" + column + ")" : column;
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

}  // namespace tpdb
