#include "api/lowering_common.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "api/physical_plan.h"
#include "engine/filter.h"
#include "engine/limit.h"
#include "engine/materialize.h"
#include "engine/prob_sort.h"
#include "engine/project.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/vector/adapters.h"
#include "lineage/probability.h"

namespace tpdb {

bool IsReservedColumn(const std::string& name) {
  return name == kTsColumn || name == kTeColumn || name == kLineageColumn;
}

Schema FlattenFactSchema(const Schema& facts) {
  Schema flat = facts;
  flat.AddColumn({kTsColumn, DatumType::kInt64});
  flat.AddColumn({kTeColumn, DatumType::kInt64});
  flat.AddColumn({kLineageColumn, DatumType::kLineage});
  return flat;
}

Schema FactSchemaOf(const Schema& flat) {
  TPDB_CHECK_GE(flat.num_columns(), 3u);
  return Schema(std::vector<Column>(flat.columns().begin(),
                                    flat.columns().end() - 3));
}

DatumType StaticPredicateType(const AstExpr& e, const Schema& schema) {
  switch (e.kind) {
    case AstExprKind::kColumn: {
      const int idx = schema.IndexOf(e.column);
      return idx >= 0 ? schema.column(static_cast<size_t>(idx)).type
                      : DatumType::kNull;
    }
    case AstExprKind::kLiteral:
      return e.literal.type();
    default:
      return DatumType::kInt64;  // comparisons and connectives are boolean
  }
}

bool DatumToDouble(const Datum& d, double* out) {
  if (d.type() == DatumType::kInt64) {
    *out = static_cast<double>(d.AsInt64());
    return true;
  }
  if (d.type() == DatumType::kDouble) {
    *out = d.AsDouble();
    return true;
  }
  return false;
}

ExprPtr PromotedCompare(CompareOp op, ExprPtr a, ExprPtr b) {
  return Fn(
      [op, a, b](const Row& row) -> Datum {
        const Datum da = a->Eval(row);
        const Datum db = b->Eval(row);
        if (da.is_null() || db.is_null()) return Datum::Null();
        double x = 0, y = 0;
        if (!DatumToDouble(da, &x) || !DatumToDouble(db, &y))
          return Datum::Null();
        bool result = false;
        switch (op) {
          case CompareOp::kEq: result = x == y; break;
          case CompareOp::kNe: result = x != y; break;
          case CompareOp::kLt: result = x < y; break;
          case CompareOp::kLe: result = x <= y; break;
          case CompareOp::kGt: result = x > y; break;
          case CompareOp::kGe: result = x >= y; break;
        }
        return Datum(static_cast<int64_t>(result));
      },
      std::string("num") + CompareOpSymbol(op));
}

StatusOr<ExprPtr> CompilePredicate(const AstExprPtr& e, const Schema& schema) {
  TPDB_CHECK(e != nullptr);
  switch (e->kind) {
    case AstExprKind::kColumn: {
      const int idx = schema.IndexOf(e->column);
      if (idx < 0)
        return Status::NotFound("unknown column '" + e->column +
                                "' (have: " + schema.ToString() + ")");
      return Col(idx, e->column);
    }
    case AstExprKind::kLiteral:
      return Lit(e->literal);
    case AstExprKind::kCompare: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<ExprPtr> b = CompilePredicate(e->right, schema);
      if (!b.ok()) return b.status();
      const DatumType ta = StaticPredicateType(*e->left, schema);
      const DatumType tb = StaticPredicateType(*e->right, schema);
      const bool numeric_mix =
          (ta == DatumType::kInt64 && tb == DatumType::kDouble) ||
          (ta == DatumType::kDouble && tb == DatumType::kInt64);
      if (numeric_mix)
        return PromotedCompare(e->compare_op, std::move(*a), std::move(*b));
      return Compare(e->compare_op, std::move(*a), std::move(*b));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<ExprPtr> b = CompilePredicate(e->right, schema);
      if (!b.ok()) return b.status();
      return e->kind == AstExprKind::kAnd
                 ? AndExpr(std::move(*a), std::move(*b))
                 : OrExpr(std::move(*a), std::move(*b));
    }
    case AstExprKind::kNot: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return NotExpr(std::move(*a));
    }
    case AstExprKind::kIsNull: {
      StatusOr<ExprPtr> a = CompilePredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return IsNull(std::move(*a));
    }
  }
  return Status::Internal("unhandled predicate node");
}

namespace {

StatusOr<vec::VOperand> CompileVectorOperand(const AstExpr& e,
                                             const Schema& schema) {
  if (e.kind == AstExprKind::kColumn) {
    const int idx = schema.IndexOf(e.column);
    if (idx < 0)
      return Status::NotFound("unknown column '" + e.column + "'");
    return vec::VOperand::Column(idx);
  }
  if (e.kind == AstExprKind::kLiteral)
    return vec::VOperand::Literal(e.literal);
  return Status::InvalidArgument("operand shape not vectorizable");
}

}  // namespace

StatusOr<vec::VectorExprPtr> CompileVectorPredicate(const AstExprPtr& e,
                                                    const Schema& schema) {
  TPDB_CHECK(e != nullptr);
  switch (e->kind) {
    case AstExprKind::kColumn:
    case AstExprKind::kLiteral: {
      StatusOr<vec::VOperand> op = CompileVectorOperand(*e, schema);
      if (!op.ok()) return op.status();
      return vec::VTruthy(std::move(*op));
    }
    case AstExprKind::kCompare: {
      StatusOr<vec::VOperand> a = CompileVectorOperand(*e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<vec::VOperand> b = CompileVectorOperand(*e->right, schema);
      if (!b.ok()) return b.status();
      const DatumType ta = StaticPredicateType(*e->left, schema);
      const DatumType tb = StaticPredicateType(*e->right, schema);
      const bool numeric_mix =
          (ta == DatumType::kInt64 && tb == DatumType::kDouble) ||
          (ta == DatumType::kDouble && tb == DatumType::kInt64);
      return vec::VCompare(e->compare_op, numeric_mix, std::move(*a),
                           std::move(*b));
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      StatusOr<vec::VectorExprPtr> b =
          CompileVectorPredicate(e->right, schema);
      if (!b.ok()) return b.status();
      return e->kind == AstExprKind::kAnd
                 ? vec::VAnd(std::move(*a), std::move(*b))
                 : vec::VOr(std::move(*a), std::move(*b));
    }
    case AstExprKind::kNot: {
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return vec::VNot(std::move(*a));
    }
    case AstExprKind::kIsNull: {
      if (e->left->kind == AstExprKind::kColumn ||
          e->left->kind == AstExprKind::kLiteral) {
        StatusOr<vec::VOperand> op = CompileVectorOperand(*e->left, schema);
        if (!op.ok()) return op.status();
        return vec::VIsNull(std::move(*op));
      }
      StatusOr<vec::VectorExprPtr> a = CompileVectorPredicate(e->left, schema);
      if (!a.ok()) return a.status();
      return vec::VIsNullOf(std::move(*a));
    }
  }
  return Status::Internal("unhandled predicate node");
}

StatusOr<ProjectPlan> PlanProjectStage(const std::vector<std::string>& columns,
                                       const std::vector<std::string>& aliases,
                                       const Schema& schema) {
  ProjectPlan plan;
  for (size_t i = 0; i < columns.size(); ++i) {
    const std::string& name = columns[i];
    if (IsReservedColumn(name))
      return Status::InvalidArgument(
          "cannot project reserved column '" + name +
          "' (interval and lineage are kept implicitly)");
    const int idx = schema.IndexOf(name);
    if (idx < 0)
      return Status::NotFound("unknown column '" + name +
                              "' (have: " + schema.ToString() + ")");
    plan.indices.push_back(idx);
    plan.names.push_back(i < aliases.size() && !aliases[i].empty()
                             ? aliases[i]
                             : name);
  }
  // Interval and lineage ride along on every projection.
  for (const char* reserved : {kTsColumn, kTeColumn, kLineageColumn}) {
    plan.indices.push_back(schema.IndexOf(reserved));
    plan.names.push_back(reserved);
  }
  return plan;
}

Schema ProjectOutputSchema(const ProjectPlan& plan, const Schema& schema) {
  std::vector<Column> cols;
  cols.reserve(plan.indices.size());
  for (size_t i = 0; i < plan.indices.size(); ++i) {
    Column c = schema.column(static_cast<size_t>(plan.indices[i]));
    c.name = plan.names[i];
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

CompareOp MirrorCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;
  }
}

void CollectScanBounds(const AstExprPtr& e, storage::ScanPredicate* pred) {
  if (e == nullptr) return;
  if (e->kind == AstExprKind::kAnd) {
    CollectScanBounds(e->left, pred);
    CollectScanBounds(e->right, pred);
    return;
  }
  if (e->kind != AstExprKind::kCompare) return;
  const AstExpr* column = nullptr;
  const AstExpr* literal = nullptr;
  bool flipped = false;
  if (e->left->kind == AstExprKind::kColumn &&
      e->right->kind == AstExprKind::kLiteral) {
    column = e->left.get();
    literal = e->right.get();
  } else if (e->left->kind == AstExprKind::kLiteral &&
             e->right->kind == AstExprKind::kColumn) {
    column = e->right.get();
    literal = e->left.get();
    flipped = true;
  } else {
    return;
  }
  double value = 0.0;
  if (!DatumToDouble(literal->literal, &value)) return;
  switch (flipped ? MirrorCompare(e->compare_op) : e->compare_op) {
    case CompareOp::kEq:
      pred->AddEquals(column->column, value);
      break;
    case CompareOp::kLt:
      pred->AddUpperBound(column->column, value, /*strict=*/true);
      break;
    case CompareOp::kLe:
      pred->AddUpperBound(column->column, value, /*strict=*/false);
      break;
    case CompareOp::kGt:
      pred->AddLowerBound(column->column, value, /*strict=*/true);
      break;
    case CompareOp::kGe:
      pred->AddLowerBound(column->column, value, /*strict=*/false);
      break;
    case CompareOp::kNe:
      break;  // no range information
  }
}

std::string AggOutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string fn;
  switch (item.fn) {
    case AggFn::kCount: fn = "count"; break;
    case AggFn::kSum: fn = "sum"; break;
    case AggFn::kMin: fn = "min"; break;
    case AggFn::kMax: fn = "max"; break;
  }
  return item.column == "*" ? fn : fn + "_" + item.column;
}

StatusOr<AggPlan> ResolveAggregatePlan(
    const std::vector<std::string>& group_by,
    const std::vector<std::string>& group_aliases,
    const std::vector<SelectItem>& aggregates, const Schema& facts) {
  AggPlan plan;
  for (size_t g = 0; g < group_by.size(); ++g) {
    const std::string& name = group_by[g];
    const int idx = facts.IndexOf(name);
    if (idx < 0)
      return Status::NotFound("unknown GROUP BY column '" + name + "'");
    plan.group_idx.push_back(idx);
    Column col = facts.column(static_cast<size_t>(idx));
    if (g < group_aliases.size() && !group_aliases[g].empty())
      col.name = group_aliases[g];
    plan.out_cols.push_back(std::move(col));
  }
  for (const SelectItem& item : aggregates) {
    int idx = -1;
    DatumType type = DatumType::kInt64;
    if (item.column == "*") {
      if (item.fn != AggFn::kCount)
        return Status::InvalidArgument("'*' is only valid for COUNT");
    } else {
      idx = facts.IndexOf(item.column);
      if (idx < 0)
        return Status::NotFound("unknown aggregate column '" + item.column +
                                "'");
      type = facts.column(static_cast<size_t>(idx)).type;
    }
    if (item.fn == AggFn::kSum && type != DatumType::kInt64 &&
        type != DatumType::kDouble)
      return Status::InvalidArgument("SUM requires a numeric column, got '" +
                                     item.column + "'");
    plan.agg_idx.push_back(idx);
    plan.out_cols.push_back(
        {AggOutputName(item),
         item.fn == AggFn::kCount ? DatumType::kInt64 : type});
  }
  return plan;
}

vec::BatchAggFn MapAggFn(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return vec::BatchAggFn::kCount;
    case AggFn::kSum: return vec::BatchAggFn::kSum;
    case AggFn::kMin: return vec::BatchAggFn::kMin;
    case AggFn::kMax: return vec::BatchAggFn::kMax;
  }
  return vec::BatchAggFn::kCount;
}

// -- Stage-level lowering --------------------------------------------------

ProbEvalOptions StageProbOptions(const PhysicalNode& stage,
                                 const ProbEvalOptions& base) {
  ProbEvalOptions opts = base;
  if (stage.approx_eps > 0.0) {
    opts.approx_eps = stage.approx_eps;
    opts.approx_delta = stage.approx_delta;
  }
  return opts;
}

StatusOr<OperatorPtr> LowerPipelineStage(PhysicalNode& stage, OperatorPtr op,
                                         LineageManager* manager,
                                         const ProbEvalOptions& prob_base) {
  const Schema& schema = op->schema();
  switch (stage.op) {
    case PhysOp::kFilter: {
      if (stage.is_prob) {
        const int lin = schema.IndexOf(kLineageColumn);
        TPDB_CHECK(lin >= 0);
        const double threshold = stage.min_prob;
        const bool strict = stage.min_prob_strict;
        // One evaluator per operator instance (= per morsel): exact on
        // decomposable lineage, compiled circuit otherwise, sampled under
        // APPROX or when the circuit budget blows up. The flusher's last
        // owner records the methods used on the (shared) physical node.
        auto evaluator = std::make_shared<ProbabilityEvaluator>(
            manager, StageProbOptions(stage, prob_base));
        uint8_t* methods_out = &stage.prob_methods;
        std::shared_ptr<void> flusher(nullptr,
                                      [evaluator, methods_out](void*) {
                                        std::atomic_ref<uint8_t>(*methods_out)
                                            .fetch_or(
                                                evaluator->methods_used(),
                                                std::memory_order_relaxed);
                                      });
        ExprPtr prob_pred = Fn(
            [evaluator, flusher, lin, threshold, strict](
                const Row& row) -> Datum {
              const double p = evaluator->Probability(row[lin].AsLineage());
              return Datum(
                  static_cast<int64_t>(strict ? p > threshold
                                              : p >= threshold));
            },
            "prob" + std::string(strict ? ">" : ">=") +
                std::to_string(threshold));
        return OperatorPtr(
            std::make_unique<Filter>(std::move(op), std::move(prob_pred)));
      }
      StatusOr<ExprPtr> pred = CompilePredicate(stage.predicate, schema);
      if (!pred.ok()) return pred.status();
      return OperatorPtr(
          std::make_unique<Filter>(std::move(op), std::move(*pred)));
    }
    case PhysOp::kProject: {
      StatusOr<ProjectPlan> plan =
          PlanProjectStage(stage.columns, stage.aliases, schema);
      if (!plan.ok()) return plan.status();
      return OperatorPtr(std::make_unique<Project>(
          std::move(op), std::move(plan->indices), std::move(plan->names)));
    }
    case PhysOp::kSort: {
      bool any_prob = false;
      for (const OrderItem& item : stage.order_by)
        any_prob |= item.column == kProbColumn;
      if (any_prob) {
        // ORDER BY over the virtual probability column: probabilities are
        // computed through the evaluation ladder, not read from a column.
        std::vector<ProbSortKey> keys;
        for (const OrderItem& item : stage.order_by) {
          ProbSortKey key;
          key.ascending = item.ascending;
          if (item.column == kProbColumn) {
            key.is_prob = true;
          } else {
            const int idx = schema.IndexOf(item.column);
            if (idx < 0)
              return Status::NotFound("unknown ORDER BY column '" +
                                      item.column + "'");
            key.column = idx;
          }
          keys.push_back(key);
        }
        return OperatorPtr(std::make_unique<ProbSort>(
            std::move(op), manager, std::move(keys),
            StageProbOptions(stage, prob_base), &stage.prob_methods));
      }
      std::vector<SortKey> keys;
      for (const OrderItem& item : stage.order_by) {
        const int idx = schema.IndexOf(item.column);
        if (idx < 0)
          return Status::NotFound("unknown ORDER BY column '" + item.column +
                                  "'");
        keys.push_back(SortKey{idx, item.ascending});
      }
      return OperatorPtr(
          std::make_unique<Sort>(std::move(op), std::move(keys)));
    }
    case PhysOp::kLimit:
      return OperatorPtr(std::make_unique<Limit>(
          std::move(op), static_cast<size_t>(stage.limit),
          static_cast<size_t>(stage.offset)));
    default:
      return Status::Internal("non-pipelined node in chain");
  }
}

bool IsRowLocalStage(const PhysicalNode& stage) {
  return stage.op == PhysOp::kFilter || stage.op == PhysOp::kProject;
}

size_t CountBatchStages(Schema schema,
                        const std::vector<PhysicalNode*>& stages,
                        bool row_local_only, Schema* out_schema) {
  size_t n = 0;
  for (const PhysicalNode* stage : stages) {
    switch (stage->op) {
      case PhysOp::kFilter:
        if (!stage->is_prob &&
            !CompileVectorPredicate(stage->predicate, schema).ok())
          goto done;
        break;
      case PhysOp::kProject: {
        StatusOr<ProjectPlan> plan =
            PlanProjectStage(stage->columns, stage->aliases, schema);
        if (!plan.ok()) goto done;
        schema = ProjectOutputSchema(*plan, schema);
        break;
      }
      case PhysOp::kLimit:
        if (row_local_only) goto done;
        break;
      default:
        goto done;
    }
    ++n;
  }
done:
  if (out_schema != nullptr) *out_schema = std::move(schema);
  return n;
}

vec::BatchOperatorPtr LowerBatchStages(
    vec::BatchOperatorPtr op, const std::vector<PhysicalNode*>& stages,
    size_t count, LineageManager* manager, VectorStats* vstats,
    ExecStats* stats, const ProbEvalOptions& prob_base) {
  for (size_t i = 0; i < count; ++i) {
    PhysicalNode& stage = *stages[i];
    switch (stage.op) {
      case PhysOp::kFilter: {
        if (stage.is_prob) {
          op = std::make_unique<vec::BatchProbThreshold>(
              std::move(op), manager, stage.min_prob, stage.min_prob_strict,
              vstats, StageProbOptions(stage, prob_base),
              &stage.prob_methods);
          break;
        }
        StatusOr<vec::VectorExprPtr> pred =
            CompileVectorPredicate(stage.predicate, op->schema());
        TPDB_CHECK(pred.ok()) << pred.status().ToString();
        op = std::make_unique<vec::BatchFilter>(std::move(op),
                                                std::move(*pred), vstats);
        break;
      }
      case PhysOp::kProject: {
        StatusOr<ProjectPlan> plan =
            PlanProjectStage(stage.columns, stage.aliases, op->schema());
        TPDB_CHECK(plan.ok()) << plan.status().ToString();
        op = std::make_unique<vec::BatchProject>(
            std::move(op), std::move(plan->indices), std::move(plan->names));
        break;
      }
      case PhysOp::kLimit:
        op = std::make_unique<vec::BatchLimit>(
            std::move(op), static_cast<size_t>(stage.limit),
            static_cast<size_t>(stage.offset), vstats);
        break;
      default:
        TPDB_CHECK(false) << "non-batch stage in pre-validated chain";
    }
    if (stats != nullptr) {
      NodeStats* node = stats->AddNode(stage.Label() + " (vec)");
      stage.actual = node;
      op = vec::InstrumentBatch(node, std::move(op));
    }
  }
  return op;
}

storage::ScanPredicate CollectColdScanPredicate(
    const std::vector<PhysicalNode*>& stages, LineageManager* manager,
    const storage::SegmentedTable* table) {
  const bool prob_maps_fresh =
      manager->probability_epoch() == table->probability_epoch();
  storage::ScanPredicate predicate;
  for (const PhysicalNode* stage : stages) {
    if (stage->op != PhysOp::kFilter) break;
    if (stage->is_prob) {
      if (prob_maps_fresh) {
        if (stage->approx_eps > 0.0) {
          // Sampled thresholds admit eps of slack: a tuple with true
          // probability in [τ − eps, τ) may legitimately pass, so only
          // segments that cannot even reach τ − eps are pruned.
          const double slack =
              std::max(0.0, stage->min_prob - stage->approx_eps);
          predicate.AddMinProb(slack, /*strict=*/false);
        } else {
          predicate.AddMinProb(stage->min_prob, stage->min_prob_strict);
        }
      }
    } else {
      CollectScanBounds(stage->predicate, &predicate);
    }
  }
  return predicate;
}

StatusOr<TPRelation> FinishRowStagesOverTable(
    std::string name, Table table,
    const std::vector<PhysicalNode*>& stages, size_t first,
    LineageManager* manager, const ProbEvalOptions& prob_base) {
  if (first == stages.size())
    return TPRelation::FromTable(std::move(name), table, manager);
  OperatorPtr op = std::make_unique<TableScan>(&table);
  for (size_t i = first; i < stages.size(); ++i) {
    StatusOr<OperatorPtr> next =
        LowerPipelineStage(*stages[i], std::move(op), manager, prob_base);
    if (!next.ok()) return next.status();
    op = std::move(*next);
  }
  const Table out = Materialize(op.get());
  return TPRelation::FromTable(std::move(name), out, manager);
}

ChainExec CollectExecChain(PhysicalNode* top) {
  std::vector<PhysicalNode*> top_down;
  PhysicalNode* exchange = nullptr;
  size_t above_exchange = 0;
  PhysicalNode* cursor = top;
  while (IsPipelinedPhysOp(cursor->op) || cursor->op == PhysOp::kExchange) {
    if (cursor->op == PhysOp::kExchange) {
      exchange = cursor;
      above_exchange = top_down.size();
    } else {
      top_down.push_back(cursor);
    }
    cursor = cursor->children[0].get();
  }
  ChainExec chain;
  chain.source = cursor;
  chain.exchange = exchange;
  chain.stages.assign(top_down.rbegin(), top_down.rend());
  if (exchange != nullptr)
    chain.parallel_prefix = top_down.size() - above_exchange;
  for (PhysicalNode* stage : chain.stages) {
    if (stage->mode != ExecMode::kBatch) break;
    ++chain.batch_prefix;
  }
  return chain;
}

}  // namespace tpdb
