// Logical query plans — the middle stage of the layered API. A plan is a
// tree of typed nodes built either from a parsed SelectStatement
// (BuildLogicalPlan) or programmatically through the fluent QueryBuilder;
// the planner (api/planner.h) lowers it onto engine/ operator pipelines and
// tp/ window plans. Names are still unresolved at this level: binding
// against the catalog happens in the planner.
#ifndef TPDB_API_LOGICAL_PLAN_H_
#define TPDB_API_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/ast.h"
#include "common/status.h"

namespace tpdb {

/// Node types of the logical algebra.
enum class LogicalOp {
  kScan,           ///< read one named catalog relation
  kFilter,         ///< σ over fact / _ts / _te columns
  kProject,        ///< π over fact columns (interval + lineage are kept)
  kJoin,           ///< TP join (Table II) of the two children
  kSetOp,          ///< TP union / intersection / difference
  kAggregate,      ///< grouped aggregation with lineage disjunction
  kSort,           ///< ORDER BY
  kLimit,          ///< LIMIT / OFFSET
  kProbThreshold,  ///< WITH PROB >= p over exact lineage probabilities
  kSaveSnapshot,   ///< persist the whole database (storage/snapshot.h)
  kLoadSnapshot,   ///< restore a snapshot into this database
};

const char* LogicalOpName(LogicalOp op);

struct LogicalNode;
using LogicalNodePtr = std::unique_ptr<LogicalNode>;

/// One node of a logical plan. Only the payload fields of its `op` are
/// meaningful; factory functions below construct each shape.
struct LogicalNode {
  LogicalOp op = LogicalOp::kScan;
  std::vector<LogicalNodePtr> children;

  std::string relation;                      // kScan
  AstExprPtr predicate;                      // kFilter
  std::vector<std::string> columns;          // kProject
  std::vector<std::string> aliases;          // kProject ("" = keep name)
  TPJoinKind join_kind = TPJoinKind::kInner;                    // kJoin
  std::vector<std::pair<std::string, std::string>> join_on;     // kJoin
  JoinStrategy strategy = JoinStrategy::kLineageAware;          // kJoin
  SetOpKind set_op = SetOpKind::kUnion;      // kSetOp
  std::vector<std::string> group_by;         // kAggregate
  std::vector<std::string> group_aliases;    // kAggregate ("" = keep name)
  std::vector<SelectItem> aggregates;        // kAggregate
  std::vector<OrderItem> order_by;           // kSort
  int64_t limit = 0;                         // kLimit
  int64_t offset = 0;                        // kLimit
  double min_prob = 0.0;                     // kProbThreshold
  bool min_prob_strict = false;              // kProbThreshold
  double approx_eps = 0.0;                   // kProbThreshold (0 = exact)
  double approx_delta = 0.0;                 // kProbThreshold
  std::string snapshot_path;                 // kSaveSnapshot / kLoadSnapshot

  static LogicalNodePtr Scan(std::string relation);
  static LogicalNodePtr Filter(LogicalNodePtr child, AstExprPtr predicate);
  static LogicalNodePtr Project(LogicalNodePtr child,
                                std::vector<std::string> columns,
                                std::vector<std::string> aliases = {});
  static LogicalNodePtr Join(
      LogicalNodePtr left, LogicalNodePtr right, TPJoinKind kind,
      std::vector<std::pair<std::string, std::string>> on,
      JoinStrategy strategy = JoinStrategy::kLineageAware);
  static LogicalNodePtr SetOp(LogicalNodePtr left, LogicalNodePtr right,
                              SetOpKind kind);
  static LogicalNodePtr Aggregate(LogicalNodePtr child,
                                  std::vector<std::string> group_by,
                                  std::vector<SelectItem> aggregates);
  static LogicalNodePtr Sort(LogicalNodePtr child,
                             std::vector<OrderItem> order_by);
  static LogicalNodePtr Limit(LogicalNodePtr child, int64_t limit,
                              int64_t offset = 0);
  static LogicalNodePtr ProbThreshold(LogicalNodePtr child, double min_prob,
                                      bool strict = false);
  static LogicalNodePtr SaveSnapshot(std::string path);
  static LogicalNodePtr LoadSnapshot(std::string path);

  /// One-line description of this node, e.g. "Join[LEFT OUTER, on Loc=Loc]".
  std::string Label() const;

  /// Multi-line indented tree rendering (this node and its subtree).
  std::string ToString(int indent = 0) const;
};

/// A complete logical plan (owning its node tree).
struct LogicalPlan {
  LogicalNodePtr root;

  std::string ToString() const { return root ? root->ToString() : "<empty>"; }
};

/// Lowers a parsed statement into a logical plan. Per core:
/// Scan → Join* → Filter → Aggregate|Project; then set operations fold the
/// cores, and ProbThreshold → Sort → Limit apply to the combined result.
StatusOr<LogicalPlan> BuildLogicalPlan(const SelectStatement& stmt);

/// Same for a top-level statement; snapshot statements become single
/// kSaveSnapshot / kLoadSnapshot root nodes.
StatusOr<LogicalPlan> BuildLogicalPlan(const ParsedStatement& stmt);

/// Fluent construction of logical plans, bypassing the string front end:
///
///   StatusOr<LogicalPlan> plan =
///       QueryBuilder("wants")
///           .Join(TPJoinKind::kLeftOuter, "hotels", "Loc")
///           .Where("Loc = 'ZAK'")
///           .OrderBy("Name")
///           .Limit(10)
///           .WithMinProb(0.2)
///           .Build();
///
/// A builder wraps a SelectStatement, so a builder chain and the equivalent
/// query text produce identical plans. Errors (e.g. an unparsable Where
/// string) are deferred and reported by Build().
class QueryBuilder {
 public:
  /// Starts a query reading `from` (SELECT * FROM from).
  explicit QueryBuilder(std::string from);

  /// Restricts the output to `columns` (π). `aliases`, when given, renames
  /// them pairwise.
  QueryBuilder& Select(std::vector<std::string> columns,
                       std::vector<std::string> aliases = {});

  /// Adds an aggregate to the select list, e.g. Aggregate(AggFn::kCount,
  /// "*", "n"). Combine with GroupBy for grouped aggregation.
  QueryBuilder& Aggregate(AggFn fn, std::string column,
                          std::string alias = "");
  QueryBuilder& GroupBy(std::vector<std::string> columns);

  /// Appends a join clause against `relation` with explicit ON pairs.
  QueryBuilder& Join(TPJoinKind kind, std::string relation,
                     std::vector<std::pair<std::string, std::string>> on,
                     bool using_ta = false);
  /// Convenience: single shared-name equality column.
  QueryBuilder& Join(TPJoinKind kind, std::string relation,
                     const std::string& column, bool using_ta = false);

  /// Sets the WHERE predicate (AND-ed onto an existing one).
  QueryBuilder& Where(AstExprPtr predicate);
  /// Same, parsing the WHERE sub-language, e.g. "Loc = 'ZAK' AND _ts >= 4".
  QueryBuilder& Where(const std::string& predicate);

  /// Combines with another builder's core via a set operation. The other
  /// builder must not carry ORDER BY / LIMIT / WITH PROB modifiers.
  QueryBuilder& Union(const QueryBuilder& other);
  QueryBuilder& Intersect(const QueryBuilder& other);
  QueryBuilder& Except(const QueryBuilder& other);

  QueryBuilder& OrderBy(std::string column, bool ascending = true);
  QueryBuilder& Limit(int64_t limit, int64_t offset = 0);
  QueryBuilder& WithMinProb(double min_prob, bool strict = false);
  /// WITH PROB APPROX(eps, delta) >= min_prob: sampled evaluation with an
  /// (eps, delta) accuracy contract instead of exact probabilities.
  QueryBuilder& WithMinProbApprox(double min_prob, double eps, double delta,
                                  bool strict = false);

  /// The statement assembled so far.
  const SelectStatement& statement() const { return stmt_; }

  /// Builds the logical plan (or the first deferred error).
  StatusOr<LogicalPlan> Build() const;

 private:
  QueryBuilder& AddSetOp(SetOpKind kind, const QueryBuilder& other);

  SelectStatement stmt_;
  Status error_;  // first deferred error, reported by Build()
};

}  // namespace tpdb

#endif  // TPDB_API_LOGICAL_PLAN_H_
