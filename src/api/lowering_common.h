// Shared lowering helpers — the single home of the resolution and
// compilation logic used by every PhysicalPlan executor (row, batch, cold,
// parallel) and by the optimizer passes. One ProjectPlan / AggPlan /
// scan-predicate implementation means the row and batch paths validate
// identically and report identical errors, which is what the parity suite
// leans on.
#ifndef TPDB_API_LOWERING_COMMON_H_
#define TPDB_API_LOWERING_COMMON_H_

#include <string>
#include <vector>

#include "api/ast.h"
#include "common/status.h"
#include "engine/explain.h"
#include "engine/expr.h"
#include "engine/operator.h"
#include "engine/vector/batch_operator.h"
#include "engine/vector/batch_ops.h"
#include "engine/vector/predicate.h"
#include "storage/scan.h"
#include "tp/tp_relation.h"

namespace tpdb {

struct PhysicalNode;

/// True for _ts / _te / _lin — the interval and lineage columns that ride
/// along implicitly on every projection.
bool IsReservedColumn(const std::string& name);

/// Appends the reserved interval/lineage columns to a fact schema — the
/// flattened engine layout every pipeline runs over.
Schema FlattenFactSchema(const Schema& facts);

/// Strips the trailing reserved columns off a flattened schema.
Schema FactSchemaOf(const Schema& flat);

/// Static result type of a predicate operand against `schema` (used to
/// decide whether a comparison needs int64↔double promotion).
DatumType StaticPredicateType(const AstExpr& e, const Schema& schema);

bool DatumToDouble(const Datum& d, double* out);

/// Comparison with numeric promotion: int64 and double operands are
/// compared as doubles (Datum::Compare alone orders by type rank).
ExprPtr PromotedCompare(CompareOp op, ExprPtr a, ExprPtr b);

/// Compiles a predicate AST into an engine expression over `schema`.
StatusOr<ExprPtr> CompilePredicate(const AstExprPtr& e, const Schema& schema);

/// Compiles a predicate AST into a vectorized expression over `schema`,
/// with the same column resolution and numeric-promotion decisions as
/// CompilePredicate. Shapes the vector evaluator does not cover return an
/// error and the stage stays on the row path — which also owns the
/// user-facing error reporting for genuinely malformed predicates.
StatusOr<vec::VectorExprPtr> CompileVectorPredicate(const AstExprPtr& e,
                                                    const Schema& schema);

/// Resolved form of one projection stage: source indices and output names
/// (the reserved interval/lineage columns ride along at the end). Shared
/// by the row and batch lowerings so both validate identically.
struct ProjectPlan {
  std::vector<int> indices;
  std::vector<std::string> names;
};

StatusOr<ProjectPlan> PlanProjectStage(const std::vector<std::string>& columns,
                                       const std::vector<std::string>& aliases,
                                       const Schema& schema);

/// Output schema of a resolved projection over `schema`.
Schema ProjectOutputSchema(const ProjectPlan& plan, const Schema& schema);

/// Mirrors a comparison for a flipped "literal OP column" term.
CompareOp MirrorCompare(CompareOp op);

/// Harvests conjunctive column-vs-numeric-literal bounds from a filter
/// predicate into a scan predicate the cold path can prune on. Anything
/// it cannot express (OR, NOT, column-vs-column, strings) contributes no
/// bound — pruning stays conservative and the filter still runs.
void CollectScanBounds(const AstExprPtr& e, storage::ScanPredicate* pred);

/// Output column name of an aggregate, e.g. "count", "sum_Temp".
std::string AggOutputName(const SelectItem& item);

/// Resolved aggregate: group/aggregate column indices (into the fact
/// schema — which equals the flattened prefix) and the output fact
/// columns. Shared by the row and batch aggregate paths so both validate
/// identically.
struct AggPlan {
  std::vector<int> group_idx;
  std::vector<int> agg_idx;  ///< -1 for COUNT(*)
  std::vector<Column> out_cols;
};

StatusOr<AggPlan> ResolveAggregatePlan(
    const std::vector<std::string>& group_by,
    const std::vector<std::string>& group_aliases,
    const std::vector<SelectItem>& aggregates, const Schema& facts);

vec::BatchAggFn MapAggFn(AggFn fn);

// -- Stage-level lowering over physical nodes ------------------------------
//
// A "stage" here is one pipelined physical node (PhysFilter / PhysProject /
// PhysSort / PhysLimit) in bottom-up order — the order rows flow through
// them. The executors collect the maximal chain above a source and hand it
// to these helpers.

/// Lowers ONE pipelined physical stage onto `op`. Pure (no planner state),
/// so the parallel driver can instantiate the same chain once per morsel.
/// `prob_base` carries the planner's probability-evaluation knobs (circuit
/// budget, sampling seed); the stage's own APPROX contract is layered on
/// top of it. Probability stages record the evaluation methods they used on
/// the physical node (atomically — morsel instances share the node).
StatusOr<OperatorPtr> LowerPipelineStage(PhysicalNode& stage,
                                         OperatorPtr op,
                                         LineageManager* manager,
                                         const ProbEvalOptions& prob_base = {});

/// True for stages that decide each row independently — the ones the
/// parallel pipeline drivers may run per-morsel with an ordered merge.
bool IsRowLocalStage(const PhysicalNode& stage);

/// How many leading stages the batch path can lower over a source with
/// `schema` — filters with vectorizable predicates, projections,
/// probability thresholds, and (unless `row_local_only`, the parallel
/// driver's constraint) limits. Tracks the schema across projections;
/// `out_schema`, when given, receives the schema after the lowered run.
size_t CountBatchStages(Schema schema,
                        const std::vector<PhysicalNode*>& stages,
                        bool row_local_only, Schema* out_schema = nullptr);

/// Lowers exactly `count` leading stages — pre-validated by
/// CountBatchStages — onto batch operators over `op`. With `stats`, each
/// stage is instrumented as a "(vec)" node whose NodeStats slot is also
/// recorded on the stage's physical node for the Explain tree.
vec::BatchOperatorPtr LowerBatchStages(
    vec::BatchOperatorPtr op, const std::vector<PhysicalNode*>& stages,
    size_t count, LineageManager* manager, VectorStats* vstats,
    ExecStats* stats, const ProbEvalOptions& prob_base = {});

/// The per-stage evaluation options: the planner's base knobs plus the
/// stage's APPROX(eps, delta) contract, when it carries one.
ProbEvalOptions StageProbOptions(const PhysicalNode& stage,
                                 const ProbEvalOptions& base);

/// The scan predicate the cold paths push down: conjunctive bounds from
/// the leading run of filter / probability-threshold stages, with the
/// probability dimension epoch-gated (zone-map max_prob is snapshot-time
/// data — stale after SetVariableProbability, so that dimension is dropped
/// rather than risking a wrong prune).
storage::ScanPredicate CollectColdScanPredicate(
    const std::vector<PhysicalNode*>& stages, LineageManager* manager,
    const storage::SegmentedTable* table);

/// Runs the row-path stages [first, stages.size()) over `table` and
/// converts the result back to a relation — the tail of a batch pipeline
/// whose prefix was merged by the parallel driver.
StatusOr<TPRelation> FinishRowStagesOverTable(
    std::string name, Table table,
    const std::vector<PhysicalNode*>& stages, size_t first,
    LineageManager* manager, const ProbEvalOptions& prob_base = {});

/// One pipelined chain as the executors see it: bottom-up stages, the
/// exchange marker (when the mode pass inserted one) with the number of
/// stages it covers, the leading batch-mode stage count, and the source.
struct ChainExec {
  std::vector<PhysicalNode*> stages;  ///< bottom-up
  PhysicalNode* exchange = nullptr;
  size_t parallel_prefix = 0;  ///< stages under the exchange
  size_t batch_prefix = 0;     ///< leading stages with mode == kBatch
  PhysicalNode* source = nullptr;
};

/// Collects the maximal pipelined chain rooted at `top` (inclusive).
ChainExec CollectExecChain(PhysicalNode* top);

}  // namespace tpdb

#endif  // TPDB_API_LOWERING_COMMON_H_
