// Physical plan IR — the optimizing middle layer between the logical
// algebra and the executors. The planner binds a LogicalPlan against the
// catalog into a typed physical-operator tree, runs the pass pipeline over
// it (api/passes/: constant folding, predicate & probability-threshold
// pushdown, projection pruning, zone-map-costed mode selection), and then
// executes the annotated tree. Row, batch and parallel execution are no
// longer separate lowerings: they are per-node annotations of ONE tree —
//
//   PhysScan / PhysBatchScan   a catalog source (row- or batch-mode; cold
//                              sources carry the pushed-down ScanPredicate
//                              the zone maps prune on)
//   PhysFilter                 σ — a predicate or a probability threshold
//   PhysProject / PhysSort / PhysLimit
//   PhysAggregate              grouped aggregation (row or batch mode)
//   PhysTPJoin                 lineage-aware TP join (tp/operators.h)
//   PhysAlign                  temporal-alignment strategy join
//                              (baseline/ta_join.h)
//   PhysTPSetOp                TP union / intersection / difference
//   PhysExchange               parallel-region marker: the chain below it
//                              runs per-morsel with an ordered merge
//
// Every node carries its resolved flattened schema, an estimated
// cardinality + cost (filled by the mode-selection pass), and — after an
// instrumented execution — a pointer to its actual NodeStats, which
// ToString renders side by side ("est … rows" vs "actual … rows").
#ifndef TPDB_API_PHYSICAL_PLAN_H_
#define TPDB_API_PHYSICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/logical_plan.h"
#include "common/status.h"
#include "engine/explain.h"
#include "storage/scan.h"
#include "tp/overlap_join.h"
#include "tp/tp_relation.h"

namespace tpdb {

class TPDatabase;

/// Node types of the physical algebra.
enum class PhysOp {
  kScan,        ///< row-mode source: warm TableScan or cold SegmentScan
  kBatchScan,   ///< batch-mode source: TableBatchScan or SegmentBatchScan
  kFilter,      ///< predicate filter or probability threshold
  kProject,
  kAggregate,
  kTPJoin,      ///< lineage-aware TP join
  kTPSetOp,
  kAlign,       ///< temporal-alignment strategy join
  kSort,
  kLimit,
  kExchange,    ///< parallel region: child chain runs per-morsel
};

const char* PhysOpName(PhysOp op);

/// Execution mode of a source or pipeline stage.
enum class ExecMode { kRow, kBatch };

/// Cost-model annotations (mode-selection pass): estimated output
/// cardinality and cumulative cost in abstract per-row work units.
struct PhysCost {
  double rows = 0.0;
  double cost = 0.0;
};

struct PhysicalNode;
using PhysicalNodePtr = std::unique_ptr<PhysicalNode>;

/// One node of a physical plan. Only the payload fields of its `op` are
/// meaningful; BuildPhysicalPlan constructs each shape from the logical
/// tree and the catalog.
struct PhysicalNode {
  PhysOp op = PhysOp::kScan;
  std::vector<PhysicalNodePtr> children;

  /// Resolved flattened output schema (facts ++ _ts ++ _te ++ _lin).
  Schema schema;

  // kScan / kBatchScan
  std::string relation;
  const TPRelation* rel = nullptr;  ///< bound catalog relation
  bool cold = false;                ///< serves from the columnar backing
  storage::ScanPredicate scan_predicate;  ///< pushdown pass (cold only)

  // kFilter — exactly one of the two forms:
  AstExprPtr predicate;        ///< predicate form (null for probability)
  bool is_prob = false;        ///< probability-threshold form
  double min_prob = 0.0;
  bool min_prob_strict = false;
  /// APPROX(eps, delta) sampling contract (0 = exact evaluation).
  double approx_eps = 0.0;
  double approx_delta = 0.0;
  /// ProbMethod bitmask of the evaluation rungs the node actually used,
  /// filled in during execution (operators update it through an atomic_ref,
  /// the plan is rendered afterwards). Explain shows it as `prob=...`.
  uint8_t prob_methods = 0;

  // kProject
  std::vector<std::string> columns;
  std::vector<std::string> aliases;

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<std::string> group_aliases;
  std::vector<SelectItem> aggregates;

  // kTPJoin / kAlign
  TPJoinKind join_kind = TPJoinKind::kInner;
  std::vector<std::pair<std::string, std::string>> join_on;
  /// Chosen overlap algorithm (mode-selection pass resolves kAuto from
  /// zone-map statistics and the sortedness of the inputs) and — for the
  /// time-partitioned sweep — the slice count (1 = no partitioning).
  OverlapAlgorithm join_algorithm = OverlapAlgorithm::kPartitioned;
  int time_slices = 1;

  // kTPSetOp
  SetOpKind set_op = SetOpKind::kUnion;

  // kSort
  std::vector<OrderItem> order_by;
  /// ≥0: only the top `top_k` rows are needed (a downstream Limit was fused
  /// by the top-k pass); enables pruned `ORDER BY _prob DESC` execution.
  int64_t top_k = -1;

  // kLimit
  int64_t limit = 0;
  int64_t offset = 0;

  // kExchange
  int workers = 1;

  /// Chosen execution mode (sources and pipeline stages).
  ExecMode mode = ExecMode::kRow;
  /// Cost-model estimates (mode-selection pass).
  PhysCost est;
  /// Actual execution counters of this node, when the plan ran with an
  /// ExecStats registry (null otherwise). Owned by the registry.
  const NodeStats* actual = nullptr;

  /// One-line description, e.g. "BatchScan(events) σ[_ts in [512, inf)]".
  std::string Label() const;

  /// Multi-line indented tree rendering with per-node mode, estimated
  /// rows/cost, and actual rows/time when present.
  std::string ToString(int indent = 0) const;
};

/// A complete physical plan (owning its node tree). The bound relation
/// pointers reference the catalog: a plan is valid while the catalog lock
/// that existed at build time is held, or until the next DDL.
struct PhysicalPlan {
  PhysicalNodePtr root;

  std::string ToString() const {
    return root ? root->ToString() : "<empty>";
  }
};

/// Binds `plan` against `db`'s catalog (the caller must hold the catalog
/// at least shared) into an unoptimized physical tree: scans resolve their
/// relations, projections and aggregates resolve their columns, joins
/// compute their output schemas. Snapshot statements are not physical —
/// the planner handles them before lowering.
StatusOr<PhysicalPlan> BuildPhysicalPlan(const LogicalPlan& plan,
                                         TPDatabase* db);

/// True for the pipelined physical ops that fuse into one operator chain
/// (filter / project / sort / limit — exchange is a chain marker, not a
/// stage).
bool IsPipelinedPhysOp(PhysOp op);

/// True for a bound catalog source (PhysScan / PhysBatchScan).
bool IsCatalogSource(const PhysicalNode& source);

}  // namespace tpdb

#endif  // TPDB_API_PHYSICAL_PLAN_H_
