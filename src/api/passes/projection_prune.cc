// Projection pruning: stacked projections collapse into one (the upper
// projection's sources are resolved through the lower's aliases), and
// identity projections — every fact column kept in order under its own
// name — disappear entirely. Both rewrites preserve the output schema and
// rows exactly; they only remove per-row copying stages.
#include <utility>
#include <vector>

#include "api/lowering_common.h"
#include "api/passes/passes.h"

namespace tpdb {

namespace {

/// Output name of projected column `i`.
std::string OutputName(const PhysicalNode& project, size_t i) {
  return i < project.aliases.size() && !project.aliases[i].empty()
             ? project.aliases[i]
             : project.columns[i];
}

/// Composes Project(upper, Project(lower, x)) into one projection over x.
/// Returns false when an upper source does not resolve (malformed plans
/// keep their stages and report the error at lowering, as before).
bool ComposeProjects(PhysicalNode* upper, const PhysicalNode& lower) {
  std::vector<std::string> columns;
  std::vector<std::string> aliases;
  columns.reserve(upper->columns.size());
  aliases.reserve(upper->columns.size());
  for (size_t i = 0; i < upper->columns.size(); ++i) {
    // Resolve the upper source through the lower projection's outputs
    // (IndexOf semantics: first match wins, like execution).
    const std::string& source = upper->columns[i];
    size_t j = 0;
    for (; j < lower.columns.size(); ++j)
      if (OutputName(lower, j) == source) break;
    if (j == lower.columns.size()) return false;
    columns.push_back(lower.columns[j]);
    aliases.push_back(OutputName(*upper, i));
  }
  upper->columns = std::move(columns);
  upper->aliases = std::move(aliases);
  return true;
}

/// True when the projection keeps every fact column of its input, in
/// order, under its own name — a per-row copy with no effect.
bool IsIdentityProject(const PhysicalNode& project) {
  const Schema& input = project.children[0]->schema;
  TPDB_CHECK_GE(input.num_columns(), 3u);
  const size_t facts = input.num_columns() - 3;
  if (project.columns.size() != facts) return false;
  for (size_t i = 0; i < facts; ++i) {
    if (project.columns[i] != input.column(i).name) return false;
    if (input.IndexOf(project.columns[i]) != static_cast<int>(i))
      return false;  // duplicate name resolving elsewhere
    if (OutputName(project, i) != input.column(i).name) return false;
  }
  return true;
}

void PruneNode(PhysicalNodePtr& node) {
  for (PhysicalNodePtr& child : node->children) PruneNode(child);
  while (node->op == PhysOp::kProject) {
    PhysicalNode& child = *node->children[0];
    if (child.op == PhysOp::kProject && ComposeProjects(node.get(), child)) {
      // Splice the lower projection out; the composed node's schema is
      // unchanged (it still emits the same output columns).
      PhysicalNodePtr grandchild = std::move(child.children[0]);
      node->children[0] = std::move(grandchild);
      continue;
    }
    if (IsIdentityProject(*node)) {
      PhysicalNodePtr only = std::move(node->children[0]);
      node = std::move(only);
      continue;
    }
    break;
  }
}

}  // namespace

Status PruneProjectionsPass(PhysicalPlan* plan) {
  TPDB_CHECK(plan != nullptr && plan->root != nullptr);
  PruneNode(plan->root);
  return Status::OK();
}

}  // namespace tpdb
