// Constant folding over filter predicates. Folds with the engine's EXACT
// evaluation semantics — Kleene three-valued logic, Datum comparison with
// int64↔double promotion — so a folded plan is element-wise identical to
// the unfolded one. Only equivalences that hold in 3VL everywhere are
// applied (e.g. x AND false = false even when x is NULL; NULL is NOT
// rewritten to false, because under NOT they differ).
#include <utility>

#include "api/lowering_common.h"
#include "api/passes/passes.h"
#include "engine/expr.h"

namespace tpdb {

namespace {

bool IsLiteral(const AstExprPtr& e) {
  return e != nullptr && e->kind == AstExprKind::kLiteral;
}

bool IsLiteralNull(const AstExprPtr& e) {
  return IsLiteral(e) && e->literal.is_null();
}

/// Non-null literal the filter keeps rows on.
bool IsLiteralTrue(const AstExprPtr& e) {
  return IsLiteral(e) && !e->literal.is_null() && DatumTruthy(e->literal);
}

/// Non-null literal the filter drops rows on (NULL is handled separately).
bool IsLiteralFalse(const AstExprPtr& e) {
  return IsLiteral(e) && !e->literal.is_null() && !DatumTruthy(e->literal);
}

AstExprPtr BoolLiteral(bool value) {
  return AstLiteral(Datum(static_cast<int64_t>(value ? 1 : 0)));
}

/// Folds a comparison of two literals exactly as CompareExpr /
/// PromotedCompare evaluate it.
AstExprPtr FoldLiteralCompare(CompareOp op, const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return AstLiteral(Datum::Null());
  const bool numeric_mix =
      (a.type() == DatumType::kInt64 && b.type() == DatumType::kDouble) ||
      (a.type() == DatumType::kDouble && b.type() == DatumType::kInt64);
  if (numeric_mix) {
    double x = 0, y = 0;
    if (!DatumToDouble(a, &x) || !DatumToDouble(b, &y))
      return AstLiteral(Datum::Null());
    switch (op) {
      case CompareOp::kEq: return BoolLiteral(x == y);
      case CompareOp::kNe: return BoolLiteral(x != y);
      case CompareOp::kLt: return BoolLiteral(x < y);
      case CompareOp::kLe: return BoolLiteral(x <= y);
      case CompareOp::kGt: return BoolLiteral(x > y);
      case CompareOp::kGe: return BoolLiteral(x >= y);
    }
    return AstLiteral(Datum::Null());
  }
  const int c = a.Compare(b);
  switch (op) {
    case CompareOp::kEq: return BoolLiteral(c == 0);
    case CompareOp::kNe: return BoolLiteral(c != 0);
    case CompareOp::kLt: return BoolLiteral(c < 0);
    case CompareOp::kLe: return BoolLiteral(c <= 0);
    case CompareOp::kGt: return BoolLiteral(c > 0);
    case CompareOp::kGe: return BoolLiteral(c >= 0);
  }
  return AstLiteral(Datum::Null());
}

}  // namespace

AstExprPtr FoldAstExpr(const AstExprPtr& e) {
  if (e == nullptr) return e;
  switch (e->kind) {
    case AstExprKind::kColumn:
    case AstExprKind::kLiteral:
      return e;
    case AstExprKind::kCompare: {
      const AstExprPtr a = FoldAstExpr(e->left);
      const AstExprPtr b = FoldAstExpr(e->right);
      if (IsLiteral(a) && IsLiteral(b))
        return FoldLiteralCompare(e->compare_op, a->literal, b->literal);
      if (a == e->left && b == e->right) return e;
      return AstCompare(e->compare_op, a, b);
    }
    case AstExprKind::kAnd: {
      const AstExprPtr a = FoldAstExpr(e->left);
      const AstExprPtr b = FoldAstExpr(e->right);
      // Exact 3VL: false ∧ x = false (any x), true ∧ x = x.
      if (IsLiteralFalse(a) || IsLiteralFalse(b)) return BoolLiteral(false);
      if (IsLiteralTrue(a)) return b;
      if (IsLiteralTrue(b)) return a;
      if (IsLiteralNull(a) && IsLiteralNull(b))
        return AstLiteral(Datum::Null());
      if (a == e->left && b == e->right) return e;
      return AstAnd(a, b);
    }
    case AstExprKind::kOr: {
      const AstExprPtr a = FoldAstExpr(e->left);
      const AstExprPtr b = FoldAstExpr(e->right);
      // Exact 3VL: true ∨ x = true (any x), false ∨ x = x.
      if (IsLiteralTrue(a) || IsLiteralTrue(b)) return BoolLiteral(true);
      if (IsLiteralFalse(a)) return b;
      if (IsLiteralFalse(b)) return a;
      if (IsLiteralNull(a) && IsLiteralNull(b))
        return AstLiteral(Datum::Null());
      if (a == e->left && b == e->right) return e;
      return AstOr(a, b);
    }
    case AstExprKind::kNot: {
      const AstExprPtr a = FoldAstExpr(e->left);
      if (IsLiteral(a)) {
        if (a->literal.is_null()) return AstLiteral(Datum::Null());
        return BoolLiteral(!DatumTruthy(a->literal));
      }
      if (a == e->left) return e;
      return AstNot(a);
    }
    case AstExprKind::kIsNull: {
      const AstExprPtr a = FoldAstExpr(e->left);
      if (IsLiteral(a)) return BoolLiteral(a->literal.is_null());
      if (a == e->left) return e;
      return AstIsNull(a);
    }
  }
  return e;
}

namespace {

void FoldNode(PhysicalNodePtr& node) {
  for (PhysicalNodePtr& child : node->children) FoldNode(child);
  if (node->op == PhysOp::kFilter && !node->is_prob &&
      node->predicate != nullptr) {
    node->predicate = FoldAstExpr(node->predicate);
    // An always-true filter keeps every row: splice it out.
    if (IsLiteralTrue(node->predicate)) {
      PhysicalNodePtr child = std::move(node->children[0]);
      node = std::move(child);
    }
  }
}

}  // namespace

Status FoldConstantsPass(PhysicalPlan* plan) {
  TPDB_CHECK(plan != nullptr && plan->root != nullptr);
  FoldNode(plan->root);
  return Status::OK();
}

}  // namespace tpdb
