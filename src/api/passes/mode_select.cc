// Mode selection — the cost model. Replaces the pre-IR planner's
// hard-coded `vectorize` / `parallelism` branching with per-node
// annotations derived from estimated cardinalities:
//
//   - Cold scans are costed through their zone maps: EstimateScanRows sums
//     the rows of the segments the pushed-down ScanPredicate cannot prune,
//     so a query that prunes 4 of 5 segments is planned for 1/5 of the
//     relation — which decides both row-vs-batch and serial-vs-parallel.
//   - Each pipelined chain is costed twice — once all-row, once with its
//     vectorizable prefix on ColumnBatch operators — and the cheaper wins
//     (PlannerOptions::vectorize = true/false overrides; unset = by cost).
//     On the batch path the source PhysScan becomes a PhysBatchScan.
//   - A chain whose row-local prefix is worth morsel-driving (estimated
//     source rows ≥ min_parallel_rows, ≥ 2 morsels/segments) gets a
//     PhysExchange inserted over that prefix; the executor re-checks the
//     actual input size at run time, so an over-estimate never forces a
//     degenerate parallel run.
//   - An aggregate whose child chain is fully vectorizable over a catalog
//     scan runs batch-at-a-time (PhysAggregate mode=batch), with the same
//     exchange treatment below it.
//
// Cost units are abstract per-row work, calibrated coarsely from
// bench_vector_exec (batch stages ≈ 3x cheaper than row stages; cold chunk
// views skip the per-row decode entirely; exact-probability thresholds
// dominate whatever they touch).
#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "api/lowering_common.h"
#include "api/passes/passes.h"
#include "engine/expr.h"

namespace tpdb {

namespace {

constexpr double kRowStage = 1.0;
constexpr double kBatchStage = 0.3;
constexpr double kProbFilterRow = 8.0;
constexpr double kProbFilterBatch = 7.0;
constexpr double kWarmRowScan = 0.6;
constexpr double kWarmBatchScan = 0.45;  // per-batch transpose of rows
constexpr double kColdRowScan = 2.0;     // segment decode to rows
constexpr double kColdBatchScan = 0.25;  // zero-copy chunk views
constexpr double kBatchPipelineOverhead = 96.0;  // setup + adapters
constexpr double kRowAggUnit = 2.0;
constexpr double kBatchAggUnit = 0.6;
constexpr double kJoinUnit = 6.0;
constexpr double kSweepUnit = 2.5;     // sweep: one pass, no partition rescans
constexpr double kSweepSortUnit = 0.4; // × n log2 n when inputs need sorting
constexpr double kSetOpUnit = 4.0;
constexpr double kSortUnit = 0.4;  // × n log2 n

/// Textbook selectivity guesses over the predicate shape.
double Selectivity(const AstExprPtr& e) {
  if (e == nullptr) return 1.0;
  switch (e->kind) {
    case AstExprKind::kColumn:
      return 0.5;
    case AstExprKind::kLiteral:
      return !e->literal.is_null() && DatumTruthy(e->literal) ? 1.0 : 0.0;
    case AstExprKind::kCompare:
      switch (e->compare_op) {
        case CompareOp::kEq: return 0.1;
        case CompareOp::kNe: return 0.9;
        default: return 1.0 / 3.0;
      }
    case AstExprKind::kAnd:
      return Selectivity(e->left) * Selectivity(e->right);
    case AstExprKind::kOr: {
      const double a = Selectivity(e->left);
      const double b = Selectivity(e->right);
      return a + b - a * b;
    }
    case AstExprKind::kNot:
      return 1.0 - Selectivity(e->left);
    case AstExprKind::kIsNull:
      return 0.1;
  }
  return 0.5;
}

double StageSelectivity(const PhysicalNode& stage) {
  if (stage.op == PhysOp::kFilter)
    return stage.is_prob ? std::max(0.05, 1.0 - stage.min_prob)
                         : Selectivity(stage.predicate);
  return 1.0;
}

/// Per-input-row work of one stage under `batch` mode.
double StageUnit(const PhysicalNode& stage, bool batch) {
  if (stage.op == PhysOp::kFilter && stage.is_prob)
    return batch ? kProbFilterBatch : kProbFilterRow;
  return batch ? kBatchStage : kRowStage;
}

/// Output-row estimate of one stage given its input estimate.
double StageRows(const PhysicalNode& stage, double in_rows) {
  switch (stage.op) {
    case PhysOp::kFilter:
      return in_rows * StageSelectivity(stage);
    case PhysOp::kLimit: {
      const double kept =
          std::max(0.0, in_rows - static_cast<double>(stage.offset));
      return std::min(kept, static_cast<double>(stage.limit));
    }
    default:
      return in_rows;
  }
}

/// Total cost of a chain with its first `batch_count` stages on the batch
/// path, also filling per-stage est annotations when `annotate` is set.
double CostChain(const std::vector<PhysicalNode*>& stages, double source_rows,
                 double source_cost, size_t batch_count, bool annotate) {
  double rows = source_rows;
  double cost = source_cost;
  if (batch_count > 0) cost += kBatchPipelineOverhead;
  for (size_t i = 0; i < stages.size(); ++i) {
    PhysicalNode& stage = *stages[i];
    const bool batch = i < batch_count;
    cost += rows * StageUnit(stage, batch);
    if (stage.op == PhysOp::kSort && rows > 1.0)
      cost += kSortUnit * rows * std::log2(rows);
    rows = StageRows(stage, rows);
    if (annotate) {
      stage.mode = batch ? ExecMode::kBatch : ExecMode::kRow;
      stage.est = {rows, cost};
    }
  }
  return cost;
}

struct ModeContext {
  const PlannerOptions* options;
  int parallelism;
};

/// Multiplier on the cold scan units when surviving segments hold packed
/// chunks that must be decompressed (storage::EstimateDecodeFactor).
/// Applied to both the row and the batch unit so compression never flips
/// the row-vs-batch decision, only serial-vs-parallel and scan totals.
/// Requires source.scan_predicate to be harvested (AnnotateSource).
double ColdDecodeFactor(const PhysicalNode& source) {
  return storage::EstimateDecodeFactor(*source.rel->cold_storage(),
                                       source.scan_predicate);
}

Status Annotate(PhysicalNodePtr& node, const ModeContext& c);

/// Chain shape shared by the pipeline and aggregate annotators.
struct Chain {
  std::vector<PhysicalNode*> stages;  ///< bottom-up
  PhysicalNode* source = nullptr;
  PhysicalNodePtr* source_slot = nullptr;  ///< owner of `source` (or null
                                           ///< when source == *top)
};

Chain CollectChain(PhysicalNodePtr* top) {
  Chain chain;
  PhysicalNodePtr* slot = top;
  while (IsPipelinedPhysOp((*slot)->op)) {
    chain.stages.push_back(slot->get());
    slot = &(*slot)->children[0];
  }
  std::reverse(chain.stages.begin(), chain.stages.end());
  chain.source = slot->get();
  chain.source_slot = slot;
  return chain;
}

/// Estimated rows + cumulative cost of a chain source. Catalog scans are
/// estimated directly (cold: through the zone maps); barrier sources are
/// annotated recursively first. The cold scan predicate is (re)harvested
/// here so estimation and execution agree even when the pushdown pass was
/// skipped (optimize = false).
Status AnnotateSource(Chain* chain, const ModeContext& c, bool for_batch) {
  PhysicalNode& source = *chain->source;
  if (IsCatalogSource(source)) {
    if (source.cold) {
      source.scan_predicate = CollectColdScanPredicate(
          chain->stages, source.rel->manager(),
          source.rel->cold_storage().get());
      const double rows = static_cast<double>(storage::EstimateScanRows(
          *source.rel->cold_storage(), source.scan_predicate));
      const double decode = ColdDecodeFactor(source);
      source.est = {rows, rows * decode *
                              (for_batch ? kColdBatchScan : kColdRowScan)};
    } else {
      const double rows = static_cast<double>(source.rel->size());
      source.est = {rows, rows * (for_batch ? kWarmBatchScan : kWarmRowScan)};
    }
    return Status::OK();
  }
  TPDB_RETURN_IF_ERROR(Annotate(*chain->source_slot, c));
  chain->source = chain->source_slot->get();
  // Feeding a pipeline flattens the barrier result into a table first.
  PhysicalNode& bound = *chain->source;
  bound.est.cost += bound.est.rows * kWarmRowScan;
  return Status::OK();
}

/// Decides row vs batch for a chain: 0 = row path, else the number of
/// leading stages lowered onto ColumnBatch operators.
size_t DecideBatchCount(const Chain& chain, const ModeContext& c,
                        double source_rows) {
  if (c.options->vectorize.has_value() && !*c.options->vectorize) return 0;
  const size_t batch_count =
      CountBatchStages(chain.source->schema, chain.stages,
                       /*row_local_only=*/false);
  if (batch_count == 0) return 0;
  if (c.options->vectorize.has_value()) return batch_count;  // forced on
  // Cost both lowerings and keep the cheaper one.
  const bool cold = IsCatalogSource(*chain.source) && chain.source->cold;
  const bool catalog = IsCatalogSource(*chain.source);
  const double decode = cold ? ColdDecodeFactor(*chain.source) : 1.0;
  const double row_scan =
      catalog ? (cold ? kColdRowScan * decode : kWarmRowScan) : kWarmRowScan;
  const double batch_scan =
      cold ? kColdBatchScan * decode : kWarmBatchScan;
  const double row_cost =
      CostChain(chain.stages, source_rows, source_rows * row_scan, 0, false);
  const double batch_cost = CostChain(
      chain.stages, source_rows, source_rows * batch_scan, batch_count,
      false);
  return batch_cost < row_cost ? batch_count : 0;
}

/// Inserts a PhysExchange over the first `prefix` stages of the chain
/// rooted at `*top` (prefix >= 1). `top` must own the chain top.
void InsertExchange(PhysicalNodePtr* top, const Chain& chain, size_t prefix,
                    int workers) {
  PhysicalNode* below = chain.stages[prefix - 1];
  auto exchange = std::make_unique<PhysicalNode>();
  exchange->op = PhysOp::kExchange;
  exchange->workers = workers;
  exchange->schema = below->schema;
  exchange->mode = below->mode;
  exchange->est = below->est;
  PhysicalNodePtr* slot =
      prefix < chain.stages.size() ? &chain.stages[prefix]->children[0] : top;
  exchange->children.push_back(std::move(*slot));
  *slot = std::move(exchange);
}

/// The parallel decision for a chain over `source_rows` estimated input
/// rows: how many leading row-local stages the morsel drivers should run
/// (0 = stay serial). The executor re-checks actual sizes at run time.
size_t DecideParallelPrefix(const Chain& chain, const ModeContext& c,
                            size_t batch_count, double source_rows,
                            const PlannerOptions& options) {
  if (c.parallelism <= 1 || chain.stages.empty()) return 0;
  if (source_rows < static_cast<double>(options.min_parallel_rows)) return 0;
  const bool cold = IsCatalogSource(*chain.source) && chain.source->cold;
  if (cold) {
    // The cold morsel unit is a segment range; the row-mode cold scan has
    // no parallel driver (it is already the slow fallback path).
    if (batch_count == 0) return 0;
    if (chain.source->rel->cold_storage()->segments().size() < 2) return 0;
  }
  size_t prefix;
  if (batch_count > 0) {
    prefix = CountBatchStages(chain.source->schema, chain.stages,
                              /*row_local_only=*/true);
    prefix = std::min(prefix, batch_count);
  } else {
    prefix = 0;
    while (prefix < chain.stages.size() &&
           IsRowLocalStage(*chain.stages[prefix]))
      ++prefix;
  }
  return prefix;
}

/// Annotates one pipelined chain rooted at `*top`: batch decision, per-
/// stage modes + estimates, exchange insertion.
Status AnnotateChain(PhysicalNodePtr& top, const ModeContext& c) {
  Chain chain = CollectChain(&top);
  // Probe batch eligibility first so the source is costed for the right
  // mode (chicken-and-egg is fine: eligibility only needs the schema).
  TPDB_RETURN_IF_ERROR(AnnotateSource(&chain, c, /*for_batch=*/false));
  const double source_rows = chain.source->est.rows;
  const size_t batch_count = DecideBatchCount(chain, c, source_rows);
  if (batch_count > 0 && IsCatalogSource(*chain.source)) {
    chain.source->op = PhysOp::kBatchScan;
    chain.source->mode = ExecMode::kBatch;
    chain.source->est.cost =
        source_rows *
        (chain.source->cold ? kColdBatchScan * ColdDecodeFactor(*chain.source)
                            : kWarmBatchScan);
  }
  CostChain(chain.stages, source_rows, chain.source->est.cost, batch_count,
            /*annotate=*/true);
  const size_t prefix = DecideParallelPrefix(chain, c, batch_count,
                                             source_rows, *c.options);
  if (prefix > 0) InsertExchange(&top, chain, prefix, c.parallelism);
  return Status::OK();
}

/// Aggregate annotation: batch-at-a-time when the whole child chain
/// vectorizes over a catalog scan, row otherwise.
Status AnnotateAggregate(PhysicalNodePtr& node, const ModeContext& c) {
  PhysicalNodePtr& child = node->children[0];
  Chain chain = CollectChain(&child);

  bool batch_agg = false;
  if (IsCatalogSource(*chain.source) &&
      (!c.options->vectorize.has_value() || *c.options->vectorize)) {
    const size_t batchable =
        CountBatchStages(chain.source->schema, chain.stages,
                         /*row_local_only=*/false);
    if (batchable == chain.stages.size()) {
      if (c.options->vectorize.has_value()) {
        batch_agg = true;  // forced on
      } else {
        // Cost the two aggregate lowerings over the same chain estimates.
        TPDB_RETURN_IF_ERROR(AnnotateSource(&chain, c, /*for_batch=*/false));
        const double rows = chain.source->est.rows;
        const bool cold = chain.source->cold;
        const double decode = cold ? ColdDecodeFactor(*chain.source) : 1.0;
        const double row_cost = CostChain(
            chain.stages, rows,
            rows * (cold ? kColdRowScan * decode : kWarmRowScan), 0, false);
        const double batch_cost =
            CostChain(chain.stages, rows,
                      rows * (cold ? kColdBatchScan * decode : kWarmBatchScan),
                      chain.stages.size(), false);
        const double out_rows =
            chain.stages.empty()
                ? rows
                : StageRows(*chain.stages.back(), rows);  // rough feed size
        batch_agg = batch_cost + out_rows * kBatchAggUnit <
                    row_cost + out_rows * kRowAggUnit;
      }
    }
  }

  double child_rows = 0.0;
  double child_cost = 0.0;
  if (batch_agg) {
    TPDB_RETURN_IF_ERROR(AnnotateSource(&chain, c, /*for_batch=*/true));
    const double source_rows = chain.source->est.rows;
    chain.source->op = PhysOp::kBatchScan;
    chain.source->mode = ExecMode::kBatch;
    CostChain(chain.stages, source_rows, chain.source->est.cost,
              chain.stages.size(), /*annotate=*/true);
    node->mode = ExecMode::kBatch;
    child_rows = chain.stages.empty() ? source_rows
                                      : chain.stages.back()->est.rows;
    child_cost = chain.stages.empty() ? chain.source->est.cost
                                      : chain.stages.back()->est.cost;
    const size_t prefix =
        !chain.stages.empty() &&
                CountBatchStages(chain.source->schema, chain.stages,
                                 /*row_local_only=*/true) ==
                    chain.stages.size()
            ? DecideParallelPrefix(chain, c, chain.stages.size(), source_rows,
                                   *c.options)
            : 0;
    if (prefix == chain.stages.size() && prefix > 0)
      InsertExchange(&child, chain, prefix, c.parallelism);
  } else {
    TPDB_RETURN_IF_ERROR(Annotate(child, c));
    node->mode = ExecMode::kRow;
    child_rows = child->est.rows;
    child_cost = child->est.cost;
  }

  const double out_rows =
      node->group_by.empty() ? std::min(child_rows, 1.0)
                             : std::max(1.0, std::sqrt(child_rows));
  node->est = {out_rows,
               child_cost + child_rows * (node->mode == ExecMode::kBatch
                                              ? kBatchAggUnit
                                              : kRowAggUnit)};
  return Status::OK();
}

Status Annotate(PhysicalNodePtr& node, const ModeContext& c) {
  switch (node->op) {
    case PhysOp::kFilter:
    case PhysOp::kProject:
    case PhysOp::kSort:
    case PhysOp::kLimit:
      return AnnotateChain(node, c);
    case PhysOp::kAggregate:
      return AnnotateAggregate(node, c);
    case PhysOp::kScan:
    case PhysOp::kBatchScan: {
      // A bare source outside any chain (plan root or an operator input):
      // served straight from the catalog, zero copies, row representation.
      const double rows = static_cast<double>(node->rel->size());
      node->est = {rows, 0.0};
      return Status::OK();
    }
    case PhysOp::kTPJoin:
    case PhysOp::kAlign: {
      TPDB_RETURN_IF_ERROR(Annotate(node->children[0], c));
      TPDB_RETURN_IF_ERROR(Annotate(node->children[1], c));
      const double lr = node->children[0]->est.rows;
      const double rr = node->children[1]->est.rows;
      const double n = lr + rr;
      double unit = kJoinUnit;
      if (node->op == PhysOp::kTPJoin) {
        node->join_algorithm = c.options->overlap_algorithm;
        node->time_slices = 1;
        if (node->join_algorithm == OverlapAlgorithm::kAuto) {
          // Cost the sweep against the partitioned probe. Catalog inputs
          // that are already _ts-ordered let the sweep skip its sort; a
          // θ with no equi-keys would hand the probe one degenerate
          // partition, so it always goes to the sweep.
          const auto sorted_input = [](const PhysicalNode& child) {
            return IsCatalogSource(child) && child.rel->sorted_by_ts();
          };
          const bool sorted_inputs = sorted_input(*node->children[0]) &&
                                     sorted_input(*node->children[1]);
          const double sweep_cost =
              n * kSweepUnit +
              (sorted_inputs || n < 2.0 ? 0.0
                                        : kSweepSortUnit * n * std::log2(n));
          node->join_algorithm =
              node->join_on.empty() || sweep_cost < n * kJoinUnit
                  ? OverlapAlgorithm::kSweep
                  : OverlapAlgorithm::kPartitioned;
        }
        if (node->join_algorithm == OverlapAlgorithm::kSweep) {
          unit = kSweepUnit;
          // Slice count: one per worker, unless the input is too small to
          // amortize the per-slice setup (the executor re-checks).
          if (c.parallelism > 1 &&
              n >= static_cast<double>(c.options->min_parallel_rows))
            node->time_slices = c.parallelism;
        }
      }
      // Window-count heuristic: a lineage-aware join emits O(r + s +
      // overlaps) windows; without overlap statistics, r + s.
      node->est = {n, node->children[0]->est.cost +
                          node->children[1]->est.cost + n * unit};
      return Status::OK();
    }
    case PhysOp::kTPSetOp: {
      TPDB_RETURN_IF_ERROR(Annotate(node->children[0], c));
      TPDB_RETURN_IF_ERROR(Annotate(node->children[1], c));
      const double lr = node->children[0]->est.rows;
      const double rr = node->children[1]->est.rows;
      node->est = {lr + rr, node->children[0]->est.cost +
                                node->children[1]->est.cost +
                                (lr + rr) * kSetOpUnit};
      return Status::OK();
    }
    case PhysOp::kExchange:
      return Status::Internal("exchange before mode selection");
  }
  return Status::Internal("unhandled physical node");
}

}  // namespace

Status SelectModesPass(PhysicalPlan* plan, const PassContext& ctx) {
  TPDB_CHECK(plan != nullptr && plan->root != nullptr);
  TPDB_CHECK(ctx.options != nullptr);
  const ModeContext c{ctx.options, ctx.parallelism};
  return Annotate(plan->root, c);
}

Status RunPassPipeline(PhysicalPlan* plan, const PassContext& ctx) {
  TPDB_CHECK(ctx.options != nullptr);
  if (ctx.options->optimize) {
    TPDB_RETURN_IF_ERROR(FoldConstantsPass(plan));
    TPDB_RETURN_IF_ERROR(PushdownPass(plan));
    TPDB_RETURN_IF_ERROR(PruneProjectionsPass(plan));
    TPDB_RETURN_IF_ERROR(TopKFusePass(plan));
  }
  // Mode selection is mandatory: the executors read its annotations. It
  // also (re)harvests cold scan predicates, so optimize=false keeps the
  // zone-map pruning of the pre-IR planner.
  return SelectModesPass(plan, ctx);
}

}  // namespace tpdb
