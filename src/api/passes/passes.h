// Optimizer passes over the physical plan IR (api/physical_plan.h). The
// planner runs them in a fixed pipeline between binding and execution:
//
//   1. FoldConstantsPass      — evaluate constant predicate subtrees with
//      the engine's exact three-valued semantics; always-true filters
//      disappear from the tree.
//   2. PushdownPass           — move predicate filters and probability
//      thresholds down through sorts and projections (rewriting column
//      names through aliases), order cheap predicate filters before
//      expensive probability thresholds, and harvest the conjunctive
//      bounds of the leading filter run into the PhysScan's ScanPredicate
//      (the zone maps prune on it; the probability dimension is
//      epoch-gated).
//   3. PruneProjectionsPass   — collapse stacked projections into one and
//      drop identity projections.
//   4. SelectModesPass        — the cost model: estimate per-node
//      cardinalities (cold scans via zone maps — EstimateScanRows over the
//      pushed predicate), cost row vs batch execution of every pipeline,
//      annotate each stage and source with its chosen ExecMode (PhysScan
//      becomes PhysBatchScan on the batch path), and insert PhysExchange
//      over row-local prefixes worth running on the morsel drivers. This
//      replaces the hard-coded `vectorize` / `parallelism` branching of
//      the pre-IR planner; the PlannerOptions knobs survive as overrides
//      (vectorize=false pins the row path bit-for-bit, =true forces the
//      batch path where it applies, unset picks by cost).
//
// Every pass preserves results element-wise (values, intervals, exact
// probabilities, emit order) — the physical-plan parity suite sweeps
// optimize on/off × modes to prove it.
#ifndef TPDB_API_PASSES_PASSES_H_
#define TPDB_API_PASSES_PASSES_H_

#include "api/physical_plan.h"
#include "api/planner.h"
#include "common/status.h"

namespace tpdb {

/// Everything a pass may consult. `parallelism` is the resolved worker
/// count of the execution in flight (1 = serial).
struct PassContext {
  const PlannerOptions* options = nullptr;
  int parallelism = 1;
};

Status FoldConstantsPass(PhysicalPlan* plan);
Status PushdownPass(PhysicalPlan* plan);
Status PruneProjectionsPass(PhysicalPlan* plan);
Status SelectModesPass(PhysicalPlan* plan, const PassContext& ctx);
/// Fuses Limit(k, offset 0) into a directly-below single-key `_prob DESC`
/// Sort (sort->top_k = k), unlocking the planner's pruned top-k-by-
/// probability executor. The Limit node stays (harmless over ≤k rows), so
/// the fusion is a pure annotation and trivially parity-safe.
Status TopKFusePass(PhysicalPlan* plan);

/// Folds a predicate AST with the engine's exact semantics (Kleene 3VL,
/// Datum comparison with int64↔double promotion). Returns the input
/// pointer when nothing folds. Exposed for tests and the pushdown pass.
AstExprPtr FoldAstExpr(const AstExprPtr& e);

/// The full pipeline, honoring PlannerOptions::optimize (when false, only
/// the mandatory mode-selection pass runs — the parity baseline).
Status RunPassPipeline(PhysicalPlan* plan, const PassContext& ctx);

}  // namespace tpdb

#endif  // TPDB_API_PASSES_PASSES_H_
