// Top-k fusion: Limit(k) directly over Sort[_prob DESC] marks the sort as
// top-k (sort->top_k = k). The planner's pruned top-k-by-probability
// executor (planner.cc) fires on that annotation — evaluating probabilities
// segment-by-segment in zone-map `max_prob` order and stopping once the
// k-th best lower bound beats every remaining segment's upper bound. The
// Limit node itself is kept: over the ≤k rows the sort now emits it is a
// no-op, which keeps the rewrite a pure annotation (trivially parity-safe,
// and plans that fall back to generic execution are unaffected).
#include "api/passes/passes.h"
#include "tp/tp_relation.h"

namespace tpdb {

namespace {

void FuseNode(const PhysicalNodePtr& node) {
  for (const PhysicalNodePtr& child : node->children) FuseNode(child);
  if (node->op != PhysOp::kLimit || node->limit < 0 || node->offset != 0)
    return;
  PhysicalNode& sort = *node->children[0];
  if (sort.op != PhysOp::kSort) return;
  // Only the single-key probability order benefits from pruning; a
  // secondary key would need full probabilities for tie-breaking anyway.
  if (sort.order_by.size() != 1 || sort.order_by[0].ascending ||
      sort.order_by[0].column != kProbColumn)
    return;
  sort.top_k = node->limit;
}

}  // namespace

Status TopKFusePass(PhysicalPlan* plan) {
  TPDB_CHECK(plan != nullptr && plan->root != nullptr);
  FuseNode(plan->root);
  return Status::OK();
}

}  // namespace tpdb
