// Predicate & probability-threshold pushdown. Within each pipelined chain
// (the maximal run of PhysFilter / PhysProject / PhysSort / PhysLimit over
// one source), filters sink toward the source:
//
//   - past PhysSort — the engine sort is stable, so filtering before or
//     after sorting yields the same rows in the same order;
//   - past PhysProject — predicate column references are rewritten through
//     the projection's aliases back to source names (probability
//     thresholds read only the lineage column, which rides along, and move
//     unconditionally);
//   - cheap predicate filters move ahead of expensive probability
//     thresholds (both are stream filters of one conjunction — reordering
//     preserves the surviving set and the emit order).
//
// Nothing ever crosses a PhysLimit (that would change which rows survive),
// and chains never cross barriers (joins, set ops, aggregates) — TP window
// semantics do not commute with σ on the join output.
//
// Afterwards the conjunctive bounds of the leading filter run are
// harvested into the cold source's ScanPredicate — the predicate moves
// INTO PhysScan, where the segment zone maps prune on it.
#include <map>
#include <utility>
#include <vector>

#include "api/lowering_common.h"
#include "api/passes/passes.h"

namespace tpdb {

namespace {

/// Rewrites every column reference of `e` through `renames`; returns null
/// when a referenced column has no source mapping (the filter then stays
/// above the projection).
AstExprPtr RenameColumns(const AstExprPtr& e,
                         const std::map<std::string, std::string>& renames) {
  if (e == nullptr) return nullptr;
  switch (e->kind) {
    case AstExprKind::kColumn: {
      if (IsReservedColumn(e->column)) return e;
      auto it = renames.find(e->column);
      if (it == renames.end()) return nullptr;
      if (it->second == e->column) return e;
      return AstColumn(it->second);
    }
    case AstExprKind::kLiteral:
      return e;
    case AstExprKind::kCompare: {
      const AstExprPtr a = RenameColumns(e->left, renames);
      const AstExprPtr b = RenameColumns(e->right, renames);
      if (a == nullptr || b == nullptr) return nullptr;
      if (a == e->left && b == e->right) return e;
      return AstCompare(e->compare_op, a, b);
    }
    case AstExprKind::kAnd:
    case AstExprKind::kOr: {
      const AstExprPtr a = RenameColumns(e->left, renames);
      const AstExprPtr b = RenameColumns(e->right, renames);
      if (a == nullptr || b == nullptr) return nullptr;
      if (a == e->left && b == e->right) return e;
      return e->kind == AstExprKind::kAnd ? AstAnd(a, b) : AstOr(a, b);
    }
    case AstExprKind::kNot: {
      const AstExprPtr a = RenameColumns(e->left, renames);
      if (a == nullptr) return nullptr;
      return a == e->left ? e : AstNot(a);
    }
    case AstExprKind::kIsNull: {
      const AstExprPtr a = RenameColumns(e->left, renames);
      if (a == nullptr) return nullptr;
      return a == e->left ? e : AstIsNull(a);
    }
  }
  return nullptr;
}

/// Output name → source name map of a projection stage.
std::map<std::string, std::string> ProjectRenames(const PhysicalNode& project) {
  std::map<std::string, std::string> renames;
  for (size_t i = 0; i < project.columns.size(); ++i) {
    const std::string out =
        i < project.aliases.size() && !project.aliases[i].empty()
            ? project.aliases[i]
            : project.columns[i];
    renames.emplace(out, project.columns[i]);  // first mapping wins
  }
  return renames;
}

/// Tries to move the filter `above` below the stage `below`; returns true
/// (after rewriting the predicate, when needed) if the swap is legal.
bool CanSink(PhysicalNode* above, const PhysicalNode& below) {
  if (above->op != PhysOp::kFilter) return false;
  switch (below.op) {
    case PhysOp::kSort:
      return true;  // stable sort commutes with stream filters
    case PhysOp::kProject: {
      if (above->is_prob) return true;  // reads only the lineage column
      const AstExprPtr rewritten =
          RenameColumns(above->predicate, ProjectRenames(below));
      if (rewritten == nullptr) return false;
      above->predicate = rewritten;
      return true;
    }
    case PhysOp::kFilter:
      // Cheap-first: predicate filters sink below probability thresholds.
      return below.is_prob && !above->is_prob;
    default:
      return false;  // never across a limit
  }
}

Status PushChain(PhysicalNodePtr& top);

Status PushChildren(PhysicalNode* node) {
  for (PhysicalNodePtr& child : node->children)
    TPDB_RETURN_IF_ERROR(PushChain(child));
  return Status::OK();
}

Status PushChain(PhysicalNodePtr& top) {
  if (!IsPipelinedPhysOp(top->op)) return PushChildren(top.get());

  // Detach the chain (top-down) from its source.
  std::vector<PhysicalNodePtr> top_down;
  PhysicalNodePtr cursor = std::move(top);
  while (IsPipelinedPhysOp(cursor->op)) {
    PhysicalNodePtr child = std::move(cursor->children[0]);
    cursor->children.clear();
    top_down.push_back(std::move(cursor));
    cursor = std::move(child);
  }
  PhysicalNodePtr source = std::move(cursor);
  TPDB_RETURN_IF_ERROR(PushChildren(source.get()));

  // Bottom-up stage order (the order rows flow through them).
  std::vector<PhysicalNodePtr> stages;
  stages.reserve(top_down.size());
  for (auto it = top_down.rbegin(); it != top_down.rend(); ++it)
    stages.push_back(std::move(*it));

  // Bubble filters downward until fixpoint. Each swap strictly sinks a
  // filter, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < stages.size(); ++i) {
      if (CanSink(stages[i].get(), *stages[i - 1])) {
        std::swap(stages[i - 1], stages[i]);
        changed = true;
      }
    }
  }

  // Stage schemas follow their (possibly new) positions.
  Schema schema = source->schema;
  for (PhysicalNodePtr& stage : stages) {
    if (stage->op == PhysOp::kProject) {
      StatusOr<ProjectPlan> plan =
          PlanProjectStage(stage->columns, stage->aliases, schema);
      if (!plan.ok()) return plan.status();
      schema = ProjectOutputSchema(*plan, schema);
    }
    stage->schema = schema;
  }

  // The predicate moves into the scan: conjunctive bounds of the leading
  // filter run, for the zone maps to prune on (cold sources only — warm
  // scans have no segment statistics).
  if ((source->op == PhysOp::kScan || source->op == PhysOp::kBatchScan) &&
      source->cold) {
    std::vector<PhysicalNode*> ptrs;
    ptrs.reserve(stages.size());
    for (const PhysicalNodePtr& stage : stages) ptrs.push_back(stage.get());
    source->scan_predicate = CollectColdScanPredicate(
        ptrs, source->rel->manager(), source->rel->cold_storage().get());
  }

  // Reattach bottom-up.
  PhysicalNodePtr acc = std::move(source);
  for (PhysicalNodePtr& stage : stages) {
    stage->children.clear();
    stage->children.push_back(std::move(acc));
    acc = std::move(stage);
  }
  top = std::move(acc);
  return Status::OK();
}

}  // namespace

Status PushdownPass(PhysicalPlan* plan) {
  TPDB_CHECK(plan != nullptr && plan->root != nullptr);
  return PushChain(plan->root);
}

}  // namespace tpdb
