#include "api/logical_plan.h"

#include <algorithm>
#include <cstdio>

#include "api/parser.h"
#include "common/strings.h"
#include "tp/operators.h"

namespace tpdb {

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kScan: return "Scan";
    case LogicalOp::kFilter: return "Filter";
    case LogicalOp::kProject: return "Project";
    case LogicalOp::kJoin: return "Join";
    case LogicalOp::kSetOp: return "SetOp";
    case LogicalOp::kAggregate: return "Aggregate";
    case LogicalOp::kSort: return "Sort";
    case LogicalOp::kLimit: return "Limit";
    case LogicalOp::kProbThreshold: return "ProbThreshold";
    case LogicalOp::kSaveSnapshot: return "SaveSnapshot";
    case LogicalOp::kLoadSnapshot: return "LoadSnapshot";
  }
  return "?";
}

LogicalNodePtr LogicalNode::Scan(std::string relation) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kScan;
  node->relation = std::move(relation);
  return node;
}

LogicalNodePtr LogicalNode::Filter(LogicalNodePtr child,
                                   AstExprPtr predicate) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::Project(LogicalNodePtr child,
                                    std::vector<std::string> columns,
                                    std::vector<std::string> aliases) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kProject;
  node->columns = std::move(columns);
  node->aliases = std::move(aliases);
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::Join(
    LogicalNodePtr left, LogicalNodePtr right, TPJoinKind kind,
    std::vector<std::pair<std::string, std::string>> on,
    JoinStrategy strategy) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kJoin;
  node->join_kind = kind;
  node->join_on = std::move(on);
  node->strategy = strategy;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

LogicalNodePtr LogicalNode::SetOp(LogicalNodePtr left, LogicalNodePtr right,
                                  SetOpKind kind) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kSetOp;
  node->set_op = kind;
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

LogicalNodePtr LogicalNode::Aggregate(LogicalNodePtr child,
                                      std::vector<std::string> group_by,
                                      std::vector<SelectItem> aggregates) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::Sort(LogicalNodePtr child,
                                 std::vector<OrderItem> order_by) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kSort;
  node->order_by = std::move(order_by);
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::Limit(LogicalNodePtr child, int64_t limit,
                                  int64_t offset) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kLimit;
  node->limit = limit;
  node->offset = offset;
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::ProbThreshold(LogicalNodePtr child,
                                          double min_prob, bool strict) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kProbThreshold;
  node->min_prob = min_prob;
  node->min_prob_strict = strict;
  node->children.push_back(std::move(child));
  return node;
}

LogicalNodePtr LogicalNode::SaveSnapshot(std::string path) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kSaveSnapshot;
  node->snapshot_path = std::move(path);
  return node;
}

LogicalNodePtr LogicalNode::LoadSnapshot(std::string path) {
  auto node = std::make_unique<LogicalNode>();
  node->op = LogicalOp::kLoadSnapshot;
  node->snapshot_path = std::move(path);
  return node;
}

std::string LogicalNode::Label() const {
  switch (op) {
    case LogicalOp::kScan:
      return "Scan(" + relation + ")";
    case LogicalOp::kFilter:
      return "Filter[" + (predicate ? predicate->ToString() : "true") + "]";
    case LogicalOp::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < columns.size(); ++i) {
        std::string part = columns[i];
        if (i < aliases.size() && !aliases[i].empty() &&
            aliases[i] != columns[i])
          part += " AS " + aliases[i];
        parts.push_back(std::move(part));
      }
      return "Project[" + tpdb::Join(parts, ", ") + "]";
    }
    case LogicalOp::kJoin: {
      std::vector<std::string> terms;
      for (const auto& [l, r] : join_on) terms.push_back(l + "=" + r);
      std::string label = std::string("Join[") + TPJoinKindName(join_kind) +
                          ", on " + tpdb::Join(terms, ",");
      if (strategy == JoinStrategy::kTemporalAlignment) label += ", TA";
      return label + "]";
    }
    case LogicalOp::kSetOp:
      return std::string("SetOp[") + SetOpKindName(set_op) + "]";
    case LogicalOp::kAggregate: {
      std::vector<std::string> parts;
      for (const SelectItem& item : aggregates)
        parts.push_back(item.ToString());
      std::string label = "Aggregate[" + tpdb::Join(parts, ", ");
      if (!group_by.empty())
        label += " BY " + tpdb::Join(group_by, ", ");
      return label + "]";
    }
    case LogicalOp::kSort: {
      std::vector<std::string> parts;
      for (const OrderItem& item : order_by)
        parts.push_back(item.column + (item.ascending ? " ASC" : " DESC"));
      return "Sort[" + tpdb::Join(parts, ", ") + "]";
    }
    case LogicalOp::kLimit: {
      std::string label = "Limit[" + std::to_string(limit);
      if (offset > 0) label += " OFFSET " + std::to_string(offset);
      return label + "]";
    }
    case LogicalOp::kProbThreshold: {
      char buf[80];
      if (approx_eps > 0.0) {
        std::snprintf(buf, sizeof(buf), "ProbThreshold[APPROX(%g, %g) %s %g]",
                      approx_eps, approx_delta, min_prob_strict ? ">" : ">=",
                      min_prob);
      } else {
        std::snprintf(buf, sizeof(buf), "ProbThreshold[%s %g]",
                      min_prob_strict ? ">" : ">=", min_prob);
      }
      return buf;
    }
    case LogicalOp::kSaveSnapshot:
      return "SaveSnapshot['" + snapshot_path + "']";
    case LogicalOp::kLoadSnapshot:
      return "LoadSnapshot['" + snapshot_path + "']";
  }
  return "?";
}

std::string LogicalNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Label();
  out += "\n";
  for (const LogicalNodePtr& child : children)
    out += child->ToString(indent + 1);
  return out;
}

namespace {

/// Lowers one select core: Scan → Join* → Filter → Aggregate|Project.
StatusOr<LogicalNodePtr> BuildCore(const SelectCore& core) {
  if (core.from.empty())
    return Status::InvalidArgument("query has no FROM relation");
  LogicalNodePtr node = LogicalNode::Scan(core.from);

  for (const JoinClause& join : core.joins) {
    if (join.on.empty())
      return Status::InvalidArgument("join against '" + join.relation +
                                     "' has an empty condition list");
    node = LogicalNode::Join(
        std::move(node), LogicalNode::Scan(join.relation), join.kind,
        join.on,
        join.using_ta ? JoinStrategy::kTemporalAlignment
                      : JoinStrategy::kLineageAware);
  }

  if (core.where)
    node = LogicalNode::Filter(std::move(node), core.where);

  std::vector<SelectItem> aggregates;
  std::vector<std::string> plain_columns;
  std::vector<std::string> plain_aliases;
  for (const SelectItem& item : core.items) {
    if (item.is_aggregate) {
      aggregates.push_back(item);
    } else {
      plain_columns.push_back(item.column);
      plain_aliases.push_back(item.alias);
    }
  }

  if (!aggregates.empty()) {
    // Grouped aggregation: the group columns are GROUP BY if given, else
    // the plain columns of the select list; plain columns must be grouped.
    std::vector<std::string> group_by =
        core.group_by.empty() ? plain_columns : core.group_by;
    for (const std::string& col : plain_columns) {
      if (std::find(group_by.begin(), group_by.end(), col) == group_by.end())
        return Status::InvalidArgument(
            "column '" + col +
            "' must appear in GROUP BY to be selected with aggregates");
    }
    // Carry select-list aliases over to the matching group columns.
    std::vector<std::string> group_aliases(group_by.size());
    for (size_t g = 0; g < group_by.size(); ++g) {
      for (size_t p = 0; p < plain_columns.size(); ++p) {
        if (plain_columns[p] == group_by[g]) {
          group_aliases[g] = plain_aliases[p];
          break;
        }
      }
    }
    node = LogicalNode::Aggregate(std::move(node), std::move(group_by),
                                  std::move(aggregates));
    node->group_aliases = std::move(group_aliases);
  } else if (!core.group_by.empty()) {
    return Status::InvalidArgument(
        "GROUP BY requires at least one aggregate in the select list");
  } else if (!plain_columns.empty()) {
    node = LogicalNode::Project(std::move(node), std::move(plain_columns),
                                std::move(plain_aliases));
  }
  return node;
}

}  // namespace

StatusOr<LogicalPlan> BuildLogicalPlan(const SelectStatement& stmt) {
  StatusOr<LogicalNodePtr> node = BuildCore(stmt.core);
  if (!node.ok()) return node.status();
  LogicalNodePtr root = std::move(*node);

  for (const auto& [kind, core] : stmt.set_ops) {
    StatusOr<LogicalNodePtr> other = BuildCore(core);
    if (!other.ok()) return other.status();
    root = LogicalNode::SetOp(std::move(root), std::move(*other), kind);
  }

  if (stmt.min_prob.has_value()) {
    root = LogicalNode::ProbThreshold(std::move(root), *stmt.min_prob,
                                      stmt.min_prob_strict);
    root->approx_eps = stmt.approx_eps;
    root->approx_delta = stmt.approx_delta;
  }
  if (!stmt.order_by.empty())
    root = LogicalNode::Sort(std::move(root), stmt.order_by);
  if (stmt.limit.has_value())
    root = LogicalNode::Limit(std::move(root), *stmt.limit, stmt.offset);

  LogicalPlan plan;
  plan.root = std::move(root);
  return plan;
}

StatusOr<LogicalPlan> BuildLogicalPlan(const ParsedStatement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return BuildLogicalPlan(stmt.select);
    case StatementKind::kSaveSnapshot: {
      LogicalPlan plan;
      plan.root = LogicalNode::SaveSnapshot(stmt.snapshot_path);
      return plan;
    }
    case StatementKind::kLoadSnapshot: {
      LogicalPlan plan;
      plan.root = LogicalNode::LoadSnapshot(stmt.snapshot_path);
      return plan;
    }
  }
  return Status::Internal("unhandled statement kind");
}

QueryBuilder::QueryBuilder(std::string from) {
  stmt_.core.from = std::move(from);
}

QueryBuilder& QueryBuilder::Select(std::vector<std::string> columns,
                                   std::vector<std::string> aliases) {
  if (!aliases.empty() && aliases.size() != columns.size()) {
    if (error_.ok())
      error_ = Status::InvalidArgument(
          "Select: aliases must match columns in length");
    return *this;
  }
  for (size_t i = 0; i < columns.size(); ++i)
    stmt_.core.items.push_back(SelectItem::Col(
        std::move(columns[i]), aliases.empty() ? "" : std::move(aliases[i])));
  return *this;
}

QueryBuilder& QueryBuilder::Aggregate(AggFn fn, std::string column,
                                      std::string alias) {
  stmt_.core.items.push_back(
      SelectItem::Agg(fn, std::move(column), std::move(alias)));
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(std::vector<std::string> columns) {
  stmt_.core.group_by = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Join(
    TPJoinKind kind, std::string relation,
    std::vector<std::pair<std::string, std::string>> on, bool using_ta) {
  JoinClause join;
  join.kind = kind;
  join.relation = std::move(relation);
  join.on = std::move(on);
  join.using_ta = using_ta;
  stmt_.core.joins.push_back(std::move(join));
  return *this;
}

QueryBuilder& QueryBuilder::Join(TPJoinKind kind, std::string relation,
                                 const std::string& column, bool using_ta) {
  return Join(kind, std::move(relation), {{column, column}}, using_ta);
}

QueryBuilder& QueryBuilder::Where(AstExprPtr predicate) {
  if (!predicate) return *this;
  stmt_.core.where = stmt_.core.where
                         ? AstAnd(stmt_.core.where, std::move(predicate))
                         : std::move(predicate);
  return *this;
}

QueryBuilder& QueryBuilder::Where(const std::string& predicate) {
  StatusOr<AstExprPtr> parsed = ParsePredicate(predicate);
  if (!parsed.ok()) {
    if (error_.ok()) error_ = parsed.status();
    return *this;
  }
  return Where(std::move(*parsed));
}

QueryBuilder& QueryBuilder::AddSetOp(SetOpKind kind,
                                     const QueryBuilder& other) {
  if (!other.error_.ok()) {
    if (error_.ok()) error_ = other.error_;
    return *this;
  }
  if (!other.stmt_.set_ops.empty() || !other.stmt_.order_by.empty() ||
      other.stmt_.limit.has_value() || other.stmt_.min_prob.has_value()) {
    if (error_.ok())
      error_ = Status::InvalidArgument(
          std::string(SetOpKindName(kind)) +
          ": the right-hand builder must be a bare select core");
    return *this;
  }
  stmt_.set_ops.emplace_back(kind, other.stmt_.core);
  return *this;
}

QueryBuilder& QueryBuilder::Union(const QueryBuilder& other) {
  return AddSetOp(SetOpKind::kUnion, other);
}
QueryBuilder& QueryBuilder::Intersect(const QueryBuilder& other) {
  return AddSetOp(SetOpKind::kIntersect, other);
}
QueryBuilder& QueryBuilder::Except(const QueryBuilder& other) {
  return AddSetOp(SetOpKind::kExcept, other);
}

QueryBuilder& QueryBuilder::OrderBy(std::string column, bool ascending) {
  stmt_.order_by.push_back(OrderItem{std::move(column), ascending});
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t limit, int64_t offset) {
  stmt_.limit = limit;
  stmt_.offset = offset;
  return *this;
}

QueryBuilder& QueryBuilder::WithMinProb(double min_prob, bool strict) {
  stmt_.min_prob = min_prob;
  stmt_.min_prob_strict = strict;
  return *this;
}

QueryBuilder& QueryBuilder::WithMinProbApprox(double min_prob, double eps,
                                              double delta, bool strict) {
  if (!(eps > 0.0 && eps < 1.0) || !(delta > 0.0 && delta < 1.0)) {
    if (error_.ok())
      error_ = Status::InvalidArgument("APPROX eps/delta must be in (0, 1)");
    return *this;
  }
  stmt_.min_prob = min_prob;
  stmt_.min_prob_strict = strict;
  stmt_.approx_eps = eps;
  stmt_.approx_delta = delta;
  return *this;
}

StatusOr<LogicalPlan> QueryBuilder::Build() const {
  if (!error_.ok()) return error_;
  return BuildLogicalPlan(stmt_);
}

}  // namespace tpdb
