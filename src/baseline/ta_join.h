// Temporal Alignment (TA) baseline for TP joins with negation — the only
// related approach the paper could adapt for this problem, and the system
// it is evaluated against (Section IV).
//
// The TA plan mirrors the description in the paper:
//   1. the conventional overlap join r ⟕_{θo∧θ} s is executed to obtain the
//      overlapping windows, and then executed a SECOND time to derive the
//      remaining unmatched windows (NJ executes it once — Fig. 5);
//   2. negating windows come from *normalization*: every r tuple is
//      replicated into fragments at the boundaries of all overlapping s
//      tuples with θ ignored, each fragment is then matched against s with
//      θ applied, and adjacent fragments with identical λs are coalesced
//      back (the replication NJ avoids — Fig. 6);
//   3. the union of the sub-results must eliminate the unmatched windows
//      that were computed twice (sort + dedup — Fig. 7);
//   4. inside a full TP join the optimizer is stuck with a nested-loop
//      overlap join (θ is not usable during alignment) — Fig. 7.
//
// The result is identical to the lineage-aware strategy (cross-checked by
// the test suite); only the work performed differs.
#ifndef TPDB_BASELINE_TA_JOIN_H_
#define TPDB_BASELINE_TA_JOIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tp/operators.h"
#include "tp/overlap_join.h"
#include "tp/plans.h"
#include "tp/tp_relation.h"
#include "tp/window.h"

namespace tpdb {

/// Computes the window sets with the TA strategy, up to `stage`.
/// `join_algorithm` selects the physical overlap join of step 1: inside a
/// full TP join TA is stuck with kNestedLoop (see header comment); the
/// stage-isolating benchmarks (Fig. 5/6) pass kPartitioned so that both
/// systems run the same conventional join and the measured difference is
/// the redundancy, as in the paper.
StatusOr<std::vector<TPWindow>> TAComputeWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    WindowStage stage,
    OverlapAlgorithm join_algorithm = OverlapAlgorithm::kPartitioned);

/// Step 2 of the TA plan in isolation: the *second* execution of the
/// conventional join plus the gap derivation (benchmark granularity for
/// Fig. 5's "TA executes it twice").
StatusOr<std::vector<TPWindow>> TAComputeUnmatchedWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    OverlapAlgorithm join_algorithm = OverlapAlgorithm::kPartitioned);

/// Step 3 of the TA plan in isolation: negating windows via normalization,
/// replication and coalescing (benchmark granularity for Fig. 6).
StatusOr<std::vector<TPWindow>> TAComputeNegatingWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta);

/// Full TP join with the TA strategy (used by TPJoin for
/// JoinStrategy::kTemporalAlignment).
StatusOr<TPRelation> TemporalAlignmentJoin(TPJoinKind kind,
                                           const TPRelation& r,
                                           const TPRelation& s,
                                           const JoinCondition& theta,
                                           std::string name);

/// Plan-node payload of a temporal-alignment join — the executor of a
/// PhysAlign node (api/physical_plan.h) builds one of these from the node.
/// Unlike the raw TemporalAlignmentJoin above it owns the full operator
/// contract: manager check, optional input validation, result naming.
struct TPAlignSpec {
  TPJoinKind kind = TPJoinKind::kInner;
  JoinCondition theta;
  bool validate_inputs = true;
  std::string result_name;  ///< "" = derived from the inputs
};

/// Runs the alignment join described by `spec` over (r, s).
StatusOr<TPRelation> TemporalAlignmentJoin(const TPAlignSpec& spec,
                                           const TPRelation& r,
                                           const TPRelation& s);

}  // namespace tpdb

#endif  // TPDB_BASELINE_TA_JOIN_H_
