// Temporal Alignment primitives (Dignös, Böhlen, Gamper, Jensen — TODS
// 2016), adapted for TP relations. These are the building blocks of the TA
// baseline the paper evaluates against.
//
// The primitives are θ-agnostic: a tuple is split at the boundaries of
// *every* overlapping tuple of the other relation ("when used, the θ
// condition of the TP join is ignored" — Section IV of the paper). That,
// plus the tuple replication they perform, is the source of TA's overhead
// that the lineage-aware windows avoid.
#ifndef TPDB_BASELINE_ALIGNMENT_H_
#define TPDB_BASELINE_ALIGNMENT_H_

#include <vector>

#include "temporal/interval.h"
#include "tp/tp_relation.h"

namespace tpdb {

/// One replicated sub-tuple produced by normalization: the piece of r tuple
/// `rid` between two adjacent boundaries.
struct AlignedFragment {
  int64_t rid = -1;
  Interval piece;
};

/// normalize(r; s): splits every r tuple at each starting/ending point of
/// every overlapping s tuple (θ ignored), replicating it into fragments
/// that exactly cover its interval. Within a fragment, the set of valid s
/// tuples is constant. Nested-loop over all (r, s) pairs, as in the
/// baseline's PostgreSQL plan.
std::vector<AlignedFragment> Normalize(const TPRelation& r,
                                       const TPRelation& s);

/// absorb/align(r; s): like Normalize but keeps, for each r tuple, only the
/// fragment boundaries — returned per tuple as sorted split points within
/// the tuple's interval (including its own endpoints).
std::vector<std::vector<TimePoint>> SplitPoints(const TPRelation& r,
                                                const TPRelation& s);

}  // namespace tpdb

#endif  // TPDB_BASELINE_ALIGNMENT_H_
