#include "baseline/alignment.h"

#include <algorithm>

namespace tpdb {

std::vector<std::vector<TimePoint>> SplitPoints(const TPRelation& r,
                                                const TPRelation& s) {
  std::vector<std::vector<TimePoint>> points(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    const Interval rt = r.tuple(i).interval;
    std::vector<TimePoint>& pts = points[i];
    pts.push_back(rt.start);
    pts.push_back(rt.end);
    // θ ignored: every overlapping s tuple contributes boundaries.
    for (size_t j = 0; j < s.size(); ++j) {
      const Interval st = s.tuple(j).interval;
      if (!rt.Overlaps(st)) continue;
      if (st.start > rt.start && st.start < rt.end) pts.push_back(st.start);
      if (st.end > rt.start && st.end < rt.end) pts.push_back(st.end);
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }
  return points;
}

std::vector<AlignedFragment> Normalize(const TPRelation& r,
                                       const TPRelation& s) {
  std::vector<AlignedFragment> fragments;
  const std::vector<std::vector<TimePoint>> points = SplitPoints(r, s);
  for (size_t i = 0; i < r.size(); ++i) {
    const std::vector<TimePoint>& pts = points[i];
    for (size_t k = 0; k + 1 < pts.size(); ++k) {
      fragments.push_back(AlignedFragment{
          static_cast<int64_t>(i), Interval(pts[k], pts[k + 1])});
    }
  }
  return fragments;
}

}  // namespace tpdb
