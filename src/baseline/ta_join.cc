#include "baseline/ta_join.h"

#include <algorithm>
#include <unordered_map>

#include "baseline/alignment.h"
#include "engine/scan.h"
#include "engine/sort.h"
#include "engine/temporal_outer_join.h"
#include "temporal/timeline.h"
#include "tp/concat.h"

namespace tpdb {

namespace {

/// Canonical total order used for the duplicate-eliminating union.
bool WindowBefore(const TPWindow& a, const TPWindow& b) {
  if (a.rid != b.rid) return a.rid < b.rid;
  if (a.window.start != b.window.start)
    return a.window.start < b.window.start;
  if (a.window.end != b.window.end) return a.window.end < b.window.end;
  if (a.cls != b.cls)
    return static_cast<int64_t>(a.cls) < static_cast<int64_t>(b.cls);
  if (a.lin_s != b.lin_s) return a.lin_s < b.lin_s;
  return CompareRows(a.fact_s, b.fact_s) < 0;
}

bool WindowEqual(const TPWindow& a, const TPWindow& b) {
  return a.rid == b.rid && a.cls == b.cls && a.window == b.window &&
         a.r_interval == b.r_interval && a.lin_r == b.lin_r &&
         a.lin_s == b.lin_s && CompareRows(a.fact_r, b.fact_r) == 0 &&
         CompareRows(a.fact_s, b.fact_s) == 0;
}

/// Step 2 of the TA plan: re-executes the conventional join and derives the
/// unmatched windows from its output (one gap computation per r tuple).
StatusOr<std::vector<TPWindow>> ComputeUnmatchedViaSecondJoin(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    OverlapAlgorithm join_algorithm) {
  StatusOr<std::vector<TPWindow>> rerun =
      ComputeWindows(r, s, theta, WindowStage::kOverlap, join_algorithm);
  if (!rerun.ok()) return rerun.status();

  // Group the overlap intervals per rid (the rerun output is grouped).
  std::vector<TPWindow> unmatched;
  size_t i = 0;
  while (i < rerun->size()) {
    const size_t begin = i;
    const int64_t rid = (*rerun)[i].rid;
    std::vector<Interval> covered;
    while (i < rerun->size() && (*rerun)[i].rid == rid) {
      if ((*rerun)[i].cls == WindowClass::kOverlapping)
        covered.push_back((*rerun)[i].window);
      ++i;
    }
    const TPWindow& proto = (*rerun)[begin];
    for (const Interval& gap : Gaps(proto.r_interval, covered)) {
      TPWindow w;
      w.cls = WindowClass::kUnmatched;
      w.rid = rid;
      w.fact_r = proto.fact_r;
      w.window = gap;
      w.r_interval = proto.r_interval;
      w.lin_r = proto.lin_r;
      unmatched.push_back(std::move(w));
    }
  }
  return unmatched;
}

/// Step 3 of the TA plan: negating windows via normalization (replication).
///
/// This follows the TODS alignment pipeline as it would be adapted for TP
/// negation:
///   (a) both relations are *normalized* per equality group: every tuple
///       is replicated into one sub-tuple per run between two adjacent
///       boundary points of the group (boundaries of r AND s tuples — the
///       general predicate part of θ cannot be used here, which is the
///       paper's "when used, the θ condition of the TP join is ignored");
///   (b) the replicated relations are joined on *identical* fragment
///       intervals (alignment makes interval equality the join condition)
///       with the full θ applied, and the matching s lineages are grouped
///       per (r tuple, fragment) into the λs disjunction;
///   (c) fragments split at boundaries that turned out θ-irrelevant are
///       coalesced back.
/// The materialized replication in (a) and the join + aggregation over it
/// in (b) are exactly the redundancies LAWAN's single sweep avoids.
std::vector<TPWindow> ComputeNegatingViaNormalization(
    const TPRelation& r, const TPRelation& s, const ThetaMatcher& matcher) {
  std::vector<TPWindow> negating;
  LineageManager* manager = r.manager();

  // Hash partition both relations on the equality keys.
  auto key_hash = [&matcher](const Row& fact, bool left) {
    uint64_t h = 0x51ed270b0f1a2cull;
    for (const auto& [ri, si] : matcher.keys())
      h = h * 0x9e3779b97f4a7c15ull + fact[left ? ri : si].Hash();
    return h;
  };
  struct Group {
    std::vector<uint32_t> r_rows;
    std::vector<uint32_t> s_rows;
  };
  std::unordered_map<uint64_t, Group> groups;
  for (size_t i = 0; i < r.size(); ++i)
    groups[key_hash(r.tuple(i).fact, /*left=*/true)].r_rows.push_back(
        static_cast<uint32_t>(i));
  for (size_t j = 0; j < s.size(); ++j)
    groups[key_hash(s.tuple(j).fact, /*left=*/false)].s_rows.push_back(
        static_cast<uint32_t>(j));

  // (a) Normalization: materialize both *replicated* relations as engine
  // tables, one row per (tuple, fragment) — this is the tuple replication
  // of the baseline, paid in real executor rows.
  // Normalized r layout: rid | r facts... | f_ts f_te | r_ts r_te | r_lin.
  // Normalized s layout: s facts... | f_ts f_te | s_lin.
  const int n_rf = static_cast<int>(r.fact_schema().num_columns());
  const int n_sf = static_cast<int>(s.fact_schema().num_columns());
  Table norm_r;
  norm_r.schema.AddColumn({"rid", DatumType::kInt64});
  for (const Column& c : r.fact_schema().columns())
    norm_r.schema.AddColumn(c);
  norm_r.schema.AddColumn({"f_ts", DatumType::kInt64});
  norm_r.schema.AddColumn({"f_te", DatumType::kInt64});
  norm_r.schema.AddColumn({"r_ts", DatumType::kInt64});
  norm_r.schema.AddColumn({"r_te", DatumType::kInt64});
  norm_r.schema.AddColumn({"r_lin", DatumType::kLineage});
  Table norm_s;
  for (const Column& c : s.fact_schema().columns())
    norm_s.schema.AddColumn(c);
  norm_s.schema.AddColumn({"f_ts", DatumType::kInt64});
  norm_s.schema.AddColumn({"f_te", DatumType::kInt64});
  norm_s.schema.AddColumn({"s_lin", DatumType::kLineage});

  std::vector<TimePoint> points;
  for (auto& [hash, group] : groups) {
    (void)hash;
    points.clear();
    for (const uint32_t i : group.r_rows) {
      points.push_back(r.tuple(i).interval.start);
      points.push_back(r.tuple(i).interval.end);
    }
    for (const uint32_t j : group.s_rows) {
      points.push_back(s.tuple(j).interval.start);
      points.push_back(s.tuple(j).interval.end);
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());

    for (const uint32_t i : group.r_rows) {
      const TPTuple& rt = r.tuple(i);
      auto it = std::lower_bound(points.begin(), points.end(),
                                 rt.interval.start);
      for (; it + 1 != points.end() && *it < rt.interval.end; ++it) {
        Row row;
        row.reserve(norm_r.schema.num_columns());
        row.push_back(Datum(static_cast<int64_t>(i)));
        row.insert(row.end(), rt.fact.begin(), rt.fact.end());
        row.push_back(Datum(*it));
        row.push_back(Datum(*(it + 1)));
        row.push_back(Datum(rt.interval.start));
        row.push_back(Datum(rt.interval.end));
        row.push_back(Datum(rt.lineage));
        norm_r.rows.push_back(std::move(row));
      }
    }
    for (const uint32_t j : group.s_rows) {
      const TPTuple& st = s.tuple(j);
      auto it = std::lower_bound(points.begin(), points.end(),
                                 st.interval.start);
      for (; it + 1 != points.end() && *it < st.interval.end; ++it) {
        Row row;
        row.reserve(norm_s.schema.num_columns());
        row.insert(row.end(), st.fact.begin(), st.fact.end());
        row.push_back(Datum(*it));
        row.push_back(Datum(*(it + 1)));
        row.push_back(Datum(st.lineage));
        norm_s.rows.push_back(std::move(row));
      }
    }
  }

  // (b) Join the replicas on identical fragment intervals (alignment turns
  // interval equality into a join key) plus the equality part of θ; the
  // general predicate runs as a residual.
  TemporalJoinSpec spec;
  for (const auto& [ri, si] : matcher.keys())
    spec.equi_keys.emplace_back(1 + ri, si);
  spec.equi_keys.emplace_back(1 + n_rf, n_sf);          // f_ts = f_ts
  spec.equi_keys.emplace_back(2 + n_rf, n_sf + 1);      // f_te = f_te
  spec.left_ts = 1 + n_rf;
  spec.left_te = 2 + n_rf;
  spec.right_ts = n_sf;
  spec.right_te = n_sf + 1;
  spec.join_type = JoinType::kInner;
  if (matcher.predicate()) {
    auto pred = matcher.predicate();
    const int left_width = static_cast<int>(norm_r.schema.num_columns());
    spec.residual = Fn(
        [pred, n_rf, n_sf, left_width](const Row& row) -> Datum {
          Row rf(row.begin() + 1, row.begin() + 1 + n_rf);
          Row sf(row.begin() + left_width,
                 row.begin() + left_width + n_sf);
          return Datum(static_cast<int64_t>(pred(rf, sf) ? 1 : 0));
        },
        "θ");
  }
  auto join = std::make_unique<TemporalOuterJoin>(
      std::make_unique<TableScan>(&norm_r),
      std::make_unique<TableScan>(&norm_s), spec);
  // Group the joined replicas per (rid, fragment) to build λs: sort, then
  // one streaming aggregation pass.
  Sort sorted(std::move(join),
              {{0, true}, {1 + n_rf, true}});
  const int out_slin = static_cast<int>(norm_r.schema.num_columns()) +
                       n_sf + 2;
  std::vector<TPWindow> raw;
  std::vector<LineageRef> lineages;
  sorted.Open();
  Row row;
  bool have_group = false;
  TPWindow current;
  auto flush = [&]() {
    if (!have_group) return;
    current.lin_s = manager->OrAll(lineages);
    raw.push_back(current);
    lineages.clear();
    have_group = false;
  };
  while (sorted.Next(&row)) {
    const int64_t rid = row[0].AsInt64();
    const Interval piece(row[1 + n_rf].AsInt64(), row[2 + n_rf].AsInt64());
    if (!have_group || current.rid != rid || current.window != piece) {
      flush();
      have_group = true;
      current = TPWindow();
      current.cls = WindowClass::kNegating;
      current.rid = rid;
      current.fact_r.assign(row.begin() + 1, row.begin() + 1 + n_rf);
      current.window = piece;
      current.r_interval =
          Interval(row[3 + n_rf].AsInt64(), row[4 + n_rf].AsInt64());
      current.lin_r = row[5 + n_rf].AsLineage();
    }
    lineages.push_back(row[out_slin].AsLineage());
  }
  flush();
  sorted.Close();

  // Coalesce adjacent fragments with identical λs (the fragments were split
  // at θ-failing boundaries too; hash-consing makes λs comparable by id).
  std::sort(raw.begin(), raw.end(), WindowBefore);
  for (TPWindow& w : raw) {
    if (!negating.empty()) {
      TPWindow& prev = negating.back();
      if (prev.rid == w.rid && prev.lin_s == w.lin_s &&
          prev.window.end == w.window.start) {
        prev.window.end = w.window.end;
        continue;
      }
    }
    negating.push_back(std::move(w));
  }
  return negating;
}

/// Output formation shared by all TA joins (mirrors the NJ EmitWindows).
Status AppendWindowOutputs(const std::vector<TPWindow>& windows,
                           bool keep_overlapping, bool swapped,
                           bool drop_other_facts, int other_fact_count,
                           bool semi_concat, LineageManager* manager,
                           TPRelation* result) {
  for (const TPWindow& w : windows) {
    if (w.cls == WindowClass::kOverlapping && !keep_overlapping) continue;
    const LineageRef lineage =
        semi_concat && w.cls == WindowClass::kNegating
            ? manager->And(w.lin_r, w.lin_s)
            : ConcatWindowLineage(manager, w.cls, w.lin_r, w.lin_s);
    const Row& fact_s = w.fact_s;
    Row other = fact_s.empty() ? NullRow(other_fact_count) : fact_s;
    Row fact;
    if (drop_other_facts) {
      fact = w.fact_r;
    } else if (!swapped) {
      fact = ConcatRows(w.fact_r, other);
    } else {
      fact = ConcatRows(other, w.fact_r);
    }
    TPDB_RETURN_IF_ERROR(
        result->AppendDerived(std::move(fact), w.window, lineage));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<TPWindow>> TAComputeUnmatchedWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    OverlapAlgorithm join_algorithm) {
  return ComputeUnmatchedViaSecondJoin(r, s, theta, join_algorithm);
}

StatusOr<std::vector<TPWindow>> TAComputeNegatingWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta) {
  StatusOr<ThetaMatcher> matcher =
      ThetaMatcher::Make(theta, r.fact_schema(), s.fact_schema());
  if (!matcher.ok()) return matcher.status();
  return ComputeNegatingViaNormalization(r, s, *matcher);
}

StatusOr<std::vector<TPWindow>> TAComputeWindows(
    const TPRelation& r, const TPRelation& s, const JoinCondition& theta,
    WindowStage stage, OverlapAlgorithm join_algorithm) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");

  // Step 1: the conventional overlap join (first execution).
  StatusOr<std::vector<TPWindow>> windows =
      ComputeWindows(r, s, theta, WindowStage::kOverlap, join_algorithm);
  if (!windows.ok()) return windows.status();
  if (stage == WindowStage::kOverlap) return windows;

  // Step 2: second execution of the join, for the unmatched windows.
  StatusOr<std::vector<TPWindow>> unmatched =
      ComputeUnmatchedViaSecondJoin(r, s, theta, join_algorithm);
  if (!unmatched.ok()) return unmatched.status();
  windows->insert(windows->end(), unmatched->begin(), unmatched->end());

  // Step 3: negating windows via normalization.
  if (stage == WindowStage::kWuon) {
    StatusOr<ThetaMatcher> matcher =
        ThetaMatcher::Make(theta, r.fact_schema(), s.fact_schema());
    if (!matcher.ok()) return matcher.status();
    std::vector<TPWindow> negating =
        ComputeNegatingViaNormalization(r, s, *matcher);
    windows->insert(windows->end(),
                    std::make_move_iterator(negating.begin()),
                    std::make_move_iterator(negating.end()));
  }

  // Step 4: duplicate-eliminating union (the full-interval unmatched
  // windows were produced by both executions of the join).
  std::sort(windows->begin(), windows->end(), WindowBefore);
  windows->erase(
      std::unique(windows->begin(), windows->end(), WindowEqual),
      windows->end());
  return windows;
}

StatusOr<TPRelation> TemporalAlignmentJoin(TPJoinKind kind,
                                           const TPRelation& r,
                                           const TPRelation& s,
                                           const JoinCondition& theta,
                                           std::string name) {
  LineageManager* manager = r.manager();
  TPRelation result(std::move(name),
                    TPJoinOutputSchema(kind, r.fact_schema(), s.fact_schema()),
                    manager);
  const WindowStage stage =
      kind == TPJoinKind::kInner ? WindowStage::kOverlap : WindowStage::kWuon;
  // Inside the full TP join, TA cannot use θ to pick a better physical
  // join: the optimizer falls back to a nested loop (see header).
  const OverlapAlgorithm algorithm = OverlapAlgorithm::kNestedLoop;

  if (kind != TPJoinKind::kRightOuter) {
    StatusOr<std::vector<TPWindow>> windows =
        TAComputeWindows(r, s, theta, stage, algorithm);
    if (!windows.ok()) return windows.status();
    std::vector<TPWindow> kept;
    kept.reserve(windows->size());
    for (TPWindow& w : *windows) {
      if (kind == TPJoinKind::kInner && w.cls != WindowClass::kOverlapping)
        continue;
      if (kind == TPJoinKind::kAnti && w.cls == WindowClass::kOverlapping)
        continue;
      if (kind == TPJoinKind::kSemi && w.cls != WindowClass::kNegating)
        continue;
      kept.push_back(std::move(w));
    }
    const bool facts_only =
        kind == TPJoinKind::kAnti || kind == TPJoinKind::kSemi;
    TPDB_RETURN_IF_ERROR(AppendWindowOutputs(
        kept, /*keep_overlapping=*/kind != TPJoinKind::kAnti,
        /*swapped=*/false,
        /*drop_other_facts=*/facts_only,
        static_cast<int>(s.fact_schema().num_columns()),
        /*semi_concat=*/kind == TPJoinKind::kSemi, manager, &result));
  }

  if (kind == TPJoinKind::kRightOuter || kind == TPJoinKind::kFullOuter) {
    StatusOr<std::vector<TPWindow>> windows = TAComputeWindows(
        s, r, SwapJoinCondition(theta), stage, algorithm);
    if (!windows.ok()) return windows.status();
    TPDB_RETURN_IF_ERROR(AppendWindowOutputs(
        *windows,
        /*keep_overlapping=*/kind == TPJoinKind::kRightOuter,
        /*swapped=*/true, /*drop_other_facts=*/false,
        static_cast<int>(r.fact_schema().num_columns()),
        /*semi_concat=*/false, manager, &result));
  }

  return result;
}

StatusOr<TPRelation> TemporalAlignmentJoin(const TPAlignSpec& spec,
                                           const TPRelation& r,
                                           const TPRelation& s) {
  if (r.manager() != s.manager())
    return Status::InvalidArgument(
        "TP relations must share a LineageManager");
  if (spec.validate_inputs) {
    TPDB_RETURN_IF_ERROR(r.Validate());
    TPDB_RETURN_IF_ERROR(s.Validate());
  }
  std::string name = spec.result_name;
  if (name.empty())
    name = r.name() + "_" + TPJoinKindName(spec.kind) + "_" + s.name();
  return TemporalAlignmentJoin(spec.kind, r, s, spec.theta, std::move(name));
}

}  // namespace tpdb
