#include "server/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "engine/vector/column_batch.h"
#include "exec/thread_pool.h"
#include "lineage/probability.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/socket.h"
#include "storage/batch_codec.h"
#include "storage/bytes.h"
#include "tp/tp_relation.h"

namespace tpdb::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Wire-server metrics: admission, traffic volume, and the per-request
/// latency split between pool queue wait and actual execution.
struct ServerMetrics {
  obs::Gauge* active_connections = obs::MetricsRegistry::Default().gauge(
      "tpdb_server_active_connections", "server",
      "Currently open client connections.");
  obs::Counter* connections = obs::MetricsRegistry::Default().counter(
      "tpdb_server_connections_total", "server",
      "Client connections accepted.");
  obs::Counter* conn_rejects = obs::MetricsRegistry::Default().counter(
      "tpdb_server_conn_rejects_total", "server",
      "Connections rejected at accept (admission control).");
  obs::Counter* query_rejects = obs::MetricsRegistry::Default().counter(
      "tpdb_server_query_rejects_total", "server",
      "Queries rejected by admission control or shutdown.");
  obs::Counter* requests = obs::MetricsRegistry::Default().counter(
      "tpdb_server_requests_total", "server",
      "Query/Prepare/Explain/Append/Trace requests dispatched to the pool.");
  obs::Counter* protocol_errors = obs::MetricsRegistry::Default().counter(
      "tpdb_server_protocol_errors_total", "server",
      "Malformed frames, bad handshakes and CRC mismatches.");
  obs::Counter* bytes_received = obs::MetricsRegistry::Default().counter(
      "tpdb_server_bytes_received_total", "server",
      "Bytes read off client sockets.");
  obs::Counter* bytes_sent = obs::MetricsRegistry::Default().counter(
      "tpdb_server_bytes_sent_total", "server",
      "Bytes written to client sockets.");
  obs::Histogram* queue_wait_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_server_queue_wait_us", "server",
      "Dispatch-to-worker-pickup wait in microseconds.");
  obs::Histogram* execute_us = obs::MetricsRegistry::Default().histogram(
      "tpdb_server_execute_us", "server",
      "Worker-side request execution time in microseconds.");

  static const ServerMetrics& Get() {
    static const ServerMetrics m;
    return m;
  }
};

/// Sentinel epoll ids of the two non-connection fds.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

// Every result carries the shared kProbColumn ("_prob") probability column
// (lineage formulas stay server-side; the client sees Pr[λ] instead).

/// Rough in-memory footprint of a row, for per-session accounting.
size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Datum& d : row) {
    bytes += sizeof(Datum);
    if (d.type() == DatumType::kString) bytes += d.AsString().size();
  }
  return bytes;
}

}  // namespace

/// A materialized query result in wire shape: the flattened fact columns
/// plus _ts/_te and the exact tuple probability.
struct WireResult {
  Schema schema;
  std::vector<Row> rows;
  size_t approx_bytes = 0;
};

/// What a pool worker hands back to the reactor.
struct QueryOutcome {
  uint64_t query_id = 0;
  MsgType kind = MsgType::kQuery;
  Status status;
  std::shared_ptr<WireResult> result;  // kQuery, on success
  std::string text;                    // kPrepare / kExplain, on success
  uint64_t appended_rows = 0;          // kAppend, on success
};

/// Per-connection state. Every field except the mailbox (`mu`/`outcome`)
/// and `cancel` is owned by the reactor thread; a pool worker touches only
/// those two and the session (one query at a time, so never concurrently
/// with another worker).
struct Connection {
  enum class State { kHandshake, kReady, kExecuting, kStreaming };

  Connection(uint64_t id_in, int fd_in, size_t max_frame_bytes,
             TPDatabase* db, const SessionOptions& session_options)
      : id(id_in),
        fd(fd_in),
        reader(max_frame_bytes),
        session(db, session_options) {}

  const uint64_t id;
  int fd;
  State state = State::kHandshake;
  FrameReader reader;
  Session session;

  std::string outbuf;
  size_t outoff = 0;
  bool want_close = false;
  bool closed = false;
  uint32_t epoll_mask = 0;

  // Streaming cursor (reactor-only).
  std::shared_ptr<WireResult> result;
  size_t next_row = 0;
  uint64_t query_id = 0;

  /// Set by the reactor on a matching Cancel frame; read by the worker (to
  /// skip execution of still-queued queries) and by the stream pump.
  std::atomic<bool> cancel{false};

  // Mailbox: a worker deposits, the reactor collects after a wake.
  std::mutex mu;
  std::unique_ptr<QueryOutcome> outcome;

  size_t pending_out() const { return outbuf.size() - outoff; }
};

std::string ServerStats::ToString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "server:\n"
      "  uptime               %.1f s\n"
      "  connections          %llu active, %llu accepted, %llu rejected\n"
      "  handshakes ok        %llu\n"
      "  queries              %llu active, %llu ok, %llu failed, "
      "%llu rejected, %llu cancelled\n"
      "  ready queue depth    %llu\n"
      "  batches sent         %llu\n"
      "  bytes                %llu sent, %llu received\n"
      "  protocol errors      %llu\n",
      uptime_seconds, static_cast<unsigned long long>(active_connections),
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(connections_rejected),
      static_cast<unsigned long long>(handshakes_ok),
      static_cast<unsigned long long>(active_queries),
      static_cast<unsigned long long>(queries_ok),
      static_cast<unsigned long long>(queries_failed),
      static_cast<unsigned long long>(queries_rejected),
      static_cast<unsigned long long>(queries_cancelled),
      static_cast<unsigned long long>(ready_queue_depth),
      static_cast<unsigned long long>(batches_sent),
      static_cast<unsigned long long>(bytes_sent),
      static_cast<unsigned long long>(bytes_received),
      static_cast<unsigned long long>(protocol_errors));
  return buf;
}

Server::Server(TPDatabase* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  TPDB_CHECK(db_ != nullptr);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if constexpr (std::endian::native != std::endian::little)
    return Status::Internal(
        "the wire protocol requires a little-endian host (like the "
        "snapshot format)");
  if (started_) return Status::Internal("server already started");

  StatusOr<int> listen = ListenOn(options_.host, options_.port, 128);
  if (!listen.ok()) return listen.status();
  listen_fd_ = *listen;
  StatusOr<uint16_t> port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status st =
        Status::IOError(std::string("epoll/eventfd: ") + std::strerror(errno));
    CloseFd(listen_fd_);
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  shutting_down_.store(false);
  drain_started_ = false;
  started_ = true;
  start_time_ = Clock::now();
  reactor_ = std::thread(&Server::ReactorLoop, this);
  TPDB_LOG(INFO) << "server listening on " << options_.host << ":" << port_;
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_) return;
  shutting_down_.store(true);
  Wake();
  reactor_.join();
  // The reactor exits only when every connection is gone; wait for any
  // straggler workers (their deposits onto closed connections are ignored)
  // so no pool task outlives this object.
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
  }
  CloseFd(epoll_fd_);
  CloseFd(wake_fd_);
  epoll_fd_ = wake_fd_ = -1;
  started_ = false;
  TPDB_LOG(INFO) << "server on port " << port_ << " shut down";
}

ServerStats Server::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = stats_;
  }
  stats.active_connections = active_conns_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    stats.active_queries = inflight_;
  }
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    stats.ready_queue_depth = ready_.size();
  }
  if (started_)
    stats.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
  return stats;
}

void Server::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

void Server::ReactorLoop() {
  std::vector<epoll_event> events(64);
  Clock::time_point grace_deadline = Clock::time_point::max();
  for (;;) {
    if (shutting_down_.load(std::memory_order_relaxed) && !drain_started_) {
      BeginShutdownDrain();
      grace_deadline = Clock::now() + std::chrono::milliseconds(
                                          options_.shutdown_grace_ms);
    }
    if (drain_started_) {
      size_t inflight;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight = inflight_;
      }
      if (conns_.empty() && inflight == 0) break;
      if (Clock::now() >= grace_deadline) {
        // Grace expired: force-close the stragglers. Workers still running
        // deposit into closed connections and are waited for in Shutdown.
        while (!conns_.empty()) CloseConn(conns_.begin()->second);
        break;
      }
    }
    const int timeout_ms = drain_started_ ? 50 : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        if (!drain_started_) HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rc =
            ::read(wake_fd_, &drained, sizeof(drained));
        HandleOutcomes();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this round
      const std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      if (!conn->closed && (events[i].events & EPOLLOUT))
        HandleWritable(conn);
    }
    // A worker may have deposited between epoll wakeups.
    HandleOutcomes();
  }
}

void Server::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error — try again on epoll
    }
    if (conns_.size() >= options_.max_connections) {
      // Admission: a best-effort Error frame, then close. Count the
      // rejection before sending — the send is what unblocks the client,
      // so counting after it would let a Stats() reader observe the
      // rejection with a stale counter.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_rejected;
      }
      ServerMetrics::Get().conn_rejects->Add();
      std::string out;
      AppendFrame(MsgType::kError,
                  BuildError({0, StatusCode::kResourceExhausted,
                              "connection limit of " +
                                  std::to_string(options_.max_connections) +
                                  " reached"}),
                  &out);
      [[maybe_unused]] const ssize_t rc =
          ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
      CloseFd(fd);
      continue;
    }
    (void)SetNoDelay(fd).ok();
    const uint64_t id = next_conn_id_++;
    conns_.emplace(id, std::make_shared<Connection>(
                           id, fd, options_.max_frame_bytes, db_,
                           options_.session));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[id]->epoll_mask = EPOLLIN;
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().connections->Add();
    ServerMetrics::Get().active_connections->Add(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  bool peer_eof = false;
  uint64_t received = 0;
  for (;;) {
    const ssize_t rc = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (rc > 0) {
      conn->reader.Append(buf, static_cast<size_t>(rc));
      received += static_cast<uint64_t>(rc);
      continue;
    }
    if (rc == 0) {  // orderly peer shutdown — handle buffered frames first
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);
    return;
  }
  if (received > 0) {
    ServerMetrics::Get().bytes_received->Add(received);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_received += received;
  }
  Frame frame;
  bool have = false;
  for (;;) {
    const Status st = conn->reader.Next(&frame, &have);
    if (!st.ok()) {
      // Oversized prefix or CRC mismatch: the stream cannot be
      // resynchronized. Error frame, then close once it flushes.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServerMetrics::Get().protocol_errors->Add();
      SendError(conn, 0, st);
      conn->want_close = true;
      break;
    }
    if (!have) break;
    HandleFrame(conn, frame);
    if (conn->closed || conn->want_close) break;
  }
  if (peer_eof && !conn->closed) conn->want_close = true;
  if (!conn->closed) FlushOut(conn);
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const Frame& frame) {
  // -- Handshake ---------------------------------------------------------
  if (conn->state == Connection::State::kHandshake) {
    HelloMsg hello;
    Status st = frame.type == MsgType::kHello
                    ? ParseHello(frame.payload, &hello)
                    : Status::InvalidArgument(
                          "protocol error: expected Hello as first frame");
    if (st.ok() && hello.magic != kProtocolMagic)
      st = Status::InvalidArgument("protocol error: bad magic (not a tpdb "
                                   "client)");
    if (st.ok() && hello.version != kProtocolVersion)
      st = Status::InvalidArgument(
          "protocol error: unsupported protocol version " +
          std::to_string(hello.version) + " (server speaks " +
          std::to_string(kProtocolVersion) + ")");
    if (st.ok() && !options_.auth_token.empty() &&
        hello.auth_token != options_.auth_token)
      st = Status::InvalidArgument("authentication failed: bad token");
    if (!st.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServerMetrics::Get().protocol_errors->Add();
      SendError(conn, 0, st);
      conn->want_close = true;
      return;
    }
    AppendFrame(MsgType::kHelloOk,
                BuildHelloOk({kProtocolVersion, "tpdb server, protocol v" +
                                                    std::to_string(
                                                        kProtocolVersion)}),
                &conn->outbuf);
    conn->state = Connection::State::kReady;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.handshakes_ok;
    return;
  }

  switch (frame.type) {
    case MsgType::kQuery:
    case MsgType::kPrepare:
    case MsgType::kExplain:
    case MsgType::kTraceQuery: {
      QueryMsg msg;
      const Status st = ParseQuery(frame.payload, &msg);
      if (!st.ok()) {
        SendError(conn, 0, st);
        conn->want_close = true;
        return;
      }
      if (conn->state != Connection::State::kReady) {
        // One query at a time per connection; the connection survives.
        SendError(conn, msg.query_id,
                  Status::InvalidArgument(
                      "another query is already in flight on this session"));
        return;
      }
      DispatchQuery(conn, frame.type, msg.query_id, std::move(msg.sql));
      return;
    }
    case MsgType::kAppend: {
      AppendMsg msg;
      const Status st = ParseAppend(frame.payload, &msg);
      if (!st.ok()) {
        SendError(conn, 0, st);
        conn->want_close = true;
        return;
      }
      if (conn->state != Connection::State::kReady) {
        SendError(conn, msg.query_id,
                  Status::InvalidArgument(
                      "another query is already in flight on this session"));
        return;
      }
      DispatchAppend(conn, std::move(msg));
      return;
    }
    case MsgType::kStats: {
      StatsMsg msg;
      const Status st = ParseStats(frame.payload, &msg);
      if (!st.ok()) {
        SendError(conn, 0, st);
        conn->want_close = true;
        return;
      }
      if (conn->state != Connection::State::kReady) {
        SendError(conn, msg.query_id,
                  Status::InvalidArgument(
                      "another query is already in flight on this session"));
        return;
      }
      // Cheap enough to answer from the reactor: a shared catalog lock and
      // a walk over the relations' counters, no query execution.
      AppendFrame(MsgType::kPlanText,
                  BuildPlanText({msg.query_id, db_->Stats().ToString() +
                                                   Stats().ToString()}),
                  &conn->outbuf);
      return;
    }
    case MsgType::kMetrics: {
      MetricsMsg msg;
      const Status st = ParseMetrics(frame.payload, &msg);
      if (!st.ok()) {
        SendError(conn, 0, st);
        conn->want_close = true;
        return;
      }
      if (conn->state != Connection::State::kReady) {
        SendError(conn, msg.query_id,
                  Status::InvalidArgument(
                      "another query is already in flight on this session"));
        return;
      }
      // Rendering walks the registry under its mutex and merges counter
      // shards — microseconds of work, answered inline like kStats.
      std::string text =
          msg.format == MetricsFormat::kJson
              ? obs::MetricsRegistry::Default().RenderJson()
              : obs::MetricsRegistry::Default().RenderPrometheus();
      AppendFrame(MsgType::kPlanText,
                  BuildPlanText({msg.query_id, std::move(text)}),
                  &conn->outbuf);
      return;
    }
    case MsgType::kCancel: {
      CancelMsg msg;
      if (!ParseCancel(frame.payload, &msg).ok()) return;  // advisory
      if ((conn->state == Connection::State::kExecuting ||
           conn->state == Connection::State::kStreaming) &&
          msg.query_id == conn->query_id)
        conn->cancel.store(true);
      return;
    }
    case MsgType::kClose:
      CloseAfterFlush(conn, "bye");
      return;
    default: {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      ServerMetrics::Get().protocol_errors->Add();
      SendError(conn, 0,
                Status::InvalidArgument(
                    "protocol error: unexpected message type " +
                    std::to_string(static_cast<int>(frame.type))));
      conn->want_close = true;
      return;
    }
  }
}

bool Server::AdmitWork(const std::shared_ptr<Connection>& conn,
                       uint64_t query_id) {
  if (shutting_down_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_rejected;
    }
    ServerMetrics::Get().query_rejects->Add();
    SendError(conn, query_id,
              Status::ResourceExhausted("server is shutting down"));
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (options_.max_concurrent_queries != 0 &&
        inflight_ >= options_.max_concurrent_queries) {
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.queries_rejected;
      }
      ServerMetrics::Get().query_rejects->Add();
      SendError(conn, query_id,
                Status::ResourceExhausted(
                    "concurrent query limit of " +
                    std::to_string(options_.max_concurrent_queries) +
                    " reached"));
      return false;
    }
    ++inflight_;
  }
  conn->state = Connection::State::kExecuting;
  conn->query_id = query_id;
  conn->cancel.store(false);
  ServerMetrics::Get().requests->Add();
  return true;
}

void Server::DispatchQuery(const std::shared_ptr<Connection>& conn,
                           MsgType kind, uint64_t query_id, std::string sql) {
  if (!AdmitWork(conn, query_id)) return;
  const uint64_t dispatch_us = obs::NowUs();
  ThreadPool::Default()->Submit(
      [this, conn, kind, query_id, dispatch_us, sql = std::move(sql)]() mutable {
        ServerMetrics::Get().queue_wait_us->Record(obs::NowUs() - dispatch_us);
        const obs::ScopedLatencyTimer timer(ServerMetrics::Get().execute_us);
        RunQuery(conn, kind, query_id, std::move(sql));
      });
}

void Server::DispatchAppend(const std::shared_ptr<Connection>& conn,
                            AppendMsg msg) {
  if (!AdmitWork(conn, msg.query_id)) return;
  const uint64_t dispatch_us = obs::NowUs();
  ThreadPool::Default()->Submit(
      [this, conn, dispatch_us, msg = std::move(msg)]() mutable {
        ServerMetrics::Get().queue_wait_us->Record(obs::NowUs() - dispatch_us);
        const obs::ScopedLatencyTimer timer(ServerMetrics::Get().execute_us);
        RunAppend(conn, std::move(msg));
      });
}

void Server::RunQuery(std::shared_ptr<Connection> conn, MsgType kind,
                      uint64_t query_id, std::string sql) {
  auto outcome = std::make_unique<QueryOutcome>();
  outcome->query_id = query_id;
  outcome->kind = kind;

  if (conn->cancel.load()) {
    outcome->status = Status::Internal("query cancelled by client");
  } else if (kind == MsgType::kPrepare) {
    // Parse + plan only: validates the statement and returns the logical
    // tree without touching any data.
    StatusOr<LogicalPlan> plan = conn->session.database()->Plan(sql);
    if (plan.ok())
      outcome->text = plan->ToString();
    else
      outcome->status = plan.status();
  } else if (kind == MsgType::kExplain) {
    StatusOr<std::string> text = conn->session.Explain(sql);
    if (text.ok())
      outcome->text = std::move(*text);
    else
      outcome->status = text.status();
  } else if (kind == MsgType::kTraceQuery) {
    // Traced execution: the client's query id becomes the trace id, and
    // the reply is the chrome://tracing artifact with the Explain
    // rendering embedded (both views come from the same NodeStats).
    StatusOr<Session::TraceResult> traced =
        conn->session.Trace(sql, query_id);
    if (traced.ok())
      outcome->text = traced->trace.ToChromeJson(traced->physical_plan);
    else
      outcome->status = traced.status();
  } else {
    StatusOr<TPRelation> result = conn->session.Query(sql);
    if (!result.ok()) {
      outcome->status = result.status();
    } else {
      auto wire = std::make_shared<WireResult>();
      wire->schema = result->fact_schema();
      wire->schema.AddColumn({kTsColumn, DatumType::kInt64});
      wire->schema.AddColumn({kTeColumn, DatumType::kInt64});
      wire->schema.AddColumn({kProbColumn, DatumType::kDouble});
      ProbabilityEngine engine(result->manager());
      wire->rows.reserve(result->size());
      const size_t num_cols = wire->schema.num_columns();
      for (const TPTuple& t : result->tuples()) {
        Row row;
        row.reserve(num_cols);
        for (const Datum& d : t.fact) row.push_back(d);
        row.push_back(Datum(static_cast<int64_t>(t.interval.start)));
        row.push_back(Datum(static_cast<int64_t>(t.interval.end)));
        row.push_back(Datum(engine.Probability(t.lineage)));
        wire->approx_bytes += ApproxRowBytes(row);
        wire->rows.push_back(std::move(row));
      }
      if (options_.per_session_result_bytes != 0 &&
          wire->approx_bytes > options_.per_session_result_bytes) {
        outcome->status = Status::ResourceExhausted(
            "result of ~" + std::to_string(wire->approx_bytes) +
            " bytes exceeds the per-session memory limit of " +
            std::to_string(options_.per_session_result_bytes) + " bytes");
      } else {
        outcome->result = std::move(wire);
      }
    }
  }

  DepositOutcome(conn, std::move(outcome));
}

void Server::RunAppend(std::shared_ptr<Connection> conn, AppendMsg msg) {
  auto outcome = std::make_unique<QueryOutcome>();
  outcome->query_id = msg.query_id;
  outcome->kind = MsgType::kAppend;

  if (conn->cancel.load()) {
    outcome->status = Status::Internal("query cancelled by client");
  } else {
    std::vector<TPDatabase::AppendRow> rows;
    rows.reserve(msg.rows.size());
    for (AppendRowMsg& row : msg.rows)
      rows.push_back({std::move(row.fact), Interval(row.ts, row.te), row.prob,
                      std::move(row.var_name)});
    outcome->status =
        conn->session.database()->Append(msg.relation, std::move(rows));
    if (outcome->status.ok()) outcome->appended_rows = msg.rows.size();
  }
  DepositOutcome(conn, std::move(outcome));
}

void Server::DepositOutcome(const std::shared_ptr<Connection>& conn,
                            std::unique_ptr<QueryOutcome> outcome) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->outcome = std::move(outcome);
  }
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ready_.push_back(conn->id);
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
  Wake();
}

void Server::HandleOutcomes() {
  std::vector<uint64_t> ready;
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ready.swap(ready_);
  }
  for (const uint64_t id : ready) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // connection closed mid-query
    const std::shared_ptr<Connection> conn = it->second;
    std::unique_ptr<QueryOutcome> outcome;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      outcome = std::move(conn->outcome);
    }
    if (!outcome || conn->state != Connection::State::kExecuting) continue;

    if (!outcome->status.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (conn->cancel.load())
          ++stats_.queries_cancelled;
        else
          ++stats_.queries_failed;
      }
      SendError(conn, outcome->query_id, outcome->status);
      conn->state = Connection::State::kReady;
    } else if (outcome->kind == MsgType::kAppend) {
      AppendFrame(MsgType::kDone,
                  BuildDone({outcome->query_id, outcome->appended_rows}),
                  &conn->outbuf);
      conn->state = Connection::State::kReady;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_ok;
    } else if (outcome->kind != MsgType::kQuery) {
      AppendFrame(MsgType::kPlanText,
                  BuildPlanText({outcome->query_id, std::move(outcome->text)}),
                  &conn->outbuf);
      conn->state = Connection::State::kReady;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_ok;
    } else if (conn->cancel.load()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.queries_cancelled;
      }
      SendError(conn, outcome->query_id,
                Status::Internal("query cancelled by client"));
      conn->state = Connection::State::kReady;
    } else {
      AppendFrame(MsgType::kSchema,
                  BuildSchema({outcome->query_id, outcome->result->schema}),
                  &conn->outbuf);
      conn->result = std::move(outcome->result);
      conn->next_row = 0;
      conn->state = Connection::State::kStreaming;
    }
    if (conn->state == Connection::State::kReady && drain_started_)
      conn->want_close = true;
    FlushOut(conn);
  }
}

void Server::PumpStream(const std::shared_ptr<Connection>& conn) {
  while (conn->state == Connection::State::kStreaming &&
         conn->pending_out() < options_.send_high_watermark) {
    if (conn->cancel.load()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.queries_cancelled;
      }
      SendError(conn, conn->query_id,
                Status::Internal("query cancelled by client"));
      conn->state = Connection::State::kReady;
      conn->result.reset();
      break;
    }
    const std::vector<Row>& rows = conn->result->rows;
    if (conn->next_row >= rows.size()) {
      AppendFrame(
          MsgType::kDone,
          BuildDone({conn->query_id, static_cast<uint64_t>(rows.size())}),
          &conn->outbuf);
      conn->state = Connection::State::kReady;
      conn->result.reset();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_ok;
      break;
    }
    const size_t end =
        std::min(conn->next_row + options_.batch_rows, rows.size());
    vec::ColumnBatch batch;
    vec::TransposeRows(rows, conn->next_row, end, &batch);
    storage::ByteWriter w;
    const Status st = storage::EncodeColumnBatch(conn->result->schema, batch,
                                                 /*ids=*/nullptr, &w);
    if (!st.ok()) {
      SendError(conn, conn->query_id, st);
      conn->state = Connection::State::kReady;
      conn->result.reset();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries_failed;
      break;
    }
    std::string payload = BuildBatchPrefix(conn->query_id);
    payload += w.buffer();
    AppendFrame(MsgType::kBatch, payload, &conn->outbuf);
    conn->next_row = end;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_sent;
  }
  if (conn->state == Connection::State::kReady && drain_started_)
    conn->want_close = true;
}

void Server::HandleWritable(const std::shared_ptr<Connection>& conn) {
  FlushOut(conn);
}

void Server::FlushOut(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  for (;;) {
    while (conn->pending_out() > 0) {
      const ssize_t rc =
          ::send(conn->fd, conn->outbuf.data() + conn->outoff,
                 conn->pending_out(), MSG_NOSIGNAL);
      if (rc > 0) {
        conn->outoff += static_cast<size_t>(rc);
        ServerMetrics::Get().bytes_sent->Add(static_cast<uint64_t>(rc));
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_sent += static_cast<uint64_t>(rc);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Client is slow: stop here, EPOLLOUT resumes us. This is the
        // backpressure point — PumpStream won't encode past the watermark.
        UpdateEpoll(conn);
        return;
      }
      CloseConn(conn);  // EPIPE / ECONNRESET / ...
      return;
    }
    conn->outbuf.clear();
    conn->outoff = 0;
    if (conn->state != Connection::State::kStreaming) break;
    // Fully drained and mid-stream: encode the next window of batches.
    PumpStream(conn);
    if (conn->pending_out() == 0) break;  // pump produced nothing new
  }
  if (conn->want_close) {
    CloseConn(conn);
    return;
  }
  UpdateEpoll(conn);
}

void Server::SendError(const std::shared_ptr<Connection>& conn,
                       uint64_t query_id, const Status& status) {
  AppendFrame(MsgType::kError,
              BuildError({query_id, status.code(), status.message()}),
              &conn->outbuf);
}

void Server::CloseAfterFlush(const std::shared_ptr<Connection>& conn,
                             const std::string& goodbye_reason) {
  if (conn->closed) return;
  AppendFrame(MsgType::kGoodbye, BuildGoodbye(goodbye_reason), &conn->outbuf);
  conn->want_close = true;
  FlushOut(conn);
}

void Server::CloseConn(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  CloseFd(conn->fd);
  conn->fd = -1;
  conns_.erase(conn->id);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  ServerMetrics::Get().active_connections->Sub(1);
}

void Server::UpdateEpoll(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  const uint32_t mask =
      EPOLLIN | (conn->pending_out() > 0 ? EPOLLOUT : 0u);
  if (mask == conn->epoll_mask) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->epoll_mask = mask;
}

void Server::BeginShutdownDrain() {
  drain_started_ = true;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  // Idle connections get an immediate Goodbye; executing/streaming ones
  // drain first (HandleOutcomes / PumpStream close them when they finish).
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [id, conn] : conns_)
    if (conn->state == Connection::State::kHandshake ||
        conn->state == Connection::State::kReady)
      idle.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : idle)
    CloseAfterFlush(conn, "server shutting down");
}

}  // namespace tpdb::server
