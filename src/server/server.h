// Network front door of the engine: a non-blocking epoll reactor that
// accepts TCP connections speaking the binary wire protocol
// (server/wire.h), dispatches each query onto the exec/ ThreadPool through
// a per-connection Session, and streams results back as serialized
// ColumnBatch frames with socket-level backpressure.
//
// Threading model (one reactor, N pool workers):
//
//   * One reactor thread owns every fd, the epoll set, all connection
//     state and all buffers. It never blocks on a socket.
//   * Query execution runs on the shared exec/ ThreadPool. A worker only
//     touches its connection's mailbox (mutex-guarded outcome slot) and
//     the server's wake eventfd — never a socket — so accept / dispatch /
//     shutdown are free of data races by construction.
//   * Results stream with backpressure: the reactor encodes batches only
//     while the connection's send buffer is below a watermark and relies
//     on EPOLLOUT to resume when the client drains; a stalled client
//     therefore pins at most watermark + one frame of memory.
//
// Admission control: connections beyond max_connections and queries beyond
// max_concurrent_queries are answered with a ResourceExhausted Error frame
// (the connection survives in the query case); a result whose estimated
// size exceeds per_session_result_bytes is dropped server-side and
// surfaced the same way. Graceful shutdown stops accepting, rejects new
// queries, drains in-flight queries and their result streams, then says
// Goodbye on every connection.
#ifndef TPDB_SERVER_SERVER_H_
#define TPDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "exec/session.h"
#include "server/wire.h"

namespace tpdb::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Required handshake token; empty = no authentication.
  std::string auth_token;
  /// Admission: connections beyond this are rejected at accept.
  size_t max_connections = 256;
  /// Admission: queries executing or queued on the pool across all
  /// connections; 0 = unlimited. Excess queries get an Error frame.
  size_t max_concurrent_queries = 0;
  /// Per-session memory cap on a materialized result (estimated bytes);
  /// 0 = unlimited. Exceeding it yields a ResourceExhausted Error frame.
  size_t per_session_result_bytes = 256u << 20;
  /// Per-frame payload cap enforced on received frames.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Stop encoding further batches while a connection's send buffer holds
  /// at least this many bytes (resumed by EPOLLOUT as the client drains).
  size_t send_high_watermark = 256u << 10;
  /// Rows per Batch frame.
  size_t batch_rows = 1024;
  /// How long Shutdown waits for in-flight queries and streams to drain
  /// before force-closing the stragglers.
  int shutdown_grace_ms = 10'000;
  /// Planner knobs of the per-connection sessions (serial by default so
  /// one query occupies one pool worker; raise for parallel plans).
  SessionOptions session{.parallelism = 1};
};

/// Monotonic counters plus point-in-time gauges, readable at any time
/// (Stats() copies the counters and samples the gauges).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t handshakes_ok = 0;
  uint64_t protocol_errors = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_cancelled = 0;
  uint64_t batches_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  // Point-in-time gauges, sampled by Stats().
  uint64_t active_connections = 0;
  uint64_t active_queries = 0;     ///< dispatched to the pool, not deposited
  uint64_t ready_queue_depth = 0;  ///< outcomes deposited, reactor not yet run
  double uptime_seconds = 0.0;     ///< since Start()

  /// Human-readable rendering (the server section of the shell's \s).
  std::string ToString() const;
};

struct Connection;
struct QueryOutcome;

/// One server bound to one TPDatabase. Start() spawns the reactor thread;
/// Shutdown() (or the destructor) drains and joins it. The database must
/// outlive the server.
class Server {
 public:
  explicit Server(TPDatabase* db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the reactor. Fails on bind errors or on a
  /// big-endian host (the wire format, like the snapshot format, is
  /// little-endian).
  Status Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Graceful shutdown: stop accepting, reject new queries, drain
  /// in-flight queries and result streams (bounded by shutdown_grace_ms),
  /// close every connection, join the reactor. Idempotent.
  void Shutdown();

  /// Snapshot of the monotonic counters.
  ServerStats Stats() const;

 private:
  friend struct Connection;

  void ReactorLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  void HandleOutcomes();
  void DispatchQuery(const std::shared_ptr<Connection>& conn, MsgType kind,
                     uint64_t query_id, std::string sql);
  void DispatchAppend(const std::shared_ptr<Connection>& conn, AppendMsg msg);
  /// Shared admission control of the pool-dispatch paths: rejects during
  /// shutdown and over the concurrent-query limit, else claims an inflight
  /// slot and moves the connection to kExecuting.
  bool AdmitWork(const std::shared_ptr<Connection>& conn, uint64_t query_id);
  void RunQuery(std::shared_ptr<Connection> conn, MsgType kind,
                uint64_t query_id, std::string sql);
  void RunAppend(std::shared_ptr<Connection> conn, AppendMsg msg);
  /// Deposits a finished worker's outcome and wakes the reactor.
  void DepositOutcome(const std::shared_ptr<Connection>& conn,
                      std::unique_ptr<QueryOutcome> outcome);
  void PumpStream(const std::shared_ptr<Connection>& conn);
  void FlushOut(const std::shared_ptr<Connection>& conn);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t query_id,
                 const Status& status);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void CloseAfterFlush(const std::shared_ptr<Connection>& conn,
                       const std::string& goodbye_reason);
  void UpdateEpoll(const std::shared_ptr<Connection>& conn);
  void BeginShutdownDrain();
  void Wake();

  TPDatabase* db_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread reactor_;
  bool started_ = false;

  std::atomic<bool> shutting_down_{false};
  bool drain_started_ = false;  // reactor-only

  /// Reactor-owned connection table, keyed by connection id (epoll events
  /// carry the id, so a recycled fd can never alias a stale connection).
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd

  /// Connections whose worker deposited an outcome (workers push, the
  /// reactor drains after a wake). Mutable: Stats() samples the depth.
  mutable std::mutex ready_mu_;
  std::vector<uint64_t> ready_;

  /// Queries dispatched to the pool and not yet deposited; Shutdown waits
  /// for this to reach zero so workers never outlive the server.
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  /// Gauge sources sampled by Stats(): connection count is kept in an
  /// atomic (the conns_ map is reactor-only), the rest derive from the
  /// inflight/ready bookkeeping above. Plain atomics, not obs:: gauges, so
  /// the shell's \s keeps working under TPDB_NO_METRICS.
  std::atomic<size_t> active_conns_{0};
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace tpdb::server

#endif  // TPDB_SERVER_SERVER_H_
