#include "server/wire.h"

#include <cstring>

#include "storage/bytes.h"
#include "storage/column_codec.h"

namespace tpdb::server {

namespace {

using storage::ByteReader;
using storage::ByteWriter;
using storage::Crc32;

std::span<const uint8_t> AsBytes(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

/// CRC over the type byte followed by the payload — the frame trailer.
/// (Crc32 has no incremental entry point, so the type byte is folded in
/// front via one contiguous copy.)
uint32_t FrameCrc(uint8_t type, std::string_view payload) {
  std::string buf;
  buf.reserve(payload.size() + 1);
  buf.push_back(static_cast<char>(type));
  buf.append(payload);
  return Crc32(AsBytes(buf));
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

}  // namespace

void AppendFrame(MsgType type, std::string_view payload, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = FrameCrc(static_cast<uint8_t>(type), payload);
  out->reserve(out->size() + payload.size() + 9);
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->push_back(static_cast<char>(type));
  out->append(payload);
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
}

Status FrameReader::Next(Frame* out, bool* have) {
  *have = false;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its receive buffer forever.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buffered() < sizeof(uint32_t)) return Status::OK();
  uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len > max_frame_bytes_)
    return Status::InvalidArgument(
        "protocol error: frame payload of " + std::to_string(len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte limit");
  const size_t total = sizeof(uint32_t) + 1 + len + sizeof(uint32_t);
  if (buffered() < total) return Status::OK();
  const char* frame = buf_.data() + pos_;
  const uint8_t type = static_cast<uint8_t>(frame[4]);
  const std::string_view payload(frame + 5, len);
  uint32_t crc = 0;
  std::memcpy(&crc, frame + 5 + len, sizeof(crc));
  if (crc != FrameCrc(type, payload))
    return Status::IOError("protocol error: frame CRC mismatch");
  out->type = static_cast<MsgType>(type);
  out->payload.assign(payload);
  pos_ += total;
  *have = true;
  return Status::OK();
}

// -- Typed payloads --------------------------------------------------------

std::string BuildHello(const HelloMsg& msg) {
  ByteWriter w;
  w.PutU32(msg.magic);
  w.PutU32(msg.version);
  w.PutString(msg.auth_token);
  w.PutString(msg.client_name);
  return std::move(w).TakeBuffer();
}

Status ParseHello(std::string_view payload, HelloMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU32(&out->magic).ok() || !r.GetU32(&out->version).ok() ||
      !r.GetString(&out->auth_token).ok() ||
      !r.GetString(&out->client_name).ok())
    return Truncated("Hello");
  return Status::OK();
}

std::string BuildHelloOk(const HelloOkMsg& msg) {
  ByteWriter w;
  w.PutU32(msg.version);
  w.PutString(msg.banner);
  return std::move(w).TakeBuffer();
}

Status ParseHelloOk(std::string_view payload, HelloOkMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU32(&out->version).ok() || !r.GetString(&out->banner).ok())
    return Truncated("HelloOk");
  return Status::OK();
}

std::string BuildQuery(const QueryMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutString(msg.sql);
  return std::move(w).TakeBuffer();
}

Status ParseQuery(std::string_view payload, QueryMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU64(&out->query_id).ok() || !r.GetString(&out->sql).ok())
    return Truncated("Query");
  return Status::OK();
}

std::string BuildCancel(const CancelMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  return std::move(w).TakeBuffer();
}

Status ParseCancel(std::string_view payload, CancelMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU64(&out->query_id).ok()) return Truncated("Cancel");
  return Status::OK();
}

std::string BuildAppend(const AppendMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutString(msg.relation);
  w.PutU32(static_cast<uint32_t>(msg.rows.size()));
  for (const AppendRowMsg& row : msg.rows) {
    w.PutF64(row.prob);
    w.PutI64(row.ts);
    w.PutI64(row.te);
    w.PutString(row.var_name);
    w.PutU32(static_cast<uint32_t>(row.fact.size()));
    for (const Datum& d : row.fact) {
      // Lineage datums are not representable on the wire; the caller
      // (Client::Append) never produces them and the server re-validates.
      const Status st = storage::EncodeTaggedDatum(d, /*ids=*/nullptr, &w);
      TPDB_CHECK(st.ok());
    }
  }
  return std::move(w).TakeBuffer();
}

Status ParseAppend(std::string_view payload, AppendMsg* out) {
  ByteReader r(AsBytes(payload));
  uint32_t num_rows = 0;
  if (!r.GetU64(&out->query_id).ok() || !r.GetString(&out->relation).ok() ||
      !r.GetU32(&num_rows).ok())
    return Truncated("Append");
  if (num_rows > payload.size()) return Truncated("Append");
  out->rows.clear();
  out->rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    AppendRowMsg row;
    uint32_t arity = 0;
    if (!r.GetF64(&row.prob).ok() || !r.GetI64(&row.ts).ok() ||
        !r.GetI64(&row.te).ok() || !r.GetString(&row.var_name).ok() ||
        !r.GetU32(&arity).ok())
      return Truncated("Append");
    if (arity > payload.size()) return Truncated("Append");
    row.fact.reserve(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      Datum d;
      if (!storage::DecodeTaggedDatum(&r, /*ids=*/nullptr, &d).ok())
        return Truncated("Append");
      row.fact.push_back(std::move(d));
    }
    out->rows.push_back(std::move(row));
  }
  return Status::OK();
}

std::string BuildStats(const StatsMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  return std::move(w).TakeBuffer();
}

Status ParseStats(std::string_view payload, StatsMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU64(&out->query_id).ok()) return Truncated("Stats");
  return Status::OK();
}

std::string BuildMetrics(const MetricsMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutU8(static_cast<uint8_t>(msg.format));
  return std::move(w).TakeBuffer();
}

Status ParseMetrics(std::string_view payload, MetricsMsg* out) {
  ByteReader r(AsBytes(payload));
  uint8_t format = 0;
  if (!r.GetU64(&out->query_id).ok() || !r.GetU8(&format).ok())
    return Truncated("Metrics");
  if (format > static_cast<uint8_t>(MetricsFormat::kJson))
    return Status::InvalidArgument(
        "malformed Metrics payload: unknown format " + std::to_string(format));
  out->format = static_cast<MetricsFormat>(format);
  return Status::OK();
}

std::string BuildError(const ErrorMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutU32(StatusCodeToWire(msg.code));
  w.PutString(msg.message);
  return std::move(w).TakeBuffer();
}

Status ParseError(std::string_view payload, ErrorMsg* out) {
  ByteReader r(AsBytes(payload));
  uint32_t code = 0;
  if (!r.GetU64(&out->query_id).ok() || !r.GetU32(&code).ok() ||
      !r.GetString(&out->message).ok())
    return Truncated("Error");
  out->code = StatusCodeFromWire(code);
  return Status::OK();
}

Status ErrorToStatus(const ErrorMsg& msg) {
  switch (msg.code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg.message);
    case StatusCode::kNotFound:
      return Status::NotFound(msg.message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(msg.message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg.message);
    case StatusCode::kInternal:
      return Status::Internal(msg.message);
    case StatusCode::kIOError:
      return Status::IOError(msg.message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg.message);
  }
  return Status::Internal(msg.message);
}

std::string BuildSchema(const SchemaMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutU32(static_cast<uint32_t>(msg.schema.num_columns()));
  for (const Column& col : msg.schema.columns()) {
    w.PutString(col.name);
    w.PutU8(static_cast<uint8_t>(col.type));
  }
  return std::move(w).TakeBuffer();
}

Status ParseSchema(std::string_view payload, SchemaMsg* out) {
  ByteReader r(AsBytes(payload));
  uint32_t num_cols = 0;
  if (!r.GetU64(&out->query_id).ok() || !r.GetU32(&num_cols).ok())
    return Truncated("Schema");
  if (num_cols > payload.size())
    return Truncated("Schema");
  std::vector<Column> columns(num_cols);
  for (Column& col : columns) {
    uint8_t type = 0;
    if (!r.GetString(&col.name).ok() || !r.GetU8(&type).ok())
      return Truncated("Schema");
    if (type > static_cast<uint8_t>(DatumType::kLineage))
      return Status::InvalidArgument("malformed Schema payload: bad type tag");
    col.type = static_cast<DatumType>(type);
  }
  out->schema = Schema(std::move(columns));
  return Status::OK();
}

std::string BuildBatchPrefix(uint64_t query_id) {
  ByteWriter w;
  w.PutU64(query_id);
  return std::move(w).TakeBuffer();
}

Status ParseBatchPrefix(std::string_view payload, uint64_t* query_id,
                        std::string_view* batch_payload) {
  if (payload.size() < sizeof(uint64_t)) return Truncated("Batch");
  std::memcpy(query_id, payload.data(), sizeof(uint64_t));
  *batch_payload = payload.substr(sizeof(uint64_t));
  return Status::OK();
}

std::string BuildDone(const DoneMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutU64(msg.total_rows);
  return std::move(w).TakeBuffer();
}

Status ParseDone(std::string_view payload, DoneMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU64(&out->query_id).ok() || !r.GetU64(&out->total_rows).ok())
    return Truncated("Done");
  return Status::OK();
}

std::string BuildPlanText(const PlanTextMsg& msg) {
  ByteWriter w;
  w.PutU64(msg.query_id);
  w.PutString(msg.text);
  return std::move(w).TakeBuffer();
}

Status ParsePlanText(std::string_view payload, PlanTextMsg* out) {
  ByteReader r(AsBytes(payload));
  if (!r.GetU64(&out->query_id).ok() || !r.GetString(&out->text).ok())
    return Truncated("PlanText");
  return Status::OK();
}

std::string BuildGoodbye(const std::string& reason) {
  ByteWriter w;
  w.PutString(reason);
  return std::move(w).TakeBuffer();
}

Status ParseGoodbye(std::string_view payload, std::string* reason) {
  ByteReader r(AsBytes(payload));
  if (!r.GetString(reason).ok()) return Truncated("Goodbye");
  return Status::OK();
}

uint32_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint32_t>(code);
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  if (wire > static_cast<uint32_t>(StatusCode::kResourceExhausted))
    return StatusCode::kInternal;
  return static_cast<StatusCode>(wire);
}

}  // namespace tpdb::server
