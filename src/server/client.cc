#include "server/client.h"

#include "engine/vector/column_batch.h"
#include "server/socket.h"
#include "storage/batch_codec.h"

namespace tpdb::server {

StatusOr<std::unique_ptr<Client>> Client::Connect(
    const ClientOptions& options) {
  StatusOr<int> fd = ConnectTo(options.host, options.port);
  if (!fd.ok()) return fd.status();
  std::unique_ptr<Client> client(new Client(*fd, options.max_frame_bytes));
  TPDB_RETURN_IF_ERROR(client->SendFrame(
      MsgType::kHello, BuildHello({kProtocolMagic, kProtocolVersion,
                                   options.auth_token,
                                   options.client_name})));
  Frame frame;
  TPDB_RETURN_IF_ERROR(client->NextFrame(&frame));
  if (frame.type == MsgType::kError) {
    ErrorMsg err;
    TPDB_RETURN_IF_ERROR(ParseError(frame.payload, &err));
    return ErrorToStatus(err);
  }
  if (frame.type != MsgType::kHelloOk)
    return Status::IOError("handshake failed: unexpected frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  HelloOkMsg ok;
  TPDB_RETURN_IF_ERROR(ParseHelloOk(frame.payload, &ok));
  client->banner_ = std::move(ok.banner);
  return client;
}

Client::~Client() { (void)Close().ok(); }

Status Client::Close() {
  if (fd_ < 0) return Status::OK();
  const Status sent = SendFrame(MsgType::kClose, BuildGoodbye("bye"));
  if (sent.ok()) {
    // Wait for the server's Goodbye (or the socket to close) so the
    // server sees an orderly shutdown rather than a reset.
    Frame frame;
    while (NextFrame(&frame).ok() && frame.type != MsgType::kGoodbye) {
    }
  }
  CloseFd(fd_);
  fd_ = -1;
  return Status::OK();
}

Status Client::SendFrame(MsgType type, std::string_view payload) {
  std::string out;
  AppendFrame(type, payload, &out);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return Status::IOError("client is closed");
  return SendAll(fd_, out.data(), out.size());
}

Status Client::NextFrame(Frame* out) {
  char buf[64 * 1024];
  for (;;) {
    bool have = false;
    TPDB_RETURN_IF_ERROR(reader_.Next(out, &have));
    if (have) return Status::OK();
    StatusOr<size_t> n = RecvSome(fd_, buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::IOError("connection closed by server");
    reader_.Append(buf, *n);
  }
}

StatusOr<ClientResult> Client::Query(const std::string& sql) {
  if (fd_ < 0) return Status::IOError("client is closed");
  const uint64_t id = next_query_id_++;
  inflight_query_id_.store(id);
  const Status sent = SendFrame(MsgType::kQuery, BuildQuery({id, sql}));
  if (!sent.ok()) {
    inflight_query_id_.store(0);
    return sent;
  }
  ClientResult result;
  bool saw_schema = false;
  for (;;) {
    Frame frame;
    const Status st = NextFrame(&frame);
    if (!st.ok()) {
      inflight_query_id_.store(0);
      return st;
    }
    switch (frame.type) {
      case MsgType::kSchema: {
        SchemaMsg msg;
        TPDB_RETURN_IF_ERROR(ParseSchema(frame.payload, &msg));
        result.schema = std::move(msg.schema);
        saw_schema = true;
        break;
      }
      case MsgType::kBatch: {
        uint64_t batch_query_id = 0;
        std::string_view batch_payload;
        TPDB_RETURN_IF_ERROR(
            ParseBatchPrefix(frame.payload, &batch_query_id, &batch_payload));
        if (batch_query_id != id || !saw_schema) {
          inflight_query_id_.store(0);
          return Status::IOError("protocol error: stray Batch frame");
        }
        vec::ColumnBatch batch;
        TPDB_RETURN_IF_ERROR(storage::DecodeColumnBatch(
            {reinterpret_cast<const uint8_t*>(batch_payload.data()),
             batch_payload.size()},
            /*ids=*/nullptr, &batch));
        result.rows.reserve(result.rows.size() + batch.ActiveRows());
        for (size_t i = 0; i < batch.ActiveRows(); ++i) {
          Row row;
          batch.DecodeRow(batch.ActiveRow(i), &row);
          result.rows.push_back(std::move(row));
        }
        break;
      }
      case MsgType::kDone: {
        DoneMsg msg;
        TPDB_RETURN_IF_ERROR(ParseDone(frame.payload, &msg));
        inflight_query_id_.store(0);
        if (!saw_schema || msg.total_rows != result.rows.size())
          return Status::IOError(
              "protocol error: Done row count disagrees with the stream");
        result.total_rows = msg.total_rows;
        return result;
      }
      case MsgType::kError: {
        ErrorMsg msg;
        TPDB_RETURN_IF_ERROR(ParseError(frame.payload, &msg));
        inflight_query_id_.store(0);
        return ErrorToStatus(msg);
      }
      case MsgType::kGoodbye: {
        std::string reason;
        (void)ParseGoodbye(frame.payload, &reason).ok();
        inflight_query_id_.store(0);
        return Status::IOError("server closed the connection: " + reason);
      }
      default:
        inflight_query_id_.store(0);
        return Status::IOError("protocol error: unexpected frame type " +
                               std::to_string(static_cast<int>(frame.type)));
    }
  }
}

StatusOr<std::string> Client::TextRequest(MsgType kind,
                                          std::string_view payload) {
  if (fd_ < 0) return Status::IOError("client is closed");
  TPDB_RETURN_IF_ERROR(SendFrame(kind, payload));
  for (;;) {
    Frame frame;
    TPDB_RETURN_IF_ERROR(NextFrame(&frame));
    if (frame.type == MsgType::kPlanText) {
      PlanTextMsg msg;
      TPDB_RETURN_IF_ERROR(ParsePlanText(frame.payload, &msg));
      return std::move(msg.text);
    }
    if (frame.type == MsgType::kError) {
      ErrorMsg msg;
      TPDB_RETURN_IF_ERROR(ParseError(frame.payload, &msg));
      return ErrorToStatus(msg);
    }
    if (frame.type == MsgType::kGoodbye) {
      std::string reason;
      (void)ParseGoodbye(frame.payload, &reason).ok();
      return Status::IOError("server closed the connection: " + reason);
    }
    return Status::IOError("protocol error: unexpected frame type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
}

StatusOr<std::string> Client::TextRoundTrip(MsgType kind,
                                            const std::string& sql) {
  return TextRequest(kind, BuildQuery({next_query_id_++, sql}));
}

StatusOr<uint64_t> Client::Append(const std::string& relation,
                                  std::vector<AppendRowMsg> rows) {
  if (fd_ < 0) return Status::IOError("client is closed");
  for (const AppendRowMsg& row : rows)
    for (const Datum& d : row.fact)
      if (d.type() == DatumType::kLineage)
        return Status::InvalidArgument(
            "lineage datums cannot be appended over the wire");
  const uint64_t id = next_query_id_++;
  AppendMsg msg;
  msg.query_id = id;
  msg.relation = relation;
  msg.rows = std::move(rows);
  TPDB_RETURN_IF_ERROR(SendFrame(MsgType::kAppend, BuildAppend(msg)));
  Frame frame;
  TPDB_RETURN_IF_ERROR(NextFrame(&frame));
  if (frame.type == MsgType::kDone) {
    DoneMsg done;
    TPDB_RETURN_IF_ERROR(ParseDone(frame.payload, &done));
    return done.total_rows;
  }
  if (frame.type == MsgType::kError) {
    ErrorMsg err;
    TPDB_RETURN_IF_ERROR(ParseError(frame.payload, &err));
    return ErrorToStatus(err);
  }
  if (frame.type == MsgType::kGoodbye) {
    std::string reason;
    (void)ParseGoodbye(frame.payload, &reason).ok();
    return Status::IOError("server closed the connection: " + reason);
  }
  return Status::IOError("protocol error: unexpected frame type " +
                         std::to_string(static_cast<int>(frame.type)));
}

StatusOr<std::string> Client::Stats() {
  return TextRequest(MsgType::kStats, BuildStats({next_query_id_++}));
}

StatusOr<std::string> Client::Metrics(MetricsFormat format) {
  return TextRequest(MsgType::kMetrics,
                     BuildMetrics({next_query_id_++, format}));
}

StatusOr<std::string> Client::TraceQuery(const std::string& sql) {
  return TextRoundTrip(MsgType::kTraceQuery, sql);
}

StatusOr<std::string> Client::Prepare(const std::string& sql) {
  return TextRoundTrip(MsgType::kPrepare, sql);
}

StatusOr<std::string> Client::Explain(const std::string& sql) {
  return TextRoundTrip(MsgType::kExplain, sql);
}

Status Client::CancelInflight() {
  const uint64_t id = inflight_query_id_.load();
  if (id == 0) return Status::OK();
  return SendFrame(MsgType::kCancel, BuildCancel({id}));
}

}  // namespace tpdb::server
