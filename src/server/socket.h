// Thin POSIX socket helpers shared by the server reactor, the blocking
// client library and the protocol tests. All functions return Status
// instead of errno side channels, and every send path uses MSG_NOSIGNAL so
// a peer hanging up never raises SIGPIPE.
#ifndef TPDB_SERVER_SOCKET_H_
#define TPDB_SERVER_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace tpdb::server {

/// Creates a non-blocking listening TCP socket bound to host:port
/// (SO_REUSEADDR; port 0 picks an ephemeral port). Returns the fd.
StatusOr<int> ListenOn(const std::string& host, uint16_t port, int backlog);

/// The locally bound port of a socket (resolves ephemeral binds).
StatusOr<uint16_t> LocalPort(int fd);

/// Blocking connect to host:port with TCP_NODELAY. Returns the fd.
StatusOr<int> ConnectTo(const std::string& host, uint16_t port);

/// Marks `fd` non-blocking (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm — both ends of the protocol write whole
/// frames, so coalescing only adds latency.
Status SetNoDelay(int fd);

/// Blocking send of the whole buffer (loops over partial writes; EINTR
/// retried; MSG_NOSIGNAL).
Status SendAll(int fd, const char* data, size_t n);

/// Blocking receive of up to `n` bytes; returns the count, 0 on orderly
/// peer shutdown.
StatusOr<size_t> RecvSome(int fd, char* out, size_t n);

/// Closes `fd` if >= 0 (EINTR-safe, idempotent via the -1 convention).
void CloseFd(int fd);

}  // namespace tpdb::server

#endif  // TPDB_SERVER_SOCKET_H_
