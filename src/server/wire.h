// Binary wire protocol of the network server: length-prefixed, CRC-framed
// messages over a byte stream, in the libpq tradition of a small fixed
// frame header plus typed payloads (little-endian, like the snapshot
// format — both ends of a connection run the storage byte codec).
//
// Frame layout (all integers little-endian):
//
//   +----------------+---------+------------------+----------------------+
//   | u32 payload_len| u8 type | payload bytes    | u32 crc32(type ++    |
//   |                |         | (payload_len)    |           payload)   |
//   +----------------+---------+------------------+----------------------+
//
// A frame whose payload_len exceeds the configured maximum, or whose CRC
// does not match, is a protocol error: the peer answers with an Error
// frame when it still can and closes the connection — the stream cannot be
// resynchronized after garbage.
//
// Handshake: the client's first frame must be Hello (magic, protocol
// version, auth token); the server answers HelloOk or Error+close. After
// that the client issues Query / Prepare / Explain / Append / Stats /
// Cancel / Close and the server streams per-query replies: Schema, zero or
// more Batch frames (storage/batch_codec.h payloads), then Done — or
// PlanText for Prepare/Explain/Stats, or a bare Done (appended row count)
// for Append, or Error. Every per-query frame echoes the client's query
// id, so Cancel can name the query it targets.
#ifndef TPDB_SERVER_WIRE_H_
#define TPDB_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/row.h"
#include "engine/schema.h"

namespace tpdb::server {

/// "TPDB" (little-endian u32) — first field of the Hello payload.
inline constexpr uint32_t kProtocolMagic = 0x42445054u;
/// Protocol version this build speaks.
inline constexpr uint32_t kProtocolVersion = 1;
/// Default cap on a frame's payload size (connection options may lower or
/// raise it; both peers enforce their own).
inline constexpr size_t kDefaultMaxFrameBytes = 32u << 20;

/// Message types. Client → server: kHello..kClose. Server → client:
/// kError..kGoodbye.
enum class MsgType : uint8_t {
  kHello = 1,    ///< magic, version, auth token, client name
  kQuery = 2,    ///< query id, SQL text (statements included)
  kPrepare = 3,  ///< query id, SQL text — parse/plan only, no execution
  kExplain = 4,  ///< query id, SQL text — execute, return Explain rendering
  kCancel = 5,   ///< query id — best-effort cancel of an in-flight query
  kClose = 6,    ///< orderly connection close
  kAppend = 7,   ///< query id, relation, rows — durable append (WAL path)
  kStats = 8,    ///< query id — storage statistics, answered with PlanText
  kMetrics = 9,  ///< query id, format — metrics snapshot, as PlanText
  kTraceQuery = 10,  ///< query id, SQL — execute traced, chrome JSON reply

  kError = 16,     ///< query id (0 = connection-level), status code, message
  kHelloOk = 17,   ///< negotiated version, server banner
  kSchema = 18,    ///< query id, result schema — first frame of a result
  kBatch = 19,     ///< query id, one encoded ColumnBatch
  kDone = 20,      ///< query id, total row count — last frame of a result
  kPlanText = 21,  ///< query id, rendered plan / Explain text
  kGoodbye = 22,   ///< reason — server is closing this connection
};

/// One decoded frame: the type byte plus the raw payload.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Appends one complete frame (header, payload, CRC) onto `out`.
void AppendFrame(MsgType type, std::string_view payload, std::string* out);

/// Incremental frame decoder over a connection's receive stream. Feed
/// bytes with Append; Next extracts complete frames one at a time and
/// validates length bound and CRC. After a non-OK Next the stream is
/// unrecoverable and the connection must be closed.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame into `*out`. Sets `*have` to false
  /// (and returns OK) when more bytes are needed. Returns a non-OK status
  /// on an oversized length prefix or a CRC mismatch.
  Status Next(Frame* out, bool* have);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;
};

// -- Typed payloads --------------------------------------------------------
//
// Each message's payload has a Build (struct → bytes) and a Parse
// (bytes → struct) helper; Parse returns a descriptive InvalidArgument on
// any truncated or malformed payload, never crashes.

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  std::string auth_token;
  std::string client_name;
};
std::string BuildHello(const HelloMsg& msg);
Status ParseHello(std::string_view payload, HelloMsg* out);

struct HelloOkMsg {
  uint32_t version = kProtocolVersion;
  std::string banner;
};
std::string BuildHelloOk(const HelloOkMsg& msg);
Status ParseHelloOk(std::string_view payload, HelloOkMsg* out);

/// Query, Prepare, Explain and TraceQuery share one payload shape.
struct QueryMsg {
  uint64_t query_id = 0;
  std::string sql;
};
std::string BuildQuery(const QueryMsg& msg);
Status ParseQuery(std::string_view payload, QueryMsg* out);

struct CancelMsg {
  uint64_t query_id = 0;
};
std::string BuildCancel(const CancelMsg& msg);
Status ParseCancel(std::string_view payload, CancelMsg* out);

/// One row of an Append request: the fact datums (tagged, see
/// storage/column_codec.h), the marginal probability, the validity
/// interval [ts, te) and an optional variable name ("" = server-assigned).
struct AppendRowMsg {
  Row fact;
  double prob = 1.0;
  int64_t ts = 0;
  int64_t te = 0;
  std::string var_name;
};

/// The durable append path over the wire: the server runs
/// TPDatabase::Append (all-or-nothing validation, WAL record + fsync) and
/// answers with Done carrying the appended row count, or Error. Lineage
/// datums are not representable — the server rejects them.
struct AppendMsg {
  uint64_t query_id = 0;
  std::string relation;
  std::vector<AppendRowMsg> rows;
};
std::string BuildAppend(const AppendMsg& msg);
Status ParseAppend(std::string_view payload, AppendMsg* out);

/// Storage statistics request (the shell's \s): answered with a PlanText
/// frame carrying the rendered DatabaseStats table.
struct StatsMsg {
  uint64_t query_id = 0;
};
std::string BuildStats(const StatsMsg& msg);
Status ParseStats(std::string_view payload, StatsMsg* out);

/// Exposition formats of a kMetrics request.
enum class MetricsFormat : uint8_t {
  kPrometheus = 0,  ///< Prometheus text exposition
  kJson = 1,        ///< one JSON object (counters/gauges/histograms)
};

/// Metrics snapshot request (the shell's \m): answered with a PlanText
/// frame carrying the registry rendered in the requested format. Cheap
/// enough that the reactor answers it inline, like kStats.
struct MetricsMsg {
  uint64_t query_id = 0;
  MetricsFormat format = MetricsFormat::kPrometheus;
};
std::string BuildMetrics(const MetricsMsg& msg);
Status ParseMetrics(std::string_view payload, MetricsMsg* out);

struct ErrorMsg {
  uint64_t query_id = 0;  ///< 0 = connection-level error
  StatusCode code = StatusCode::kInternal;
  std::string message;
};
std::string BuildError(const ErrorMsg& msg);
Status ParseError(std::string_view payload, ErrorMsg* out);
/// The Status an Error frame denotes (code + message).
Status ErrorToStatus(const ErrorMsg& msg);

struct SchemaMsg {
  uint64_t query_id = 0;
  Schema schema;
};
std::string BuildSchema(const SchemaMsg& msg);
Status ParseSchema(std::string_view payload, SchemaMsg* out);

/// A Batch payload is `u64 query_id` followed by a storage/batch_codec.h
/// payload; these helpers handle the id prefix only.
std::string BuildBatchPrefix(uint64_t query_id);
Status ParseBatchPrefix(std::string_view payload, uint64_t* query_id,
                        std::string_view* batch_payload);

struct DoneMsg {
  uint64_t query_id = 0;
  uint64_t total_rows = 0;
};
std::string BuildDone(const DoneMsg& msg);
Status ParseDone(std::string_view payload, DoneMsg* out);

struct PlanTextMsg {
  uint64_t query_id = 0;
  std::string text;
};
std::string BuildPlanText(const PlanTextMsg& msg);
Status ParsePlanText(std::string_view payload, PlanTextMsg* out);

std::string BuildGoodbye(const std::string& reason);
Status ParseGoodbye(std::string_view payload, std::string* reason);

/// StatusCode <-> wire integer. Unknown wire values map to kInternal so a
/// newer peer's codes degrade instead of failing.
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);

}  // namespace tpdb::server

#endif  // TPDB_SERVER_WIRE_H_
