// Blocking C++ client for the tpdb wire protocol — the other end of
// server/server.h. One Client is one connection (handshake on Connect);
// Query/Prepare/Explain are synchronous round trips. Not thread-safe
// except for CancelInflight, which may be called from another thread to
// interrupt a Query in progress.
#ifndef TPDB_SERVER_CLIENT_H_
#define TPDB_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/row.h"
#include "engine/schema.h"
#include "server/wire.h"

namespace tpdb::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Must match the server's token when the server requires one.
  std::string auth_token;
  /// Advisory; shows up in nothing but the Hello frame today.
  std::string client_name = "tpdb-client";
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// A fully materialized query result. The schema is the wire shape: the
/// fact columns followed by _ts, _te and _prob (the exact tuple
/// probability, computed server-side).
struct ClientResult {
  Schema schema;
  std::vector<Row> rows;
  /// Row count announced by the server's Done frame (== rows.size()).
  uint64_t total_rows = 0;
};

class Client {
 public:
  /// Connects and performs the handshake; fails on refused connections,
  /// version mismatch or a rejected auth token.
  static StatusOr<std::unique_ptr<Client>> Connect(
      const ClientOptions& options);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One synchronous query: Query frame out, Schema + Batch* + Done frames
  /// back, decoded into a ClientResult. An Error frame becomes the
  /// returned status (with the server's StatusCode preserved).
  StatusOr<ClientResult> Query(const std::string& sql);

  /// Parses and plans without executing; returns the logical plan text.
  StatusOr<std::string> Prepare(const std::string& sql);

  /// Runs the query server-side and returns the full explain report
  /// (logical tree, lowered pipelines, timings).
  StatusOr<std::string> Explain(const std::string& sql);

  /// Durable append: the server validates the rows, applies them
  /// all-or-nothing and (when its WAL is armed) fsyncs a WAL record before
  /// acknowledging. Returns the appended row count. Fact datums may not be
  /// lineage values.
  StatusOr<uint64_t> Append(const std::string& relation,
                            std::vector<AppendRowMsg> rows);

  /// Storage statistics rendered server-side (segments, deltas, WAL
  /// bytes, compression ratio) plus the server's own counters — the
  /// shell's \s command.
  StatusOr<std::string> Stats();

  /// Metrics registry snapshot rendered server-side — the shell's \m
  /// command. Prometheus text exposition or one JSON object.
  StatusOr<std::string> Metrics(
      MetricsFormat format = MetricsFormat::kPrometheus);

  /// Runs the query server-side with tracing enabled and returns the
  /// chrome://tracing JSON artifact (spans for parse/optimize/execute and
  /// every physical plan node, with the Explain rendering embedded under
  /// otherData.physical_plan).
  StatusOr<std::string> TraceQuery(const std::string& sql);

  /// Best-effort cancel of the query currently inside Query() — intended
  /// to be called from another thread. The Query() call itself then
  /// returns either the cancellation error or, if the race was lost, the
  /// completed result.
  Status CancelInflight();

  /// Polite goodbye (Close frame, wait for Goodbye), then closes the
  /// socket. The destructor calls this implicitly.
  Status Close();

  /// Server banner from the handshake.
  const std::string& banner() const { return banner_; }

 private:
  Client(int fd, size_t max_frame_bytes) : fd_(fd), reader_(max_frame_bytes) {}

  Status SendFrame(MsgType type, std::string_view payload);
  /// Blocks until one whole frame arrives (or the peer hangs up).
  Status NextFrame(Frame* out);
  /// Sends one request frame and waits for the PlanText reply — the shape
  /// shared by Prepare/Explain/Stats/Metrics/TraceQuery.
  StatusOr<std::string> TextRequest(MsgType kind, std::string_view payload);
  StatusOr<std::string> TextRoundTrip(MsgType kind, const std::string& sql);

  int fd_ = -1;
  FrameReader reader_;
  std::string banner_;
  uint64_t next_query_id_ = 1;
  /// Query id the current Query() round trip is waiting on (0 = none);
  /// what CancelInflight targets.
  std::atomic<uint64_t> inflight_query_id_{0};
  /// Serializes socket writes (CancelInflight races the query thread).
  std::mutex send_mu_;
};

}  // namespace tpdb::server

#endif  // TPDB_SERVER_CLIENT_H_
