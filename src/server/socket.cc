#include "server/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tpdb::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("not an IPv4 address: '" + host +
                                   "' (the server speaks dotted-quad hosts)");
  return addr;
}

}  // namespace

StatusOr<int> ListenOn(const std::string& host, uint16_t port, int backlog) {
  StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) <
      0) {
    const Status st = Errno("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    const Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  const Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    CloseFd(fd);
    return nb;
  }
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return Errno("getsockname");
  return ntohs(addr.sin_port);
}

StatusOr<int> ConnectTo(const std::string& host, uint16_t port) {
  StatusOr<sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return addr.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status st = Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  const Status nd = SetNoDelay(fd);
  if (!nd.ok()) {
    CloseFd(fd);
    return nd;
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Errno("fcntl(O_NONBLOCK)");
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0)
    return Errno("setsockopt(TCP_NODELAY)");
  return Status::OK();
}

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

StatusOr<size_t> RecvSome(int fd, char* out, size_t n) {
  ssize_t rc;
  do {
    rc = ::recv(fd, out, n, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("recv");
  return static_cast<size_t>(rc);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace tpdb::server
